// Ablates this repository's implementation extensions (DESIGN.md §6) one at
// a time on Books -> Movies, so their individual contribution relative to
// the paper-literal configuration is measurable.
//
//   ./build/bench/ablate_extensions [--seed=99]

#include <cstdio>
#include <functional>

#include "common/flags.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "eval/table.h"

using namespace omnimatch;

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 99));

  data::SyntheticWorld world(data::SyntheticConfig::AmazonLike());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(seed);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  struct Variant {
    std::string name;
    std::function<void(core::OmniMatchConfig*)> apply;
  };
  std::vector<Variant> variants = {
      {"full (repo defaults)", [](core::OmniMatchConfig*) {}},
      {"- interaction features",
       [](core::OmniMatchConfig* c) { c->use_interaction_features = false; }},
      {"- mean-embedding feature",
       [](core::OmniMatchConfig* c) {
         c->use_mean_embedding_feature = false;
       }},
      {"- cold-start self-simulation",
       [](core::OmniMatchConfig* c) { c->aux_augmentation_prob = 0.0f; }},
      {"- aux-document ensembling",
       [](core::OmniMatchConfig* c) { c->aux_eval_samples = 1; }},
      {"- doc shuffling/word dropout",
       [](core::OmniMatchConfig* c) {
         c->shuffle_reviews_in_training = false;
         c->word_dropout = 0.0f;
       }},
      {"- best-epoch selection",
       [](core::OmniMatchConfig* c) { c->select_best_epoch = false; }},
      {"Adadelta (paper optimizer)",
       [](core::OmniMatchConfig* c) {
         c->optimizer = core::OptimizerKind::kAdadelta;
       }},
  };

  std::printf(
      "Extensions ablation on %s (DESIGN.md §6) — each row disables ONE "
      "repo extension relative to the defaults\n",
      cross.ScenarioName().c_str());
  eval::AsciiTable table;
  table.SetHeader({"Variant", "RMSE", "MAE"});
  for (const Variant& v : variants) {
    core::OmniMatchConfig config;
    config.seed = seed + 29;
    v.apply(&config);
    core::OmniMatchTrainer trainer(config, &cross, split);
    Status status = trainer.Prepare();
    if (!status.ok()) {
      std::fprintf(stderr, "Prepare failed: %s\n",
                   status.ToString().c_str());
      continue;
    }
    trainer.Train();
    eval::Metrics m = trainer.Evaluate(split.test_users);
    table.AddRow({v.name, eval::FormatMetric(m.rmse),
                  eval::FormatMetric(m.mae)});
    std::fprintf(stderr, "  done %s\n", v.name.c_str());
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
