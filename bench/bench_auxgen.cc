// Microbenchmark for Algorithm 1 (auxiliary review generation), backing the
// paper's §4.1 complexity analysis: generation is O(N·M) preprocessing (the
// dataset indices) plus O(L·M·Q) for the cold users, so per-user time should
// stay flat as the number of users N grows with M and Q held constant.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/aux_review.h"
#include "data/splits.h"
#include "data/synthetic.h"

using namespace omnimatch;

namespace {

void BM_AuxGenerationPerUser(benchmark::State& state) {
  data::SyntheticConfig config = data::SyntheticConfig::AmazonLike();
  config.num_users = static_cast<int>(state.range(0));
  config.items_per_domain = config.num_users / 2;  // constant density
  data::SyntheticWorld world(config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(7);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  core::AuxReviewGenerator generator(&cross, split.train_users);

  size_t next = 0;
  for (auto _ : state) {
    int user = split.test_users[next % split.test_users.size()];
    ++next;
    auto reviews = generator.GenerateForUser(user, &rng);
    benchmark::DoNotOptimize(reviews.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuxGenerationPerUser)->Arg(200)->Arg(400)->Arg(800)->Arg(1600);

void BM_IndexConstruction(benchmark::State& state) {
  // The O(N·M) dictionary build of §4.1.
  data::SyntheticConfig config = data::SyntheticConfig::AmazonLike();
  config.num_users = static_cast<int>(state.range(0));
  data::SyntheticWorld world(config);
  data::DomainDataset dataset = world.domain("Books");
  for (auto _ : state) {
    dataset.BuildIndices();
    benchmark::DoNotOptimize(dataset.users().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.num_reviews()));
}
BENCHMARK(BM_IndexConstruction)->Arg(200)->Arg(400)->Arg(800);

}  // namespace

BENCHMARK_MAIN();
