// Algorithm-1 throughput harness: the retired scan path (unordered_map
// (item, rating) -> users index, per-record eligibility filtering through a
// hash set, candidate list materialized per record) against the production
// CSR like-minded index with its pre-filtered eligible view. The sweep holds
// the item catalog fixed while the user count grows, so like-minded buckets
// grow linearly with the world — the regime ISSUE 8 targets. Also hosts the
// million-user out-of-core smoke: a deferred SyntheticWorld streamed to OMDS
// files, mapped back, run through split + parallel auxiliary generation +
// checkpoint + serve scoring, with a peak-RSS ceiling asserted at the end.
//
//   ./bench_auxgen [--out=BENCH_auxgen.json] [--reps=3] [--max_users=100000]
//                  [--check] [--check_speedup_min=10]
//   ./bench_auxgen --million_smoke [--users=1000000] [--max_rss_mb=2048]
//                  [--workdir=/tmp/omnimatch_million]
//
// --check turns the sweep into a self-gating smoke test: the process fails
// unless (a) the CSR path's texts and consumed RNG stream are bit-identical
// to the scan path's on the Table-2 (AmazonLike) configuration, and (b) the
// generation speedup at the largest swept world reaches
// --check_speedup_min. Every sweep row lands in the JSON with
// seed_ns = scan-path time, so speedup_vs_seed is the scan-vs-CSR ratio.

#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "core/aux_review.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/omds.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "serve/scorer.h"
#include "serve/snapshot.h"

using namespace omnimatch;

namespace {

int g_reps = 3;

/// Best-of-reps nanoseconds per call (same protocol as bench_graph).
double BenchNs(const std::function<void()>& fn) {
  Stopwatch warm;
  fn();
  double once = std::max(warm.ElapsedSeconds(), 1e-9);
  int iters = std::max(1, static_cast<int>(0.02 / once));
  double best = 1e300;
  for (int rep = 0; rep < g_reps; ++rep) {
    Stopwatch watch;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.ElapsedSeconds() / iters);
  }
  return best * 1e9;
}

double PeakRssMb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB on Linux
}

// ---------------------------------------------------------------------------
// The pre-PR scan path, ported verbatim as the seed variant: a hash-map
// index whose buckets are sorted/uniqued at build time, and a generation
// loop that re-filters the raw bucket through an eligibility hash set and
// materializes the candidate list for every source record.
// ---------------------------------------------------------------------------

using ScanIndex = std::unordered_map<long long, std::vector<int>>;

ScanIndex BuildScanIndex(const data::DomainDataset& d) {
  ScanIndex index;
  for (size_t i = 0; i < d.num_reviews(); ++i) {
    index[data::DomainDataset::ItemRatingKey(d.ReviewItem(i),
                                             d.ReviewRating(i))]
        .push_back(d.ReviewUser(i));
  }
  for (auto& [key, users] : index) {
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
  }
  return index;
}

std::vector<std::string> ScanGenerate(const data::CrossDomainDataset& cross,
                                      const ScanIndex& index,
                                      const std::unordered_set<int>& eligible,
                                      int user_id, Rng* rng) {
  std::vector<std::string> aux;
  const data::DomainDataset& source = cross.source();
  const data::DomainDataset& target = cross.target();
  for (int rec : source.RecordsOfUser(user_id)) {
    auto it = index.find(data::DomainDataset::ItemRatingKey(
        source.ReviewItem(rec), source.ReviewRating(rec)));
    std::vector<int> like_minded;
    if (it != index.end()) {
      for (int v : it->second) {
        if (v != user_id && eligible.count(v)) like_minded.push_back(v);
      }
    }
    if (like_minded.empty()) continue;
    int chosen =
        like_minded[rng->UniformU32(static_cast<uint32_t>(like_minded.size()))];
    data::IdSpan records = target.RecordsOfUser(chosen);
    if (records.empty()) continue;
    int pick = records[rng->UniformU32(static_cast<uint32_t>(records.size()))];
    aux.emplace_back(target.ReviewSummary(pick));
  }
  return aux;
}

// ---------------------------------------------------------------------------
// Bit-identity pin: Table-2 (AmazonLike) configuration, every test user,
// texts AND post-generation RNG state must match between the two paths.
// ---------------------------------------------------------------------------

bool CheckBitIdentity() {
  data::SyntheticConfig config = data::SyntheticConfig::AmazonLike();
  data::SyntheticWorld world(config, {"Books", "Movies"});
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(12);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  core::AuxReviewGenerator generator(&cross, split.train_users);
  ScanIndex index = BuildScanIndex(cross.source());
  std::unordered_set<int> eligible(split.train_users.begin(),
                                   split.train_users.end());

  for (int user : split.test_users) {
    Rng rng_csr(core::AuxReviewGenerator::PerUserSeed(2024, user));
    Rng rng_ref(core::AuxReviewGenerator::PerUserSeed(2024, user));
    std::vector<std::string> csr = generator.GenerateForUser(user, &rng_csr);
    std::vector<std::string> ref =
        ScanGenerate(cross, index, eligible, user, &rng_ref);
    if (csr != ref || rng_csr.NextU32() != rng_ref.NextU32()) {
      std::fprintf(stderr,
                   "bench_auxgen: CSR path diverged from scan path for "
                   "user %d on the Table-2 config\n",
                   user);
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Throughput sweep
// ---------------------------------------------------------------------------

struct SweepRow {
  int users = 0;
  size_t records = 0;
  size_t test_users = 0;
  double scan_index_ns = 0.0;
  double csr_index_ns = 0.0;
  double scan_gen_ns = 0.0;  // per cold user
  double csr_gen_ns = 0.0;   // per cold user
  double gen_speedup() const {
    return csr_gen_ns > 0.0 ? scan_gen_ns / csr_gen_ns : 0.0;
  }
};

SweepRow RunSweepPoint(int num_users) {
  data::SyntheticConfig config;
  config.num_users = num_users;
  // Fixed catalog: the like-minded buckets grow with the user count, which
  // is exactly where the per-record scan filter loses to the single draw.
  config.items_per_domain = 400;
  config.mean_reviews_per_user = 8.0;
  config.min_reviews_per_user = 2;
  config.full_text_multiplier = 2;
  config.seed = 500 + static_cast<uint64_t>(num_users);
  data::SyntheticWorld world(config, {"Books", "Movies"});
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(12);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  SweepRow row;
  row.users = num_users;
  row.records = cross.source().num_reviews();
  row.test_users = split.test_users.size();

  const data::DomainDataset& source = cross.source();
  row.scan_index_ns = BenchNs([&]() {
    ScanIndex index = BuildScanIndex(source);
    if (index.empty()) std::abort();
  });
  row.csr_index_ns = BenchNs([&]() {
    data::CsrIndex<long long> index = data::CsrIndex<long long>::Build(
        source.num_reviews(),
        [&](size_t i) {
          return data::DomainDataset::ItemRatingKey(source.ReviewItem(i),
                                                    source.ReviewRating(i));
        },
        [&](size_t i) { return source.ReviewUser(i); },
        /*sort_unique_values=*/true);
    if (index.num_keys() == 0) std::abort();
  });

  // Generation: one full pass over the cold users per call, fresh per-user
  // streams so both variants consume identical randomness.
  ScanIndex scan_index = BuildScanIndex(source);
  std::unordered_set<int> eligible(split.train_users.begin(),
                                   split.train_users.end());
  core::AuxReviewGenerator generator(&cross, split.train_users);
  size_t texts_csr = 0, texts_scan = 0;
  double csr_pass_ns = BenchNs([&]() {
    texts_csr = 0;
    for (int user : split.test_users) {
      Rng rng(core::AuxReviewGenerator::PerUserSeed(2024, user));
      texts_csr += generator.GenerateForUser(user, &rng).size();
    }
  });
  double scan_pass_ns = BenchNs([&]() {
    texts_scan = 0;
    for (int user : split.test_users) {
      Rng rng(core::AuxReviewGenerator::PerUserSeed(2024, user));
      texts_scan +=
          ScanGenerate(cross, scan_index, eligible, user, &rng).size();
    }
  });
  if (texts_csr != texts_scan) {
    std::fprintf(stderr, "bench_auxgen: text count mismatch at N=%d\n",
                 num_users);
    std::abort();
  }
  row.csr_gen_ns = csr_pass_ns / static_cast<double>(row.test_users);
  row.scan_gen_ns = scan_pass_ns / static_cast<double>(row.test_users);
  return row;
}

// ---------------------------------------------------------------------------
// Million-user out-of-core smoke
// ---------------------------------------------------------------------------

int RunMillionSmoke(int users, double max_rss_mb, const std::string& workdir,
                    const std::string& out_path) {
  Stopwatch total;
  Status dir = EnsureDirectory(workdir);
  if (!dir.ok()) {
    std::fprintf(stderr, "bench_auxgen: %s\n", dir.ToString().c_str());
    return 1;
  }

  data::SyntheticConfig config;
  config.num_users = users;
  config.items_per_domain = 800;
  config.participation = 0.22;
  config.mean_reviews_per_user = 2.0;
  config.min_reviews_per_user = 1;
  config.full_text_multiplier = 1;
  config.seed = 90001;

  const std::vector<std::string> domains = {"Books", "Movies"};
  // Deferred world: latents only; reviews are streamed straight into the
  // OMDS writers and never held in memory.
  {
    Stopwatch watch;
    data::SyntheticWorld world(config, domains, /*materialize=*/false);
    for (const std::string& name : domains) {
      data::OmdsWriter writer;
      Status st = writer.Open(workdir + "/" + name + ".omds");
      if (!st.ok()) {
        std::fprintf(stderr, "bench_auxgen: %s\n", st.ToString().c_str());
        return 1;
      }
      world.StreamDomain(name, [&](data::Review&& r) {
        Status add = writer.Add(r.user_id, r.item_id, r.rating, r.summary,
                                r.full_text);
        if (!add.ok()) std::abort();
      });
      st = writer.Finalize();
      if (!st.ok()) {
        std::fprintf(stderr, "bench_auxgen: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("  streamed %-6s -> %zu records (%.1fs)\n", name.c_str(),
                  writer.num_records(), watch.ElapsedSeconds());
    }
  }

  // Map the files back; from here on every review byte is served by mmap.
  Result<data::DomainDataset> books =
      data::LoadDomainOmds(workdir + "/Books.omds", "Books");
  Result<data::DomainDataset> movies =
      data::LoadDomainOmds(workdir + "/Movies.omds", "Movies");
  if (!books.ok() || !movies.ok()) {
    std::fprintf(stderr, "bench_auxgen: OMDS load failed\n");
    return 1;
  }
  data::CrossDomainDataset cross(std::move(books).value(),
                                 std::move(movies).value());
  Rng split_rng(12);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  std::printf("  overlap=%zu train=%zu test=%zu\n",
              cross.overlapping_users().size(), split.train_users.size(),
              split.test_users.size());

  // Parallel Algorithm 1 against the mapped backend.
  core::AuxReviewGenerator generator(&cross, split.train_users);
  std::vector<int> cold = split.test_users;
  Stopwatch gen_watch;
  std::vector<std::vector<std::string>> docs = generator.GenerateAll(cold, 77);
  double gen_s = gen_watch.ElapsedSeconds();
  size_t nonempty = 0;
  for (const auto& d : docs) nonempty += d.empty() ? 0 : 1;
  double gen_ns_per_user =
      cold.empty() ? 0.0 : gen_s * 1e9 / static_cast<double>(cold.size());
  std::printf("  auxgen: %zu/%zu cold users got docs, %.0f ns/user\n",
              nonempty, cold.size(), gen_ns_per_user);
  if (nonempty == 0) {
    std::fprintf(stderr, "bench_auxgen: no auxiliary docs generated\n");
    return 1;
  }

  // Tiny model end to end: checkpoint, snapshot, serve scoring — the full
  // out-of-core serving path of ISSUE 8's acceptance criterion.
  core::OmniMatchConfig model;
  model.embed_dim = 8;
  model.cnn_channels = 4;
  model.kernel_sizes = {2, 3};
  model.feature_dim = 8;
  model.projection_dim = 4;
  model.doc_len = 16;
  model.item_doc_len = 16;
  model.batch_size = 64;
  model.epochs = 0;  // Prepare + checkpoint only; training is not the SUT
  model.aux_eval_samples = 1;
  model.select_best_epoch = false;
  model.seed = 31;
  core::OmniMatchTrainer trainer(model, &cross, split);
  Status prep = trainer.Prepare();
  if (!prep.ok()) {
    std::fprintf(stderr, "bench_auxgen: %s\n", prep.ToString().c_str());
    return 1;
  }
  trainer.Train();
  std::string checkpoint = workdir + "/million.omck";
  Status saved = trainer.SaveCheckpoint(checkpoint);
  if (!saved.ok()) {
    std::fprintf(stderr, "bench_auxgen: %s\n", saved.ToString().c_str());
    return 1;
  }

  auto snapshot = serve::ModelSnapshot::Load(model, &cross, split, checkpoint);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "bench_auxgen: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  serve::Scorer scorer(snapshot.value(), /*cache_capacity=*/4096);

  // A source-only user exercises online Algorithm-1 admission against the
  // mapped source domain.
  int source_only = -1;
  for (int u : cross.source().users()) {
    if (!cross.target().HasUser(u)) {
      source_only = u;
      break;
    }
  }
  std::vector<serve::ScoreRequest> requests;
  for (size_t i = 0; i < std::min<size_t>(8, split.test_users.size()); ++i) {
    requests.push_back({split.test_users[i], cross.target().items()[i]});
  }
  if (source_only >= 0) {
    requests.push_back({source_only, cross.target().items()[0]});
  }
  std::vector<float> scores = scorer.ScoreBatch(requests);
  for (float s : scores) {
    if (!std::isfinite(s)) {
      std::fprintf(stderr, "bench_auxgen: non-finite serve score\n");
      return 1;
    }
  }
  std::printf("  served %zu requests (incl. source-only user %d)\n",
              scores.size(), source_only);

  double rss_mb = PeakRssMb();
  std::printf("  peak RSS %.0f MB (budget %.0f MB), total %.1fs\n", rss_mb,
              max_rss_mb, total.ElapsedSeconds());

  std::vector<bench::KernelSample> samples;
  samples.push_back({StrFormat("million_smoke/auxgen/users=%d", users),
                     "csr-mmap", ThreadPool::Global().num_threads(),
                     gen_ns_per_user, 0.0});
  samples.push_back({StrFormat("million_smoke/peak_rss_mb/users=%d", users),
                     "csr-mmap", 1, rss_mb, 0.0});
  if (!out_path.empty() && !bench::WriteBenchJson(out_path, samples)) {
    std::fprintf(stderr, "bench_auxgen: cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (rss_mb > max_rss_mb) {
    std::fprintf(stderr,
                 "bench_auxgen: FAIL peak RSS %.0f MB exceeds the %.0f MB "
                 "budget\n",
                 rss_mb, max_rss_mb);
    return 1;
  }
  std::printf("million smoke OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  g_reps = flags.GetInt("reps", 3);
  ApplyThreadsFlag(flags);
  std::string out_path = flags.GetString("out", "BENCH_auxgen.json");

  if (flags.GetBool("million_smoke", false)) {
    return RunMillionSmoke(
        flags.GetInt("users", 1000000), flags.GetDouble("max_rss_mb", 2048.0),
        flags.GetString("workdir", "/tmp/omnimatch_million"), out_path);
  }

  bool check = flags.GetBool("check", false);
  double check_speedup_min = flags.GetDouble("check_speedup_min", 10.0);
  int max_users = flags.GetInt("max_users", 100000);

  std::printf("bit-identity pin (Table-2 config)... ");
  std::fflush(stdout);
  bool identical = CheckBitIdentity();
  std::printf("%s\n", identical ? "ok" : "FAILED");
  if (check && !identical) return 1;

  std::vector<int> sweep = {2000, 20000};
  if (max_users > sweep.back()) sweep.push_back(max_users);

  std::vector<bench::KernelSample> samples;
  double largest_speedup = 0.0;
  std::printf("%8s %10s %8s %14s %14s %10s\n", "users", "records", "cold",
              "scan ns/user", "csr ns/user", "speedup");
  for (int n : sweep) {
    SweepRow row = RunSweepPoint(n);
    std::printf("%8d %10zu %8zu %14.0f %14.0f %9.1fx\n", row.users,
                row.records, row.test_users, row.scan_gen_ns, row.csr_gen_ns,
                row.gen_speedup());
    samples.push_back({StrFormat("auxgen/users=%d", n), "csr", 1,
                       row.csr_gen_ns, row.scan_gen_ns});
    samples.push_back({StrFormat("index_build/users=%d", n), "csr",
                       ThreadPool::Global().num_threads(), row.csr_index_ns,
                       row.scan_index_ns});
    largest_speedup = row.gen_speedup();
  }

  if (!out_path.empty()) {
    if (!bench::WriteBenchJson(out_path, samples)) {
      std::fprintf(stderr, "bench_auxgen: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (check && largest_speedup < check_speedup_min) {
    std::fprintf(stderr,
                 "bench_auxgen: FAIL speedup %.1fx at %d users is below the "
                 "%.1fx gate\n",
                 largest_speedup, max_users, check_speedup_min);
    return 1;
  }
  if (check) std::printf("check OK (speedup %.1fx)\n", largest_speedup);
  return 0;
}
