// Eager vs recorded-graph training-step benchmark plus microbenches of the
// fused kernels the graph compiler emits. Eager and recorded reps are
// interleaved so clock drift hits both variants equally. Writes a
// machine-readable BENCH_graph.json with speedup_vs_eager per thread count
// and the steady-state tensor-node allocation counts (replay must be zero).
//
//   ./bench_graph [--out=BENCH_graph.json] [--reps=5] [--max-threads=4]
//                 [--epochs=2] [--check_speedup_min=0]
//
// --check_speedup_min > 0 turns the run into a self-checking smoke test:
// the process fails unless every thread count's recorded-vs-eager speedup
// reaches the threshold and the replay path allocated zero tensor nodes.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "nn/gemm.h"
#include "obs/metrics.h"

using namespace omnimatch;

namespace {

int g_reps = 5;

/// Best-of-reps nanoseconds per call (same protocol as bench_report).
double BenchNs(const std::function<void()>& fn) {
  Stopwatch warm;
  fn();
  double once = std::max(warm.ElapsedSeconds(), 1e-9);
  int iters = std::max(1, static_cast<int>(0.02 / once));
  double best = 1e300;
  for (int rep = 0; rep < g_reps; ++rep) {
    Stopwatch watch;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.ElapsedSeconds() / iters);
  }
  return best * 1e9;
}

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->UniformFloat(-1.0f, 1.0f);
  return v;
}

/// One eager-vs-recorded comparison at a fixed thread count.
struct StepSample {
  int threads = 1;
  double eager_ns = 0.0;     // steady-state forward+losses+backward per step
  double recorded_ns = 0.0;  // same, with --graph_exec (record step included)
  int64_t eager_allocs_per_step = 0;
  int64_t recorded_steady_allocs = 0;  // tensor nodes per REPLAYED step
  int64_t plans = 0;
  int64_t record_steps = 0;
  int64_t replay_steps = 0;
  int64_t arena_bytes = 0;
  double speedup() const {
    return recorded_ns > 0.0 ? eager_ns / recorded_ns : 0.0;
  }
};

/// Fused-kernel microbench record.
struct KernelSample {
  std::string name;
  std::string variant;  // "unfused" or "fused"
  int threads = 1;
  double ns = 0.0;
};

core::OmniMatchConfig SmokeConfig(bool graph_exec, int epochs) {
  core::OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 8;
  config.epochs = epochs;
  // Timing wants pure training steps: no per-epoch validation forward.
  config.select_best_epoch = false;
  config.seed = 13;
  config.graph_exec = graph_exec;
  return config;
}

double PhaseSumNs(const char* name) {
  return obs::MetricsRegistry::Global().GetHistogram(name)->Sum();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  g_reps = flags.GetInt("reps", 5);
  std::string out_path = flags.GetString("out", "BENCH_graph.json");
  int max_threads = flags.GetInt("max-threads", 4);
  int epochs = flags.GetInt("epochs", 2);
  double check_speedup_min = flags.GetDouble("check_speedup_min", 0.0);
  std::vector<int> thread_counts = {1};
  for (int t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  data::SyntheticConfig world_config;
  world_config.num_users = 120;
  world_config.items_per_domain = 60;
  world_config.mean_reviews_per_user = 5;
  world_config.seed = 11;
  data::SyntheticWorld world(world_config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(12);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  obs::Counter* node_allocs =
      obs::MetricsRegistry::Global().GetCounter("nn.tensor_node_allocs");
  obs::EnableMetrics(true);

  // --- Interleaved eager vs recorded full-training comparison ---
  std::vector<StepSample> step_samples;
  for (int threads : thread_counts) {
    StepSample sample;
    sample.threads = threads;
    double best_ns[2] = {1e300, 1e300};  // [eager, recorded]
    for (int rep = 0; rep < g_reps; ++rep) {
      for (int recorded = 0; recorded <= 1; ++recorded) {
        core::OmniMatchConfig config = SmokeConfig(recorded == 1, epochs);
        config.num_threads = threads;
        core::OmniMatchTrainer trainer(config, &cross, split);
        if (!trainer.Prepare().ok()) {
          std::fprintf(stderr, "bench_graph: Prepare failed\n");
          return 1;
        }
        obs::MetricsRegistry::Global().ResetAll();
        int64_t allocs_before = node_allocs->Value();
        core::TrainStats stats = trainer.Train();
        int64_t allocs = node_allocs->Value() - allocs_before;
        if (stats.steps <= 0) {
          std::fprintf(stderr, "bench_graph: no training steps ran\n");
          return 1;
        }
        // Steady-state step time: the graph-covered region (forward +
        // losses + backward), excluding document assembly and the
        // optimizer, which are identical in both modes.
        double step_ns = (PhaseSumNs("trainer.forward_ns") +
                          PhaseSumNs("trainer.losses_ns") +
                          PhaseSumNs("trainer.backward_ns")) /
                         stats.steps;
        best_ns[recorded] = std::min(best_ns[recorded], step_ns);
        if (recorded == 0) {
          // The op stream is shape-independent, so every eager step
          // allocates the same number of tensor nodes.
          sample.eager_allocs_per_step = allocs / stats.steps;
        } else {
          const nn::graph::GraphExecutor::Stats& gs =
              trainer.graph_executor()->stats();
          sample.plans = gs.plans;
          sample.record_steps = gs.record_steps;
          sample.replay_steps = gs.replay_steps;
          sample.arena_bytes = gs.arena_bytes_max;
          // Recording steps run eagerly; whatever remains was allocated by
          // the replayed steps (the zero-steady-state-allocation claim).
          int64_t record_allocs =
              sample.eager_allocs_per_step * gs.record_steps;
          sample.recorded_steady_allocs =
              gs.replay_steps > 0 ? (allocs - record_allocs) / gs.replay_steps
                                  : 0;
        }
      }
    }
    sample.eager_ns = best_ns[0];
    sample.recorded_ns = best_ns[1];
    step_samples.push_back(sample);
  }

  // --- Fused-kernel microbenches (the kernels the fusion pass emits) ---
  std::vector<KernelSample> kernel_samples;
  {
    constexpr int kM = 64, kK = 32, kN = 48;
    Rng rng(1);
    std::vector<float> a = RandomVec(static_cast<size_t>(kM) * kK, &rng);
    std::vector<float> b = RandomVec(static_cast<size_t>(kK) * kN, &rng);
    std::vector<float> bias = RandomVec(kN, &rng);
    std::vector<float> mm(static_cast<size_t>(kM) * kN, 0.0f);
    std::vector<float> biased(mm.size(), 0.0f);
    std::vector<float> relued(mm.size(), 0.0f);
    std::string name = StrFormat("FusedLinear/%dx%dx%d", kM, kK, kN);
    for (int threads : {1, max_threads}) {
      SetNumThreads(threads);
      // Eager chain: three ops, three output buffers.
      kernel_samples.push_back({name, "unfused", threads, BenchNs([&] {
        std::fill(mm.begin(), mm.end(), 0.0f);
        nn::GemmNN(a.data(), b.data(), mm.data(), kM, kK, kN);
        for (int r = 0; r < kM; ++r) {
          for (int c = 0; c < kN; ++c) {
            size_t i = static_cast<size_t>(r) * kN + static_cast<size_t>(c);
            biased[i] = mm[i] + bias[static_cast<size_t>(c)];
          }
        }
        for (size_t i = 0; i < biased.size(); ++i) {
          relued[i] = biased[i] > 0.0f ? biased[i] : 0.0f;
        }
      })});
      kernel_samples.push_back({name, "fused", threads, BenchNs([&] {
        nn::FusedLinearForward(a.data(), b.data(), bias.data(), relued.data(),
                               kM, kK, kN, /*relu=*/true);
      })});
    }
  }
  {
    constexpr int kVocab = 2000, kEmbed = 16, kIds = 64 * 32;
    Rng rng(2);
    std::vector<float> table =
        RandomVec(static_cast<size_t>(kVocab) * kEmbed, &rng);
    std::vector<int> ids(kIds);
    for (int& id : ids) id = static_cast<int>(rng.UniformU32(kVocab));
    std::vector<float> gathered(static_cast<size_t>(kIds) * kEmbed, 0.0f);
    std::vector<float> reshaped(gathered.size(), 0.0f);
    std::string name = StrFormat("GatherReshape/%dx%d", kIds, kEmbed);
    auto gather_rows = [&](std::vector<float>* dst) {
      for (size_t i = 0; i < ids.size(); ++i) {
        const float* src = table.data() +
                           static_cast<size_t>(ids[i]) * kEmbed;
        std::copy(src, src + kEmbed, dst->data() + i * kEmbed);
      }
    };
    for (int threads : {1, max_threads}) {
      SetNumThreads(threads);
      // Eager chain materializes the gather, then Reshape copies it again.
      kernel_samples.push_back({name, "unfused", threads, BenchNs([&] {
        gather_rows(&gathered);
        std::copy(gathered.begin(), gathered.end(), reshaped.begin());
      })});
      // The fused node gathers straight into the reshaped buffer.
      kernel_samples.push_back({name, "fused", threads, BenchNs([&] {
        gather_rows(&reshaped);
      })});
    }
  }
  SetNumThreads(1);
  obs::EnableMetrics(false);

  // --- Report ---
  std::printf("%-8s %14s %14s %10s %12s %14s\n", "threads", "eager ns/step",
              "recorded ns", "speedup", "eager allocs", "replay allocs");
  for (const StepSample& s : step_samples) {
    std::printf("%-8d %14.0f %14.0f %9.2fx %12lld %14lld\n", s.threads,
                s.eager_ns, s.recorded_ns, s.speedup(),
                static_cast<long long>(s.eager_allocs_per_step),
                static_cast<long long>(s.recorded_steady_allocs));
  }
  std::printf("%-28s %-8s %8s %14s\n", "kernel", "variant", "threads",
              "ns/call");
  for (const KernelSample& k : kernel_samples) {
    std::printf("%-28s %-8s %8d %14.0f\n", k.name.c_str(), k.variant.c_str(),
                k.threads, k.ns);
  }

  std::string json = "{\n  \"schema\": \"omnimatch-bench-graph-v1\",\n";
  json += "  \"unit\": \"ns_per_step\",\n  \"trainer_step\": [\n";
  for (size_t i = 0; i < step_samples.size(); ++i) {
    const StepSample& s = step_samples[i];
    json += StrFormat(
        "    {\"threads\": %d, \"eager_ns\": %.1f, \"recorded_ns\": %.1f, "
        "\"speedup_vs_eager\": %.3f, \"eager_allocs_per_step\": %lld, "
        "\"recorded_steady_allocs_per_step\": %lld, \"plans\": %lld, "
        "\"record_steps\": %lld, \"replay_steps\": %lld, "
        "\"arena_bytes\": %lld}%s\n",
        s.threads, s.eager_ns, s.recorded_ns, s.speedup(),
        static_cast<long long>(s.eager_allocs_per_step),
        static_cast<long long>(s.recorded_steady_allocs),
        static_cast<long long>(s.plans),
        static_cast<long long>(s.record_steps),
        static_cast<long long>(s.replay_steps),
        static_cast<long long>(s.arena_bytes),
        i + 1 < step_samples.size() ? "," : "");
  }
  json += "  ],\n  \"kernels\": [\n";
  for (size_t i = 0; i < kernel_samples.size(); ++i) {
    const KernelSample& k = kernel_samples[i];
    json += StrFormat(
        "    {\"name\": \"%s\", \"variant\": \"%s\", \"threads\": %d, "
        "\"ns\": %.1f}%s\n",
        k.name.c_str(), k.variant.c_str(), k.threads, k.ns,
        i + 1 < kernel_samples.size() ? "," : "");
  }
  json += "  ]\n}\n";
  std::ofstream out(out_path);
  if (!out || !(out << json)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (check_speedup_min > 0.0) {
    bool ok = true;
    for (const StepSample& s : step_samples) {
      if (s.speedup() < check_speedup_min) {
        std::fprintf(stderr,
                     "CHECK FAILED: %d threads: recorded/eager speedup "
                     "%.2fx < %.2fx\n",
                     s.threads, s.speedup(), check_speedup_min);
        ok = false;
      }
      if (s.recorded_steady_allocs != 0) {
        std::fprintf(stderr,
                     "CHECK FAILED: %d threads: %lld tensor-node allocs per "
                     "replayed step (want 0)\n",
                     s.threads,
                     static_cast<long long>(s.recorded_steady_allocs));
        ok = false;
      }
      if (s.replay_steps <= 0) {
        std::fprintf(stderr, "CHECK FAILED: %d threads: no steps replayed\n",
                     s.threads);
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("speedup check passed (min %.2fx)\n", check_speedup_min);
  }
  return 0;
}
