// Microbenchmarks for the nn substrate's hot kernels (google-benchmark):
// dense matmul, the fused text convolution, the supervised contrastive
// loss, and a full forward+backward of the rating pipeline's building
// blocks.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/ops.h"

using namespace omnimatch;
using nn::Tensor;

namespace {

Tensor RandomTensor(std::vector<int> shape, Rng* rng, bool grad) {
  Tensor t = Tensor::Zeros(std::move(shape), grad);
  for (float& v : t.data()) v = rng->UniformFloat(-1.0f, 1.0f);
  return t;
}

void BM_MatMul(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = RandomTensor({n, n}, &rng, false);
  Tensor b = RandomTensor({n, n}, &rng, false);
  for (auto _ : state) {
    Tensor c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulBackward(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor a = RandomTensor({n, n}, &rng, true);
  Tensor b = RandomTensor({n, n}, &rng, true);
  for (auto _ : state) {
    Tensor loss = nn::MeanAll(nn::MatMul(a, b));
    loss.Backward();
    a.ZeroGrad();
    b.ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations() * 6LL * n * n * n);
}
BENCHMARK(BM_MatMulBackward)->Arg(64)->Arg(128);

void BM_TextConvMaxPool(benchmark::State& state) {
  // The OmniMatch extractor shape: batch 64, doc 64 tokens, embed 32.
  int batch = 64, length = 64, embed = 32, channels = 24;
  Rng rng(3);
  Tensor docs = RandomTensor({batch, length, embed}, &rng, false);
  Tensor w = RandomTensor({channels, 3 * embed}, &rng, false);
  Tensor b = RandomTensor({channels}, &rng, false);
  for (auto _ : state) {
    Tensor out = nn::TextConvMaxPool(docs, w, b, 3);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * batch * (length - 2) *
                          channels * 3 * embed);
}
BENCHMARK(BM_TextConvMaxPool);

void BM_TextCnnForwardBackward(benchmark::State& state) {
  int batch = 64, length = 64, embed = 32, channels = 24;
  Rng rng(4);
  nn::TextCnn cnn(embed, channels, {3, 4, 5}, &rng);
  Tensor docs = RandomTensor({batch, length, embed}, &rng, true);
  for (auto _ : state) {
    Tensor loss = nn::MeanAll(cnn.Forward(docs));
    loss.Backward();
    docs.ZeroGrad();
    cnn.ZeroGrad();
  }
}
BENCHMARK(BM_TextCnnForwardBackward);

void BM_SupConLoss(benchmark::State& state) {
  int batch = static_cast<int>(state.range(0));
  Rng rng(5);
  Tensor feats = RandomTensor({batch, 24}, &rng, true);
  std::vector<int> labels(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) labels[static_cast<size_t>(i)] = i % 5;
  for (auto _ : state) {
    Tensor loss = nn::SupConLoss(feats, labels, 0.07f);
    loss.Backward();
    feats.ZeroGrad();
  }
}
BENCHMARK(BM_SupConLoss)->Arg(64)->Arg(128);

void BM_EmbeddingGather(benchmark::State& state) {
  Rng rng(6);
  nn::EmbeddingTable table(2000, 32, &rng);
  std::vector<int> ids(64 * 64);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int>(rng.UniformU32(2000));
  }
  for (auto _ : state) {
    Tensor out = table.Forward(ids);
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_EmbeddingGather);

}  // namespace

BENCHMARK_MAIN();
