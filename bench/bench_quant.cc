// Quantized-inference harness for the int8 serving path (src/nn/quant.h +
// serve/quant_head.h): trains a model whose rating head has the production
// shapes (feature_dim 48 -> GEMMs 96x48, 192x96, 96x48, 48x5), freezes it
// into a float and a --quant ModelSnapshot of the SAME checkpoint, then
// measures:
//
//   * accuracy — RMSE of both scorers against the held-out gold ratings
//     (the Table 2 protocol on the synthetic world); the gate is the
//     DELTA between them, not the absolute value.
//   * scoring throughput — the rating head itself (feature rows -> logits,
//     the exact stage --quant swaps), float32 Mlp vs the int8 head with
//     its quantize/dequant overhead included; plus end-to-end warm-cache
//     ScoreBatch as context (shared admission/extraction caps that ratio).
//   * kernel speedup — raw int8 GemmS8NT vs float GemmNT on the head
//     shapes, per compiled ISA flavor up to the dispatched one.
//   * determinism — quant scores must be bit-identical across repeated
//     runs and thread counts (int32 accumulation + portable-TU epilogue).
//
// Writes a machine-readable BENCH_quant.json including the dispatched ISA
// and the per-node plan.
//
//   ./bench_quant [--out=BENCH_quant.json] [--smoke] [--check]
//                 [--users=200] [--epochs=2] [--reps=5]
//                 [--speedup_min=2.0] [--serving_min=1.0]
//                 [--rmse_delta_max=0.01] [--threads=N]
//
// --check self-gates: the quant snapshot must carry a planned head with
// int8 nodes, scores must be finite and deterministic, the RMSE delta must
// stay under --rmse_delta_max, the scoring-head speedup must reach
// --speedup_min (default 2.0 — the issue's acceptance bar; both sides are
// measured in the same run so the ratio is robust to a loaded host), and
// end-to-end serving must not regress (--serving_min, default 1.0:
// admission/extraction dominate it and are shared by both paths).
// The scalar-forced portable lane passes --speedup_min=0 --serving_min=0:
// scalar int8 legitimately loses to float (the win is SIMD), so only the
// accuracy/determinism gates are meaningful there.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "nn/gemm.h"
#include "nn/gemm/int8_gemm.h"
#include "nn/tensor.h"
#include "serve/scorer.h"
#include "serve/snapshot.h"

using namespace omnimatch;

namespace {

/// Head GEMM shapes for the default feature_dim=48 model, [M, K, N].
struct GemmShape {
  const char* name;
  int m, k, n;
};

/// Best-of-reps wall time of fn() in seconds.
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

struct KernelResult {
  std::string isa;
  std::string shape;
  double float_gops = 0.0;
  double int8_gops = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const bool smoke = flags.GetBool("smoke", false);
  const bool check = flags.GetBool("check", false);
  const std::string out_path = flags.GetString("out", "BENCH_quant.json");
  const int num_users = flags.GetInt("users", smoke ? 80 : 200);
  const int epochs = flags.GetInt("epochs", smoke ? 1 : 2);
  const int reps = flags.GetInt("reps", smoke ? 3 : 5);
  const double speedup_min = flags.GetDouble("speedup_min", 2.0);
  const double serving_min = flags.GetDouble("serving_min", 1.0);
  const double rmse_delta_max = flags.GetDouble("rmse_delta_max", 0.01);
  ApplyThreadsFlag(flags);

  std::printf("bench_quant: detected ISA %s, active %s, best compiled %s\n",
              IsaName(DetectedIsa()), IsaName(ActiveIsa()),
              IsaName(nn::int8gemm::BestCompiledIsa()));

  // --- World + training: tiny extractors, PRODUCTION head shapes --------
  // feature_dim stays at the paper's 48 so the quantized GEMMs are the
  // real serving shapes; the text extractors shrink so training fits a CI
  // budget.
  data::SyntheticConfig world_config;
  world_config.num_users = num_users;
  world_config.items_per_domain = num_users / 2;
  world_config.mean_reviews_per_user = 5;
  world_config.seed = 17;
  data::SyntheticWorld world(world_config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(18);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  core::OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 48;
  config.projection_dim = 16;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = epochs;
  config.select_best_epoch = false;
  config.seed = 19;

  core::OmniMatchTrainer trainer(config, &cross, split);
  if (!trainer.Prepare().ok()) {
    std::fprintf(stderr, "bench_quant: Prepare failed\n");
    return 1;
  }
  trainer.Train();
  const std::string ckpt = out_path + ".ckpt.omck";
  if (!trainer.SaveCheckpoint(ckpt).ok()) {
    std::fprintf(stderr, "bench_quant: SaveCheckpoint failed\n");
    return 1;
  }

  // --- Float and quantized snapshots of the same checkpoint -------------
  Result<std::shared_ptr<const serve::ModelSnapshot>> float_loaded =
      serve::ModelSnapshot::Load(config, &cross, split, ckpt);
  if (!float_loaded.ok()) {
    std::fprintf(stderr, "bench_quant: float snapshot load failed: %s\n",
                 float_loaded.status().ToString().c_str());
    return 1;
  }
  serve::ModelSnapshot::Options quant_options;
  quant_options.quantize = true;
  Result<std::shared_ptr<const serve::ModelSnapshot>> quant_loaded =
      serve::ModelSnapshot::Load(config, &cross, split, ckpt, quant_options);
  if (!quant_loaded.ok()) {
    std::fprintf(stderr, "bench_quant: quant snapshot load failed: %s\n",
                 quant_loaded.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const serve::ModelSnapshot> float_snap =
      float_loaded.value();
  std::shared_ptr<const serve::ModelSnapshot> quant_snap =
      quant_loaded.value();
  const serve::QuantizedRatingHead* head = quant_snap->quant_head();
  if (head == nullptr) {
    std::fprintf(stderr, "bench_quant: quant snapshot carries no head\n");
    return 1;
  }
  std::printf("bench_quant: %s\n", head->plan().ToString().c_str());

  // --- Eval pairs: every held-out (user, item, gold) in the target ------
  struct EvalPair {
    int user, item;
    float gold;
  };
  std::vector<EvalPair> pairs;
  for (int u : split.test_users) {
    for (int idx : cross.target().RecordsOfUser(u)) {
      const size_t i = static_cast<size_t>(idx);
      pairs.push_back({u, cross.target().ReviewItem(i),
                       cross.target().ReviewRating(i)});
    }
  }
  if (pairs.empty()) {
    std::fprintf(stderr, "bench_quant: no eval pairs\n");
    return 1;
  }
  std::vector<serve::ScoreRequest> requests;
  requests.reserve(pairs.size());
  for (const EvalPair& p : pairs) requests.push_back({p.user, p.item});

  // --- Accuracy: RMSE vs gold, float vs quant ---------------------------
  serve::Scorer float_scorer(float_snap, pairs.size() + 16);
  serve::Scorer quant_scorer(quant_snap, pairs.size() + 16);
  std::vector<float> float_scores = float_scorer.ScoreBatch(requests);
  std::vector<float> quant_scores = quant_scorer.ScoreBatch(requests);
  bool all_finite = true;
  double sq_f = 0.0, sq_q = 0.0, max_pair_diff = 0.0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (!std::isfinite(quant_scores[i])) all_finite = false;
    sq_f += static_cast<double>(float_scores[i] - pairs[i].gold) *
            (float_scores[i] - pairs[i].gold);
    sq_q += static_cast<double>(quant_scores[i] - pairs[i].gold) *
            (quant_scores[i] - pairs[i].gold);
    max_pair_diff =
        std::max(max_pair_diff,
                 std::fabs(static_cast<double>(quant_scores[i]) -
                           float_scores[i]));
  }
  const double rmse_float = std::sqrt(sq_f / pairs.size());
  const double rmse_quant = std::sqrt(sq_q / pairs.size());
  const double rmse_delta = std::fabs(rmse_quant - rmse_float);
  std::printf(
      "accuracy: rmse float %.4f, quant %.4f, delta %.5f, "
      "max pair diff %.4f over %zu pairs\n",
      rmse_float, rmse_quant, rmse_delta, max_pair_diff, pairs.size());

  // --- Determinism: repeat + thread-count invariance --------------------
  std::vector<float> quant_again = quant_scorer.ScoreBatch(requests);
  bool deterministic = quant_again == quant_scores;
  {
    const int before = GetNumThreads();
    SetNumThreads(1);
    serve::Scorer serial_scorer(quant_snap, pairs.size() + 16);
    std::vector<float> serial = serial_scorer.ScoreBatch(requests);
    SetNumThreads(before);
    if (serial != quant_scores) deterministic = false;
  }

  // --- Scoring throughput: the rating head, single-thread ---------------
  // This is the path --quant swaps out: feature rows in, 5-class logits
  // out, float32 Mlp vs the int8 head (whose time INCLUDES activation
  // quantization and the dequant epilogue). Feature content doesn't affect
  // timing, so rows are synthetic at calibration-realistic magnitudes.
  const int before_threads = GetNumThreads();
  SetNumThreads(1);
  const int head_rows = smoke ? 256 : 512;
  const int user_width = head->user_width();
  const int item_width = head->item_width();
  std::vector<float> head_user(
      static_cast<size_t>(head_rows) * user_width);
  std::vector<float> head_item(
      static_cast<size_t>(head_rows) * item_width);
  Rng head_rng(21);
  for (float& v : head_user) v = head_rng.UniformFloat(-1.0f, 1.0f);
  for (float& v : head_item) v = head_rng.UniformFloat(-1.0f, 1.0f);
  core::OmniMatchModel* model = quant_snap->model();
  const int head_inner = smoke ? 10 : 30;
  const double head_float_s = TimeBest(reps, [&] {
    for (int i = 0; i < head_inner; ++i) {
      nn::Tensor u = nn::Tensor::FromData({head_rows, user_width},
                                          std::vector<float>(head_user));
      nn::Tensor it = nn::Tensor::FromData({head_rows, item_width},
                                           std::vector<float>(head_item));
      nn::Tensor logits = model->RatingLogits(u, it);
      (void)logits;
    }
  });
  std::vector<float> head_logits;
  const double head_quant_s = TimeBest(reps, [&] {
    for (int i = 0; i < head_inner; ++i) {
      head->RatingLogits(head_user.data(), head_item.data(), head_rows,
                         &head_logits);
    }
  });
  const double head_total = static_cast<double>(head_rows) * head_inner;
  const double head_float_qps = head_total / head_float_s;
  const double head_quant_qps = head_total / head_quant_s;
  const double head_speedup = head_float_s / head_quant_s;
  std::printf(
      "scoring head (1 thread): float %.0f rows/s, int8 %.0f rows/s, "
      "speedup %.2fx\n",
      head_float_qps, head_quant_qps, head_speedup);

  // --- End-to-end serving: single-thread, warm cache --------------------
  // Context, not the gate: admission, extractor, and cache costs are
  // shared by both paths, so Amdahl caps the end-to-end ratio well below
  // the head speedup.
  const double float_s = TimeBest(
      reps, [&] { float_scorer.ScoreBatch(requests); });
  const double quant_s = TimeBest(
      reps, [&] { quant_scorer.ScoreBatch(requests); });
  const double float_qps = pairs.size() / float_s;
  const double quant_qps = pairs.size() / quant_s;
  const double serving_speedup = float_s / quant_s;
  std::printf(
      "serving e2e (1 thread, warm): float %.0f scores/s, quant %.0f "
      "scores/s, speedup %.2fx\n",
      float_qps, quant_qps, serving_speedup);

  // --- Kernel microbench: head shapes, per runnable ISA -----------------
  // Single-threaded: GemmNT shards internally via ParallelFor while the raw
  // int8 kernels are per-call serial, so thread count 1 is the only
  // apples-to-apples comparison.
  SetNumThreads(1);
  const GemmShape shapes[] = {
      {"mlp0_192x96", 256, 192, 96},
      {"mlp1_96x48", 256, 96, 48},
      {"inter_96x48", 256, 96, 48},
  };
  std::vector<KernelResult> kernels;
  Rng krng(20);
  for (const GemmShape& s : shapes) {
    std::vector<float> fa(static_cast<size_t>(s.m) * s.k);
    std::vector<float> fb(static_cast<size_t>(s.n) * s.k);
    for (float& v : fa) v = krng.UniformFloat(-1.0f, 1.0f);
    for (float& v : fb) v = krng.UniformFloat(-1.0f, 1.0f);
    std::vector<float> fc(static_cast<size_t>(s.m) * s.n, 0.0f);
    std::vector<int8_t> qa(fa.size()), qb(fb.size());
    for (size_t i = 0; i < qa.size(); ++i) {
      qa[i] = static_cast<int8_t>(krng.UniformInt(-127, 127));
    }
    for (size_t i = 0; i < qb.size(); ++i) {
      qb[i] = static_cast<int8_t>(krng.UniformInt(-127, 127));
    }
    std::vector<int32_t> qc(fc.size(), 0);
    const double ops = 2.0 * s.m * s.k * s.n;
    const int inner = smoke ? 20 : 100;
    const double float_t = TimeBest(reps, [&] {
      for (int i = 0; i < inner; ++i) {
        std::fill(fc.begin(), fc.end(), 0.0f);
        nn::GemmNT(fa.data(), fb.data(), fc.data(), s.m, s.k, s.n);
      }
    });
    std::vector<nn::int8gemm::Int8GemmNTFn> benched;
    for (IsaLevel level :
         {IsaLevel::kScalar, IsaLevel::kNeon, IsaLevel::kAvx2,
          IsaLevel::kAvx512}) {
      if (static_cast<int>(level) > static_cast<int>(ActiveIsa())) continue;
      if (level != IsaLevel::kScalar &&
          static_cast<int>(level) >
              static_cast<int>(nn::int8gemm::BestCompiledIsa())) {
        continue;
      }
      nn::int8gemm::Int8GemmNTFn fn = nn::int8gemm::SelectKernel(level);
      // SelectKernel clamps to the flavors actually compiled in (e.g.
      // kNeon resolves to scalar on x86); don't re-time a kernel under a
      // second name.
      if (std::find(benched.begin(), benched.end(), fn) != benched.end()) {
        continue;
      }
      benched.push_back(fn);
      const double int8_t_s = TimeBest(reps, [&] {
        for (int i = 0; i < inner; ++i) {
          fn(qa.data(), qb.data(), qc.data(), s.m, s.k, s.n);
        }
      });
      KernelResult r;
      r.isa = IsaName(level);
      r.shape = s.name;
      r.float_gops = ops * inner / float_t / 1e9;
      r.int8_gops = ops * inner / int8_t_s / 1e9;
      r.speedup = float_t / int8_t_s;
      kernels.push_back(r);
      std::printf("kernel %-14s %-7s float %7.2f GOP/s  int8 %7.2f GOP/s  "
                  "%.2fx\n",
                  s.name, r.isa.c_str(), r.float_gops, r.int8_gops,
                  r.speedup);
    }
  }
  SetNumThreads(before_threads);

  // --- JSON --------------------------------------------------------------
  {
    std::ofstream out(out_path);
    out << "{\n";
    out << StrFormat("  \"isa_detected\": \"%s\",\n", IsaName(DetectedIsa()));
    out << StrFormat("  \"isa_active\": \"%s\",\n", IsaName(ActiveIsa()));
    out << StrFormat("  \"isa_best_compiled\": \"%s\",\n",
                     IsaName(nn::int8gemm::BestCompiledIsa()));
    out << StrFormat("  \"plan\": \"%s\",\n",
                     head->plan().ToString().c_str());
    out << StrFormat("  \"int8_nodes\": %d,\n", head->plan().Int8Nodes());
    out << StrFormat("  \"eval_pairs\": %zu,\n", pairs.size());
    out << StrFormat("  \"rmse_float\": %.6f,\n", rmse_float);
    out << StrFormat("  \"rmse_quant\": %.6f,\n", rmse_quant);
    out << StrFormat("  \"rmse_delta\": %.6f,\n", rmse_delta);
    out << StrFormat("  \"max_pair_diff\": %.6f,\n", max_pair_diff);
    out << StrFormat("  \"deterministic\": %s,\n",
                     deterministic ? "true" : "false");
    out << StrFormat("  \"head_float_rows_per_s\": %.1f,\n", head_float_qps);
    out << StrFormat("  \"head_quant_rows_per_s\": %.1f,\n", head_quant_qps);
    out << StrFormat("  \"head_speedup_1t\": %.3f,\n", head_speedup);
    out << StrFormat("  \"serving_float_scores_per_s\": %.1f,\n", float_qps);
    out << StrFormat("  \"serving_quant_scores_per_s\": %.1f,\n", quant_qps);
    out << StrFormat("  \"serving_speedup_1t\": %.3f,\n", serving_speedup);
    out << "  \"kernels\": [\n";
    for (size_t i = 0; i < kernels.size(); ++i) {
      out << StrFormat(
          "    {\"shape\": \"%s\", \"isa\": \"%s\", \"float_gops\": %.2f, "
          "\"int8_gops\": %.2f, \"speedup\": %.3f}%s\n",
          kernels[i].shape.c_str(), kernels[i].isa.c_str(),
          kernels[i].float_gops, kernels[i].int8_gops, kernels[i].speedup,
          i + 1 < kernels.size() ? "," : "");
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::remove(ckpt.c_str());

  // --- Gates --------------------------------------------------------------
  if (check) {
    bool ok = true;
    auto fail = [&](const std::string& why) {
      std::fprintf(stderr, "bench_quant check FAILED: %s\n", why.c_str());
      ok = false;
    };
    if (head->plan().Int8Nodes() < 1) {
      fail("plan contains no int8 nodes — quantization never engaged");
    }
    if (!all_finite) fail("non-finite quantized score");
    if (!deterministic) {
      fail("quant scores not bit-identical across runs/thread counts");
    }
    if (rmse_delta >= rmse_delta_max) {
      fail(StrFormat("rmse delta %.5f exceeds budget %.5f", rmse_delta,
                     rmse_delta_max));
    }
    if (head_speedup < speedup_min) {
      fail(StrFormat("scoring-head speedup %.3fx below floor %.3fx",
                     head_speedup, speedup_min));
    }
    if (serving_speedup < serving_min) {
      fail(StrFormat("end-to-end serving regressed under --quant: %.3fx "
                     "(floor %.3fx)",
                     serving_speedup, serving_min));
    }
    if (!ok) return 1;
    std::printf("quant check passed\n");
  }
  return 0;
}
