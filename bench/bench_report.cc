// Benchmark-trajectory harness: times the hot kernel suite (GEMM family,
// fused text convolution, SupCon loss, embedding gather) with the blocked
// thread-pool substrate at several pool sizes, compares against the naive
// reference kernels and the recorded seed-commit numbers, verifies that
// results are bit-identical across thread counts, and writes a
// machine-readable BENCH_nn_ops.json.
//
//   ./bench_report [--out=BENCH_nn_ops.json] [--reps=5] [--max-threads=4]
//                  [--metrics_out=BENCH_metrics.jsonl]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/threadpool.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "nn/gemm.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/ops.h"
#include "obs/metrics.h"

using namespace omnimatch;
using bench::KernelSample;
using nn::Tensor;

namespace {

/// Seed-commit google-benchmark measurements (Release, -march=native) of
/// the same shapes, taken before the blocked substrate existed. They anchor
/// the "trajectory" column in the JSON.
constexpr double kSeedMatMul64 = 32478;
constexpr double kSeedMatMul128 = 251199;
constexpr double kSeedMatMul256 = 1462636;
constexpr double kSeedMatMulBwd64 = 218566;
constexpr double kSeedMatMulBwd128 = 2394308;
constexpr double kSeedTextConv = 6846408;
constexpr double kSeedTextCnnFwdBwd = 31077343;
constexpr double kSeedSupCon64 = 117654;
constexpr double kSeedSupCon128 = 459406;
constexpr double kSeedGather = 54492;

int g_reps = 5;

/// Best-of-reps nanoseconds per call. Each rep runs the function enough
/// times to cover ~20 ms so the timer resolution never dominates.
double BenchNs(const std::function<void()>& fn) {
  Stopwatch warm;
  fn();
  double once = std::max(warm.ElapsedSeconds(), 1e-9);
  int iters = std::max(1, static_cast<int>(0.02 / once));
  double best = 1e300;
  for (int rep = 0; rep < g_reps; ++rep) {
    Stopwatch watch;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.ElapsedSeconds() / iters);
  }
  return best * 1e9;
}

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->UniformFloat(-1.0f, 1.0f);
  return v;
}

Tensor RandomTensor(std::vector<int> shape, Rng* rng, bool grad) {
  Tensor t = Tensor::Zeros(std::move(shape), grad);
  for (float& v : t.data()) v = rng->UniformFloat(-1.0f, 1.0f);
  return t;
}

bool g_determinism_ok = true;

/// Runs `fn` (which fills `out`) at every pool size and asserts the output
/// bytes never change; the substrate's central guarantee.
void CheckThreadInvariance(const std::string& name,
                           const std::vector<int>& thread_counts,
                           std::vector<float>* out,
                           const std::function<void()>& fn) {
  std::vector<float> golden;
  for (int t : thread_counts) {
    SetNumThreads(t);
    std::fill(out->begin(), out->end(), 0.0f);
    fn();
    if (t == thread_counts.front()) {
      golden = *out;
    } else if (golden != *out) {
      std::fprintf(stderr, "FAIL: %s differs between %d and %d threads\n",
                   name.c_str(), thread_counts.front(), t);
      g_determinism_ok = false;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  g_reps = flags.GetInt("reps", 5);
  std::string out_path = flags.GetString("out", "BENCH_nn_ops.json");
  int max_threads = flags.GetInt("max-threads", 4);
  std::vector<int> thread_counts = {1};
  for (int t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  std::vector<KernelSample> samples;
  Rng rng(1);

  // --- GEMM family: reference vs blocked, square shapes ---
  struct MatShape {
    int n;
    double seed_ns;
  };
  for (MatShape shape : std::vector<MatShape>{{64, kSeedMatMul64},
                                              {128, kSeedMatMul128},
                                              {256, kSeedMatMul256}}) {
    int n = shape.n;
    std::vector<float> a = RandomVec(static_cast<size_t>(n) * n, &rng);
    std::vector<float> b = RandomVec(static_cast<size_t>(n) * n, &rng);
    std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
    std::string name = "MatMul/" + std::to_string(n);

    SetNumThreads(1);
    samples.push_back({name, "reference", 1,
                       BenchNs([&] {
                         std::fill(c.begin(), c.end(), 0.0f);
                         nn::reference::GemmNN(a.data(), b.data(), c.data(), n,
                                               n, n);
                       }),
                       shape.seed_ns});
    CheckThreadInvariance(name, thread_counts, &c, [&] {
      nn::GemmNN(a.data(), b.data(), c.data(), n, n, n);
    });
    for (int t : thread_counts) {
      SetNumThreads(t);
      samples.push_back({name, "blocked", t,
                         BenchNs([&] {
                           std::fill(c.begin(), c.end(), 0.0f);
                           nn::GemmNN(a.data(), b.data(), c.data(), n, n, n);
                         }),
                         shape.seed_ns});
    }
  }

  // --- Autograd pipelines at each pool size ---
  struct PipelineCase {
    std::string name;
    double seed_ns;
    std::function<void()> fn;
  };

  Rng rng_bwd(2);
  Tensor ma = RandomTensor({128, 128}, &rng_bwd, true);
  Tensor mb = RandomTensor({128, 128}, &rng_bwd, true);
  auto matmul_bwd = [&] {
    Tensor loss = nn::MeanAll(nn::MatMul(ma, mb));
    loss.Backward();
    ma.ZeroGrad();
    mb.ZeroGrad();
  };

  int batch = 64, length = 64, embed = 32, channels = 24;
  Rng rng_conv(3);
  Tensor docs = RandomTensor({batch, length, embed}, &rng_conv, false);
  Tensor w = RandomTensor({channels, 3 * embed}, &rng_conv, false);
  Tensor bias = RandomTensor({channels}, &rng_conv, false);
  auto conv_fwd = [&] {
    Tensor out = nn::TextConvMaxPool(docs, w, bias, 3);
  };

  Rng rng_cnn(4);
  nn::TextCnn cnn(embed, channels, {3, 4, 5}, &rng_cnn);
  Tensor cnn_docs = RandomTensor({batch, length, embed}, &rng_cnn, true);
  auto cnn_fwd_bwd = [&] {
    Tensor loss = nn::MeanAll(cnn.Forward(cnn_docs));
    loss.Backward();
    cnn_docs.ZeroGrad();
    cnn.ZeroGrad();
  };

  Rng rng_scl(5);
  Tensor feats = RandomTensor({128, 24}, &rng_scl, true);
  std::vector<int> labels(128);
  for (int i = 0; i < 128; ++i) labels[static_cast<size_t>(i)] = i % 5;
  auto supcon = [&] {
    Tensor loss = nn::SupConLoss(feats, labels, 0.07f);
    loss.Backward();
    feats.ZeroGrad();
  };

  Rng rng_gather(6);
  nn::EmbeddingTable table(2000, 32, &rng_gather);
  std::vector<int> ids(64 * 64);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int>(rng_gather.UniformU32(2000));
  }
  auto gather = [&] {
    Tensor out = table.Forward(ids);
  };

  std::vector<PipelineCase> pipelines;
  pipelines.push_back({"MatMulBackward/128", kSeedMatMulBwd128, matmul_bwd});
  pipelines.push_back({"TextConvMaxPool", kSeedTextConv, conv_fwd});
  pipelines.push_back(
      {"TextCnnForwardBackward", kSeedTextCnnFwdBwd, cnn_fwd_bwd});
  pipelines.push_back({"SupConLoss/128", kSeedSupCon128, supcon});
  pipelines.push_back({"EmbeddingGather", kSeedGather, gather});

  for (const PipelineCase& pc : pipelines) {
    for (int t : thread_counts) {
      SetNumThreads(t);
      samples.push_back({pc.name, "blocked", t, BenchNs(pc.fn), pc.seed_ns});
    }
  }

  // Thread-invariance of a full forward+backward: compare input gradients.
  {
    std::vector<float> grads(cnn_docs.numel());
    CheckThreadInvariance("TextCnnForwardBackward/grad", thread_counts,
                          &grads, [&] {
                            Tensor loss = nn::MeanAll(cnn.Forward(cnn_docs));
                            loss.Backward();
                            grads = cnn_docs.grad();
                            cnn_docs.ZeroGrad();
                            cnn.ZeroGrad();
                          });
  }

  // --- Self-healing guard overhead: full training steps with the guard
  // observing every step vs disabled. The guard's per-step cost is one
  // parameter health scan plus the EMA bookkeeping; the acceptance budget
  // is <5% of step time.
  {
    data::SyntheticConfig world_config;
    world_config.num_users = 120;
    world_config.items_per_domain = 60;
    world_config.mean_reviews_per_user = 5;
    world_config.seed = 11;
    data::SyntheticWorld world(world_config);
    data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
    Rng split_rng(12);
    data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

    core::OmniMatchConfig config;
    config.embed_dim = 16;
    config.cnn_channels = 8;
    config.kernel_sizes = {2, 3};
    config.feature_dim = 16;
    config.projection_dim = 8;
    config.doc_len = 32;
    config.item_doc_len = 32;
    config.batch_size = 16;
    config.epochs = 2;
    config.select_best_epoch = false;
    config.seed = 13;

    // Reps are interleaved (off, on, off, on, ...) so clock-speed or load
    // drift during the benchmark hits both variants equally instead of
    // biasing whichever ran second.
    double guard_ns[2] = {1e300, 1e300};
    for (int rep = 0; rep < g_reps; ++rep) {
      for (int guarded = 0; guarded <= 1; ++guarded) {
        config.guard_enabled = guarded == 1;
        core::OmniMatchTrainer trainer(config, &cross, split);
        if (!trainer.Prepare().ok()) {
          std::fprintf(stderr, "TrainerStep: Prepare failed\n");
          return 1;
        }
        core::TrainStats stats = trainer.Train();
        if (stats.steps > 0) {
          guard_ns[guarded] = std::min(
              guard_ns[guarded], stats.train_seconds / stats.steps * 1e9);
        }
      }
    }
    for (int guarded = 0; guarded <= 1; ++guarded) {
      samples.push_back({"TrainerStep",
                         guarded == 1 ? "guard_on" : "guard_off",
                         GetNumThreads(), guard_ns[guarded], 0.0});
    }
    std::printf("guard overhead: %.2f%% per training step\n",
                (guard_ns[1] / guard_ns[0] - 1.0) * 100.0);

    // --- Observability overhead: identical training runs with the metrics
    // clock reads off vs on, interleaved like the guard pair so drift hits
    // both variants equally. The acceptance budget is <2% of step time with
    // no sink attached; the metrics_on number bounds the cost of attaching
    // one.
    config.guard_enabled = true;
    double metrics_ns[2] = {1e300, 1e300};
    for (int rep = 0; rep < g_reps; ++rep) {
      for (int on = 0; on <= 1; ++on) {
        obs::EnableMetrics(on == 1);
        core::OmniMatchTrainer trainer(config, &cross, split);
        if (!trainer.Prepare().ok()) {
          std::fprintf(stderr, "TrainerStep: Prepare failed\n");
          return 1;
        }
        core::TrainStats stats = trainer.Train();
        if (stats.steps > 0) {
          metrics_ns[on] = std::min(
              metrics_ns[on], stats.train_seconds / stats.steps * 1e9);
        }
      }
    }
    obs::EnableMetrics(false);
    for (int on = 0; on <= 1; ++on) {
      samples.push_back({"TrainerStep",
                         on == 1 ? "metrics_on" : "metrics_off",
                         GetNumThreads(), metrics_ns[on], 0.0});
    }
    std::printf("metrics overhead: %.2f%% per training step\n",
                (metrics_ns[1] / metrics_ns[0] - 1.0) * 100.0);
  }

  SetNumThreads(1);

  std::printf("%-28s %-10s %8s %14s %10s\n", "kernel", "variant", "threads",
              "ns/call", "vs-seed");
  for (const KernelSample& s : samples) {
    std::printf("%-28s %-10s %8d %14.0f %9.2fx\n", s.name.c_str(),
                s.variant.c_str(), s.threads, s.ns,
                s.seed_ns > 0 ? s.seed_ns / s.ns : 0.0);
  }

  if (!bench::WriteBenchJson(out_path, samples)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), samples.size());

  // Snapshot of everything the always-on counters and the metrics_on
  // training runs accumulated (GEMM calls/flops, pool jobs/chunks, trainer
  // phase histograms) — the machine-readable companion to the table above.
  std::string metrics_path =
      flags.GetString("metrics_out", "BENCH_metrics.jsonl");
  if (!obs::MetricsRegistry::Global().WriteJsonLines(metrics_path)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    return 1;
  }
  std::printf("wrote metrics snapshot %s\n", metrics_path.c_str());
  if (!g_determinism_ok) {
    std::fprintf(stderr, "determinism check FAILED\n");
    return 1;
  }
  return 0;
}
