// Online-serving load harness for the inference runtime (src/serve/):
// trains a small model on a synthetic world, freezes it into a
// ModelSnapshot, then drives the InferenceServer two ways and reports
// end-to-end request latency percentiles plus throughput:
//
//   * closed loop — N client threads each submit their next request the
//     moment the previous one returns; measures peak sustainable QPS and
//     the latency the coalescing adds under saturation.
//   * open loop — one dispatcher paces ScoreAsync calls at a target
//     arrival rate; queue wait is charged to the request, so coordinated
//     omission does not hide linger/batching delays.
//
// Percentiles come from the serve.request_ns histogram (geometric buckets,
// ~10% resolution). Writes a machine-readable BENCH_serve.json.
//
//   ./bench_serve [--out=BENCH_serve.json] [--smoke] [--check]
//                 [--users=200] [--epochs=2] [--clients=4]
//                 [--requests=4000] [--qps=2000] [--max_batch=32]
//                 [--linger_us=200] [--cache_capacity=4096]
//
// --check turns the run into a self-gating smoke test: the process fails
// unless every request resolved to a finite score, the histogram saw every
// request, and the percentiles are ordered.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/snapshot.h"

using namespace omnimatch;

namespace {

struct PhaseResult {
  std::string name;
  int clients = 0;        // closed loop only
  double target_qps = 0;  // open loop only
  int64_t requests = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  int64_t batches = 0;
  double mean_batch = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  bool all_finite = true;
};

obs::Histogram* RequestHistogram() {
  return obs::MetricsRegistry::Global().GetHistogram(
      "serve.request_ns", obs::Histogram::LatencyBoundsNs());
}

/// Fills the percentile/throughput fields common to both phases.
void FinishPhase(PhaseResult* phase, const serve::InferenceServer& server,
                 int64_t batches_before, int64_t cache_hits_before,
                 int64_t cache_misses_before,
                 const std::vector<float>& scores) {
  obs::Histogram* h = RequestHistogram();
  phase->requests = h->Count();
  phase->qps = phase->wall_s > 0 ? static_cast<double>(scores.size()) /
                                       phase->wall_s
                                 : 0.0;
  phase->p50_us = obs::HistogramQuantile(*h, 0.5) / 1e3;
  phase->p99_us = obs::HistogramQuantile(*h, 0.99) / 1e3;
  phase->p999_us = obs::HistogramQuantile(*h, 0.999) / 1e3;
  phase->batches = server.batches_dispatched() - batches_before;
  phase->mean_batch =
      phase->batches > 0
          ? static_cast<double>(scores.size()) / phase->batches
          : 0.0;
  phase->cache_hits = server.scorer().cache().hits() - cache_hits_before;
  phase->cache_misses = server.scorer().cache().misses() - cache_misses_before;
  for (float s : scores) {
    if (!std::isfinite(s)) phase->all_finite = false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const bool smoke = flags.GetBool("smoke", false);
  const bool check = flags.GetBool("check", false);
  std::string out_path = flags.GetString("out", "BENCH_serve.json");
  const int num_users = flags.GetInt("users", smoke ? 60 : 200);
  const int epochs = flags.GetInt("epochs", smoke ? 1 : 2);
  const int clients = flags.GetInt("clients", smoke ? 2 : 4);
  const int requests = flags.GetInt("requests", smoke ? 300 : 4000);
  const double target_qps = flags.GetDouble("qps", smoke ? 500.0 : 2000.0);
  serve::InferenceServer::Options options;
  options.max_batch = flags.GetInt("max_batch", 32);
  options.linger_us = flags.GetInt("linger_us", 200);
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache_capacity", 4096));

  // --- Train a small model and freeze it into a snapshot ---
  data::SyntheticConfig world_config;
  world_config.num_users = num_users;
  world_config.items_per_domain = num_users / 2;
  world_config.mean_reviews_per_user = 5;
  world_config.seed = 11;
  data::SyntheticWorld world(world_config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(12);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  core::OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = epochs;
  config.select_best_epoch = false;
  config.seed = 13;

  core::OmniMatchTrainer trainer(config, &cross, split);
  if (!trainer.Prepare().ok()) {
    std::fprintf(stderr, "bench_serve: Prepare failed\n");
    return 1;
  }
  trainer.Train();
  const std::string ckpt_path = out_path + ".ckpt.omck";
  if (!trainer.SaveCheckpoint(ckpt_path).ok()) {
    std::fprintf(stderr, "bench_serve: SaveCheckpoint failed\n");
    return 1;
  }
  Result<std::shared_ptr<const serve::ModelSnapshot>> snapshot =
      serve::ModelSnapshot::Load(config, &cross, split, ckpt_path);
  std::remove(ckpt_path.c_str());
  if (!snapshot.ok()) {
    std::fprintf(stderr, "bench_serve: snapshot load failed: %s\n",
                 snapshot.status().message().c_str());
    return 1;
  }
  std::shared_ptr<const serve::ModelSnapshot> snap =
      std::move(snapshot).value();

  // --- Request mix: every split user against random target items ---
  std::vector<int> req_users = split.train_users;
  req_users.insert(req_users.end(), split.validation_users.begin(),
                   split.validation_users.end());
  req_users.insert(req_users.end(), split.test_users.begin(),
                   split.test_users.end());
  const std::vector<int>& items = cross.target().items();
  if (req_users.empty() || items.empty()) {
    std::fprintf(stderr, "bench_serve: empty request pool\n");
    return 1;
  }
  Rng mix_rng(99);
  std::vector<std::pair<int, int>> pool(static_cast<size_t>(requests));
  for (auto& [user, item] : pool) {
    user = req_users[mix_rng.UniformU32(
        static_cast<uint32_t>(req_users.size()))];
    item = items[mix_rng.UniformU32(static_cast<uint32_t>(items.size()))];
  }

  serve::InferenceServer server(snap, options);
  obs::EnableMetrics(true);
  std::vector<PhaseResult> phases;

  // --- Closed loop: `clients` threads, back-to-back blocking requests ---
  {
    obs::MetricsRegistry::Global().ResetAll();
    int64_t batches0 = server.batches_dispatched();
    int64_t hits0 = server.scorer().cache().hits();
    int64_t misses0 = server.scorer().cache().misses();
    std::vector<float> scores(pool.size(), 0.0f);
    std::atomic<size_t> next{0};
    Stopwatch watch;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < pool.size();
             i = next.fetch_add(1)) {
          scores[i] = server.Score(pool[i].first, pool[i].second);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    PhaseResult phase;
    phase.name = "closed_loop";
    phase.clients = clients;
    phase.wall_s = watch.ElapsedSeconds();
    FinishPhase(&phase, server, batches0, hits0, misses0, scores);
    phases.push_back(phase);
  }

  // --- Open loop: paced arrivals at the target rate ---
  {
    obs::MetricsRegistry::Global().ResetAll();
    int64_t batches0 = server.batches_dispatched();
    int64_t hits0 = server.scorer().cache().hits();
    int64_t misses0 = server.scorer().cache().misses();
    std::vector<std::future<float>> futures;
    futures.reserve(pool.size());
    const auto start = std::chrono::steady_clock::now();
    const auto gap = std::chrono::nanoseconds(
        static_cast<int64_t>(1e9 / std::max(1.0, target_qps)));
    Stopwatch watch;
    for (size_t i = 0; i < pool.size(); ++i) {
      // Scheduled arrival; if the dispatcher falls behind it submits
      // immediately and the achieved QPS reflects it.
      std::this_thread::sleep_until(start + gap * i);
      futures.push_back(server.ScoreAsync(pool[i].first, pool[i].second));
    }
    std::vector<float> scores;
    scores.reserve(futures.size());
    for (std::future<float>& f : futures) scores.push_back(f.get());
    PhaseResult phase;
    phase.name = "open_loop";
    phase.target_qps = target_qps;
    phase.wall_s = watch.ElapsedSeconds();
    FinishPhase(&phase, server, batches0, hits0, misses0, scores);
    phases.push_back(phase);
  }
  server.Shutdown();
  obs::EnableMetrics(false);

  // --- Report ---
  std::printf("%-12s %9s %9s %10s %10s %10s %8s %10s %12s\n", "phase",
              "requests", "qps", "p50_us", "p99_us", "p999_us", "batches",
              "mean_batch", "cache_hits");
  for (const PhaseResult& p : phases) {
    std::printf("%-12s %9lld %9.0f %10.1f %10.1f %10.1f %8lld %10.2f %12lld\n",
                p.name.c_str(), static_cast<long long>(p.requests), p.qps,
                p.p50_us, p.p99_us, p.p999_us,
                static_cast<long long>(p.batches), p.mean_batch,
                static_cast<long long>(p.cache_hits));
  }

  std::string json = "{\n  \"schema\": \"omnimatch-bench-serve-v1\",\n";
  json += StrFormat(
      "  \"snapshot\": {\"users\": %d, \"vocab\": %d, "
      "\"version\": \"%016llx\"},\n",
      num_users, static_cast<int>(snap->vocabulary().size()),
      static_cast<unsigned long long>(snap->version()));
  json += StrFormat(
      "  \"options\": {\"max_batch\": %d, \"linger_us\": %lld, "
      "\"cache_capacity\": %lld},\n",
      options.max_batch, static_cast<long long>(options.linger_us),
      static_cast<long long>(options.cache_capacity));
  json += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    json += StrFormat(
        "    {\"name\": \"%s\", \"clients\": %d, \"target_qps\": %.0f, "
        "\"requests\": %lld, \"wall_s\": %.3f, \"qps\": %.1f, "
        "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
        "\"batches\": %lld, \"mean_batch\": %.2f, "
        "\"cache_hits\": %lld, \"cache_misses\": %lld}%s\n",
        p.name.c_str(), p.clients, p.target_qps,
        static_cast<long long>(p.requests), p.wall_s, p.qps, p.p50_us,
        p.p99_us, p.p999_us, static_cast<long long>(p.batches), p.mean_batch,
        static_cast<long long>(p.cache_hits),
        static_cast<long long>(p.cache_misses),
        i + 1 < phases.size() ? "," : "");
  }
  json += "  ]\n}\n";
  std::ofstream out(out_path);
  if (!out || !(out << json)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    bool ok = true;
    for (const PhaseResult& p : phases) {
      if (p.requests != static_cast<int64_t>(pool.size())) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s: histogram saw %lld of %lld requests\n",
                     p.name.c_str(), static_cast<long long>(p.requests),
                     static_cast<long long>(pool.size()));
        ok = false;
      }
      if (!p.all_finite) {
        std::fprintf(stderr, "CHECK FAILED: %s: non-finite score returned\n",
                     p.name.c_str());
        ok = false;
      }
      if (!(p.p50_us > 0.0) || p.p50_us > p.p99_us + 1e-9 ||
          p.p99_us > p.p999_us + 1e-9) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s: percentiles not ordered "
                     "(p50=%.1f p99=%.1f p999=%.1f)\n",
                     p.name.c_str(), p.p50_us, p.p99_us, p.p999_us);
        ok = false;
      }
      if (p.batches <= 0) {
        std::fprintf(stderr, "CHECK FAILED: %s: no batches dispatched\n",
                     p.name.c_str());
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("serve check passed\n");
  }
  return 0;
}
