// Online-serving load harness for the inference runtime (src/serve/):
// trains a small model on a synthetic world, freezes it into a
// ModelSnapshot, then drives the InferenceServer three ways and reports
// end-to-end request latency percentiles plus throughput:
//
//   * closed loop — N client threads each submit their next request the
//     moment the previous one returns; measures peak sustainable QPS and
//     the latency the coalescing adds under saturation.
//   * open loop — one dispatcher paces ScoreAsync calls at a target
//     arrival rate; queue wait is charged to the request, so coordinated
//     omission does not hide linger/batching delays.
//   * overload — bursts far beyond the queue bound, with every serve
//     fault-injection point armed (queue_admit, executor_score,
//     serve_slow, snapshot_load) and three mid-traffic snapshot swap
//     attempts: a corrupt checkpoint (rolled back), an injected
//     snapshot_load fault (rolled back), and a valid further-trained
//     checkpoint (installed). Latency is reported PER DEGRADATION TIER
//     (full / degraded_cached / degraded_fallback), and every response is
//     verified to be either bit-identical to the single-threaded reference
//     for the snapshot version it reports, or carrying an explicit
//     degraded/deadline/overloaded status. Nothing may be dropped.
//
// Percentiles come from the serve.request_ns.* histograms (geometric
// buckets, ~10% resolution). Writes a machine-readable BENCH_serve.json.
//
//   ./bench_serve [--out=BENCH_serve.json] [--smoke] [--check]
//                 [--users=200] [--epochs=2] [--clients=4]
//                 [--requests=4000] [--qps=2000] [--max_batch=32]
//                 [--linger_us=200] [--cache_capacity=4096]
//                 [--executors=4] [--max_queue=256] [--deadline_ms=50]
//                 [--overload_requests=3000] [--overload_burst=300]
//                 [--degraded_p99_budget_ms=1000] [--quant]
//
// --quant serves from the int8 quantized rating head (calibrated at
// snapshot load, runtime-dispatched kernels — see DESIGN.md "Quantized
// inference & CPU dispatch") instead of the float32 head. All identity
// checks still hold: the quantized path is bit-deterministic across
// batch composition, executor count, and thread count, so the reference
// scorer (built from the same snapshot) sees identical scores.
//
// --check turns the run into a self-gating smoke test: the process fails
// unless every request resolved (zero drops), every score was finite and
// bit-identical or explicitly flagged, the overload phase degraded
// gracefully (fallback-tier p99 within budget), and the swap ledger reads
// exactly one install and two rollbacks.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fault.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "serve/scorer.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"

using namespace omnimatch;

namespace {

struct TierStats {
  int64_t requests = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  /// p99 fell in the histogram's +inf tail bucket: p99_us is a clamped
  /// lower bound, not an estimate, and must not pass a latency gate.
  bool p99_tail_overflow = false;
};

struct PhaseResult {
  std::string name;
  int clients = 0;        // closed loop only
  double target_qps = 0;  // open loop only
  int64_t submitted = 0;
  int64_t resolved = 0;  // futures that yielded a response (must == submitted)
  double wall_s = 0.0;
  double qps = 0.0;  // responses carrying a score / wall_s
  TierStats full;
  TierStats degraded_cached;
  TierStats degraded_fallback;
  int64_t deadline_exceeded = 0;
  int64_t overloaded = 0;
  int64_t batches = 0;
  double mean_batch = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t stale_evictions = 0;
  int64_t swaps = 0;
  int64_t rollbacks = 0;
  bool all_finite = true;
  bool bit_identical = true;  // every scored response matched its reference
};

obs::Histogram* TierHistogram(const char* name) {
  return obs::MetricsRegistry::Global().GetHistogram(
      name, obs::Histogram::LatencyBoundsNs());
}

TierStats ReadTier(const char* name) {
  obs::Histogram* h = TierHistogram(name);
  TierStats t;
  t.requests = h->Count();
  if (t.requests > 0) {
    t.p50_us = obs::HistogramQuantile(*h, 0.5) / 1e3;
    // Checked read for the gated quantile: if p99 lands in the +inf tail
    // bucket the clamped value is only a lower bound, and comparing it
    // against a budget would pass a run whose true tail blew far past it.
    t.p99_us =
        obs::HistogramQuantileChecked(*h, 0.99, &t.p99_tail_overflow) / 1e3;
    t.p999_us = obs::HistogramQuantile(*h, 0.999) / 1e3;
  }
  return t;
}

void ReadTiers(PhaseResult* phase) {
  phase->full = ReadTier("serve.request_ns.full");
  phase->degraded_cached = ReadTier("serve.request_ns.degraded_cached");
  phase->degraded_fallback = ReadTier("serve.request_ns.degraded_fallback");
}

uint64_t PairKey(int user, int item) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(user)) << 32) |
         static_cast<uint32_t>(item);
}

/// Single-threaded full-fidelity reference scores for every pool pair — the
/// baseline every concurrent full/cached response must reproduce exactly.
std::unordered_map<uint64_t, float> BuildReference(
    const std::shared_ptr<const serve::ModelSnapshot>& snap,
    const std::vector<std::pair<int, int>>& pool) {
  serve::Scorer scorer(snap, pool.size() + 1);
  std::unordered_map<uint64_t, float> ref;
  ref.reserve(pool.size());
  for (const auto& [user, item] : pool) {
    const uint64_t key = PairKey(user, item);
    if (ref.find(key) == ref.end()) ref[key] = scorer.Score(user, item);
  }
  return ref;
}

std::string TierJson(const char* name, const TierStats& t) {
  return StrFormat(
      "\"%s\": {\"requests\": %lld, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"p999_us\": %.1f}",
      name, static_cast<long long>(t.requests), t.p50_us, t.p99_us, t.p999_us);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const bool smoke = flags.GetBool("smoke", false);
  const bool check = flags.GetBool("check", false);
  std::string out_path = flags.GetString("out", "BENCH_serve.json");
  const int num_users = flags.GetInt("users", smoke ? 60 : 200);
  const int epochs = flags.GetInt("epochs", smoke ? 1 : 2);
  const int clients = flags.GetInt("clients", smoke ? 2 : 4);
  const int requests = flags.GetInt("requests", smoke ? 300 : 4000);
  const double target_qps = flags.GetDouble("qps", smoke ? 500.0 : 2000.0);
  const bool quant = flags.GetBool("quant", false);
  const int overload_requests =
      flags.GetInt("overload_requests", smoke ? 900 : 3000);
  const int overload_burst = flags.GetInt("overload_burst", 300);
  const double degraded_p99_budget_ms =
      flags.GetDouble("degraded_p99_budget_ms", 1000.0);
  serve::InferenceServer::Options options;
  options.max_batch = flags.GetInt("max_batch", 32);
  options.linger_us = flags.GetInt("linger_us", 200);
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache_capacity", 4096));
  options.executors = flags.GetInt("executors", 4);
  options.max_queue = static_cast<size_t>(flags.GetInt("max_queue", 256));
  options.deadline_ms = flags.GetInt("deadline_ms", 50);

  // --- Train a small model; checkpoint A, then one more epoch for the
  // hot-swap candidate B (same config fingerprint, different version) ---
  data::SyntheticConfig world_config;
  world_config.num_users = num_users;
  world_config.items_per_domain = num_users / 2;
  world_config.mean_reviews_per_user = 5;
  world_config.seed = 11;
  data::SyntheticWorld world(world_config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(12);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  core::OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = epochs;
  config.select_best_epoch = false;
  config.seed = 13;

  core::OmniMatchTrainer trainer(config, &cross, split);
  if (!trainer.Prepare().ok()) {
    std::fprintf(stderr, "bench_serve: Prepare failed\n");
    return 1;
  }
  trainer.Train();
  const std::string ckpt_a = out_path + ".ckpt_a.omck";
  const std::string ckpt_b = out_path + ".ckpt_b.omck";
  const std::string ckpt_corrupt = out_path + ".ckpt_corrupt.omck";
  if (!trainer.SaveCheckpoint(ckpt_a).ok()) {
    std::fprintf(stderr, "bench_serve: SaveCheckpoint failed\n");
    return 1;
  }
  {
    core::OmniMatchConfig config_b = config;
    config_b.epochs = config.epochs + 1;
    core::OmniMatchTrainer trainer_b(config_b, &cross, split);
    if (!trainer_b.Prepare().ok() ||
        !trainer_b.LoadCheckpoint(ckpt_a).ok()) {
      std::fprintf(stderr, "bench_serve: candidate resume failed\n");
      return 1;
    }
    trainer_b.Train();
    if (!trainer_b.SaveCheckpoint(ckpt_b).ok()) {
      std::fprintf(stderr, "bench_serve: candidate SaveCheckpoint failed\n");
      return 1;
    }
  }
  {
    // A corrupt rollout candidate: checkpoint B with its payload flipped
    // mid-file; integrity checking must reject it during the swap.
    std::ifstream in(ckpt_b, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    if (bytes.size() < 256) {
      std::fprintf(stderr, "bench_serve: checkpoint too small to corrupt\n");
      return 1;
    }
    for (size_t i = bytes.size() / 2; i < bytes.size() / 2 + 16; ++i) {
      bytes[i] = static_cast<char>(~bytes[i]);
    }
    std::ofstream(ckpt_corrupt, std::ios::binary)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  serve::ModelSnapshot::Options snap_options;
  snap_options.quantize = quant;
  auto load_snapshot = [&](const std::string& path)
      -> std::shared_ptr<const serve::ModelSnapshot> {
    Result<std::shared_ptr<const serve::ModelSnapshot>> loaded =
        serve::ModelSnapshot::Load(config, &cross, split, path, snap_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bench_serve: snapshot load failed: %s\n",
                   loaded.status().message().c_str());
      return nullptr;
    }
    return std::move(loaded).value();
  };
  std::shared_ptr<const serve::ModelSnapshot> snap = load_snapshot(ckpt_a);
  std::shared_ptr<const serve::ModelSnapshot> snap_b = load_snapshot(ckpt_b);
  if (snap == nullptr || snap_b == nullptr) return 1;

  // --- Request mix: every split user against random target items ---
  std::vector<int> req_users = split.train_users;
  req_users.insert(req_users.end(), split.validation_users.begin(),
                   split.validation_users.end());
  req_users.insert(req_users.end(), split.test_users.begin(),
                   split.test_users.end());
  const std::vector<int>& items = cross.target().items();
  if (req_users.empty() || items.empty()) {
    std::fprintf(stderr, "bench_serve: empty request pool\n");
    return 1;
  }
  Rng mix_rng(99);
  std::vector<std::pair<int, int>> pool(static_cast<size_t>(requests));
  for (auto& [user, item] : pool) {
    user = req_users[mix_rng.UniformU32(
        static_cast<uint32_t>(req_users.size()))];
    item = items[mix_rng.UniformU32(static_cast<uint32_t>(items.size()))];
  }

  // Single-threaded references for both snapshot versions, computed before
  // any concurrency exists: the fidelity baseline.
  const std::unordered_map<uint64_t, float> ref_a = BuildReference(snap, pool);
  const std::unordered_map<uint64_t, float> ref_b =
      BuildReference(snap_b, pool);
  const uint64_t version_a = snap->version();
  const uint64_t version_b = snap_b->version();

  serve::InferenceServer server(snap, options);
  serve::SnapshotManager::Options manager_options;
  manager_options.snapshot_options = snap_options;
  serve::SnapshotManager manager(&server, manager_options);
  obs::EnableMetrics(true);
  std::vector<PhaseResult> phases;

  // --- Closed loop: `clients` threads, back-to-back blocking requests ---
  {
    obs::MetricsRegistry::Global().ResetAll();
    int64_t batches0 = server.batches_dispatched();
    int64_t hits0 = server.scorer().cache().hits();
    int64_t misses0 = server.scorer().cache().misses();
    std::vector<float> scores(pool.size(), 0.0f);
    std::atomic<size_t> next{0};
    Stopwatch watch;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < pool.size();
             i = next.fetch_add(1)) {
          scores[i] = server.Score(pool[i].first, pool[i].second);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    PhaseResult phase;
    phase.name = "closed_loop";
    phase.clients = clients;
    phase.submitted = static_cast<int64_t>(pool.size());
    phase.resolved = phase.submitted;
    phase.wall_s = watch.ElapsedSeconds();
    phase.qps = phase.wall_s > 0
                    ? static_cast<double>(pool.size()) / phase.wall_s
                    : 0.0;
    ReadTiers(&phase);
    phase.batches = server.batches_dispatched() - batches0;
    phase.mean_batch =
        phase.batches > 0
            ? static_cast<double>(pool.size()) / phase.batches
            : 0.0;
    phase.cache_hits = server.scorer().cache().hits() - hits0;
    phase.cache_misses = server.scorer().cache().misses() - misses0;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!std::isfinite(scores[i])) phase.all_finite = false;
      auto it = ref_a.find(PairKey(pool[i].first, pool[i].second));
      if (it == ref_a.end() || it->second != scores[i]) {
        phase.bit_identical = false;
      }
    }
    phases.push_back(phase);
  }

  // --- Open loop: paced arrivals at the target rate ---
  {
    obs::MetricsRegistry::Global().ResetAll();
    int64_t batches0 = server.batches_dispatched();
    int64_t hits0 = server.scorer().cache().hits();
    int64_t misses0 = server.scorer().cache().misses();
    std::vector<std::future<serve::ScoreResult>> futures;
    futures.reserve(pool.size());
    const auto start = std::chrono::steady_clock::now();
    const auto gap = std::chrono::nanoseconds(
        static_cast<int64_t>(1e9 / std::max(1.0, target_qps)));
    Stopwatch watch;
    for (size_t i = 0; i < pool.size(); ++i) {
      // Scheduled arrival; if the dispatcher falls behind it submits
      // immediately and the achieved QPS reflects it.
      std::this_thread::sleep_until(start + gap * i);
      futures.push_back(server.ScoreAsync(pool[i].first, pool[i].second));
    }
    PhaseResult phase;
    phase.name = "open_loop";
    phase.target_qps = target_qps;
    phase.submitted = static_cast<int64_t>(pool.size());
    int64_t scored = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      const serve::ScoreResult r = futures[i].get();
      ++phase.resolved;
      if (!r.has_score()) {
        if (r.status == serve::RequestStatus::kDeadlineExceeded) {
          ++phase.deadline_exceeded;
        } else {
          ++phase.overloaded;
        }
        continue;
      }
      ++scored;
      if (!std::isfinite(r.score)) phase.all_finite = false;
      if (r.status == serve::RequestStatus::kOk) {
        auto it = ref_a.find(PairKey(pool[i].first, pool[i].second));
        if (it == ref_a.end() || it->second != r.score) {
          phase.bit_identical = false;
        }
      }
    }
    phase.wall_s = watch.ElapsedSeconds();
    phase.qps =
        phase.wall_s > 0 ? static_cast<double>(scored) / phase.wall_s : 0.0;
    ReadTiers(&phase);
    phase.batches = server.batches_dispatched() - batches0;
    phase.mean_batch =
        phase.batches > 0 ? static_cast<double>(scored) / phase.batches : 0.0;
    phase.cache_hits = server.scorer().cache().hits() - hits0;
    phase.cache_misses = server.scorer().cache().misses() - misses0;
    phases.push_back(phase);
  }

  // --- Overload + mid-traffic swaps, all probe points armed ---
  {
    obs::MetricsRegistry::Global().ResetAll();
    FaultInjector::Global().Disarm();
    // Deterministic counter-based firings: three admissions rejected, three
    // batches forced cached-only, three forced global-mean, two slowed.
    if (!FaultInjector::Global()
             .ArmFromString("queue_admit@2:count=3;"
                            "executor_score@4:mag=1,count=3;"
                            "executor_score@10:mag=2,count=3;"
                            "serve_slow@6:mag=5,count=2")
             .ok()) {
      std::fprintf(stderr, "bench_serve: fault arming failed\n");
      return 1;
    }
    int64_t batches0 = server.batches_dispatched();
    int64_t hits0 = server.scorer().cache().hits();
    int64_t misses0 = server.scorer().cache().misses();
    int64_t stale0 = server.scorer().cache().stale_evictions();
    const serve::InferenceServer::Stats stats0 = server.stats();

    struct Tagged {
      size_t pool_index;
      std::future<serve::ScoreResult> future;
    };
    std::vector<Tagged> futures;
    futures.reserve(static_cast<size_t>(overload_requests));
    PhaseResult phase;
    phase.name = "overload_swap";
    Stopwatch watch;
    int submitted = 0;
    bool did_corrupt_swap = false, did_injected_swap = false,
         did_valid_swap = false;
    while (submitted < overload_requests) {
      const int burst = std::min(overload_burst, overload_requests - submitted);
      for (int i = 0; i < burst; ++i) {
        const size_t idx = static_cast<size_t>(submitted + i) % pool.size();
        Tagged t;
        t.pool_index = idx;
        t.future = server.ScoreAsync(pool[idx].first, pool[idx].second);
        futures.push_back(std::move(t));
      }
      submitted += burst;
      // Swap attempts land mid-traffic: the queue is still draining the
      // burst while validation runs off the hot path.
      if (!did_corrupt_swap && submitted >= overload_requests / 3) {
        did_corrupt_swap = true;
        const Status s = manager.SwapFromCheckpoint(config, &cross, split,
                                                    ckpt_corrupt);
        if (s.ok()) {
          std::fprintf(stderr,
                       "bench_serve: corrupt candidate was installed!\n");
          return 1;
        }
      } else if (!did_injected_swap && submitted >= overload_requests / 2) {
        did_injected_swap = true;
        if (!FaultInjector::Global().ArmFromString("snapshot_load@0").ok()) {
          return 1;
        }
        const Status s =
            manager.SwapFromCheckpoint(config, &cross, split, ckpt_b);
        if (s.ok()) {
          std::fprintf(stderr,
                       "bench_serve: injected-fault swap was installed!\n");
          return 1;
        }
      } else if (!did_valid_swap && submitted >= overload_requests * 2 / 3) {
        did_valid_swap = true;
        const Status s =
            manager.SwapFromCheckpoint(config, &cross, split, ckpt_b);
        if (!s.ok()) {
          std::fprintf(stderr, "bench_serve: valid swap failed: %s\n",
                       s.message().c_str());
          return 1;
        }
      }
      // Let the queue drain through the degradation bands so batches
      // dispatch at every tier, not just at full pressure.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    phase.submitted = submitted;
    int64_t scored = 0;
    const float mean_a = snap->global_mean_rating();
    const float mean_b = snap_b->global_mean_rating();
    for (Tagged& t : futures) {
      const serve::ScoreResult r = t.future.get();
      ++phase.resolved;
      switch (r.status) {
        case serve::RequestStatus::kDeadlineExceeded:
          ++phase.deadline_exceeded;
          continue;
        case serve::RequestStatus::kOverloaded:
          ++phase.overloaded;
          continue;
        case serve::RequestStatus::kShuttingDown:
          phase.bit_identical = false;  // nothing was shutting down here
          continue;
        default:
          break;
      }
      ++scored;
      if (!std::isfinite(r.score)) phase.all_finite = false;
      if (r.snapshot_version != version_a && r.snapshot_version != version_b) {
        phase.bit_identical = false;
        continue;
      }
      const bool is_b = r.snapshot_version == version_b;
      if (r.status == serve::RequestStatus::kDegradedFallback) {
        // The mean tier serves exactly the snapshot's global mean.
        if (r.score != (is_b ? mean_b : mean_a)) phase.bit_identical = false;
        continue;
      }
      // kOk and kDegradedCached: bit-identical to the single-threaded
      // reference for the snapshot version that served it.
      const std::unordered_map<uint64_t, float>& ref = is_b ? ref_b : ref_a;
      const auto& [user, item] = pool[t.pool_index];
      auto it = ref.find(PairKey(user, item));
      if (it == ref.end() || it->second != r.score) {
        phase.bit_identical = false;
      }
    }
    phase.wall_s = watch.ElapsedSeconds();
    phase.qps =
        phase.wall_s > 0 ? static_cast<double>(scored) / phase.wall_s : 0.0;
    ReadTiers(&phase);
    phase.batches = server.batches_dispatched() - batches0;
    phase.mean_batch =
        phase.batches > 0 ? static_cast<double>(scored) / phase.batches : 0.0;
    phase.cache_hits = server.scorer().cache().hits() - hits0;
    phase.cache_misses = server.scorer().cache().misses() - misses0;
    phase.stale_evictions = server.scorer().cache().stale_evictions() - stale0;
    phase.swaps = manager.swaps();
    phase.rollbacks = manager.rollbacks();
    // Server-side zero-drop cross-check: completions + rejections must
    // account for every admission decision.
    const serve::InferenceServer::Stats stats1 = server.stats();
    const int64_t accounted =
        (stats1.requests_served - stats0.requests_served) +
        (stats1.deadline_exceeded - stats0.deadline_exceeded) +
        (stats1.rejected_overloaded - stats0.rejected_overloaded) +
        (stats1.rejected_shutdown - stats0.rejected_shutdown);
    if (accounted != phase.submitted) phase.bit_identical = false;
    FaultInjector::Global().Disarm();
    phases.push_back(phase);
  }
  server.Shutdown();
  obs::EnableMetrics(false);
  std::remove(ckpt_a.c_str());
  std::remove(ckpt_b.c_str());
  std::remove(ckpt_corrupt.c_str());

  // --- Report ---
  std::printf("%-14s %9s %9s %10s %10s %10s %8s %9s %9s %8s\n", "phase",
              "requests", "qps", "p50_us", "p99_us", "p999_us", "batches",
              "degraded", "rejected", "swaps");
  for (const PhaseResult& p : phases) {
    std::printf(
        "%-14s %9lld %9.0f %10.1f %10.1f %10.1f %8lld %9lld %9lld %8lld\n",
        p.name.c_str(), static_cast<long long>(p.submitted), p.qps,
        p.full.p50_us, p.full.p99_us, p.full.p999_us,
        static_cast<long long>(p.batches),
        static_cast<long long>(p.degraded_cached.requests +
                               p.degraded_fallback.requests),
        static_cast<long long>(p.deadline_exceeded + p.overloaded),
        static_cast<long long>(p.swaps));
    if (p.degraded_cached.requests > 0 || p.degraded_fallback.requests > 0) {
      std::printf("  tier degraded_cached:   %6lld reqs  p99 %10.1f us\n",
                  static_cast<long long>(p.degraded_cached.requests),
                  p.degraded_cached.p99_us);
      std::printf("  tier degraded_fallback: %6lld reqs  p99 %10.1f us\n",
                  static_cast<long long>(p.degraded_fallback.requests),
                  p.degraded_fallback.p99_us);
    }
  }

  std::string json = "{\n  \"schema\": \"omnimatch-bench-serve-v2\",\n";
  json += StrFormat(
      "  \"snapshot\": {\"users\": %d, \"vocab\": %d, "
      "\"version\": \"%016llx\", \"candidate_version\": \"%016llx\"},\n",
      num_users, static_cast<int>(snap->vocabulary().size()),
      static_cast<unsigned long long>(version_a),
      static_cast<unsigned long long>(version_b));
  json += StrFormat(
      "  \"options\": {\"max_batch\": %d, \"linger_us\": %lld, "
      "\"cache_capacity\": %lld, \"executors\": %d, \"max_queue\": %lld, "
      "\"deadline_ms\": %lld},\n",
      options.max_batch, static_cast<long long>(options.linger_us),
      static_cast<long long>(options.cache_capacity), options.executors,
      static_cast<long long>(options.max_queue),
      static_cast<long long>(options.deadline_ms));
  json += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    json += StrFormat(
        "    {\"name\": \"%s\", \"clients\": %d, \"target_qps\": %.0f, "
        "\"submitted\": %lld, \"resolved\": %lld, \"wall_s\": %.3f, "
        "\"qps\": %.1f, \"batches\": %lld, \"mean_batch\": %.2f, "
        "\"cache_hits\": %lld, \"cache_misses\": %lld, "
        "\"stale_evictions\": %lld, \"deadline_exceeded\": %lld, "
        "\"overloaded\": %lld, \"swaps\": %lld, \"rollbacks\": %lld, "
        "\"bit_identical\": %s, \"tiers\": {%s, %s, %s}}%s\n",
        p.name.c_str(), p.clients, p.target_qps,
        static_cast<long long>(p.submitted),
        static_cast<long long>(p.resolved), p.wall_s, p.qps,
        static_cast<long long>(p.batches), p.mean_batch,
        static_cast<long long>(p.cache_hits),
        static_cast<long long>(p.cache_misses),
        static_cast<long long>(p.stale_evictions),
        static_cast<long long>(p.deadline_exceeded),
        static_cast<long long>(p.overloaded),
        static_cast<long long>(p.swaps),
        static_cast<long long>(p.rollbacks),
        p.bit_identical ? "true" : "false",
        TierJson("full", p.full).c_str(),
        TierJson("degraded_cached", p.degraded_cached).c_str(),
        TierJson("degraded_fallback", p.degraded_fallback).c_str(),
        i + 1 < phases.size() ? "," : "");
  }
  json += "  ]\n}\n";
  std::ofstream out(out_path);
  if (!out || !(out << json)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    bool ok = true;
    auto fail = [&](const std::string& msg) {
      std::fprintf(stderr, "CHECK FAILED: %s\n", msg.c_str());
      ok = false;
    };
    for (const PhaseResult& p : phases) {
      if (p.resolved != p.submitted) {
        fail(p.name + ": dropped requests (" + std::to_string(p.resolved) +
             " of " + std::to_string(p.submitted) + " resolved)");
      }
      if (!p.all_finite) fail(p.name + ": non-finite score returned");
      if (!p.bit_identical) {
        fail(p.name +
             ": a response neither matched its snapshot's single-threaded "
             "reference nor carried an explicit degraded status");
      }
      if (p.batches <= 0) fail(p.name + ": no batches dispatched");
      if (p.full.requests > 0 &&
          (!(p.full.p50_us > 0.0) || p.full.p50_us > p.full.p99_us + 1e-9 ||
           p.full.p99_us > p.full.p999_us + 1e-9)) {
        fail(p.name + ": full-tier percentiles not ordered");
      }
    }
    const PhaseResult& closed = phases[0];
    if (closed.full.requests != closed.submitted) {
      fail("closed_loop: expected every request on the full tier, saw " +
           std::to_string(closed.full.requests));
    }
    const PhaseResult& overload = phases[2];
    if (overload.swaps != 1) {
      fail("overload_swap: expected exactly 1 installed swap, saw " +
           std::to_string(overload.swaps));
    }
    if (overload.rollbacks != 2) {
      fail("overload_swap: expected exactly 2 rollbacks "
           "(corrupt + injected), saw " +
           std::to_string(overload.rollbacks));
    }
    if (overload.stale_evictions <= 0) {
      fail("overload_swap: swap did not evict stale cache entries");
    }
    if (overload.degraded_fallback.requests <= 0) {
      fail("overload_swap: no requests served on the fallback tier "
           "(degradation never engaged)");
    }
    if (overload.degraded_fallback.p99_tail_overflow) {
      fail(StrFormat(
          "overload_swap: fallback-tier p99 landed in the histogram's +inf "
          "tail bucket — the reported %.1f us is only a lower bound, so the "
          "%.1f ms budget cannot be verified",
          overload.degraded_fallback.p99_us, degraded_p99_budget_ms));
    } else if (overload.degraded_fallback.p99_us >
               degraded_p99_budget_ms * 1000.0) {
      fail(StrFormat(
          "overload_swap: fallback-tier p99 %.1f us exceeds budget %.1f ms "
          "(degraded mode is not keeping latency bounded)",
          overload.degraded_fallback.p99_us, degraded_p99_budget_ms));
    }
    if (!ok) return 1;
    std::printf("serve check passed\n");
  }
  return 0;
}
