#ifndef OMNIMATCH_BENCH_BENCH_UTIL_H_
#define OMNIMATCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace omnimatch {
namespace bench {

/// Prints one paper-style table block: rows are (scenario, RMSE/MAE),
/// columns are methods, with the last column showing the improvement of
/// "OmniMatch" over the best baseline (the paper's Δ% column).
inline void PrintScenarioTable(
    const std::vector<eval::ScenarioResult>& results) {
  if (results.empty()) return;
  eval::AsciiTable table;
  std::vector<std::string> header = {"Scenario", "Metric"};
  for (const auto& m : results[0].methods) {
    header.push_back(m.name == "OmniMatch" ? "Ours" : m.name);
  }
  header.push_back("Δ%");
  table.SetHeader(header);

  for (const auto& scenario : results) {
    for (int metric = 0; metric < 2; ++metric) {
      std::vector<std::string> row = {scenario.scenario,
                                      metric == 0 ? "RMSE" : "MAE"};
      double ours = 0.0, best_baseline = 1e30;
      for (const auto& m : scenario.methods) {
        double v = metric == 0 ? m.test.rmse : m.test.mae;
        row.push_back(eval::FormatMetric(v));
        if (m.name == "OmniMatch") {
          ours = v;
        } else {
          best_baseline = std::min(best_baseline, v);
        }
      }
      double delta = (best_baseline - ours) / best_baseline * 100.0;
      row.push_back(ours > 0.0 ? eval::StrFormatDelta(delta) : "-");
      table.AddRow(row);
    }
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace bench
}  // namespace omnimatch

#endif  // OMNIMATCH_BENCH_BENCH_UTIL_H_
