#ifndef OMNIMATCH_BENCH_BENCH_UTIL_H_
#define OMNIMATCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace omnimatch {
namespace bench {

/// One timed kernel measurement destined for BENCH_nn_ops.json.
struct KernelSample {
  std::string name;     // kernel + shape, e.g. "MatMul/256"
  std::string variant;  // "reference" (naive serial) or "blocked"
  int threads = 1;      // pool size the sample ran with
  double ns = 0.0;      // best-of-reps time per call
  /// Seed-commit measurement of the same kernel (google-benchmark,
  /// Release), recorded before this substrate existed; 0 when the kernel
  /// had no seed-era benchmark.
  double seed_ns = 0.0;
};

/// Renders the samples as a machine-readable JSON document:
/// {"schema": ..., "records": [{name, variant, threads, ns, seed_ns,
///  speedup_vs_seed}, ...]}.
inline std::string RenderBenchJson(const std::vector<KernelSample>& samples) {
  std::string out = "{\n  \"schema\": \"omnimatch-bench-v1\",\n";
  out += "  \"unit\": \"ns_per_call\",\n  \"records\": [\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const KernelSample& s = samples[i];
    out += StrFormat(
        "    {\"name\": \"%s\", \"variant\": \"%s\", \"threads\": %d, "
        "\"ns\": %.1f",
        s.name.c_str(), s.variant.c_str(), s.threads, s.ns);
    if (s.seed_ns > 0.0) {
      out += StrFormat(", \"seed_ns\": %.1f, \"speedup_vs_seed\": %.2f",
                       s.seed_ns, s.seed_ns / s.ns);
    }
    out += i + 1 < samples.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

/// Writes the JSON document to `path`; returns false on I/O failure.
inline bool WriteBenchJson(const std::string& path,
                           const std::vector<KernelSample>& samples) {
  std::ofstream out(path);
  if (!out) return false;
  out << RenderBenchJson(samples);
  return static_cast<bool>(out);
}

/// Prints one paper-style table block: rows are (scenario, RMSE/MAE),
/// columns are methods, with the last column showing the improvement of
/// "OmniMatch" over the best baseline (the paper's Δ% column).
inline void PrintScenarioTable(
    const std::vector<eval::ScenarioResult>& results) {
  if (results.empty()) return;
  eval::AsciiTable table;
  std::vector<std::string> header = {"Scenario", "Metric"};
  for (const auto& m : results[0].methods) {
    header.push_back(m.name == "OmniMatch" ? "Ours" : m.name);
  }
  header.push_back("Δ%");
  table.SetHeader(header);

  for (const auto& scenario : results) {
    for (int metric = 0; metric < 2; ++metric) {
      std::vector<std::string> row = {scenario.scenario,
                                      metric == 0 ? "RMSE" : "MAE"};
      double ours = 0.0, best_baseline = 1e30;
      for (const auto& m : scenario.methods) {
        double v = metric == 0 ? m.test.rmse : m.test.mae;
        row.push_back(eval::FormatMetric(v));
        if (m.name == "OmniMatch") {
          ours = v;
        } else {
          best_baseline = std::min(best_baseline, v);
        }
      }
      double delta = (best_baseline - ours) / best_baseline * 100.0;
      row.push_back(ours > 0.0 ? eval::StrFormatDelta(delta) : "-");
      table.AddRow(row);
    }
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace bench
}  // namespace omnimatch

#endif  // OMNIMATCH_BENCH_BENCH_UTIL_H_
