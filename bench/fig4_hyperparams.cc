// Reproduces Figure 4 of the paper: RMSE and MAE of OmniMatch on
// Movies -> Music while sweeping the contrastive weight α (with β fixed at
// 0.1) and the domain-adversarial weight β (with α fixed at 0.2).
//
//   ./build/bench/fig4_hyperparams [--seed=99] [--epochs=10]

#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "eval/table.h"

using namespace omnimatch;

namespace {

eval::Metrics RunPoint(const data::CrossDomainDataset& cross,
                       const data::ColdStartSplit& split,
                       const core::OmniMatchConfig& config) {
  core::OmniMatchTrainer trainer(config, &cross, split);
  Status status = trainer.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "Prepare failed: %s\n", status.ToString().c_str());
    return eval::Metrics{};
  }
  trainer.Train();
  return trainer.Evaluate(trainer.split().test_users);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 99));

  data::SyntheticWorld world(data::SyntheticConfig::AmazonLike());
  data::CrossDomainDataset cross = world.MakePair("Movies", "Music");
  Rng split_rng(seed);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  const std::vector<float> sweep = {0.1f, 0.2f, 0.3f, 0.4f,
                                    0.5f, 0.6f, 0.7f};

  std::printf(
      "Figure 4 — hyperparameter sensitivity on Movies -> Music "
      "(paper: Fig. 4, §5.8)\n");
  for (int which = 0; which < 2; ++which) {
    eval::AsciiTable table;
    table.SetHeader({which == 0 ? "alpha (beta=0.1)" : "beta (alpha=0.2)",
                     "RMSE", "MAE"});
    for (float value : sweep) {
      core::OmniMatchConfig config;
      config.seed = seed + 31;
      config.epochs = flags.GetInt("epochs", 8);
      if (which == 0) {
        config.alpha = value;
        config.beta = 0.1f;  // fixed per §5.8
      } else {
        config.alpha = 0.2f;  // fixed per §5.8
        config.beta = value;
      }
      eval::Metrics metrics = RunPoint(cross, split, config);
      table.AddRow({StrFormat("%.1f", value),
                    eval::FormatMetric(metrics.rmse),
                    eval::FormatMetric(metrics.mae)});
      std::fprintf(stderr, "  done %s=%.1f\n", which == 0 ? "alpha" : "beta",
                   value);
    }
    std::printf("%s", table.Render().c_str());
  }
  return 0;
}
