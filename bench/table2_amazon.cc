// Reproduces Table 2 of the paper: cold-start RMSE/MAE of all seven methods
// on the six cross-domain scenarios of the Amazon-like corpus.
//
//   ./build/bench/table2_amazon [--trials=1] [--seed=99] [--graph_exec]

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic.h"

using namespace omnimatch;

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);

  data::SyntheticWorld world(data::SyntheticConfig::AmazonLike());
  eval::RunnerOptions options;
  options.trials = flags.GetInt("trials", 1);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 99));
  // Recorded-graph step execution (bit-identical to eager; see DESIGN.md).
  options.omnimatch.graph_exec = flags.GetBool("graph_exec", false);

  std::printf(
      "Table 2 — Amazon-like corpus, %d trial(s) per scenario "
      "(paper: Table 2, §5.5)\n",
      options.trials);
  std::vector<eval::ScenarioResult> results;
  for (const auto& [source, target] : eval::PaperScenarios()) {
    results.push_back(eval::RunScenario(world, source, target, options));
    std::fprintf(stderr, "  done %s\n", results.back().scenario.c_str());
  }
  bench::PrintScenarioTable(results);
  return 0;
}
