// Reproduces Table 3 of the paper: the same seven-method grid on the
// sparser, heavier-biased Douban-like corpus, where rating-only methods
// degrade much harder than on the Amazon-like corpus.
//
//   ./build/bench/table3_douban [--trials=1] [--seed=131]

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic.h"

using namespace omnimatch;

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);

  data::SyntheticWorld world(data::SyntheticConfig::DoubanLike());
  eval::RunnerOptions options;
  options.trials = flags.GetInt("trials", 1);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 131));

  std::printf(
      "Table 3 — Douban-like corpus, %d trial(s) per scenario "
      "(paper: Table 3, §5.5)\n",
      options.trials);
  std::vector<eval::ScenarioResult> results;
  for (const auto& [source, target] : eval::PaperScenarios()) {
    results.push_back(eval::RunScenario(world, source, target, options));
    std::fprintf(stderr, "  done %s\n", results.back().scenario.c_str());
  }
  bench::PrintScenarioTable(results);
  return 0;
}
