// Reproduces Table 4 of the paper: RMSE/MAE of EMCDR, PTUPCDR and OmniMatch
// when training with 100% / 80% / 50% / 20% of the training (overlapping)
// users, on three scenarios. OmniMatch's review-based representations should
// degrade far more gracefully than the mapping-based baselines.
//
//   ./build/bench/table4_overlap [--seed=99]

#include <cstdio>

#include "common/flags.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace omnimatch;

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);

  data::SyntheticWorld world(data::SyntheticConfig::AmazonLike());
  const std::vector<std::pair<std::string, std::string>> scenarios = {
      {"Books", "Movies"}, {"Movies", "Music"}, {"Books", "Music"}};
  const std::vector<double> fractions = {1.0, 0.8, 0.5, 0.2};
  const std::vector<std::string> methods = {"EMCDR", "PTUPCDR", "OmniMatch"};

  std::printf(
      "Table 4 — varying the proportion of training users "
      "(paper: Table 4, §5.6)\n");
  for (const auto& [source, target] : scenarios) {
    eval::AsciiTable table;
    table.SetHeader({"Method", "Metric", "100%", "80%", "50%", "20%"});
    // rows[method][metric][fraction]
    std::vector<std::vector<std::vector<double>>> cells(
        methods.size(),
        std::vector<std::vector<double>>(2,
                                         std::vector<double>(fractions.size(),
                                                             0.0)));
    for (size_t f = 0; f < fractions.size(); ++f) {
      eval::RunnerOptions options;
      options.methods = methods;
      options.trials = flags.GetInt("trials", 1);
      options.seed = static_cast<uint64_t>(flags.GetInt("seed", 99));
      options.train_user_fraction = fractions[f];
      eval::ScenarioResult result =
          eval::RunScenario(world, source, target, options);
      for (size_t m = 0; m < methods.size(); ++m) {
        cells[m][0][f] = result.methods[m].test.rmse;
        cells[m][1][f] = result.methods[m].test.mae;
      }
      std::fprintf(stderr, "  done %s -> %s @ %.0f%%\n", source.c_str(),
                   target.c_str(), fractions[f] * 100.0);
    }
    for (size_t m = 0; m < methods.size(); ++m) {
      for (int metric = 0; metric < 2; ++metric) {
        std::vector<std::string> row = {
            methods[m] == "OmniMatch" ? "Ours" : methods[m],
            metric == 0 ? "RMSE" : "MAE"};
        for (size_t f = 0; f < fractions.size(); ++f) {
          row.push_back(eval::FormatMetric(cells[m][metric][f]));
        }
        table.AddRow(row);
      }
    }
    std::printf("%s -> %s\n%s", source.c_str(), target.c_str(),
                table.Render().c_str());
  }
  return 0;
}
