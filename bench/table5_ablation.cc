// Reproduces Table 5 of the paper: ablation of OmniMatch's components in a
// data-scarce setting (20% of training users): without SCL, without domain
// adversarial training, without auxiliary reviews, the full model, the
// full-review-text variant, and the transformer-extractor ("BERT") variant.
//
//   ./build/bench/table5_ablation [--seed=99]

#include <cstdio>
#include <functional>

#include "common/flags.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "eval/table.h"

using namespace omnimatch;

namespace {

struct Variant {
  std::string name;
  std::function<void(core::OmniMatchConfig*)> apply;
};

eval::Metrics RunVariant(const data::CrossDomainDataset& cross,
                         const data::ColdStartSplit& split,
                         const core::OmniMatchConfig& config) {
  core::OmniMatchTrainer trainer(config, &cross, split);
  Status status = trainer.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "Prepare failed: %s\n", status.ToString().c_str());
    return eval::Metrics{};
  }
  trainer.Train();
  return trainer.Evaluate(trainer.split().test_users);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 99));

  data::SyntheticWorld world(data::SyntheticConfig::AmazonLike());
  const std::vector<std::pair<std::string, std::string>> scenarios = {
      {"Books", "Movies"}, {"Books", "Music"}, {"Movies", "Music"}};

  std::vector<Variant> variants = {
      {"w/o SCL", [](core::OmniMatchConfig* c) { c->use_scl = false; }},
      {"w/o DA",
       [](core::OmniMatchConfig* c) { c->use_domain_adversarial = false; }},
      {"w/o AuxReviews",
       [](core::OmniMatchConfig* c) {
         c->use_aux_reviews = false;
         c->aux_augmentation_prob = 0.0f;
       }},
      {"OmniMatch", [](core::OmniMatchConfig*) {}},
      {"OmniMatch-ReviewText",
       [](core::OmniMatchConfig* c) {
         c->text_field = core::TextField::kFullText;
       }},
      {"OmniMatch-BERT",
       [](core::OmniMatchConfig* c) {
         c->extractor = core::ExtractorKind::kTransformer;
       }},
  };

  std::printf(
      "Table 5 — component ablation with 20%% of training users "
      "(paper: Table 5, §5.7)\n");
  eval::AsciiTable table;
  std::vector<std::string> header = {"Variant", "Metric"};
  for (const auto& [s, t] : scenarios) header.push_back(s + " -> " + t);
  table.SetHeader(header);

  // results[variant][metric][scenario]
  std::vector<std::vector<std::vector<double>>> cells(
      variants.size(),
      std::vector<std::vector<double>>(2,
                                       std::vector<double>(scenarios.size())));
  for (size_t s = 0; s < scenarios.size(); ++s) {
    data::CrossDomainDataset cross =
        world.MakePair(scenarios[s].first, scenarios[s].second);
    Rng split_rng(seed);
    data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
    // §5.7: data-scarce setting — keep 20% of the training users.
    split = data::SubsampleTrainUsers(split, 0.2, &split_rng);
    for (size_t v = 0; v < variants.size(); ++v) {
      core::OmniMatchConfig config;
      config.seed = seed + 13;
      variants[v].apply(&config);
      eval::Metrics metrics = RunVariant(cross, split, config);
      cells[v][0][s] = metrics.rmse;
      cells[v][1][s] = metrics.mae;
      std::fprintf(stderr, "  done %s / %s\n",
                   cross.ScenarioName().c_str(), variants[v].name.c_str());
    }
  }
  for (size_t v = 0; v < variants.size(); ++v) {
    for (int metric = 0; metric < 2; ++metric) {
      std::vector<std::string> row = {variants[v].name,
                                      metric == 0 ? "RMSE" : "MAE"};
      for (size_t s = 0; s < scenarios.size(); ++s) {
        row.push_back(eval::FormatMetric(cells[v][metric][s]));
      }
      table.AddRow(row);
    }
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
