// Reproduces Table 6 of the paper: wall-clock training time of the full
// model vs. removing the Domain Adversarial (DA) module or the Supervised
// Contrastive Learning (SCL) module, on two scenarios.
//
//   ./build/bench/table6_timing [--seed=99] [--graph_exec]

#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "eval/table.h"

using namespace omnimatch;

namespace {

double TrainSeconds(const data::CrossDomainDataset& cross,
                    const data::ColdStartSplit& split,
                    const core::OmniMatchConfig& config) {
  core::OmniMatchTrainer trainer(config, &cross, split);
  Status status = trainer.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "Prepare failed: %s\n", status.ToString().c_str());
    return 0.0;
  }
  return trainer.Train().train_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 99));

  data::SyntheticWorld world(data::SyntheticConfig::AmazonLike());
  const std::vector<std::pair<std::string, std::string>> scenarios = {
      {"Books", "Music"}, {"Movies", "Music"}};

  std::printf(
      "Table 6 — training time with modules removed "
      "(paper: Table 6, §5.9; minutes on an A100 there, seconds on CPU "
      "here — the *ratios* are the reproduced quantity)\n");
  eval::AsciiTable table;
  table.SetHeader({"Scenario", "Full Model", "w/o DA", "w/o SCL"});
  for (const auto& [source, target] : scenarios) {
    data::CrossDomainDataset cross = world.MakePair(source, target);
    Rng split_rng(seed);
    data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

    core::OmniMatchConfig full;
    full.seed = seed;
    // Timing comparisons want identical epoch counts, not best-epoch extras.
    full.select_best_epoch = false;
    full.epochs = flags.GetInt("epochs", 8);
    // Recorded-graph step execution: changes wall-clock only, never the
    // trained weights (bit-identical to eager; see DESIGN.md).
    full.graph_exec = flags.GetBool("graph_exec", false);

    core::OmniMatchConfig no_da = full;
    no_da.use_domain_adversarial = false;
    core::OmniMatchConfig no_scl = full;
    no_scl.use_scl = false;

    double t_full = TrainSeconds(cross, split, full);
    double t_no_da = TrainSeconds(cross, split, no_da);
    double t_no_scl = TrainSeconds(cross, split, no_scl);
    table.AddRow({cross.ScenarioName(),
                  StrFormat("%.1f s", t_full),
                  StrFormat("%.1f s (x%.2f)", t_no_da, t_no_da / t_full),
                  StrFormat("%.1f s (x%.2f)", t_no_scl, t_no_scl / t_full)});
    std::fprintf(stderr, "  done %s\n", cross.ScenarioName().c_str());
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
