// Runs OmniMatch against every §5.3 baseline on one cross-domain scenario
// and prints a Table 2-style comparison row.
//
//   ./build/examples/baseline_comparison [--source=Books] [--target=Movies]
//       [--dataset=amazon|douban] [--trials=1] [--seed=99] [--epochs=N]

#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace omnimatch;

int main(int argc, char** argv) {
  FlagParser flags;
  Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n", parse_status.ToString().c_str());
    return 1;
  }
  ApplyThreadsFlag(flags);
  std::string source = flags.GetString("source", "Books");
  std::string target = flags.GetString("target", "Movies");
  std::string dataset = flags.GetString("dataset", "amazon");

  data::SyntheticConfig data_config =
      dataset == "douban" ? data::SyntheticConfig::DoubanLike()
                          : data::SyntheticConfig::AmazonLike();
  data::SyntheticWorld world(data_config);

  eval::RunnerOptions options;
  if (flags.Has("methods")) {
    options.methods.clear();
    for (const std::string& m : Split(flags.GetString("methods", ""), ',')) {
      if (!m.empty()) options.methods.push_back(m);
    }
  }
  options.trials = flags.GetInt("trials", 1);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 99));
  options.omnimatch.epochs =
      flags.GetInt("epochs", options.omnimatch.epochs);
  eval::ScenarioResult result =
      eval::RunScenario(world, source, target, options);

  eval::AsciiTable table;
  table.SetHeader({"Method", "RMSE", "MAE", "train s"});
  for (const eval::MethodResult& m : result.methods) {
    table.AddRow({m.name, eval::FormatMetric(m.test.rmse),
                  eval::FormatMetric(m.test.mae),
                  eval::FormatMetric(m.train_seconds)});
  }
  std::printf("%s (%s dataset, %d trial(s))\n%s", result.scenario.c_str(),
              dataset.c_str(), options.trials, table.Render().c_str());
  return 0;
}
