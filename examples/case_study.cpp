// §5.10 case study: trace the Auxiliary Reviews Generation Module for one
// cold-start user — for each of their source-domain purchases, show the
// like-minded user that was selected and the target-domain review that was
// borrowed, then print the generated auxiliary document next to the user's
// (hidden) ground-truth target reviews.
//
//   ./build/examples/case_study [--seed=7] [--user=<id>]

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/aux_review.h"
#include "data/splits.h"
#include "data/synthetic.h"

using namespace omnimatch;

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  data::SyntheticWorld world(data::SyntheticConfig::AmazonLike());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(seed);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  int user = flags.GetInt("user", split.test_users.front());
  std::printf("Case study (paper §5.10): auxiliary review generation for "
              "cold-start user %d under %s\n\n",
              user, cross.ScenarioName().c_str());

  core::AuxReviewGenerator generator(&cross, split.train_users);
  Rng rng(seed + 1);
  core::AuxReviewTrace trace;
  std::vector<std::string> aux_reviews =
      generator.GenerateForUser(user, &rng, &trace);

  int step = 0;
  for (const core::AuxReviewChoice& choice : trace.choices) {
    ++step;
    std::printf("(%d) Item in source domain: %d\n", step, choice.source_item);
    std::printf("    Cold-start user's rating and review: %.1f, \"%s\"\n",
                choice.rating, choice.source_review.c_str());
    if (choice.like_minded_user < 0) {
      std::printf("    No like-minded training user found; record skipped.\n");
      continue;
    }
    std::printf("    Like-minded users with the same rating: %d; selected "
                "user %d\n",
                choice.num_like_minded, choice.like_minded_user);
    std::printf("    Auxiliary review chosen from their target-domain "
                "history (item %d): \"%s\"\n",
                choice.target_item, choice.aux_review.c_str());
  }

  std::printf("\nFinal auxiliary document for user %d:\n  \"%s\"\n", user,
              Join(aux_reviews, " <sp> ").c_str());

  std::printf("\nGround-truth target-domain reviews of user %d (hidden from "
              "the model):\n",
              user);
  std::vector<std::string> truth;
  for (int idx : cross.target().RecordsOfUser(user)) {
    const data::Review& r = cross.target().reviews()[idx];
    std::printf("  item %d (%.1f stars): \"%s\"\n", r.item_id, r.rating,
                r.summary.c_str());
    truth.push_back(r.summary);
  }
  std::printf("\nConcatenated ground truth:\n  \"%s\"\n",
              Join(truth, " <sp> ").c_str());
  return 0;
}
