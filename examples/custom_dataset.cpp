// Shows the adoption path for real data: build two DomainDatasets by hand
// (or load them from TSV files in the documented format), persist them,
// reload, and train OmniMatch on the pair.
//
//   ./build/examples/custom_dataset [--source=path.tsv --target=path.tsv]
//
// Without flags the example writes a small synthetic corpus to temporary
// TSV files first, so it is runnable out of the box.

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "data/csv.h"
#include "data/splits.h"
#include "data/synthetic.h"

using namespace omnimatch;

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ApplyThreadsFlag(flags);

  std::string source_path = flags.GetString("source", "");
  std::string target_path = flags.GetString("target", "");

  if (source_path.empty() || target_path.empty()) {
    // No files supplied: materialize a small corpus to show the format.
    data::SyntheticConfig config;
    config.num_users = 200;
    config.items_per_domain = 100;
    config.seed = 99;
    data::SyntheticWorld world(config);
    source_path = "/tmp/omnimatch_source.tsv";
    target_path = "/tmp/omnimatch_target.tsv";
    Status s1 = data::SaveDomainTsv(world.domain("Books"), source_path);
    Status s2 = data::SaveDomainTsv(world.domain("Movies"), target_path);
    if (!s1.ok() || !s2.ok()) {
      std::fprintf(stderr, "failed to write demo TSVs\n");
      return 1;
    }
    std::printf("Wrote demo corpora:\n  %s\n  %s\n"
                "(format: user_id\\titem_id\\trating\\tsummary\\tfull_text)\n\n",
                source_path.c_str(), target_path.c_str());
  }

  // 1. Load both domains from disk.
  auto source = data::LoadDomainTsv(source_path, "Source");
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto target = data::LoadDomainTsv(target_path, "Target");
  if (!target.ok()) {
    std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
    return 1;
  }
  data::CrossDomainDataset cross(std::move(source).value(),
                                 std::move(target).value());
  std::printf("Loaded %zu source and %zu target reviews; %zu overlapping "
              "users\n",
              cross.source().num_reviews(), cross.target().num_reviews(),
              cross.overlapping_users().size());
  if (cross.overlapping_users().size() < 10) {
    std::fprintf(stderr, "too few overlapping users to train\n");
    return 1;
  }

  // 2. Standard §5.2 split and a compact training configuration.
  Rng rng(17);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  core::OmniMatchConfig config;
  config.epochs = flags.GetInt("epochs", 6);
  config.embed_dim = 16;
  config.cnn_channels = 12;
  config.feature_dim = 24;
  config.doc_len = 48;
  config.item_doc_len = 48;

  core::OmniMatchTrainer trainer(config, &cross, split);
  Status status = trainer.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  core::TrainStats stats = trainer.Train();
  eval::Metrics test = trainer.Evaluate(split.test_users);
  std::printf("Trained %d steps in %.1f s — cold-start test RMSE %.3f, MAE "
              "%.3f over %d ratings\n",
              stats.steps, stats.train_seconds, test.rmse, test.mae,
              test.count);
  return 0;
}
