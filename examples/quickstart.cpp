// Quickstart: generate a synthetic cross-domain corpus, train OmniMatch on
// the Books -> Movies scenario, and evaluate cold-start users.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--epochs=8] [--seed=7] [--verbose]
//
// Crash-safe training: add --checkpoint_every=2 --checkpoint_dir=ckpt to
// save a resumable checkpoint every 2 epochs, and --resume (latest in the
// checkpoint dir) or --resume=path/to/checkpoint_epoch4.omck to continue a
// killed run bit-for-bit.
//
// Self-healing training: the numerical-health guard is on by default
// (disable with --guard=false); tune --max_recoveries=3 --lr_backoff=0.5.
// Rehearse a failure with deterministic fault injection, e.g.
//   --faults="grad@5" (NaN gradient at step 5) or
//   --faults="loss@8:mag=20" (20x loss spike at step 8).
//
// Observability: --metrics_out=metrics.jsonl writes a JSONL snapshot of the
// phase histograms / pool counters when training finishes;
// --trace_out=trace.json writes a Chrome trace_event file — open it in
// chrome://tracing or https://ui.perfetto.dev to see the per-step timeline.

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "eval/table.h"

using namespace omnimatch;

int main(int argc, char** argv) {
  FlagParser flags;
  Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n", parse_status.ToString().c_str());
    return 1;
  }
  ApplyThreadsFlag(flags);
  Status fault_status = ApplyFaultsFlag(flags);
  if (!fault_status.ok()) {
    std::fprintf(stderr, "--faults: %s\n", fault_status.ToString().c_str());
    return 1;
  }

  // 1. Generate a small Amazon-like world and pick a scenario.
  data::SyntheticConfig data_config = data::SyntheticConfig::AmazonLike();
  data_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  data::SyntheticWorld world(data_config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  std::printf("Scenario %s: %zu source reviews, %zu target reviews, %zu "
              "overlapping users\n",
              cross.ScenarioName().c_str(), cross.source().num_reviews(),
              cross.target().num_reviews(), cross.overlapping_users().size());

  // 2. Split overlapping users: 80%% train, 20%% cold-start (§5.2).
  Rng split_rng(data_config.seed + 1);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  std::printf("Split: %zu train / %zu validation / %zu test users\n",
              split.train_users.size(), split.validation_users.size(),
              split.test_users.size());

  // 3. Configure and train OmniMatch.
  core::OmniMatchConfig config;
  config.epochs = flags.GetInt("epochs", config.epochs);
  config.learning_rate = static_cast<float>(
      flags.GetDouble("lr", config.learning_rate));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.verbose = flags.GetBool("verbose", false);
  config.dropout = static_cast<float>(
      flags.GetDouble("dropout", config.dropout));
  config.aux_augmentation_prob = static_cast<float>(
      flags.GetDouble("aux_prob", config.aux_augmentation_prob));
  config.alpha = static_cast<float>(flags.GetDouble("alpha", config.alpha));
  config.beta = static_cast<float>(flags.GetDouble("beta", config.beta));
  if (flags.GetBool("adam", false)) {
    config.optimizer = core::OptimizerKind::kAdam;
    config.adam_lr = static_cast<float>(
        flags.GetDouble("adam_lr", config.adam_lr));
  }
  config.checkpoint_every = flags.GetInt("checkpoint_every", 0);
  config.checkpoint_dir = flags.GetString("checkpoint_dir", "checkpoints");
  config.guard_enabled = flags.GetBool("guard", config.guard_enabled);
  config.max_recoveries = flags.GetInt("max_recoveries",
                                       config.max_recoveries);
  config.lr_backoff = static_cast<float>(
      flags.GetDouble("lr_backoff", config.lr_backoff));
  config.metrics_out = flags.GetString("metrics_out", "");
  config.trace_out = flags.GetString("trace_out", "");
  core::OmniMatchTrainer trainer(config, &cross, split);
  Status status = trainer.Prepare();
  if (!status.ok()) {
    std::fprintf(stderr, "Prepare failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.Has("resume")) {
    // Bare --resume picks the newest checkpoint in the checkpoint dir;
    // --resume=<path> loads that exact file.
    std::string resume_path = flags.GetString("resume", "");
    if (resume_path.empty() || resume_path == "true") {
      Result<std::string> latest =
          core::FindLatestCheckpoint(config.checkpoint_dir);
      if (!latest.ok()) {
        std::fprintf(stderr, "--resume: %s\n",
                     latest.status().ToString().c_str());
        return 1;
      }
      resume_path = latest.value();
    }
    Status resumed = trainer.LoadCheckpoint(resume_path);
    if (!resumed.ok()) {
      std::fprintf(stderr, "LoadCheckpoint failed: %s\n",
                   resumed.ToString().c_str());
      return 1;
    }
    std::printf("Resumed from %s (epoch %d)\n", resume_path.c_str(),
                trainer.epochs_completed());
  }
  core::TrainStats stats = trainer.Train();
  std::printf("Trained %d steps in %.1f s (final loss %.4f)\n", stats.steps,
              stats.train_seconds,
              stats.total_loss.empty() ? 0.0 : stats.total_loss.back());
  if (!config.metrics_out.empty()) {
    std::printf("Metrics snapshot written to %s\n",
                config.metrics_out.c_str());
  }
  if (!config.trace_out.empty()) {
    std::printf("Chrome trace written to %s (open in chrome://tracing)\n",
                config.trace_out.c_str());
  }
  for (const core::RecoveryEvent& e : stats.recovery_events) {
    std::printf("Guard recovery at step %lld: %s (observed %.4g), "
                "lr %.4g -> %.4g\n",
                static_cast<long long>(e.step),
                core::FaultReasonName(e.reason), e.observed,
                static_cast<double>(e.lr_before),
                static_cast<double>(e.lr_after));
  }
  if (stats.guard_gave_up) {
    std::fprintf(stderr,
                 "Guard exhausted --max_recoveries=%d; training stopped on "
                 "the last good state.\n",
                 config.max_recoveries);
  }

  // 4. Evaluate on the cold-start validation and test users.
  if (flags.GetBool("eval_train", false)) {
    eval::Metrics train_metrics = trainer.Evaluate(split.train_users);
    std::printf("train-user RMSE %.3f MAE %.3f (in-sample, real target docs)\n",
                train_metrics.rmse, train_metrics.mae);
  }
  if (flags.GetBool("oracle_docs", false)) {
    trainer.UseOracleTargetDocs(split.validation_users);
    trainer.UseOracleTargetDocs(split.test_users);
  }
  eval::Metrics valid = trainer.Evaluate(split.validation_users);
  eval::Metrics test = trainer.Evaluate(split.test_users);
  eval::AsciiTable table;
  table.SetHeader({"Cold-start set", "RMSE", "MAE", "#ratings"});
  table.AddRow({"validation", eval::FormatMetric(valid.rmse),
                eval::FormatMetric(valid.mae), std::to_string(valid.count)});
  table.AddRow({"test", eval::FormatMetric(test.rmse),
                eval::FormatMetric(test.mae), std::to_string(test.count)});
  std::printf("%s", table.Render().c_str());

  // 5. Predict a single rating for one cold-start test user.
  int cold_user = split.test_users.front();
  const auto& records = cross.target().RecordsOfUser(cold_user);
  if (!records.empty()) {
    const data::Review& r = cross.target().reviews()[records[0]];
    float pred = trainer.PredictRating(cold_user, r.item_id);
    std::printf("Cold user %d on item %d: predicted %.2f, actual %.0f\n",
                cold_user, r.item_id, pred, r.rating);
  }
  return 0;
}
