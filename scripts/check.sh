#!/usr/bin/env bash
# Full verification matrix: Release build + tests, then the thread pool and
# nn kernels under ThreadSanitizer, AddressSanitizer and UBSan, plus a
# serve-path fault-injection lane that re-runs the serving suite with every
# probe point armed via OMNIMATCH_FAULTS.
#
#   scripts/check.sh            # everything
#   scripts/check.sh release    # just the Release build + full ctest
#   scripts/check.sh portable   # scalar-forced dispatch lane (reuses build/)
#   scripts/check.sh tsan       # just the TSan config
#   scripts/check.sh asan       # just the ASan config
#   scripts/check.sh ubsan      # just the UBSan config
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Arms every serve-path probe point (common/fault.h): one rejected
# admission, forced cached-only and global-mean batches, two slow batches,
# and a failing snapshot swap. ServeFaultEnvTest asserts the server answers
# every request with an explicit status and keeps serving throughout.
SERVE_FAULTS="queue_admit@2:count=2;executor_score@3:mag=1,count=2;executor_score@8:mag=2,count=2;serve_slow@5:mag=20,count=2;snapshot_load@0"

run_release() {
  echo "=== Release build + full test suite ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}"
  echo "=== Recorded-graph executor smoke benchmark ==="
  # Self-checking: fails unless replayed steps are at least as fast as eager
  # at every thread count AND the replay path allocated zero tensor nodes.
  # The 1.0 floor (not the ~1.5-3x a quiet machine shows) keeps the gate
  # meaningful on loaded CI runners.
  ./build/bench/bench_graph --reps=3 --check_speedup_min=1.0 \
    --out=build/BENCH_graph.json
  echo "=== Serving runtime smoke benchmark (overload + hot swap) ==="
  # Self-checking: fails unless every request resolved (zero drops), every
  # response was bit-identical to the single-threaded reference for its
  # snapshot version or explicitly degraded/rejected, the overload phase's
  # fallback-tier p99 stayed within budget, and the mid-traffic swap ledger
  # reads exactly one install + two rollbacks (corrupt and injected).
  ./build/bench/bench_serve --smoke --check \
    --out=build/BENCH_serve.json
  echo "=== Serve fault-injection lane (release) ==="
  OMNIMATCH_FAULTS="${SERVE_FAULTS}" ./build/tests/serve_fault_test \
    --gtest_filter='ServeFaultEnvTest.*'
  echo "=== Algorithm-1 index smoke benchmark ==="
  # Self-checking: fails unless the CSR like-minded path is bit-identical
  # to the retired scan path on the Table-2 config and at least matches its
  # throughput at 10^5 users. The 1.0 floor (vs the >=10x a quiet machine
  # shows) keeps the gate meaningful on loaded CI runners.
  ./build/bench/bench_auxgen --check --check_speedup_min=1.0 --reps=2 \
    --out=build/BENCH_auxgen.json
  echo "=== Quantized-inference smoke benchmark (int8 vs float32) ==="
  # Self-checking: fails unless the --quant snapshot carries int8-planned
  # nodes, quant scores are finite and bit-identical across runs and thread
  # counts, the RMSE delta vs float32 stays under 0.01, the scoring-head
  # speedup reaches the 2.0x acceptance floor (float and int8 are timed in
  # the same run, so the ratio holds up on a loaded runner), and end-to-end
  # serving does not regress.
  ./build/bench/bench_quant --smoke --check \
    --out=build/BENCH_quant.json
  echo "=== Million-user out-of-core smoke (RSS-capped) ==="
  # Streams a million-user world to OMDS files, maps them back, and drives
  # split + parallel auxiliary generation + checkpoint + serve scoring
  # entirely against the mapped backend. Fails if peak RSS exceeds the
  # fixed 1 GB budget (the in-memory path needs several times that).
  local smoke_dir="${TMPDIR:-/tmp}/omnimatch_million_smoke"
  ./build/bench/bench_auxgen --million_smoke --users=1000000 \
    --max_rss_mb=1024 --workdir="${smoke_dir}" \
    --out=build/BENCH_auxgen_million.json
  rm -rf "${smoke_dir}"
}

# Portable lane: same (portable-flags) Release binaries, but with the
# runtime dispatcher pinned to the scalar int8 kernel via OMNIMATCH_ISA.
# This is what the build does on a CPU with no AVX2/AVX-512/NEON, so it
# proves the portability story end to end: the kernel suites must pass
# bit-identically, and bench_quant's accuracy/determinism gates must hold.
# The speedup floors are zeroed — scalar int8 legitimately loses to float
# (the win is SIMD), which is exactly why dispatch exists.
run_portable() {
  echo "=== Portable lane: scalar-forced dispatch ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build -j "${JOBS}" --target nn_test serve_test bench_quant
  OMNIMATCH_ISA=scalar ./build/tests/nn_test
  OMNIMATCH_ISA=scalar ./build/tests/serve_test
  OMNIMATCH_ISA=scalar ./build/bench/bench_quant --smoke --check \
    --speedup_min=0 --serving_min=0 \
    --out=build/BENCH_quant_scalar.json
}

# Sanitizer configs only build the test tree (benchmarks and examples add
# nothing to coverage and double the build time). TSan exercises the thread
# pool, the blocked GEMM, every parallel op, the recorded-graph executor
# (record/replay/arena, in nn_test), the sharded metrics / trace-ring
# concurrency tests through common_test/nn_test/obs_test, and the inference
# server's request-thread/executor-pool/cache/hot-swap handoffs through
# serve_test + serve_fault_test (the concurrent-submitter bit-identity test
# and the swap-under-traffic version-consistency test are the interesting
# ones); ASan and UBSan additionally run the trainer-level suites —
# including the fault-injection tests and the graph-vs-eager trainer
# equivalence tests, so every guard rollback/retry path and the compiled
# replay path are walked under instrumentation. Each sanitizer lane then
# re-runs the serving suite's env-fault test with every serve probe point
# armed, so the degraded/rollback paths themselves run instrumented.
run_sanitizer() {
  local kind="$1" dir="build-$1" ; shift
  echo "=== ${kind} build (${dir}) ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DOMNIMATCH_SANITIZE="${kind}" \
    -DOMNIMATCH_BUILD_BENCHMARKS=OFF -DOMNIMATCH_BUILD_EXAMPLES=OFF \
    > /dev/null
  cmake --build "${dir}" -j "${JOBS}" --target "$@"
  for t in "$@"; do
    echo "--- ${kind}: ${t} ---"
    "./${dir}/tests/${t}"
  done
  echo "--- ${kind}: serve fault-injection lane ---"
  OMNIMATCH_FAULTS="${SERVE_FAULTS}" "./${dir}/tests/serve_fault_test" \
    --gtest_filter='ServeFaultEnvTest.*'
}

case "${MODE}" in
  release)  run_release ;;
  portable) run_portable ;;
  tsan)    run_sanitizer thread common_test nn_test obs_test serve_test serve_fault_test ;;
  asan)    run_sanitizer address common_test nn_test core_test obs_test serve_test serve_fault_test ;;
  ubsan)   run_sanitizer undefined common_test nn_test core_test obs_test serve_test serve_fault_test ;;
  all)
    run_release
    run_portable
    run_sanitizer thread common_test nn_test obs_test serve_test serve_fault_test
    run_sanitizer address common_test nn_test core_test obs_test serve_test serve_fault_test
    run_sanitizer undefined common_test nn_test core_test obs_test serve_test serve_fault_test
    ;;
  *) echo "usage: $0 [all|release|portable|tsan|asan|ubsan]" >&2 ; exit 2 ;;
esac

echo "OK (${MODE})"
