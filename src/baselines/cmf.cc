#include "baselines/cmf.h"

namespace omnimatch {
namespace baselines {

Status Cmf::Fit(const data::CrossDomainDataset& cross,
                const data::ColdStartSplit& split) {
  std::vector<RatingTriple> ratings = VisibleRatings(
      cross, split, /*include_source=*/true, /*include_target=*/true);
  if (ratings.empty()) {
    return Status::FailedPrecondition("CMF: no visible ratings");
  }
  model_ = std::make_unique<MatrixFactorization>(config_);
  model_->Fit(ratings);
  return Status::OK();
}

float Cmf::PredictRating(int user_id, int item_id) const {
  return model_->Predict(user_id, item_id);
}

}  // namespace baselines
}  // namespace omnimatch
