#ifndef OMNIMATCH_BASELINES_CMF_H_
#define OMNIMATCH_BASELINES_CMF_H_

#include <memory>

#include "baselines/mf.h"
#include "baselines/recommender.h"

namespace omnimatch {
namespace baselines {

/// Collective Matrix Factorization (Singh & Gordon 2008; §5.3).
///
/// Shares user factors across domains by factorizing the source and target
/// rating matrices *simultaneously* — implemented as one biased MF over the
/// union of both domains' visible ratings (item ids are disjoint across
/// domains, so item factors stay per-domain automatically). Cold-start users
/// obtain factors from their source records alone.
class Cmf : public Recommender {
 public:
  Cmf() { config_.use_biases = false; }
  explicit Cmf(MfConfig config) : config_(config) {
    config_.use_biases = false;
  }

  Status Fit(const data::CrossDomainDataset& cross,
             const data::ColdStartSplit& split) override;
  float PredictRating(int user_id, int item_id) const override;
  std::string name() const override { return "CMF"; }

 private:
  MfConfig config_;
  std::unique_ptr<MatrixFactorization> model_;
};

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_CMF_H_
