#include "baselines/emcdr.h"

#include <algorithm>

#include "common/check.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/ops.h"

namespace omnimatch {
namespace baselines {

Emcdr::Emcdr() : config_() {}
Emcdr::Emcdr(const Config& config) : config_(config) {}

Status Emcdr::Fit(const data::CrossDomainDataset& cross,
                  const data::ColdStartSplit& split) {
  // Stage 1-2: per-domain latent factor models.
  std::vector<RatingTriple> source_ratings =
      VisibleRatings(cross, split, true, false);
  std::vector<RatingTriple> target_ratings =
      VisibleRatings(cross, split, false, true);
  if (source_ratings.empty() || target_ratings.empty()) {
    return Status::FailedPrecondition("EMCDR: a domain has no ratings");
  }
  source_mf_ = std::make_unique<MatrixFactorization>(config_.mf);
  source_mf_->Fit(source_ratings);
  MfConfig target_config = config_.mf;
  target_config.seed = config_.mf.seed + 1;
  target_mf_ = std::make_unique<MatrixFactorization>(target_config);
  target_mf_->Fit(target_ratings);

  // Stage 3: MLP mapping on overlapping training users.
  std::vector<int> overlap;
  for (int u : split.train_users) {
    if (source_mf_->HasUser(u) && target_mf_->HasUser(u)) {
      overlap.push_back(u);
    }
  }
  if (overlap.empty()) {
    return Status::FailedPrecondition("EMCDR: no overlapping training users");
  }

  int d = config_.mf.dim;
  Rng rng(config_.seed);
  mapping_ = std::make_unique<nn::Mlp>(
      std::vector<int>{d, config_.mapping_hidden, d}, /*dropout=*/0.0f, &rng);
  nn::Adam optimizer(mapping_->Parameters(), config_.mapping_lr);

  std::vector<float> inputs, targets;
  inputs.reserve(overlap.size() * static_cast<size_t>(d));
  targets.reserve(overlap.size() * static_cast<size_t>(d));
  for (int u : overlap) {
    std::vector<float> s = source_mf_->UserFactor(u);
    std::vector<float> t = target_mf_->UserFactor(u);
    inputs.insert(inputs.end(), s.begin(), s.end());
    targets.insert(targets.end(), t.begin(), t.end());
  }
  nn::Tensor x = nn::Tensor::FromData(
      {static_cast<int>(overlap.size()), d}, inputs);
  for (int epoch = 0; epoch < config_.mapping_epochs; ++epoch) {
    optimizer.ZeroGrad();
    nn::Tensor pred = mapping_->Forward(x);
    nn::Tensor loss = nn::MseLoss(pred, targets);
    loss.Backward();
    optimizer.Step();
  }

  // Precompute mapped factors for every user with a source factor.
  mapped_factor_.clear();
  mapping_->set_training(false);
  for (int u : cross.source().users()) {
    if (!source_mf_->HasUser(u)) continue;
    nn::Tensor input =
        nn::Tensor::FromData({1, d}, source_mf_->UserFactor(u));
    nn::Tensor out = mapping_->Forward(input);
    mapped_factor_[u] = out.data();
  }
  return Status::OK();
}

float Emcdr::PredictRating(int user_id, int item_id) const {
  float pred = target_mf_->global_mean();
  if (target_mf_->HasItem(item_id)) {
    pred += target_mf_->ItemBias(item_id);
    auto it = mapped_factor_.find(user_id);
    if (it != mapped_factor_.end()) {
      std::vector<float> q = target_mf_->ItemFactor(item_id);
      for (size_t k = 0; k < q.size(); ++k) pred += it->second[k] * q[k];
    }
  }
  return std::clamp(pred, 1.0f, 5.0f);
}

}  // namespace baselines
}  // namespace omnimatch
