#ifndef OMNIMATCH_BASELINES_EMCDR_H_
#define OMNIMATCH_BASELINES_EMCDR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/mf.h"
#include "baselines/recommender.h"
#include "nn/layers.h"

namespace omnimatch {
namespace baselines {

/// EMCDR (Man et al. 2017; §5.3): Embedding and Mapping approach.
///
/// Three stages:
///  1. biased MF on the source domain (all users);
///  2. biased MF on the target domain (training users only);
///  3. an MLP mapping f: source user factor -> target user factor, fit by
///     MSE on the overlapping training users.
/// A cold-start user's target factor is f(source factor); prediction is
/// μ_t + b_i + f(p_u^s) · q_i. Error accumulates across the stages when
/// overlap is small — the behaviour Table 4 probes.
class Emcdr : public Recommender {
 public:
  struct Config {
    MfConfig mf;
    int mapping_hidden = 32;
    int mapping_epochs = 120;
    float mapping_lr = 5e-3f;
    uint64_t seed = 17;
  };

  Emcdr();
  explicit Emcdr(const Config& config);

  Status Fit(const data::CrossDomainDataset& cross,
             const data::ColdStartSplit& split) override;
  float PredictRating(int user_id, int item_id) const override;
  std::string name() const override { return "EMCDR"; }

 private:
  Config config_;
  std::unique_ptr<MatrixFactorization> source_mf_;
  std::unique_ptr<MatrixFactorization> target_mf_;
  std::unique_ptr<nn::Mlp> mapping_;
  /// Mapped target factor per user with source history (cold users too).
  std::unordered_map<int, std::vector<float>> mapped_factor_;
};

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_EMCDR_H_
