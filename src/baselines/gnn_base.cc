#include "baselines/gnn_base.h"

#include <algorithm>

#include "common/check.h"
#include "nn/init.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace omnimatch {
namespace baselines {

Status EmbeddingPropagationModel::Fit(const data::CrossDomainDataset& cross,
                                      const data::ColdStartSplit& split) {
  std::vector<RatingTriple> ratings = TrainingRatings(cross, split);
  if (ratings.empty()) {
    return Status::FailedPrecondition(name() + ": no training ratings");
  }

  // Dense node ids: users first, then items.
  user_node_.clear();
  item_node_.clear();
  for (const RatingTriple& r : ratings) {
    user_node_.emplace(r.user, static_cast<int>(user_node_.size()));
    item_node_.emplace(r.item, static_cast<int>(item_node_.size()));
  }
  int num_users = static_cast<int>(user_node_.size());
  int num_items = static_cast<int>(item_node_.size());

  std::vector<std::pair<int, int>> edges;
  edges.reserve(ratings.size());
  double sum = 0.0;
  for (const RatingTriple& r : ratings) {
    edges.emplace_back(user_node_[r.user], item_node_[r.item]);
    sum += r.rating;
  }
  mean_ = static_cast<float>(sum / ratings.size());
  graph_ = std::make_unique<graph::InteractionGraph>(num_users, num_items,
                                                     edges);
  // Non-owning alias: graph_ outlives adj_ within this object.
  adj_ = std::shared_ptr<const graph::Csr>(&graph_->normalized_adjacency(),
                                           [](const graph::Csr*) {});

  Rng rng(config_.seed);
  int n = graph_->num_nodes();
  embeddings_ = nn::Tensor::Zeros({n, config_.dim}, /*requires_grad=*/true);
  nn::NormalInit(&embeddings_, 0.0f, 0.1f, &rng);
  bias_ = nn::Tensor::Zeros({n, 1}, /*requires_grad=*/true);
  OnGraphReady(&rng);

  std::vector<nn::Tensor> params = {embeddings_, bias_};
  for (const nn::Tensor& p : ExtraParameters()) params.push_back(p);
  nn::Adam optimizer(params, config_.lr, 0.9f, 0.999f, 1e-8f,
                     config_.weight_decay);

  std::vector<int> order(ratings.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config_.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config_.batch_size));
      optimizer.ZeroGrad();
      nn::Tensor final_emb = Propagate(embeddings_);

      std::vector<int> user_rows, item_rows;
      std::vector<float> gold;
      for (size_t j = start; j < end; ++j) {
        const RatingTriple& r = ratings[static_cast<size_t>(order[j])];
        user_rows.push_back(user_node_[r.user]);
        item_rows.push_back(num_users + item_node_[r.item]);
        gold.push_back(r.rating - mean_);
      }
      nn::Tensor eu = nn::Gather(final_emb, user_rows);
      nn::Tensor ei = nn::Gather(final_emb, item_rows);
      nn::Tensor bu = nn::Gather(bias_, user_rows);
      nn::Tensor bi = nn::Gather(bias_, item_rows);
      nn::Tensor pred =
          nn::Add(nn::RowSum(nn::Mul(eu, ei)), nn::Add(bu, bi));
      nn::Tensor loss = nn::MseLoss(pred, gold);
      loss.Backward();
      optimizer.Step();
    }
  }

  // Cache final embeddings for prediction.
  nn::Tensor final_emb = Propagate(embeddings_.DetachCopy());
  final_embeddings_ = final_emb.data();
  final_dim_ = final_emb.dim(1);
  return Status::OK();
}

int EmbeddingPropagationModel::NodeOfUser(int user_id) const {
  auto it = user_node_.find(user_id);
  return it == user_node_.end() ? -1 : it->second;
}

int EmbeddingPropagationModel::NodeOfItem(int item_id) const {
  auto it = item_node_.find(item_id);
  return it == item_node_.end()
             ? -1
             : static_cast<int>(user_node_.size()) + it->second;
}

float EmbeddingPropagationModel::PredictRating(int user_id,
                                               int item_id) const {
  float pred = mean_;
  int u = NodeOfUser(user_id);
  int i = NodeOfItem(item_id);
  if (u >= 0) pred += bias_.data()[static_cast<size_t>(u)];
  if (i >= 0) pred += bias_.data()[static_cast<size_t>(i)];
  if (u >= 0 && i >= 0) {
    const float* eu =
        final_embeddings_.data() + static_cast<size_t>(u) * final_dim_;
    const float* ei =
        final_embeddings_.data() + static_cast<size_t>(i) * final_dim_;
    for (int k = 0; k < final_dim_; ++k) pred += eu[k] * ei[k];
  }
  return std::clamp(pred, 1.0f, 5.0f);
}

}  // namespace baselines
}  // namespace omnimatch
