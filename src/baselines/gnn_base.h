#ifndef OMNIMATCH_BASELINES_GNN_BASE_H_
#define OMNIMATCH_BASELINES_GNN_BASE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/recommender.h"
#include "common/rng.h"
#include "graph/bipartite.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace baselines {

/// Hyperparameters shared by the graph-convolutional baselines.
struct GnnConfig {
  int dim = 16;
  int layers = 2;
  int epochs = 30;
  float lr = 5e-3f;
  float weight_decay = 1e-4f;
  int batch_size = 256;
  uint64_t seed = 23;
};

/// Shared machinery for NGCF / LightGCN / HeroGraph: dense node ids, the
/// normalized interaction graph, base embeddings and bias parameters, the
/// pointwise-MSE training loop, and the cached final embeddings used at
/// prediction time.
///
/// Subclasses implement Propagate() (their layer stack) and ExtraParameters()
/// (layer weights, empty for LightGCN). Prediction:
///   r̂ = μ + b_u + b_i + e_u · e_i,
/// degrading to μ + b_i for users outside the graph (single-domain models
/// never see cold-start users — exactly why their cold-start numbers are
/// flat in Tables 2-3).
class EmbeddingPropagationModel : public Recommender {
 public:
  explicit EmbeddingPropagationModel(const GnnConfig& config)
      : config_(config) {}

  Status Fit(const data::CrossDomainDataset& cross,
             const data::ColdStartSplit& split) override;
  float PredictRating(int user_id, int item_id) const override;

 protected:
  /// Ratings this model trains on (and whose users/items form the graph).
  virtual std::vector<RatingTriple> TrainingRatings(
      const data::CrossDomainDataset& cross,
      const data::ColdStartSplit& split) const = 0;

  /// Final node embeddings given base embeddings [N, dim]. The returned
  /// width may differ from dim (NGCF concatenates layers).
  virtual nn::Tensor Propagate(const nn::Tensor& base_embeddings) = 0;

  /// Trainable parameters beyond embeddings and biases.
  virtual std::vector<nn::Tensor> ExtraParameters() const { return {}; }

  /// Called once the graph shape is known, before training (NGCF builds its
  /// per-layer weights here).
  virtual void OnGraphReady(Rng* rng) { (void)rng; }

  const graph::InteractionGraph* interaction_graph() const {
    return graph_.get();
  }
  std::shared_ptr<const graph::Csr> adjacency() const { return adj_; }
  const GnnConfig& config() const { return config_; }

 private:
  int NodeOfUser(int user_id) const;  // -1 when absent
  int NodeOfItem(int item_id) const;  // -1 when absent

  GnnConfig config_;
  std::unordered_map<int, int> user_node_;
  std::unordered_map<int, int> item_node_;
  std::unique_ptr<graph::InteractionGraph> graph_;
  std::shared_ptr<const graph::Csr> adj_;

  nn::Tensor embeddings_;  // [N, dim] parameter
  nn::Tensor bias_;        // [N, 1] parameter
  float mean_ = 3.0f;

  // Cached after training for O(1) predictions.
  std::vector<float> final_embeddings_;
  int final_dim_ = 0;
};

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_GNN_BASE_H_
