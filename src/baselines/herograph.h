#ifndef OMNIMATCH_BASELINES_HEROGRAPH_H_
#define OMNIMATCH_BASELINES_HEROGRAPH_H_

#include "baselines/gnn_base.h"

namespace omnimatch {
namespace baselines {

/// HeroGraph (Cui et al. 2020; §5.3): a shared heterogeneous graph built by
/// collecting users' and items' interactions from *multiple domains*.
///
/// Users are shared nodes; items from both domains coexist in one graph
/// (item ids are already namespaced per domain). Propagation is
/// LightGCN-style over the joint graph. Because cold-start users have
/// source-domain edges, information flows to them across the shared graph —
/// making HeroGraph the strongest rating-only baseline for cold users, as
/// in the paper's tables.
class HeroGraph : public EmbeddingPropagationModel {
 public:
  explicit HeroGraph(const GnnConfig& config = GnnConfig())
      : EmbeddingPropagationModel(config) {}

  std::string name() const override { return "HeroGraph"; }

 protected:
  std::vector<RatingTriple> TrainingRatings(
      const data::CrossDomainDataset& cross,
      const data::ColdStartSplit& split) const override {
    return VisibleRatings(cross, split, /*include_source=*/true,
                          /*include_target=*/true);
  }

  nn::Tensor Propagate(const nn::Tensor& base_embeddings) override;
};

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_HEROGRAPH_H_
