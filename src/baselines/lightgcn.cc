#include "baselines/lightgcn.h"

#include "graph/propagate.h"
#include "nn/ops.h"

namespace omnimatch {
namespace baselines {

nn::Tensor LightGcn::Propagate(const nn::Tensor& base_embeddings) {
  // E_final = (E_0 + E_1 + ... + E_L) / (L + 1),  E_l = Â E_{l-1}.
  nn::Tensor layer = base_embeddings;
  nn::Tensor sum = base_embeddings;
  for (int l = 0; l < config().layers; ++l) {
    layer = graph::SparseMatMul(adjacency(), layer);
    sum = nn::Add(sum, layer);
  }
  return nn::Scale(sum, 1.0f / static_cast<float>(config().layers + 1));
}

}  // namespace baselines
}  // namespace omnimatch
