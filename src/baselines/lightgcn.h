#ifndef OMNIMATCH_BASELINES_LIGHTGCN_H_
#define OMNIMATCH_BASELINES_LIGHTGCN_H_

#include "baselines/gnn_base.h"

namespace omnimatch {
namespace baselines {

/// LightGCN (He et al. 2020; §5.3): graph convolution reduced to pure
/// neighborhood aggregation — no feature transforms, no nonlinearity. The
/// final embedding is the mean of the base embedding and every propagated
/// layer. Single-domain: trains on the *target* domain's visible ratings
/// only, so cold-start users are invisible to it.
class LightGcn : public EmbeddingPropagationModel {
 public:
  explicit LightGcn(const GnnConfig& config = GnnConfig())
      : EmbeddingPropagationModel(config) {}

  std::string name() const override { return "LIGHTGCN"; }

 protected:
  std::vector<RatingTriple> TrainingRatings(
      const data::CrossDomainDataset& cross,
      const data::ColdStartSplit& split) const override {
    return VisibleRatings(cross, split, /*include_source=*/false,
                          /*include_target=*/true);
  }

  nn::Tensor Propagate(const nn::Tensor& base_embeddings) override;
};

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_LIGHTGCN_H_
