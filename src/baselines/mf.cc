#include "baselines/mf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace omnimatch {
namespace baselines {

void MatrixFactorization::Fit(const std::vector<RatingTriple>& ratings) {
  OM_CHECK(!ratings.empty());
  Rng rng(config_.seed);

  user_index_.clear();
  item_index_.clear();
  for (const RatingTriple& r : ratings) {
    user_index_.emplace(r.user, static_cast<int>(user_index_.size()));
    item_index_.emplace(r.item, static_cast<int>(item_index_.size()));
  }
  int d = config_.dim;
  user_factors_.resize(user_index_.size() * static_cast<size_t>(d));
  item_factors_.resize(item_index_.size() * static_cast<size_t>(d));
  for (float& v : user_factors_) {
    v = static_cast<float>(rng.Normal(0.0, config_.init_std));
  }
  for (float& v : item_factors_) {
    v = static_cast<float>(rng.Normal(0.0, config_.init_std));
  }
  user_bias_.assign(user_index_.size(), 0.0f);
  item_bias_.assign(item_index_.size(), 0.0f);

  double sum = 0.0;
  for (const RatingTriple& r : ratings) sum += r.rating;
  mean_ = static_cast<float>(sum / ratings.size());

  std::vector<int> order(ratings.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (int idx : order) {
      const RatingTriple& r = ratings[static_cast<size_t>(idx)];
      int u = user_index_[r.user];
      int i = item_index_[r.item];
      float* p = user_factors_.data() + static_cast<size_t>(u) * d;
      float* q = item_factors_.data() + static_cast<size_t>(i) * d;
      float dot = 0.0f;
      for (int k = 0; k < d; ++k) dot += p[k] * q[k];
      float err = r.rating - (mean_ + user_bias_[u] + item_bias_[i] + dot);
      if (config_.use_biases) {
        user_bias_[u] += config_.lr * (err - config_.reg * user_bias_[u]);
        item_bias_[i] += config_.lr * (err - config_.reg * item_bias_[i]);
      }
      for (int k = 0; k < d; ++k) {
        float pk = p[k];
        p[k] += config_.lr * (err * q[k] - config_.reg * pk);
        q[k] += config_.lr * (err * pk - config_.reg * q[k]);
      }
    }
  }
}

float MatrixFactorization::Predict(int user_id, int item_id) const {
  float pred = mean_;
  auto uit = user_index_.find(user_id);
  auto iit = item_index_.find(item_id);
  if (uit != user_index_.end()) {
    pred += user_bias_[static_cast<size_t>(uit->second)];
  }
  if (iit != item_index_.end()) {
    pred += item_bias_[static_cast<size_t>(iit->second)];
  }
  if (uit != user_index_.end() && iit != item_index_.end()) {
    const float* p =
        user_factors_.data() + static_cast<size_t>(uit->second) * config_.dim;
    const float* q =
        item_factors_.data() + static_cast<size_t>(iit->second) * config_.dim;
    for (int k = 0; k < config_.dim; ++k) pred += p[k] * q[k];
  }
  return std::clamp(pred, 1.0f, 5.0f);
}

std::vector<float> MatrixFactorization::UserFactor(int user_id) const {
  auto it = user_index_.find(user_id);
  OM_CHECK(it != user_index_.end()) << "unknown user " << user_id;
  const float* p =
      user_factors_.data() + static_cast<size_t>(it->second) * config_.dim;
  return std::vector<float>(p, p + config_.dim);
}

std::vector<float> MatrixFactorization::ItemFactor(int item_id) const {
  auto it = item_index_.find(item_id);
  OM_CHECK(it != item_index_.end()) << "unknown item " << item_id;
  const float* q =
      item_factors_.data() + static_cast<size_t>(it->second) * config_.dim;
  return std::vector<float>(q, q + config_.dim);
}

float MatrixFactorization::UserBias(int user_id) const {
  auto it = user_index_.find(user_id);
  OM_CHECK(it != user_index_.end()) << "unknown user " << user_id;
  return user_bias_[static_cast<size_t>(it->second)];
}

float MatrixFactorization::ItemBias(int item_id) const {
  auto it = item_index_.find(item_id);
  OM_CHECK(it != item_index_.end()) << "unknown item " << item_id;
  return item_bias_[static_cast<size_t>(it->second)];
}

}  // namespace baselines
}  // namespace omnimatch
