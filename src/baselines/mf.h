#ifndef OMNIMATCH_BASELINES_MF_H_
#define OMNIMATCH_BASELINES_MF_H_

#include <unordered_map>
#include <vector>

#include "baselines/recommender.h"
#include "common/rng.h"

namespace omnimatch {
namespace baselines {

/// Hyperparameters for biased matrix factorization trained by SGD.
struct MfConfig {
  int dim = 16;
  float lr = 0.015f;
  float reg = 0.05f;
  int epochs = 40;
  float init_std = 0.1f;
  /// Learn per-user/per-item bias terms. On for EMCDR/PTUPCDR's biased MF;
  /// off for CMF, whose original formulation (Singh & Gordon 2008)
  /// factorizes the rating matrices without explicit biases.
  bool use_biases = true;
  uint64_t seed = 13;
};

/// Biased matrix factorization: r̂ = μ + b_u + b_i + p_u · q_i, trained with
/// plain SGD (no autograd — the closed-form gradients are faster and this
/// model is shared by CMF, EMCDR and PTUPCDR).
///
/// Unknown users/items at prediction time degrade gracefully: missing
/// factors contribute nothing, missing biases contribute nothing, so a fully
/// unknown pair predicts μ.
class MatrixFactorization {
 public:
  explicit MatrixFactorization(const MfConfig& config) : config_(config) {}

  /// Trains from scratch on the triples.
  void Fit(const std::vector<RatingTriple>& ratings);

  float Predict(int user_id, int item_id) const;

  bool HasUser(int user_id) const { return user_index_.count(user_id) > 0; }
  bool HasItem(int item_id) const { return item_index_.count(item_id) > 0; }

  /// Latent factor of a known user (OM_CHECKs existence).
  std::vector<float> UserFactor(int user_id) const;
  /// Latent factor of a known item (OM_CHECKs existence).
  std::vector<float> ItemFactor(int item_id) const;
  float UserBias(int user_id) const;
  float ItemBias(int item_id) const;
  float global_mean() const { return mean_; }
  int dim() const { return config_.dim; }

 private:
  MfConfig config_;
  float mean_ = 3.0f;
  std::unordered_map<int, int> user_index_;
  std::unordered_map<int, int> item_index_;
  std::vector<float> user_factors_;  // [num_users * dim]
  std::vector<float> item_factors_;  // [num_items * dim]
  std::vector<float> user_bias_;
  std::vector<float> item_bias_;
};

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_MF_H_
