#include "baselines/ngcf.h"

#include "graph/propagate.h"
#include "nn/ops.h"

namespace omnimatch {
namespace baselines {

void Ngcf::OnGraphReady(Rng* rng) {
  w1_.clear();
  w2_.clear();
  for (int l = 0; l < config().layers; ++l) {
    w1_.push_back(
        std::make_unique<nn::Linear>(config().dim, config().dim, rng));
    w2_.push_back(
        std::make_unique<nn::Linear>(config().dim, config().dim, rng));
  }
}

nn::Tensor Ngcf::Propagate(const nn::Tensor& base_embeddings) {
  std::vector<nn::Tensor> layers = {base_embeddings};
  nn::Tensor e = base_embeddings;
  for (int l = 0; l < config().layers; ++l) {
    nn::Tensor neigh = graph::SparseMatMul(adjacency(), e);  // Â E
    nn::Tensor self_plus = nn::Add(neigh, e);                // (Â + I) E
    nn::Tensor interact = nn::Mul(neigh, e);                 // Â E ⊙ E
    e = nn::LeakyRelu(
        nn::Add(w1_[static_cast<size_t>(l)]->Forward(self_plus),
                w2_[static_cast<size_t>(l)]->Forward(interact)));
    layers.push_back(e);
  }
  return nn::ConcatCols(layers);
}

std::vector<nn::Tensor> Ngcf::ExtraParameters() const {
  std::vector<nn::Tensor> out;
  for (size_t l = 0; l < w1_.size(); ++l) {
    for (const nn::Tensor& p : w1_[l]->Parameters()) out.push_back(p);
    for (const nn::Tensor& p : w2_[l]->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace baselines
}  // namespace omnimatch
