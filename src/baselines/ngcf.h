#ifndef OMNIMATCH_BASELINES_NGCF_H_
#define OMNIMATCH_BASELINES_NGCF_H_

#include <memory>

#include "baselines/gnn_base.h"
#include "nn/layers.h"

namespace omnimatch {
namespace baselines {

/// NGCF (Wang et al. 2019; §5.3): Neural Graph Collaborative Filtering.
///
/// Each layer l computes
///   E_l = LeakyReLU( (Â + I) E_{l-1} W1_l + (Â E_{l-1}) ⊙ E_{l-1} W2_l )
/// and the final representation concatenates all layers. Single-domain on
/// the target side, like LightGCN.
class Ngcf : public EmbeddingPropagationModel {
 public:
  explicit Ngcf(const GnnConfig& config = GnnConfig())
      : EmbeddingPropagationModel(config) {}

  std::string name() const override { return "NGCF"; }

 protected:
  std::vector<RatingTriple> TrainingRatings(
      const data::CrossDomainDataset& cross,
      const data::ColdStartSplit& split) const override {
    return VisibleRatings(cross, split, /*include_source=*/false,
                          /*include_target=*/true);
  }

  void OnGraphReady(Rng* rng) override;
  nn::Tensor Propagate(const nn::Tensor& base_embeddings) override;
  std::vector<nn::Tensor> ExtraParameters() const override;

 private:
  std::vector<std::unique_ptr<nn::Linear>> w1_;
  std::vector<std::unique_ptr<nn::Linear>> w2_;
};

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_NGCF_H_
