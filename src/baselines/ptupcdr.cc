#include "baselines/ptupcdr.h"

#include <algorithm>

#include "common/check.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/ops.h"

namespace omnimatch {
namespace baselines {

Ptupcdr::Ptupcdr() : config_() {}
Ptupcdr::Ptupcdr(const Config& config) : config_(config) {}

std::vector<float> Ptupcdr::CharacteristicVector(
    const data::CrossDomainDataset& cross, int user_id) const {
  int d = config_.mf.dim;
  std::vector<float> c(static_cast<size_t>(d), 0.0f);
  int count = 0;
  for (int idx : cross.source().RecordsOfUser(user_id)) {
    int item = cross.source().ReviewItem(static_cast<size_t>(idx));
    if (!source_mf_->HasItem(item)) continue;
    std::vector<float> q = source_mf_->ItemFactor(item);
    for (int k = 0; k < d; ++k) c[static_cast<size_t>(k)] += q[k];
    ++count;
  }
  if (count > 0) {
    for (float& v : c) v /= static_cast<float>(count);
  }
  return c;
}

Status Ptupcdr::Fit(const data::CrossDomainDataset& cross,
                    const data::ColdStartSplit& split) {
  std::vector<RatingTriple> source_ratings =
      VisibleRatings(cross, split, true, false);
  std::vector<RatingTriple> target_ratings =
      VisibleRatings(cross, split, false, true);
  if (source_ratings.empty() || target_ratings.empty()) {
    return Status::FailedPrecondition("PTUPCDR: a domain has no ratings");
  }
  source_mf_ = std::make_unique<MatrixFactorization>(config_.mf);
  source_mf_->Fit(source_ratings);
  MfConfig target_config = config_.mf;
  target_config.seed = config_.mf.seed + 1;
  target_mf_ = std::make_unique<MatrixFactorization>(target_config);
  target_mf_->Fit(target_ratings);

  int d = config_.mf.dim;
  Rng rng(config_.seed);

  // Warm start: a global source->target factor mapping trained by MSE on
  // overlapping training users (as in EMCDR); the meta bridge then learns a
  // personalized residual on top of it via the task loss.
  global_mapping_ = std::make_unique<nn::Mlp>(
      std::vector<int>{d, config_.meta_hidden, d}, /*dropout=*/0.0f, &rng);
  {
    std::vector<float> inputs, targets;
    int count = 0;
    for (int u : split.train_users) {
      if (!source_mf_->HasUser(u) || !target_mf_->HasUser(u)) continue;
      std::vector<float> s = source_mf_->UserFactor(u);
      std::vector<float> t = target_mf_->UserFactor(u);
      inputs.insert(inputs.end(), s.begin(), s.end());
      targets.insert(targets.end(), t.begin(), t.end());
      ++count;
    }
    if (count == 0) {
      return Status::FailedPrecondition(
          "PTUPCDR: no overlapping training users");
    }
    nn::Tensor x = nn::Tensor::FromData({count, d}, inputs);
    nn::Adam warmup(global_mapping_->Parameters(), config_.warmup_lr);
    for (int epoch = 0; epoch < config_.warmup_epochs; ++epoch) {
      warmup.ZeroGrad();
      nn::Tensor loss = nn::MseLoss(global_mapping_->Forward(x), targets);
      loss.Backward();
      warmup.Step();
    }
  }

  meta_network_ = std::make_unique<nn::Mlp>(
      std::vector<int>{d, config_.meta_hidden, d * d}, /*dropout=*/0.0f,
      &rng);
  nn::Adam optimizer(meta_network_->Parameters(), config_.meta_lr, 0.9f,
                     0.999f, 1e-8f, config_.weight_decay);

  // Task-based training: the personalized bridge must predict target-domain
  // rating residuals (r - μ - b_i) of training users.
  struct Sample {
    std::vector<float> characteristic;  // c_u
    std::vector<float> source_factor;   // p_u^s
    std::vector<float> global_mapped;   // global_mapping(p_u^s), frozen
    std::vector<float> item_factor;     // q_i
    float residual;
  };
  std::vector<Sample> samples;
  global_mapping_->set_training(false);
  for (const RatingTriple& t : target_ratings) {
    if (!source_mf_->HasUser(t.user) || !target_mf_->HasItem(t.item)) {
      continue;
    }
    Sample s;
    s.characteristic = CharacteristicVector(cross, t.user);
    s.source_factor = source_mf_->UserFactor(t.user);
    s.global_mapped =
        global_mapping_
            ->Forward(nn::Tensor::FromData({1, d}, s.source_factor))
            .data();
    s.item_factor = target_mf_->ItemFactor(t.item);
    s.residual = t.rating - target_mf_->global_mean() -
                 target_mf_->ItemBias(t.item);
    samples.push_back(std::move(s));
  }
  if (samples.empty()) {
    return Status::FailedPrecondition("PTUPCDR: no usable task samples");
  }

  std::vector<int> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int epoch = 0; epoch < config_.task_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config_.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config_.batch_size));
      optimizer.ZeroGrad();
      std::vector<nn::Tensor> preds;
      std::vector<float> residuals;
      for (size_t j = start; j < end; ++j) {
        const Sample& s = samples[static_cast<size_t>(order[j])];
        nn::Tensor c = nn::Tensor::FromData({1, d}, s.characteristic);
        nn::Tensor bridge =
            nn::Reshape(meta_network_->Forward(c), {d, d});
        nn::Tensor p = nn::Tensor::FromData({1, d}, s.source_factor);
        nn::Tensor g = nn::Tensor::FromData({1, d}, s.global_mapped);
        // Personalized residual on top of the frozen global mapping.
        nn::Tensor mapped = nn::Add(g, nn::MatMul(p, bridge));
        nn::Tensor q = nn::Tensor::FromData({1, d}, s.item_factor);
        preds.push_back(nn::RowSum(nn::Mul(mapped, q)));  // [1, 1]
        residuals.push_back(s.residual);
      }
      nn::Tensor pred = preds.size() == 1 ? preds[0] : nn::ConcatRows(preds);
      nn::Tensor loss = nn::MseLoss(pred, residuals);
      loss.Backward();
      optimizer.Step();
    }
  }

  // Precompute personalized mapped factors for all source users.
  mapped_factor_.clear();
  meta_network_->set_training(false);
  for (int u : cross.source().users()) {
    if (!source_mf_->HasUser(u)) continue;
    mapped_factor_[u] = MapUser(cross, u);
  }
  return Status::OK();
}

std::vector<float> Ptupcdr::MapUser(const data::CrossDomainDataset& cross,
                                    int user_id) {
  int d = config_.mf.dim;
  nn::Tensor c =
      nn::Tensor::FromData({1, d}, CharacteristicVector(cross, user_id));
  nn::Tensor bridge = nn::Reshape(meta_network_->Forward(c), {d, d});
  nn::Tensor p =
      nn::Tensor::FromData({1, d}, source_mf_->UserFactor(user_id));
  return nn::Add(global_mapping_->Forward(p), nn::MatMul(p, bridge)).data();
}

float Ptupcdr::PredictRating(int user_id, int item_id) const {
  float pred = target_mf_->global_mean();
  if (target_mf_->HasItem(item_id)) {
    pred += target_mf_->ItemBias(item_id);
    auto it = mapped_factor_.find(user_id);
    if (it != mapped_factor_.end()) {
      std::vector<float> q = target_mf_->ItemFactor(item_id);
      for (size_t k = 0; k < q.size(); ++k) pred += it->second[k] * q[k];
    }
  }
  return std::clamp(pred, 1.0f, 5.0f);
}

}  // namespace baselines
}  // namespace omnimatch
