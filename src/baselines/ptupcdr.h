#ifndef OMNIMATCH_BASELINES_PTUPCDR_H_
#define OMNIMATCH_BASELINES_PTUPCDR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/mf.h"
#include "baselines/recommender.h"
#include "nn/layers.h"

namespace omnimatch {
namespace baselines {

/// PTUPCDR (Zhu et al. 2022; §5.3): Personalized Transfer of User
/// Preferences.
///
/// Instead of one global mapping (EMCDR), a meta-network consumes each
/// user's *characteristic vector* (the mean of the item factors they rated
/// in the source domain) and emits a personalized d×d bridge matrix; the
/// user's target factor is bridge(u) · p_u^s. The meta-network is trained
/// on the downstream task — MSE against target-domain ratings of training
/// users — as in the original paper.
class Ptupcdr : public Recommender {
 public:
  struct Config {
    MfConfig mf;
    int meta_hidden = 32;
    /// Warm-start epochs for the global mapping (factor-MSE, EMCDR-style).
    int warmup_epochs = 120;
    float warmup_lr = 5e-3f;
    /// Task-loss fine-tuning epochs for the personalized meta bridge.
    int task_epochs = 6;
    float meta_lr = 1e-3f;
    float weight_decay = 1e-3f;
    int batch_size = 64;
    uint64_t seed = 19;
  };

  Ptupcdr();
  explicit Ptupcdr(const Config& config);

  Status Fit(const data::CrossDomainDataset& cross,
             const data::ColdStartSplit& split) override;
  float PredictRating(int user_id, int item_id) const override;
  std::string name() const override { return "PTUPCDR"; }

 private:
  /// Mean source item factor over the user's source records.
  std::vector<float> CharacteristicVector(
      const data::CrossDomainDataset& cross, int user_id) const;
  /// Applies the (already trained) meta network to one user.
  std::vector<float> MapUser(const data::CrossDomainDataset& cross,
                             int user_id);

  Config config_;
  std::unique_ptr<MatrixFactorization> source_mf_;
  std::unique_ptr<MatrixFactorization> target_mf_;
  /// Global source->target factor mapping (warm start).
  std::unique_ptr<nn::Mlp> global_mapping_;
  /// Meta network emitting the personalized d×d residual bridge.
  std::unique_ptr<nn::Mlp> meta_network_;
  std::unordered_map<int, std::vector<float>> mapped_factor_;
};

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_PTUPCDR_H_
