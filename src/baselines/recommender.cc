#include "baselines/recommender.h"

#include <unordered_set>

namespace omnimatch {
namespace baselines {

eval::Metrics EvaluateRecommender(const Recommender& model,
                                  const data::CrossDomainDataset& cross,
                                  const std::vector<int>& users) {
  eval::MetricsAccumulator acc;
  for (int u : users) {
    for (int idx : cross.target().RecordsOfUser(u)) {
      const data::Review& r = cross.target().reviews()[idx];
      acc.Add(model.PredictRating(u, r.item_id), r.rating);
    }
  }
  // An empty user list yields an empty Metrics (count == 0), not an abort.
  Result<eval::Metrics> result = acc.Finalize();
  return result.ok() ? result.value() : eval::Metrics{};
}

std::vector<RatingTriple> VisibleRatings(const data::CrossDomainDataset& cross,
                                         const data::ColdStartSplit& split,
                                         bool include_source,
                                         bool include_target) {
  std::vector<RatingTriple> out;
  if (include_source) {
    for (const data::Review& r : cross.source().reviews()) {
      out.push_back({r.user_id, r.item_id, r.rating});
    }
  }
  if (include_target) {
    std::unordered_set<int> train_set(split.train_users.begin(),
                                      split.train_users.end());
    for (const data::Review& r : cross.target().reviews()) {
      if (train_set.count(r.user_id) > 0) {
        out.push_back({r.user_id, r.item_id, r.rating});
      }
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace omnimatch
