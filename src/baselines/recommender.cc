#include "baselines/recommender.h"

#include <unordered_set>

namespace omnimatch {
namespace baselines {

eval::Metrics EvaluateRecommender(const Recommender& model,
                                  const data::CrossDomainDataset& cross,
                                  const std::vector<int>& users) {
  eval::MetricsAccumulator acc;
  for (int u : users) {
    for (int idx : cross.target().RecordsOfUser(u)) {
      size_t i = static_cast<size_t>(idx);
      acc.Add(model.PredictRating(u, cross.target().ReviewItem(i)),
              cross.target().ReviewRating(i));
    }
  }
  // An empty user list yields an empty Metrics (count == 0), not an abort.
  Result<eval::Metrics> result = acc.Finalize();
  return result.ok() ? result.value() : eval::Metrics{};
}

std::vector<RatingTriple> VisibleRatings(const data::CrossDomainDataset& cross,
                                         const data::ColdStartSplit& split,
                                         bool include_source,
                                         bool include_target) {
  std::vector<RatingTriple> out;
  if (include_source) {
    const data::DomainDataset& source = cross.source();
    for (size_t i = 0; i < source.num_reviews(); ++i) {
      out.push_back({source.ReviewUser(i), source.ReviewItem(i),
                     source.ReviewRating(i)});
    }
  }
  if (include_target) {
    std::unordered_set<int> train_set(split.train_users.begin(),
                                      split.train_users.end());
    const data::DomainDataset& target = cross.target();
    for (size_t i = 0; i < target.num_reviews(); ++i) {
      if (train_set.count(target.ReviewUser(i)) > 0) {
        out.push_back({target.ReviewUser(i), target.ReviewItem(i),
                       target.ReviewRating(i)});
      }
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace omnimatch
