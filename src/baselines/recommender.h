#ifndef OMNIMATCH_BASELINES_RECOMMENDER_H_
#define OMNIMATCH_BASELINES_RECOMMENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "eval/metrics.h"

namespace omnimatch {
namespace baselines {

/// Common interface for every comparison method (§5.3).
///
/// Training-visible data under the §5.2 cold-start protocol:
///  * every source-domain record (cold users' source history is known);
///  * target-domain records of split.train_users only.
/// Implementations must not read other target records.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Trains on the scenario. `cross` must outlive the recommender.
  virtual Status Fit(const data::CrossDomainDataset& cross,
                     const data::ColdStartSplit& split) = 0;

  /// Predicted rating for a (possibly cold-start) user on a target item.
  virtual float PredictRating(int user_id, int item_id) const = 0;

  /// Display name matching the paper's tables (e.g. "EMCDR").
  virtual std::string name() const = 0;
};

/// RMSE/MAE of `model` over the target-domain records of `users`
/// (the Eq. 22-23 cold-start evaluation).
eval::Metrics EvaluateRecommender(const Recommender& model,
                                  const data::CrossDomainDataset& cross,
                                  const std::vector<int>& users);

/// The (user, item, rating) triples a baseline may train on; see the class
/// comment. `include_source` / `include_target` select the domains.
struct RatingTriple {
  int user = -1;
  int item = -1;
  float rating = 0.0f;
};
std::vector<RatingTriple> VisibleRatings(const data::CrossDomainDataset& cross,
                                         const data::ColdStartSplit& split,
                                         bool include_source,
                                         bool include_target);

}  // namespace baselines
}  // namespace omnimatch

#endif  // OMNIMATCH_BASELINES_RECOMMENDER_H_
