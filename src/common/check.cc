#include "common/check.h"

namespace omnimatch {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "[omnimatch] CHECK failed at %s:%d: %s %s\n", file,
               line, expr, extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace omnimatch
