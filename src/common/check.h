#ifndef OMNIMATCH_COMMON_CHECK_H_
#define OMNIMATCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace omnimatch {
namespace internal {

/// Prints a fatal diagnostic and aborts. Out-of-line so the macros stay small.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

/// Stream sink used by the OM_CHECK macros to collect an optional message.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace omnimatch

/// Aborts with a diagnostic when `cond` is false. For programmer errors
/// (shape mismatches, index bounds), not for recoverable input errors.
/// Supports streaming extra context: OM_CHECK(a == b) << "a=" << a;
#define OM_CHECK(cond)                                                       \
  if (cond) {                                                                \
  } else /* NOLINT */                                                        \
    ::omnimatch::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define OM_CHECK_EQ(a, b) OM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define OM_CHECK_NE(a, b) OM_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define OM_CHECK_LT(a, b) OM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define OM_CHECK_LE(a, b) OM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define OM_CHECK_GT(a, b) OM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define OM_CHECK_GE(a, b) OM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // OMNIMATCH_COMMON_CHECK_H_
