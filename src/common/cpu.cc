#include "common/cpu.h"

#include <cstdlib>

#include "common/logging.h"

namespace omnimatch {

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kNeon: return "neon";
    case IsaLevel::kAvx2: return "avx2";
    case IsaLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

bool ParseIsaName(const std::string& name, IsaLevel* out) {
  if (name == "scalar") { *out = IsaLevel::kScalar; return true; }
  if (name == "neon") { *out = IsaLevel::kNeon; return true; }
  if (name == "avx2") { *out = IsaLevel::kAvx2; return true; }
  if (name == "avx512") { *out = IsaLevel::kAvx512; return true; }
  return false;
}

namespace {

IsaLevel ProbeHardware() {
#if defined(__aarch64__)
  // NEON (ASIMD) is architecturally mandatory on aarch64.
  return IsaLevel::kNeon;
#elif defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports executes cpuid once and caches (GCC and Clang);
  // it checks the OS-enabled state too (XGETBV), not just the CPU bit, so a
  // "yes" means the instructions are actually executable.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return IsaLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
  return IsaLevel::kScalar;
#else
  return IsaLevel::kScalar;
#endif
}

}  // namespace

namespace internal {

IsaLevel ResolveIsa(const char* env_value, IsaLevel detected) {
  if (env_value == nullptr || env_value[0] == '\0') return detected;
  IsaLevel requested;
  if (!ParseIsaName(env_value, &requested)) {
    OM_LOG(Warning) << "OMNIMATCH_ISA='" << env_value
                    << "' is not one of scalar/neon/avx2/avx512; using "
                    << IsaName(detected);
    return detected;
  }
  if (static_cast<int>(requested) > static_cast<int>(detected)) {
    OM_LOG(Warning) << "OMNIMATCH_ISA=" << env_value
                    << " exceeds what this CPU supports; clamping to "
                    << IsaName(detected);
    return detected;
  }
  // NEON and the x86 levels never coexist: requesting neon on x86 (or
  // avx2 on aarch64 — caught by the clamp above) falls back to scalar.
  if (requested == IsaLevel::kNeon && detected != IsaLevel::kNeon) {
    OM_LOG(Warning) << "OMNIMATCH_ISA=neon on a non-aarch64 host; using "
                       "scalar";
    return IsaLevel::kScalar;
  }
  return requested;
}

}  // namespace internal

IsaLevel DetectedIsa() {
  static const IsaLevel level = ProbeHardware();
  return level;
}

IsaLevel ActiveIsa() {
  static const IsaLevel level =
      internal::ResolveIsa(std::getenv("OMNIMATCH_ISA"), DetectedIsa());
  return level;
}

}  // namespace omnimatch
