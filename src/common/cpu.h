#ifndef OMNIMATCH_COMMON_CPU_H_
#define OMNIMATCH_COMMON_CPU_H_

#include <string>

namespace omnimatch {

/// Runtime CPU-feature detection backing the per-ISA kernel dispatch
/// (src/nn/gemm/int8_*). The build compiles every kernel flavor the
/// *compiler* supports into dedicated translation units with scoped arch
/// flags; which flavor actually runs is decided here, once, at startup —
/// so one portable binary runs everywhere and still uses the widest vector
/// unit the host has. This replaces the old global `-march=native` story,
/// where a binary built on a new machine would SIGILL on an older one.
///
/// Levels are ordered: a CPU reporting a level supports every lower level
/// too (kNeon is the aarch64 baseline and never coexists with the x86
/// levels). Dispatch therefore clamps, never jumps.
enum class IsaLevel {
  kScalar = 0,  // plain C++, every target
  kNeon = 1,    // aarch64 baseline SIMD
  kAvx2 = 2,    // x86-64 AVX2 (+FMA not required: int8 path is integer-only)
  kAvx512 = 3,  // x86-64 AVX-512F+BW
};

/// Lower-case stable name ("scalar", "neon", "avx2", "avx512") — used in
/// logs, metrics, BENCH_quant.json, and the OMNIMATCH_ISA override.
const char* IsaName(IsaLevel level);

/// Parses IsaName() output. Returns false on an unknown name.
bool ParseIsaName(const std::string& name, IsaLevel* out);

/// The widest level the *hardware* supports, probed via cpuid (x86) or the
/// target architecture (aarch64). Pure hardware fact, never affected by the
/// environment override. Cached after the first call; thread-safe.
IsaLevel DetectedIsa();

/// The level dispatch should use: DetectedIsa() unless the OMNIMATCH_ISA
/// environment variable names a *lower* level (forcing, e.g., the scalar
/// kernels in the portable CI lane). Asking for a level the hardware does
/// not support clamps to DetectedIsa() with a warning — running it would
/// SIGILL, which is exactly the bug this layer exists to prevent. An
/// unparseable value is ignored with a warning. Cached after the first
/// call; thread-safe.
IsaLevel ActiveIsa();

namespace internal {
/// Uncached env-override resolution against a given detected level —
/// exposed so tests can exercise the clamp logic without forking.
IsaLevel ResolveIsa(const char* env_value, IsaLevel detected);
}  // namespace internal

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_CPU_H_
