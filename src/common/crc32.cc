#include "common/crc32.h"

#include <array>

namespace omnimatch {

namespace {

/// Slice-by-one lookup table, generated once at first use. 256 entries of
/// the reflected CRC-32 polynomial.
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace omnimatch
