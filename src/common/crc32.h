#ifndef OMNIMATCH_COMMON_CRC32_H_
#define OMNIMATCH_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace omnimatch {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum used
/// by zlib, PNG and the checkpoint file format. Detects the corruption modes
/// a crash or disk fault produces (truncation, bit flips, torn writes).
///
/// Incremental use: feed `crc` from the previous call to checksum a stream
/// in chunks; the default 0 starts a fresh checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

/// Convenience overload for string payloads.
inline uint32_t Crc32(std::string_view data, uint32_t crc = 0) {
  return Crc32(data.data(), data.size(), crc);
}

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_CRC32_H_
