#include "common/fault.h"

#include <cstdlib>
#include <limits>

#include "common/check.h"
#include "common/string_util.h"

namespace omnimatch {

namespace {

/// Parses a magnitude value: "nan", "inf", "-inf" or a float literal.
bool ParseMagnitude(std::string_view text, double* out) {
  std::string lower = ToLower(text);
  if (lower == "nan") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (lower == "inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (lower == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  float value = 0.0f;
  if (!ParseFloat(lower, &value)) return false;
  *out = static_cast<double>(value);
  return true;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("OMNIMATCH_FAULTS")) {
      Status armed = inj->ArmFromString(env);
      OM_CHECK(armed.ok()) << "OMNIMATCH_FAULTS: " << armed.ToString();
    }
    return inj;
  }();
  return *injector;
}

void FaultInjector::Arm(FaultSpec spec) {
  OM_CHECK(!spec.point.empty()) << "fault spec needs an injection point";
  OM_CHECK_GT(spec.count, 0);
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(ArmedFault{std::move(spec)});
  armed_.store(true, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromString(std::string_view text) {
  for (const std::string& raw : Split(text, ';')) {
    std::string_view entry = StripWhitespace(raw);
    if (entry.empty()) continue;
    size_t at = entry.find('@');
    if (at == 0 || at == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("fault spec '%.*s': expected point@step",
                    static_cast<int>(entry.size()), entry.data()));
    }
    FaultSpec spec;
    spec.point = std::string(entry.substr(0, at));
    std::string_view rest = entry.substr(at + 1);
    size_t colon = rest.find(':');
    std::string_view step_text =
        colon == std::string_view::npos ? rest : rest.substr(0, colon);
    int step = 0;
    if (!ParseInt32(std::string(step_text), &step) || step < 0) {
      return Status::InvalidArgument(
          StrFormat("fault spec '%.*s': bad step '%.*s'",
                    static_cast<int>(entry.size()), entry.data(),
                    static_cast<int>(step_text.size()), step_text.data()));
    }
    spec.step = step;
    if (colon != std::string_view::npos) {
      for (const std::string& kv_raw : Split(rest.substr(colon + 1), ',')) {
        std::string_view kv = StripWhitespace(kv_raw);
        size_t eq = kv.find('=');
        if (eq == 0 || eq == std::string_view::npos) {
          return Status::InvalidArgument(
              StrFormat("fault spec '%.*s': expected key=value, got '%.*s'",
                        static_cast<int>(entry.size()), entry.data(),
                        static_cast<int>(kv.size()), kv.data()));
        }
        std::string key = ToLower(kv.substr(0, eq));
        std::string value(kv.substr(eq + 1));
        bool ok = false;
        if (key == "mag") {
          ok = ParseMagnitude(value, &spec.magnitude);
        } else if (key == "count") {
          int count = 0;
          ok = ParseInt32(value, &count) && count > 0;
          if (ok) spec.count = count;
        } else if (key == "seed") {
          int seed = 0;
          ok = ParseInt32(value, &seed) && seed >= 0;
          if (ok) spec.seed = static_cast<uint64_t>(seed);
        }
        if (!ok) {
          return Status::InvalidArgument(
              StrFormat("fault spec '%.*s': bad option '%.*s'",
                        static_cast<int>(entry.size()), entry.data(),
                        static_cast<int>(kv.size()), kv.data()));
        }
      }
    }
    Arm(std::move(spec));
  }
  return Status::OK();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  consult_counters_.clear();
  fired_total_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(std::string_view point, int64_t step,
                               FaultHit* hit) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return ShouldFireLocked(point, step, hit);
}

bool FaultInjector::ShouldFire(std::string_view point, FaultHit* hit) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : consult_counters_) {
    if (name == point) return ShouldFireLocked(point, counter++, hit);
  }
  consult_counters_.emplace_back(std::string(point), 1);
  return ShouldFireLocked(point, 0, hit);
}

bool FaultInjector::ShouldFireLocked(std::string_view point, int64_t step,
                                     FaultHit* hit) {
  for (ArmedFault& f : faults_) {
    if (f.spec.point != point) continue;
    if (f.times_fired >= f.spec.count) continue;
    // Fire at most once per distinct step at or past the armed step: a
    // rollback-and-retry re-consults the SAME step and must not re-fire,
    // while count > 1 keeps firing on subsequent steps.
    if (step < f.spec.step || step <= f.last_fired_step) continue;
    ++f.times_fired;
    f.last_fired_step = step;
    ++fired_total_;
    if (hit != nullptr) {
      hit->magnitude = f.spec.magnitude;
      hit->seed = f.spec.seed;
    }
    return true;
  }
  return false;
}

int64_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_total_;
}

}  // namespace omnimatch
