#ifndef OMNIMATCH_COMMON_FAULT_H_
#define OMNIMATCH_COMMON_FAULT_H_

#include <cstdint>
#include <mutex>
#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace omnimatch {

/// One armed fault: fire at injection point `point` when the consulting
/// site's step counter reaches `step`, for `count` distinct steps.
///
/// `magnitude` is interpreted by the injection site (loss-spike multiplier,
/// value written into a gradient/parameter; NaN and Inf are legal). 0 asks
/// the site for its default (NaN for corruption, 10x for a loss spike).
/// `seed` deterministically selects WHICH element a corruption site hits,
/// so a failure reproduces bit-identically run after run.
struct FaultSpec {
  std::string point;
  int64_t step = 0;
  double magnitude = 0.0;
  int32_t count = 1;
  uint64_t seed = 0;
};

/// Payload handed to an injection site when a fault fires.
struct FaultHit {
  double magnitude = 0.0;
  uint64_t seed = 0;
};

/// Deterministic fault-injection registry.
///
/// Library code consults named injection points; tests (or the
/// OMNIMATCH_FAULTS env var / --faults flag) arm faults against them.
/// Unarmed, a consultation is a single relaxed atomic load — the registry
/// costs nothing in production. Armed, every firing is a pure function of
/// (point, step), so an injected failure replays bit-identically.
///
/// Points consulted by the library:
///   "grad"             — after backward: flip one gradient value (NaN)
///   "loss"             — after the forward: multiply the step loss
///   "param"            — after the optimizer step: corrupt one parameter
///   "checkpoint_write" — fail a checkpoint save with IoError
/// Serving path (counter-based; see serve/server.h, serve/snapshot_manager.h):
///   "queue_admit"      — reject one admission as Overloaded
///   "executor_score"   — force one batch onto a degraded tier
///                        (mag>=2: global-mean, else cached-only)
///   "serve_slow"       — sleep mag ms (default 10) before scoring a batch
///   "snapshot_load"    — fail one snapshot swap validation (rollback)
///
/// Spec string grammar (semicolon-separated, whitespace ignored):
///   point@step[:key=value[,key=value]...]
/// with keys `mag` (float, or "nan"/"inf"), `count`, `seed`. Examples:
///   "grad@5"                      NaN gradient at step 5
///   "loss@3:mag=10"               10x loss spike at step 3
///   "loss@3:mag=100,count=10"     spikes at steps 3..12
///   "param@7:mag=inf,seed=42"     Inf into a seed-chosen parameter
///   "checkpoint_write@0"          first checkpoint save fails
class FaultInjector {
 public:
  /// The process-wide registry every library injection point consults.
  /// On first use it arms itself from OMNIMATCH_FAULTS if set (a malformed
  /// value aborts: a typo'd fault spec silently ignored would defeat the
  /// test that set it).
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms one fault. Specs accumulate until Disarm().
  void Arm(FaultSpec spec);

  /// Parses and arms a spec string (grammar above). InvalidArgument on any
  /// malformed entry; entries before the bad one stay armed.
  Status ArmFromString(std::string_view text);

  /// Removes every armed fault and resets all firing bookkeeping.
  void Disarm();

  /// True when at least one fault is armed (relaxed; the fast path).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Consults injection point `point` at the caller's step counter value.
  /// Returns true when an armed fault fires here, filling `*hit` (if given).
  /// A (spec, step) pair fires at most once: re-consulting the same step —
  /// which is exactly what a guard's rollback-and-retry does — does not
  /// re-fire, so recovery can be tested deterministically.
  bool ShouldFire(std::string_view point, int64_t step, FaultHit* hit = nullptr);

  /// Overload for sites without a natural step counter (e.g. checkpoint
  /// writes): each consultation of `point` advances an internal per-point
  /// counter, and specs match against it.
  bool ShouldFire(std::string_view point, FaultHit* hit = nullptr);

  /// Total firings since the last Disarm().
  int64_t fired() const;

 private:
  struct ArmedFault {
    FaultSpec spec;
    int32_t times_fired = 0;
    int64_t last_fired_step = INT64_MIN;
  };

  bool ShouldFireLocked(std::string_view point, int64_t step, FaultHit* hit);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::vector<ArmedFault> faults_;
  std::vector<std::pair<std::string, int64_t>> consult_counters_;
  int64_t fired_total_ = 0;
};

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_FAULT_H_
