#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "common/fault.h"
#include "common/string_util.h"
#include "common/threadpool.h"

namespace omnimatch {

namespace {

/// Malformed numeric flags are fatal: every binary taking flags is a
/// command-line tool, and silently running with atoi's 0 (the old
/// behaviour) is how "--threads=abc" trains on a zero-sized pool. Exit
/// rather than abort: this is an input error, not a programmer error.
[[noreturn]] void FatalFlagError(const std::string& name,
                                 const std::string& value,
                                 const char* expected) {
  std::fprintf(stderr,
               "omnimatch: invalid value \"%s\" for flag --%s: expected %s\n",
               value.c_str(), name.c_str(), expected);
  std::exit(2);
}

}  // namespace

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  int value = 0;
  if (!ParseInt32(it->second, &value)) {
    FatalFlagError(name, it->second, "an in-range decimal integer");
  }
  return value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  double value = 0.0;
  if (!ParseDouble(it->second, &value)) {
    FatalFlagError(name, it->second, "a decimal number");
  }
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

int ApplyThreadsFlag(const FlagParser& flags) {
  SetNumThreads(flags.GetInt("threads", 0));
  return GetNumThreads();
}

Status ApplyFaultsFlag(const FlagParser& flags) {
  if (!flags.Has("faults")) return Status::OK();
  return FaultInjector::Global().ArmFromString(
      flags.GetString("faults", ""));
}

}  // namespace omnimatch
