#ifndef OMNIMATCH_COMMON_FLAGS_H_
#define OMNIMATCH_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace omnimatch {

/// Minimal command-line flag parser for the benchmark and example binaries.
///
/// Accepts `--name=value` and `--name value`; bare `--name` is treated as
/// boolean true. Anything not starting with `--` is a positional argument.
class FlagParser {
 public:
  /// Parses argv. Returns InvalidArgument on malformed input.
  Status Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  /// Numeric getters parse strictly (ParseInt32/ParseDouble: the whole
  /// value must be a valid in-range number). A malformed value prints an
  /// error naming the flag and exits with status 2 — never the silent 0
  /// that atoi used to produce for "--threads=abc".
  int GetInt(const std::string& name, int default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Reads the shared `--threads` flag (0 = all hardware threads) and sizes
/// the global compute thread pool accordingly. Returns the resolved thread
/// count. Every benchmark / example binary calls this right after Parse()
/// so the whole fleet agrees on one spelling.
int ApplyThreadsFlag(const FlagParser& flags);

/// Arms the global fault injector from the shared `--faults` flag (same
/// `point@step[:key=value,...]` grammar as the OMNIMATCH_FAULTS environment
/// variable; see common/fault.h). No-op when the flag is absent. Returns
/// InvalidArgument for malformed specs.
Status ApplyFaultsFlag(const FlagParser& flags);

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_FLAGS_H_
