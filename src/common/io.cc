#include "common/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace omnimatch {

static_assert(std::endian::native == std::endian::little,
              "checkpoint format is little-endian only");
static_assert(sizeof(float) == 4 && sizeof(double) == 8,
              "checkpoint format assumes IEEE-754 floats");

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(path + ": " + std::strerror(errno));
  }
  std::string data;
  char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.append(chunk, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read failed for " + path);
  return data;
}

std::string UniqueTmpPath(const std::string& path) {
  // pid + process-local counter: concurrent writers (other processes, other
  // threads) targeting the same destination each stage into their own tmp
  // file, so the losing rename replaces — never misses — and no writer can
  // observe a half-written staging file it didn't create.
  static std::atomic<uint64_t> counter{0};
  return StrFormat("%s.tmp.%d.%llu", path.c_str(),
                   static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(
                       counter.fetch_add(1, std::memory_order_relaxed)));
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  std::string tmp = UniqueTmpPath(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(tmp + ": " + std::strerror(errno));
  }
  bool ok = data.empty() ||
            std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = ok && std::fflush(f) == 0;
  // fsync before rename: otherwise the rename can hit disk before the data
  // and a power loss leaves a valid name pointing at garbage.
  ok = ok && ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("rename %s -> %s: %s", tmp.c_str(), path.c_str(),
                  std::strerror(errno)));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("mkdir " + path + ": " + std::strerror(errno));
}

MemoryMappedFile::~MemoryMappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MemoryMappedFile::MemoryMappedFile(MemoryMappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MemoryMappedFile& MemoryMappedFile::operator=(
    MemoryMappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<MemoryMappedFile> MemoryMappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = Status::IoError("fstat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  MemoryMappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* addr =
        ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status err =
          Status::IoError("mmap " + path + ": " + std::strerror(errno));
      ::close(fd);
      return err;
    }
    mapped.addr_ = addr;
  }
  // The mapping outlives the descriptor; closing it releases nothing mapped.
  ::close(fd);
  return mapped;
}

}  // namespace omnimatch
