#include "common/io.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace omnimatch {

static_assert(std::endian::native == std::endian::little,
              "checkpoint format is little-endian only");
static_assert(sizeof(float) == 4 && sizeof(double) == 8,
              "checkpoint format assumes IEEE-754 floats");

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(path + ": " + std::strerror(errno));
  }
  std::string data;
  char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.append(chunk, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read failed for " + path);
  return data;
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(tmp + ": " + std::strerror(errno));
  }
  bool ok = data.empty() ||
            std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = ok && std::fflush(f) == 0;
  // fsync before rename: otherwise the rename can hit disk before the data
  // and a power loss leaves a valid name pointing at garbage.
  ok = ok && ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("rename %s -> %s: %s", tmp.c_str(), path.c_str(),
                  std::strerror(errno)));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("mkdir " + path + ": " + std::strerror(errno));
}

}  // namespace omnimatch
