#ifndef OMNIMATCH_COMMON_IO_H_
#define OMNIMATCH_COMMON_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace omnimatch {

/// Reads a whole binary file into a string. IoError when the file cannot be
/// opened or read.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe file write: the payload goes to `<path>.tmp`, is flushed and
/// fsync'd, and only then renamed over `path`. A crash at any point leaves
/// either the old file or the new file — never a torn half-write. The tmp
/// file lives in the same directory so the rename stays atomic (same
/// filesystem).
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Creates `path` as a directory if it does not already exist (single
/// level, like mkdir -p for one component at a time). OK when the directory
/// already exists; IoError otherwise.
Status EnsureDirectory(const std::string& path);

/// Append-only little-endian binary encoder for checkpoint payloads.
///
/// All multi-byte values are written via memcpy in host order; the library
/// targets little-endian platforms only (asserted in io.cc) so files are
/// portable across the machines we run on.
class ByteWriter {
 public:
  template <typename T>
  void Write(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t at = buffer_.size();
    buffer_.resize(at + sizeof(T));
    std::memcpy(buffer_.data() + at, &value, sizeof(T));
  }

  /// Length-prefixed (u64) raw byte blob.
  void WriteBytes(const void* data, size_t size) {
    Write<uint64_t>(size);
    size_t at = buffer_.size();
    buffer_.resize(at + size);
    if (size > 0) std::memcpy(buffer_.data() + at, data, size);
  }

  void WriteString(std::string_view s) { WriteBytes(s.data(), s.size()); }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a byte buffer written by ByteWriter. Every
/// accessor returns false (instead of reading past the end) when the buffer
/// is truncated, so corrupt checkpoints surface as clean Status errors.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* out) {
    uint64_t size = 0;
    if (!Read(&size) || remaining() < size) return false;
    out->assign(data_.data() + pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return true;
  }

  /// Reads a length-prefixed vector; the stored byte count must be an exact
  /// multiple of sizeof(T).
  template <typename T>
  bool ReadVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t bytes = 0;
    if (!Read(&bytes) || remaining() < bytes || bytes % sizeof(T) != 0) {
      return false;
    }
    out->resize(static_cast<size_t>(bytes / sizeof(T)));
    if (bytes > 0) std::memcpy(out->data(), data_.data() + pos_, bytes);
    pos_ += static_cast<size_t>(bytes);
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_IO_H_
