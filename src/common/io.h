#ifndef OMNIMATCH_COMMON_IO_H_
#define OMNIMATCH_COMMON_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace omnimatch {

/// Reads a whole binary file into a string. IoError when the file cannot be
/// opened or read.
Result<std::string> ReadFileToString(const std::string& path);

/// A staging path `<path>.tmp.<pid>.<n>` in the same directory as `path`
/// (so a later rename stays atomic — same filesystem), unique per call even
/// across concurrent processes and threads targeting the same destination.
std::string UniqueTmpPath(const std::string& path);

/// Crash-safe file write: the payload goes to a UniqueTmpPath() staging
/// file, is flushed and fsync'd, and only then renamed over `path`. A crash
/// at any point leaves either the old file or the new file — never a torn
/// half-write; concurrent writers never clobber each other's staging files.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Creates `path` as a directory if it does not already exist (single
/// level, like mkdir -p for one component at a time). OK when the directory
/// already exists; IoError otherwise.
Status EnsureDirectory(const std::string& path);

/// Read-only memory mapping of a whole file (mmap PROT_READ MAP_PRIVATE).
///
/// The out-of-core dataset backend: a mapped OMDS domain file is paged in
/// on demand by the kernel, so resident memory tracks the working set
/// instead of the file size. Lifetime contract: data() stays valid exactly
/// as long as this object lives — holders that hand out string_views into
/// the mapping (DomainDataset via OmdsFile) keep it alive via shared_ptr.
/// The mapping base is page-aligned, so any record structure placed at an
/// 8-byte-aligned file offset is correctly aligned in memory.
///
/// Move-only: the destructor unmaps.
class MemoryMappedFile {
 public:
  MemoryMappedFile() = default;
  ~MemoryMappedFile();
  MemoryMappedFile(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile& operator=(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile(const MemoryMappedFile&) = delete;
  MemoryMappedFile& operator=(const MemoryMappedFile&) = delete;

  /// Maps `path` read-only. An empty file yields a valid zero-size mapping
  /// (data() == nullptr, size() == 0). IoError when the file cannot be
  /// opened, stat'd or mapped.
  static Result<MemoryMappedFile> Open(const std::string& path);

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
};

/// Append-only little-endian binary encoder for checkpoint payloads.
///
/// All multi-byte values are written via memcpy in host order; the library
/// targets little-endian platforms only (asserted in io.cc) so files are
/// portable across the machines we run on.
class ByteWriter {
 public:
  template <typename T>
  void Write(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t at = buffer_.size();
    buffer_.resize(at + sizeof(T));
    std::memcpy(buffer_.data() + at, &value, sizeof(T));
  }

  /// Length-prefixed (u64) raw byte blob.
  void WriteBytes(const void* data, size_t size) {
    Write<uint64_t>(size);
    size_t at = buffer_.size();
    buffer_.resize(at + size);
    if (size > 0) std::memcpy(buffer_.data() + at, data, size);
  }

  void WriteString(std::string_view s) { WriteBytes(s.data(), s.size()); }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a byte buffer written by ByteWriter. Every
/// accessor returns false (instead of reading past the end) when the buffer
/// is truncated, so corrupt checkpoints surface as clean Status errors.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* out) {
    uint64_t size = 0;
    if (!Read(&size) || remaining() < size) return false;
    out->assign(data_.data() + pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return true;
  }

  /// Reads a length-prefixed vector; the stored byte count must be an exact
  /// multiple of sizeof(T).
  template <typename T>
  bool ReadVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t bytes = 0;
    if (!Read(&bytes) || remaining() < bytes || bytes % sizeof(T) != 0) {
      return false;
    }
    out->resize(static_cast<size_t>(bytes / sizeof(T)));
    if (bytes > 0) std::memcpy(out->data(), data_.data() + pos_, bytes);
    pos_ += static_cast<size_t>(bytes);
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_IO_H_
