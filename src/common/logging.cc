#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace omnimatch {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

void EmitLog(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = "[omnimatch ";
  line += LevelTag(level);
  line += "] ";
  line += message;
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace omnimatch
