#ifndef OMNIMATCH_COMMON_LOGGING_H_
#define OMNIMATCH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace omnimatch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Emits a finished log line to stderr. Thread-safe (single write call).
void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace omnimatch

/// Streaming log macros: OM_LOG(INFO) << "epoch " << e;
#define OM_LOG(severity) \
  ::omnimatch::internal::LogMessage(::omnimatch::LogLevel::k##severity)

#endif  // OMNIMATCH_COMMON_LOGGING_H_
