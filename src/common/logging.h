#ifndef OMNIMATCH_COMMON_LOGGING_H_
#define OMNIMATCH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace omnimatch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Emits a finished log line to stderr. Thread-safe (single write call).
void EmitLog(LogLevel level, const std::string& message);

/// True when a message at `level` would actually be emitted. OM_LOG checks
/// this BEFORE constructing the LogMessage, so suppressed messages never
/// build an ostringstream and never evaluate their streamed operands —
/// OM_LOG(Debug) in a training loop costs one relaxed atomic load.
inline bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(GetLogLevel());
}

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Turns the ternary's LogMessage branch into void so both arms agree.
/// operator& binds looser than operator<<, so the whole stream chain runs
/// first (glog's trick).
struct LogMessageVoidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal
}  // namespace omnimatch

/// Streaming log macros: OM_LOG(INFO) << "epoch " << e;
/// Expands to a ternary so that suppressed severities skip both the
/// LogMessage construction and the evaluation of every streamed operand.
#define OM_LOG(severity)                                                     \
  !::omnimatch::internal::LogLevelEnabled(                                   \
      ::omnimatch::LogLevel::k##severity)                                    \
      ? (void)0                                                              \
      : ::omnimatch::internal::LogMessageVoidify() &                         \
            ::omnimatch::internal::LogMessage(                               \
                ::omnimatch::LogLevel::k##severity)

#endif  // OMNIMATCH_COMMON_LOGGING_H_
