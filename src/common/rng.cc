#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace omnimatch {

void Rng::Seed(uint64_t seed) {
  // PCG32 seeding procedure (O'Neill): fixed odd increment, one warm-up step.
  state_ = 0;
  inc_ = (seed << 1u) | 1u;
  NextU32();
  state_ += 0x853c49e6748fea9bULL + seed;
  NextU32();
  has_cached_normal_ = false;
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint32_t Rng::UniformU32(uint32_t n) {
  OM_CHECK_GT(n, 0u);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = (0u - n) % n;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % n;
  }
}

int Rng::UniformInt(int lo, int hi) {
  OM_CHECK_LE(lo, hi);
  return lo + static_cast<int>(
                  UniformU32(static_cast<uint32_t>(hi - lo) + 1u));
}

double Rng::UniformDouble() {
  // 32 bits of entropy is plenty for simulation sampling.
  return NextU32() * (1.0 / 4294967296.0);
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-12);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

int Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    OM_CHECK_GE(w, 0.0);
    total += w;
  }
  OM_CHECK_GT(total, 0.0) << "SampleDiscrete needs a positive weight";
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng::State Rng::GetState() const {
  State s;
  s.state = state_;
  s.inc = inc_;
  s.has_cached_normal = has_cached_normal_ ? 1 : 0;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::SetState(const State& state) {
  state_ = state.state;
  inc_ = state.inc;
  has_cached_normal_ = state.has_cached_normal != 0;
  cached_normal_ = state.cached_normal;
}

Rng Rng::Fork() {
  uint64_t child_seed =
      (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  return Rng(child_seed);
}

}  // namespace omnimatch
