#ifndef OMNIMATCH_COMMON_RNG_H_
#define OMNIMATCH_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace omnimatch {

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
/// Used to derive decorrelated seeds from structured inputs (config
/// fingerprints, user ids) — see AuxReviewGenerator::PerUserSeed and the
/// serve snapshot version digest, which both build on it.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Deterministic PCG32 random number generator.
///
/// Every stochastic component in the library (data generation, weight
/// initialization, dropout, auxiliary-review sampling) draws from an `Rng`
/// seeded explicitly, so experiments are reproducible bit-for-bit across
/// runs. We do not use <random> engines because their distributions are not
/// specified identically across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator. The same seed always yields the same stream.
  void Seed(uint64_t seed);

  /// Uniform 32-bit value.
  uint32_t NextU32();

  /// Uniform in [0, n). Requires n > 0.
  uint32_t UniformU32(uint32_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  int SampleDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformU32(static_cast<uint32_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Forks a child generator whose stream is decorrelated from the parent.
  /// Useful for giving each module its own stream while keeping a single
  /// top-level seed.
  Rng Fork();

  /// Complete serializable generator state. Restoring a captured state
  /// resumes the stream exactly where it was — including the cached
  /// Box-Muller value — which the checkpoint subsystem relies on for
  /// bit-identical resume.
  struct State {
    uint64_t state = 0;
    uint64_t inc = 0;
    uint8_t has_cached_normal = 0;
    double cached_normal = 0.0;
  };

  State GetState() const;
  void SetState(const State& state);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_RNG_H_
