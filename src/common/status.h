#ifndef OMNIMATCH_COMMON_STATUS_H_
#define OMNIMATCH_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace omnimatch {

/// Error codes used across the library. Modeled after the RocksDB/Abseil
/// convention: a small closed set of codes plus a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation. Cheap to copy when OK (no allocation).
///
/// The library never throws; every operation that can fail due to bad input
/// or environment returns a `Status` (or `Result<T>`). Programmer errors
/// (e.g. tensor shape mismatches) abort via OM_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union for fallible factory functions.
///
/// Usage:
///   Result<Vocabulary> r = Vocabulary::Load(path);
///   if (!r.ok()) return r.status();
///   Vocabulary v = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return MakeThing();`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define OM_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::omnimatch::Status _s = (expr);            \
    if (!_s.ok()) return _s;                    \
  } while (false)

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_STATUS_H_
