#ifndef OMNIMATCH_COMMON_STOPWATCH_H_
#define OMNIMATCH_COMMON_STOPWATCH_H_

#include <chrono>

namespace omnimatch {

/// Simple wall-clock stopwatch used by the training-time experiments
/// (Table 6) and by the trainer's per-epoch reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_STOPWATCH_H_
