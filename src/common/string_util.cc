#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace omnimatch {

namespace {
template <typename T>
bool ParseWhole(std::string_view text, T* out) {
  T value{};
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}
}  // namespace

bool ParseInt32(std::string_view text, int* out) {
  return ParseWhole(text, out);
}

bool ParseFloat(std::string_view text, float* out) {
  return ParseWhole(text, out);
}

bool ParseDouble(std::string_view text, double* out) {
  return ParseWhole(text, out);
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace omnimatch
