#ifndef OMNIMATCH_COMMON_STRING_UTIL_H_
#define OMNIMATCH_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace omnimatch {

/// Splits `text` on `delim`, keeping empty fields (CSV semantics).
std::vector<std::string> Split(std::string_view text, char delim);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict decimal integer parse via std::from_chars: the ENTIRE string must
/// be a valid in-range int ("3x", "", " 4" and overflow all fail). Returns
/// false without touching *out on failure. Unlike std::atoi, malformed
/// input is distinguishable from a legitimate 0.
bool ParseInt32(std::string_view text, int* out);

/// Strict float parse with the same whole-string contract. Accepts the
/// std::from_chars general format (fixed or scientific); rejects trailing
/// garbage, empty input, hex, and values outside float range.
bool ParseFloat(std::string_view text, float* out);

/// ParseFloat at double precision (command-line flags and config values
/// that are stored as double keep their full precision).
bool ParseDouble(std::string_view text, double* out);

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_STRING_UTIL_H_
