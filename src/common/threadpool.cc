#include "common/threadpool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace omnimatch {

namespace {

// Pool instrumentation. Counters are plain relaxed increments and always
// live; the busy-time clock reads only happen while obs::MetricsEnabled().
obs::Counter* PoolJobs() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("threadpool.jobs");
  return c;
}
obs::Counter* PoolInlineRuns() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("threadpool.inline_runs");
  return c;
}
obs::Counter* PoolChunks() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("threadpool.chunks");
  return c;
}
obs::Counter* PoolBusyNs() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("threadpool.worker_busy_ns");
  return c;
}
obs::Gauge* PoolThreadsGauge() {
  static obs::Gauge* const g =
      obs::MetricsRegistry::Global().GetGauge("threadpool.threads");
  return g;
}
// Chunk backlog per submitted job — the pool's "queue depth" (one flat job
// at a time; depth is how many chunks wait to be claimed).
obs::Histogram* PoolJobChunks() {
  static obs::Histogram* const h =
      obs::MetricsRegistry::Global().GetHistogram(
          "threadpool.job_chunks", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  return h;
}

int64_t PoolNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// True while the current thread is executing a pool chunk; nested
// ParallelFor calls from kernels (e.g. a GEMM inside the batched text conv)
// run inline instead of deadlocking on the single shared job slot.
thread_local bool t_inside_worker = false;

// Depth of active SerialRegion scopes on this thread (see threadpool.h).
thread_local int t_serial_depth = 0;

// How many chunks to cut per participating thread. More than one gives
// dynamic load balance when chunks have uneven cost (e.g. ragged documents)
// at the price of slightly more atomic traffic.
constexpr int64_t kChunksPerThread = 4;

int ResolveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(0);  // leaked: outlives all users
  return *pool;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreads(num_threads)) {}

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::Resize(int num_threads) {
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  int resolved = ResolveThreads(num_threads);
  PoolThreadsGauge()->Set(resolved);
  if (resolved == num_threads_) return;
  StopWorkers();
  num_threads_ = resolved;
}

void ThreadPool::StartWorkers() {
  // Caller holds submit_mutex_. The submitting thread participates in every
  // job, so num_threads_ - 1 background workers suffice.
  shutdown_ = false;
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
}

void ThreadPool::StopWorkers() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    shutdown_ = true;
    ++job_generation_;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  started_ = false;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(job_mutex_);
      job_cv_.wait(lock, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      job = current_job_;
    }
    if (!job) continue;
    t_inside_worker = true;
    RunChunks(job.get());
    t_inside_worker = false;
  }
}

void ThreadPool::RunChunks(Job* job) {
  const bool timed = obs::MetricsEnabled();
  const int64_t t0 = timed ? PoolNowNs() : 0;
  int64_t executed = 0;
  while (true) {
    int64_t b = job->next.fetch_add(job->chunk, std::memory_order_relaxed);
    if (b >= job->end) break;
    int64_t e = std::min(job->end, b + job->chunk);
    (*job->fn)(b, e);
    ++executed;
    if (job->chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(job_mutex_);
      done_cv_.notify_all();
    }
  }
  if (executed > 0) {
    PoolChunks()->Add(executed);
    if (timed) PoolBusyNs()->Add(PoolNowNs() - t0);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  if (num_threads_ <= 1 || range <= grain || t_inside_worker ||
      t_serial_depth > 0) {
    PoolInlineRuns()->Increment();
    fn(begin, end);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  if (!started_) StartWorkers();
  PoolJobs()->Increment();

  int64_t target_chunks =
      std::min<int64_t>((range + grain - 1) / grain,
                        static_cast<int64_t>(num_threads_) * kChunksPerThread);
  // grain is a hard minimum chunk size (only the final chunk may be
  // smaller), so callers can rely on it to bound per-chunk overhead.
  int64_t chunk = std::max(grain, (range + target_chunks - 1) / target_chunks);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->end = end;
  job->chunk = chunk;
  int64_t num_chunks = (range + chunk - 1) / chunk;
  job->next.store(begin, std::memory_order_relaxed);
  job->chunks_left.store(num_chunks, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    PoolJobChunks()->Observe(static_cast<double>(num_chunks));
  }
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    current_job_ = job;
    ++job_generation_;
  }
  job_cv_.notify_all();

  // The submitting thread works too; with slow-to-wake workers it simply
  // runs every chunk itself.
  t_inside_worker = true;
  RunChunks(job.get());
  t_inside_worker = false;

  {
    std::unique_lock<std::mutex> lock(job_mutex_);
    done_cv_.wait(lock, [&] {
      return job->chunks_left.load(std::memory_order_acquire) == 0;
    });
    current_job_.reset();
  }
}

void SetNumThreads(int num_threads) {
  ThreadPool::Global().Resize(num_threads);
}

int GetNumThreads() { return ThreadPool::Global().num_threads(); }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

SerialRegion::SerialRegion() { ++t_serial_depth; }

SerialRegion::~SerialRegion() { --t_serial_depth; }

}  // namespace omnimatch
