#ifndef OMNIMATCH_COMMON_THREADPOOL_H_
#define OMNIMATCH_COMMON_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace omnimatch {

/// Shared compute thread pool behind every parallel kernel in the library.
///
/// Design goals, in priority order:
///  1. **Bit-determinism for any thread count.** ParallelFor splits
///     [begin, end) into disjoint contiguous chunks and each chunk is run by
///     exactly one thread. Kernels are written so that every output element
///     is produced entirely inside the chunk that owns it, with a fixed
///     intra-chunk iteration order; reductions combine per-chunk partials in
///     index order on the calling thread. Under that contract the result is
///     bit-identical whether the pool has 1 thread or 64 — which chunk runs
///     on which thread (decided dynamically, for load balance) cannot
///     matter.
///  2. **Zero overhead when parallelism cannot help.** Ranges smaller than
///     `grain`, a single-thread pool, and calls issued from inside a worker
///     (nested parallelism) all run inline on the calling thread without
///     touching a lock.
///  3. **No work stealing, no task graph.** One flat job at a time; chunks
///     are claimed with a single atomic fetch-add. This keeps the pool
///     auditable and the determinism argument short.
///
/// The pool is lazily started on first use. Worker threads sleep on a
/// condition variable between jobs.
class ThreadPool {
 public:
  /// The process-wide pool used by all nn/core kernels.
  static ThreadPool& Global();

  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resizes the pool. n <= 0 selects std::thread::hardware_concurrency().
  /// Joins existing workers first; safe to call between (not during) jobs.
  void Resize(int num_threads);

  /// Number of threads that participate in a job (workers + caller).
  int num_threads() const { return num_threads_; }

  /// Runs fn over disjoint contiguous sub-ranges covering [begin, end).
  /// `grain` is the minimum chunk size (elements of work below which
  /// splitting is not worth the scheduling overhead). The calling thread
  /// participates. Runs inline when the range is small, the pool has one
  /// thread, or the caller is itself a pool worker.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  /// One ParallelFor invocation. Immutable bounds plus the two atomics that
  /// drive chunk claiming; stale workers from a finished job only ever see
  /// their own (exhausted) Job object, never the next one's counters.
  struct Job {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t end = 0;
    int64_t chunk = 1;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> chunks_left{0};
  };

  void WorkerLoop();
  void RunChunks(Job* job);
  void StartWorkers();
  void StopWorkers();

  int num_threads_ = 1;
  bool started_ = false;
  std::vector<std::thread> workers_;

  // Serializes jobs submitted from different external threads.
  std::mutex submit_mutex_;

  std::mutex job_mutex_;
  std::condition_variable job_cv_;   // wakes workers
  std::condition_variable done_cv_;  // wakes the submitting thread
  std::shared_ptr<Job> current_job_;
  uint64_t job_generation_ = 0;
  bool shutdown_ = false;
};

/// Sets the global pool size. n <= 0 selects the hardware thread count.
/// Typically driven by the `--threads` flag or OmniMatchConfig::num_threads.
void SetNumThreads(int num_threads);

/// Current global pool size.
int GetNumThreads();

/// ParallelFor on the global pool.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// RAII scope forcing every ParallelFor issued by this thread (including
/// from nested kernels) to run inline as one chunk. By the pool's
/// determinism contract the result is bit-identical to a dispatched run, so
/// this only trades parallelism for zero scheduling overhead. Used by the
/// compiled-graph executor for ops whose recorded work is too small to
/// amortize a dispatch. Nestable.
class SerialRegion {
 public:
  SerialRegion();
  ~SerialRegion();
  SerialRegion(const SerialRegion&) = delete;
  SerialRegion& operator=(const SerialRegion&) = delete;
};

}  // namespace omnimatch

#endif  // OMNIMATCH_COMMON_THREADPOOL_H_
