#include "core/aux_review.h"

#include <algorithm>

#include "common/check.h"

namespace omnimatch {
namespace core {

AuxReviewGenerator::AuxReviewGenerator(const data::CrossDomainDataset* cross,
                                       std::vector<int> eligible_users,
                                       TextField field)
    : cross_(cross),
      eligible_sorted_(std::move(eligible_users)),
      field_(field) {
  OM_CHECK(cross_ != nullptr);
  std::sort(eligible_sorted_.begin(), eligible_sorted_.end());
  eligible_set_.insert(eligible_sorted_.begin(), eligible_sorted_.end());
}

const std::string& AuxReviewGenerator::TextOf(
    const data::Review& review) const {
  return field_ == TextField::kSummary ? review.summary : review.full_text;
}

std::vector<std::string> AuxReviewGenerator::GenerateForUser(
    int user_id, Rng* rng, AuxReviewTrace* trace) const {
  OM_CHECK(rng != nullptr);
  if (trace != nullptr) {
    trace->user_id = user_id;
    trace->choices.clear();
  }
  const data::DomainDataset& source = cross_->source();
  const data::DomainDataset& target = cross_->target();

  std::vector<std::string> aux_reviews;
  // foreach record in u's source-domain purchase records (Alg. 1 line 5).
  for (int rec_idx : source.RecordsOfUser(user_id)) {
    const data::Review& record = source.reviews()[rec_idx];

    AuxReviewChoice choice;
    choice.source_item = record.item_id;
    choice.rating = record.rating;
    choice.source_review = TextOf(record);

    // like_minded_s = users who rated the same item with the same rating
    // (line 7), filtered to overlapping training users (lines 8-11).
    std::vector<int> like_minded_t;
    for (int v : source.UsersWhoRated(record.item_id, record.rating)) {
      if (v != user_id && eligible_set_.count(v) > 0) {
        like_minded_t.push_back(v);
      }
    }
    // UsersWhoRated() buckets are sorted and duplicate-free (built that way
    // by BuildIndices), and the eligibility filter preserves order — so
    // like_minded_t is already the set Algorithm 1 draws from.
    choice.num_like_minded = static_cast<int>(like_minded_t.size());

    if (!like_minded_t.empty()) {
      // Randomly select one like-minded user (line 12).
      int aux_user = like_minded_t[rng->UniformU32(
          static_cast<uint32_t>(like_minded_t.size()))];
      choice.like_minded_user = aux_user;
      // Randomly select one of their target-domain records (lines 13-15).
      const std::vector<int>& aux_records = target.RecordsOfUser(aux_user);
      if (!aux_records.empty()) {
        const data::Review& aux_record = target.reviews()[aux_records[
            rng->UniformU32(static_cast<uint32_t>(aux_records.size()))]];
        choice.target_item = aux_record.item_id;
        choice.aux_review = TextOf(aux_record);
        aux_reviews.push_back(choice.aux_review);
      }
    }
    if (trace != nullptr) trace->choices.push_back(std::move(choice));
  }
  return aux_reviews;
}

std::vector<std::vector<std::string>> AuxReviewGenerator::GenerateAll(
    const std::vector<int>& cold_users, Rng* rng) const {
  std::vector<std::vector<std::string>> out;
  out.reserve(cold_users.size());
  for (int u : cold_users) out.push_back(GenerateForUser(u, rng));
  return out;
}

}  // namespace core
}  // namespace omnimatch
