#include "core/aux_review.h"

#include <algorithm>

#include "common/check.h"
#include "common/threadpool.h"
#include "obs/metrics.h"

namespace omnimatch {
namespace core {

namespace {

obs::Counter* LikeMindedHits() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("auxgen.like_minded_hits");
  return c;
}
obs::Counter* LikeMindedMisses() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("auxgen.like_minded_misses");
  return c;
}
obs::Counter* EmptyTargetFallbacks() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "auxgen.empty_target_fallbacks");
  return c;
}
obs::Histogram* BucketSizeHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "auxgen.bucket_size",
      std::vector<double>{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  return h;
}

}  // namespace

AuxReviewGenerator::AuxReviewGenerator(const data::CrossDomainDataset* cross,
                                       std::vector<int> eligible_users,
                                       TextField field)
    : cross_(cross),
      eligible_sorted_(std::move(eligible_users)),
      field_(field) {
  OM_CHECK(cross_ != nullptr);
  std::sort(eligible_sorted_.begin(), eligible_sorted_.end());
  // One pass over the packed dictionary up front buys hash-free, span-sized
  // draws for every subsequent record (§4.1 complexity analysis).
  eligible_ir_ = data::CsrIndex<long long>::Filter(
      cross_->source().item_rating_index(), [this](int v) {
        return std::binary_search(eligible_sorted_.begin(),
                                  eligible_sorted_.end(), v);
      });
}

std::string_view AuxReviewGenerator::TextAt(const data::DomainDataset& domain,
                                            int rec_idx) const {
  size_t i = static_cast<size_t>(rec_idx);
  return field_ == TextField::kSummary ? domain.ReviewSummary(i)
                                       : domain.ReviewFullText(i);
}

std::vector<std::string> AuxReviewGenerator::GenerateForUser(
    int user_id, Rng* rng, AuxReviewTrace* trace) const {
  OM_CHECK(rng != nullptr);
  const bool tracing = trace != nullptr;
  if (tracing) {
    trace->user_id = user_id;
    trace->choices.clear();
  }
  const data::DomainDataset& source = cross_->source();
  const data::DomainDataset& target = cross_->target();
  // Histogram observations cost a CAS per record; keep the scan free unless
  // a metrics sink is attached. Counters stay always-on (their contract).
  const bool observe = obs::MetricsEnabled();

  std::vector<std::string> aux_reviews;
  // foreach record in u's source-domain purchase records (Alg. 1 line 5).
  for (int rec_idx : source.RecordsOfUser(user_id)) {
    const int item = source.ReviewItem(static_cast<size_t>(rec_idx));
    const float rating = source.ReviewRating(static_cast<size_t>(rec_idx));

    // like_minded_t = the pre-filtered eligible bucket (lines 7-11), minus
    // the cold user's own entry. The bucket is sorted, so the self entry —
    // if present — sits at its lower_bound position; drawing over n-1 and
    // shifting indices at/after it is the same uniform draw over
    // "bucket \ {u}" the scan-and-filter implementation made.
    data::IdSpan bucket = eligible_ir_.Find(
        data::DomainDataset::ItemRatingKey(item, rating));
    const int* lo = std::lower_bound(bucket.begin(), bucket.end(), user_id);
    const size_t self_pos = static_cast<size_t>(lo - bucket.begin());
    const bool has_self = lo != bucket.end() && *lo == user_id;
    const uint32_t n =
        static_cast<uint32_t>(bucket.size()) - (has_self ? 1u : 0u);
    if (observe) BucketSizeHist()->Observe(static_cast<double>(n));

    int aux_user = -1;
    int target_item = -1;
    std::string_view borrowed;
    bool borrowed_set = false;
    if (n > 0) {
      LikeMindedHits()->Increment();
      // Randomly select one like-minded user (line 12).
      uint32_t draw = rng->UniformU32(n);
      aux_user = bucket[draw + (has_self && draw >= self_pos ? 1 : 0)];
      // Randomly select one of their target-domain records (lines 13-15).
      data::IdSpan aux_records = target.RecordsOfUser(aux_user);
      if (!aux_records.empty()) {
        int aux_idx = aux_records[rng->UniformU32(
            static_cast<uint32_t>(aux_records.size()))];
        target_item = target.ReviewItem(static_cast<size_t>(aux_idx));
        borrowed = TextAt(target, aux_idx);
        borrowed_set = true;
        aux_reviews.emplace_back(borrowed);
      } else {
        EmptyTargetFallbacks()->Increment();
      }
    } else {
      LikeMindedMisses()->Increment();
    }

    if (tracing) {
      AuxReviewChoice choice;
      choice.source_item = item;
      choice.rating = rating;
      choice.source_review = std::string(TextAt(source, rec_idx));
      choice.num_like_minded = static_cast<int>(n);
      choice.like_minded_user = aux_user;
      choice.target_item = target_item;
      if (borrowed_set) choice.aux_review = std::string(borrowed);
      trace->choices.push_back(std::move(choice));
    }
  }
  return aux_reviews;
}

std::vector<std::vector<std::string>> AuxReviewGenerator::GenerateAll(
    const std::vector<int>& cold_users, Rng* rng) const {
  std::vector<std::vector<std::string>> out;
  out.reserve(cold_users.size());
  for (int u : cold_users) out.push_back(GenerateForUser(u, rng));
  return out;
}

std::vector<std::vector<std::string>> AuxReviewGenerator::GenerateAll(
    const std::vector<int>& cold_users, uint64_t base_seed) const {
  std::vector<std::vector<std::string>> out(cold_users.size());
  // Disjoint contiguous chunks + per-user derived streams: bit-identical
  // for any thread count (the ParallelFor determinism contract).
  ParallelFor(0, static_cast<int64_t>(cold_users.size()), 8,
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  int u = cold_users[static_cast<size_t>(i)];
                  Rng rng(PerUserSeed(base_seed, u));
                  out[static_cast<size_t>(i)] = GenerateForUser(u, &rng);
                }
              });
  return out;
}

}  // namespace core
}  // namespace omnimatch
