#ifndef OMNIMATCH_CORE_AUX_REVIEW_H_
#define OMNIMATCH_CORE_AUX_REVIEW_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "data/dataset.h"

namespace omnimatch {
namespace core {

/// One step of Algorithm 1 for a single source-domain purchase record:
/// which like-minded user was picked and which of their target-domain
/// reviews was appended to the auxiliary document. Used by the §5.10 case
/// study and by tests.
struct AuxReviewChoice {
  int source_item = -1;
  float rating = 0.0f;
  std::string source_review;      // the cold user's own source review
  int num_like_minded = 0;        // |like_minded_t| for this record
  int like_minded_user = -1;      // -1 when no like-minded user existed
  int target_item = -1;           // item whose review was borrowed
  std::string aux_review;         // empty when skipped
};

/// Full generation trace for one cold-start user.
struct AuxReviewTrace {
  int user_id = -1;
  std::vector<AuxReviewChoice> choices;
};

/// The Auxiliary Reviews Generation Module (§4.1, Algorithm 1).
///
/// For a cold-start user u: for every purchase record (item, rating) of u in
/// the source domain, find the overlapping users who gave the *same item the
/// same rating* (the like-minded users, restricted to `eligible_users` —
/// the training overlap users whose target-domain data the model may see),
/// pick one uniformly at random, pick one of their target-domain records
/// uniformly at random, and append that record's review text to u's
/// auxiliary target-domain document.
///
/// Precomputed dictionaries (the two maps of the §4.1 complexity analysis)
/// live on `DomainDataset`, making each lookup O(1); generation for one user
/// is O(M·Q) with M = user's source records, Q = mean like-minded set size.
class AuxReviewGenerator {
 public:
  /// `cross` must outlive the generator. `eligible_users` are the users
  /// whose target reviews may be borrowed (train overlap users).
  AuxReviewGenerator(const data::CrossDomainDataset* cross,
                     std::vector<int> eligible_users,
                     TextField field = TextField::kSummary);

  /// Runs Algorithm 1's inner loop for one user. Returns the auxiliary
  /// review texts (one per usable source record). `trace`, when non-null,
  /// receives the full decision log including skipped records.
  std::vector<std::string> GenerateForUser(int user_id, Rng* rng,
                                           AuxReviewTrace* trace = nullptr) const;

  /// Algorithm 1's outer loop: auxiliary documents for every user in
  /// `cold_users`, in order.
  std::vector<std::vector<std::string>> GenerateAll(
      const std::vector<int>& cold_users, Rng* rng) const;

  const std::vector<int>& eligible_users() const {
    return eligible_sorted_;
  }

 private:
  const std::string& TextOf(const data::Review& review) const;

  const data::CrossDomainDataset* cross_;
  std::vector<int> eligible_sorted_;
  std::unordered_set<int> eligible_set_;
  TextField field_;
};

}  // namespace core
}  // namespace omnimatch

#endif  // OMNIMATCH_CORE_AUX_REVIEW_H_
