#ifndef OMNIMATCH_CORE_AUX_REVIEW_H_
#define OMNIMATCH_CORE_AUX_REVIEW_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "data/dataset.h"

namespace omnimatch {
namespace core {

/// One step of Algorithm 1 for a single source-domain purchase record:
/// which like-minded user was picked and which of their target-domain
/// reviews was appended to the auxiliary document. Used by the §5.10 case
/// study and by tests.
struct AuxReviewChoice {
  int source_item = -1;
  float rating = 0.0f;
  std::string source_review;      // the cold user's own source review
  int num_like_minded = 0;        // |like_minded_t| for this record
  int like_minded_user = -1;      // -1 when no like-minded user existed
  int target_item = -1;           // item whose review was borrowed
  std::string aux_review;         // empty when skipped
};

/// Full generation trace for one cold-start user.
struct AuxReviewTrace {
  int user_id = -1;
  std::vector<AuxReviewChoice> choices;
};

/// The Auxiliary Reviews Generation Module (§4.1, Algorithm 1).
///
/// For a cold-start user u: for every purchase record (item, rating) of u in
/// the source domain, find the overlapping users who gave the *same item the
/// same rating* (the like-minded users, restricted to `eligible_users` —
/// the training overlap users whose target-domain data the model may see),
/// pick one uniformly at random, pick one of their target-domain records
/// uniformly at random, and append that record's review text to u's
/// auxiliary target-domain document.
///
/// The constructor pre-filters the source's CSR (item, rating) -> users
/// dictionary down to the eligible users once, so GenerateForUser draws a
/// like-minded user with a single UniformU32 over a contiguous span — no
/// per-record candidate list is materialized and no hash probes run on the
/// hot path. The draw is bit-identical to filtering the raw bucket per
/// record: buckets are sorted and duplicate-free, the eligibility filter
/// preserves order, and the cold user's own entry (the one per-query
/// exclusion) is skipped by index remapping around its lower_bound position
/// without consuming extra randomness.
class AuxReviewGenerator {
 public:
  /// `cross` must outlive the generator. `eligible_users` are the users
  /// whose target reviews may be borrowed (train overlap users).
  AuxReviewGenerator(const data::CrossDomainDataset* cross,
                     std::vector<int> eligible_users,
                     TextField field = TextField::kSummary);

  /// Runs Algorithm 1's inner loop for one user. Returns the auxiliary
  /// review texts (one per usable source record). `trace`, when non-null,
  /// receives the full decision log including skipped records (tracing is
  /// the only mode that materializes per-choice strings).
  std::vector<std::string> GenerateForUser(int user_id, Rng* rng,
                                           AuxReviewTrace* trace = nullptr) const;

  /// Algorithm 1's outer loop: auxiliary documents for every user in
  /// `cold_users`, in order, drawn from one shared sequential stream.
  std::vector<std::vector<std::string>> GenerateAll(
      const std::vector<int>& cold_users, Rng* rng) const;

  /// Parallel outer loop: each user draws from its own stream seeded
  /// PerUserSeed(base_seed, user), so the result is independent of thread
  /// count and of the order users are processed in — and matches what the
  /// serving path generates online for the same (base_seed, user) pair.
  std::vector<std::vector<std::string>> GenerateAll(
      const std::vector<int>& cold_users, uint64_t base_seed) const;

  /// The per-user seeding contract shared by offline generation and online
  /// cold-start admission (serve's ModelSnapshot uses its version digest as
  /// `base_seed`): base ^ SplitMix64(uint32(user)). Mixing the id through
  /// SplitMix64 decorrelates the streams of adjacent user ids.
  static uint64_t PerUserSeed(uint64_t base_seed, int user_id) {
    return base_seed ^
           SplitMix64(static_cast<uint64_t>(static_cast<uint32_t>(user_id)));
  }

  const std::vector<int>& eligible_users() const {
    return eligible_sorted_;
  }

 private:
  std::string_view TextAt(const data::DomainDataset& domain, int rec_idx) const;

  const data::CrossDomainDataset* cross_;
  std::vector<int> eligible_sorted_;
  /// source.item_rating_index() restricted to eligible users: same keys,
  /// buckets sorted / duplicate-free / eligible-only. Rebuilding-free view —
  /// valid as long as the source dataset's indices are.
  data::CsrIndex<long long> eligible_ir_;
  TextField field_;
};

}  // namespace core
}  // namespace omnimatch

#endif  // OMNIMATCH_CORE_AUX_REVIEW_H_
