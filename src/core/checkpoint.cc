#include "core/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/io.h"
#include "common/string_util.h"

namespace omnimatch {
namespace core {

namespace {

/// Section tags inside the payload. Sections appear in ascending tag order;
/// each is `u32 tag, u64 byte-size, bytes`. The fixed order plus explicit
/// sizes let a reader skip or sanity-check sections independently and give
/// fault-injection tests precise corruption targets.
enum SectionTag : uint32_t {
  kMeta = 1,       // fingerprint, epochs_completed, steps
  kParams = 2,     // model parameters
  kOptimizer = 3,  // optimizer counters + slots
  kRng = 4,        // trainer + model RNG states
  kTraces = 5,     // loss/validation traces, best epoch
  kOrder = 6,      // sample_order permutation
  kBest = 7,       // best-epoch parameter snapshot
  kGuard = 8,      // recovery trace, live LR, guard EMA state (v2)
};

void WriteTensorList(ByteWriter* w,
                     const std::vector<std::vector<float>>& tensors) {
  w->Write<uint64_t>(tensors.size());
  for (const auto& t : tensors) w->WriteVector(t);
}

bool ReadTensorList(ByteReader* r, std::vector<std::vector<float>>* out) {
  uint64_t count = 0;
  if (!r->Read(&count) || count > r->remaining()) return false;
  out->resize(static_cast<size_t>(count));
  for (auto& t : *out) {
    if (!r->ReadVector(&t)) return false;
  }
  return true;
}

void WriteRngState(ByteWriter* w, const Rng::State& s) {
  w->Write<uint64_t>(s.state);
  w->Write<uint64_t>(s.inc);
  w->Write<uint8_t>(s.has_cached_normal);
  w->Write<double>(s.cached_normal);
}

bool ReadRngState(ByteReader* r, Rng::State* s) {
  return r->Read(&s->state) && r->Read(&s->inc) &&
         r->Read(&s->has_cached_normal) && r->Read(&s->cached_normal);
}

/// Writes one `tag, size, body` section; `body` is built by `fill`.
template <typename Fill>
void WriteSection(ByteWriter* w, SectionTag tag, Fill fill) {
  ByteWriter body;
  fill(&body);
  w->Write<uint32_t>(tag);
  w->WriteString(body.buffer());
}

std::string EncodePayload(const CheckpointState& state) {
  ByteWriter payload;
  WriteSection(&payload, kMeta, [&](ByteWriter* w) {
    w->Write<uint64_t>(state.config_fingerprint);
    w->Write<int32_t>(state.epochs_completed);
    w->Write<int64_t>(state.steps);
  });
  WriteSection(&payload, kParams, [&](ByteWriter* w) {
    WriteTensorList(w, state.params);
  });
  WriteSection(&payload, kOptimizer, [&](ByteWriter* w) {
    w->WriteVector(state.optimizer.counters);
    WriteTensorList(w, state.optimizer.slots);
  });
  WriteSection(&payload, kRng, [&](ByteWriter* w) {
    WriteRngState(w, state.trainer_rng);
    w->Write<uint64_t>(state.model_rngs.size());
    for (const Rng::State& s : state.model_rngs) WriteRngState(w, s);
  });
  WriteSection(&payload, kTraces, [&](ByteWriter* w) {
    w->WriteVector(state.total_loss);
    w->WriteVector(state.rating_loss);
    w->WriteVector(state.scl_loss);
    w->WriteVector(state.domain_loss);
    w->WriteVector(state.validation_rmse);
    w->Write<int32_t>(state.best_epoch);
    w->Write<double>(state.best_rmse);
  });
  WriteSection(&payload, kOrder, [&](ByteWriter* w) {
    w->WriteVector(state.sample_order);
  });
  WriteSection(&payload, kBest, [&](ByteWriter* w) {
    WriteTensorList(w, state.best_params);
  });
  WriteSection(&payload, kGuard, [&](ByteWriter* w) {
    w->Write<int32_t>(state.recoveries);
    w->Write<uint8_t>(state.guard_gave_up);
    w->Write<float>(state.current_lr);
    w->Write<double>(state.guard_ema);
    w->Write<int64_t>(state.guard_healthy_steps);
    w->Write<uint64_t>(state.recovery_events.size());
    for (const RecoveryEvent& e : state.recovery_events) {
      w->Write<int64_t>(e.step);
      w->Write<int32_t>(static_cast<int32_t>(e.reason));
      w->Write<double>(e.observed);
      w->Write<double>(e.threshold);
      w->Write<float>(e.lr_before);
      w->Write<float>(e.lr_after);
    }
  });
  return payload.Release();
}

}  // namespace

Status SaveCheckpointFile(const std::string& path,
                          const CheckpointState& state) {
  // Fault point: the Nth checkpoint save fails cleanly, exercising the
  // trainer's save-failure tolerance without touching the filesystem.
  if (FaultInjector::Global().ShouldFire("checkpoint_write")) {
    return Status::IoError(path + ": injected checkpoint write fault");
  }
  std::string payload = EncodePayload(state);
  ByteWriter file;
  file.Write<char>(kCheckpointMagic[0]);
  file.Write<char>(kCheckpointMagic[1]);
  file.Write<char>(kCheckpointMagic[2]);
  file.Write<char>(kCheckpointMagic[3]);
  file.Write<uint32_t>(kCheckpointVersion);
  file.Write<uint64_t>(payload.size());
  file.Write<uint32_t>(Crc32(payload));
  std::string out = file.Release();
  out += payload;
  return WriteFileAtomic(path, out);
}

Result<CheckpointState> LoadCheckpointFile(const std::string& path) {
  Result<std::string> file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  const std::string& raw = file.value();

  constexpr size_t kHeaderSize = 4 + 4 + 8 + 4;
  if (raw.size() < kHeaderSize) {
    return Status::InvalidArgument(path + ": too small to be a checkpoint");
  }
  ByteReader header(std::string_view(raw).substr(0, kHeaderSize));
  char magic[4];
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  header.Read(&magic[0]);
  header.Read(&magic[1]);
  header.Read(&magic[2]);
  header.Read(&magic[3]);
  header.Read(&version);
  header.Read(&payload_size);
  header.Read(&crc);
  if (std::memcmp(magic, kCheckpointMagic, 4) != 0) {
    return Status::InvalidArgument(path + ": not a checkpoint file");
  }
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: checkpoint version %u, this build reads %u",
                  path.c_str(), version, kCheckpointVersion));
  }
  if (raw.size() - kHeaderSize != payload_size) {
    return Status::InvalidArgument(StrFormat(
        "%s: payload is %zu bytes, header promises %llu (truncated?)",
        path.c_str(), raw.size() - kHeaderSize,
        static_cast<unsigned long long>(payload_size)));
  }
  std::string_view payload = std::string_view(raw).substr(kHeaderSize);
  if (Crc32(payload) != crc) {
    return Status::InvalidArgument(path + ": payload checksum mismatch");
  }

  CheckpointState state;
  ByteReader r(payload);
  auto section = [&](SectionTag tag,
                     auto parse) -> Status {
    uint32_t got = 0;
    uint64_t size = 0;
    if (!r.Read(&got) || got != tag || !r.Read(&size) ||
        size > r.remaining()) {
      return Status::InvalidArgument(
          StrFormat("%s: section %u missing or truncated", path.c_str(),
                    static_cast<unsigned>(tag)));
    }
    size_t before = r.remaining();
    if (!parse(&r) || before - r.remaining() != size) {
      return Status::InvalidArgument(StrFormat(
          "%s: section %u corrupt", path.c_str(),
          static_cast<unsigned>(tag)));
    }
    return Status::OK();
  };

  OM_RETURN_IF_ERROR(section(kMeta, [&](ByteReader* b) {
    return b->Read(&state.config_fingerprint) &&
           b->Read(&state.epochs_completed) && b->Read(&state.steps);
  }));
  OM_RETURN_IF_ERROR(section(kParams, [&](ByteReader* b) {
    return ReadTensorList(b, &state.params);
  }));
  OM_RETURN_IF_ERROR(section(kOptimizer, [&](ByteReader* b) {
    return b->ReadVector(&state.optimizer.counters) &&
           ReadTensorList(b, &state.optimizer.slots);
  }));
  OM_RETURN_IF_ERROR(section(kRng, [&](ByteReader* b) {
    if (!ReadRngState(b, &state.trainer_rng)) return false;
    uint64_t count = 0;
    if (!b->Read(&count) || count > b->remaining()) return false;
    state.model_rngs.resize(static_cast<size_t>(count));
    for (Rng::State& s : state.model_rngs) {
      if (!ReadRngState(b, &s)) return false;
    }
    return true;
  }));
  OM_RETURN_IF_ERROR(section(kTraces, [&](ByteReader* b) {
    return b->ReadVector(&state.total_loss) &&
           b->ReadVector(&state.rating_loss) &&
           b->ReadVector(&state.scl_loss) &&
           b->ReadVector(&state.domain_loss) &&
           b->ReadVector(&state.validation_rmse) &&
           b->Read(&state.best_epoch) && b->Read(&state.best_rmse);
  }));
  OM_RETURN_IF_ERROR(section(kOrder, [&](ByteReader* b) {
    return b->ReadVector(&state.sample_order);
  }));
  OM_RETURN_IF_ERROR(section(kBest, [&](ByteReader* b) {
    return ReadTensorList(b, &state.best_params);
  }));
  OM_RETURN_IF_ERROR(section(kGuard, [&](ByteReader* b) {
    if (!b->Read(&state.recoveries) || !b->Read(&state.guard_gave_up) ||
        !b->Read(&state.current_lr) || !b->Read(&state.guard_ema) ||
        !b->Read(&state.guard_healthy_steps)) {
      return false;
    }
    uint64_t count = 0;
    if (!b->Read(&count) || count > b->remaining()) return false;
    state.recovery_events.resize(static_cast<size_t>(count));
    for (RecoveryEvent& e : state.recovery_events) {
      int32_t reason = 0;
      if (!b->Read(&e.step) || !b->Read(&reason) || !b->Read(&e.observed) ||
          !b->Read(&e.threshold) || !b->Read(&e.lr_before) ||
          !b->Read(&e.lr_after)) {
        return false;
      }
      if (reason < 0 ||
          reason > static_cast<int32_t>(FaultReason::kNonFiniteParam)) {
        return false;
      }
      e.reason = static_cast<FaultReason>(reason);
    }
    return true;
  }));
  if (!r.exhausted()) {
    return Status::InvalidArgument(path + ": trailing bytes after sections");
  }
  return state;
}

Result<std::string> FindLatestCheckpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IoError(dir + ": " + ec.message());
  std::string best_path;
  long best_epoch = -1;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    // checkpoint_epoch<N>.omck
    constexpr char kPrefix[] = "checkpoint_epoch";
    constexpr char kSuffix[] = ".omck";
    if (!StartsWith(name, kPrefix)) continue;
    size_t digits_at = sizeof(kPrefix) - 1;
    size_t suffix_at = name.rfind(kSuffix);
    if (suffix_at == std::string::npos || suffix_at <= digits_at ||
        suffix_at + sizeof(kSuffix) - 1 != name.size()) {
      continue;
    }
    int epoch = 0;
    if (!ParseInt32(name.substr(digits_at, suffix_at - digits_at), &epoch)) {
      continue;
    }
    if (epoch > best_epoch) {
      best_epoch = epoch;
      best_path = entry.path().string();
    }
  }
  if (best_epoch < 0) {
    return Status::NotFound("no checkpoint_epoch<N>.omck files in " + dir);
  }
  return best_path;
}

}  // namespace core
}  // namespace omnimatch
