#ifndef OMNIMATCH_CORE_CHECKPOINT_H_
#define OMNIMATCH_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/guard.h"
#include "nn/optimizer.h"

namespace omnimatch {
namespace core {

/// Everything needed to resume a training run bit-for-bit at an epoch
/// boundary: parameters, optimizer accumulators, both RNG streams, the
/// current epoch-shuffle permutation, the loss/validation traces and the
/// best-epoch parameter snapshot. OmniMatchTrainer fills/consumes this;
/// Save/LoadCheckpointFile handle the on-disk format.
struct CheckpointState {
  /// OmniMatchConfig::Fingerprint() of the run that wrote the checkpoint.
  uint64_t config_fingerprint = 0;
  int32_t epochs_completed = 0;
  int64_t steps = 0;

  /// Model parameters in Parameters() order.
  std::vector<std::vector<float>> params;
  nn::OptimizerState optimizer;
  /// Trainer stream (shuffling, document seeds, aux generation).
  Rng::State trainer_rng;
  /// Every model-owned dropout stream, in OmniMatchModel::RngStates()
  /// order (pooled-feature stream + one per Mlp).
  std::vector<Rng::State> model_rngs;

  /// Per-epoch traces accumulated so far (TrainStats prefix).
  std::vector<double> total_loss;
  std::vector<double> rating_loss;
  std::vector<double> scl_loss;
  std::vector<double> domain_loss;
  std::vector<double> validation_rmse;
  int32_t best_epoch = -1;
  double best_rmse = 0.0;
  /// Best-epoch parameter snapshot (empty when validation tracking is off
  /// or no epoch has been selected yet).
  std::vector<std::vector<float>> best_params;

  /// Current permutation of training-sample indices (the in-place epoch
  /// shuffles compose, so the order must travel with the checkpoint).
  std::vector<int32_t> sample_order;

  /// --- self-healing guard state (format v2) ---
  /// Full recovery trace so far, the retry budget already spent, and
  /// whether the guard gave up. `current_lr` is the optimizer's live
  /// learning rate — after a divergence backoff it differs from the config
  /// value, and resuming with the config LR would re-diverge.
  std::vector<RecoveryEvent> recovery_events;
  int32_t recoveries = 0;
  uint8_t guard_gave_up = 0;
  float current_lr = 0.0f;
  double guard_ema = 0.0;
  int64_t guard_healthy_steps = 0;
};

/// On-disk layout (little-endian):
///   bytes 0-3   magic "OMCK"
///   bytes 4-7   format version (u32, currently 1)
///   bytes 8-15  payload size in bytes (u64)
///   bytes 16-19 CRC-32 of the payload (u32)
///   bytes 20-   payload: the CheckpointState sections
/// The file is written atomically (tmp + fsync + rename), so a crash mid-
/// save leaves the previous checkpoint intact. See DESIGN.md "Checkpoint
/// format" for the section layout inside the payload.
inline constexpr char kCheckpointMagic[4] = {'O', 'M', 'C', 'K'};
/// v2 appended the guard section (recovery trace, live learning rate, EMA
/// state); v1 files are rejected — silently resuming without the backed-off
/// LR would re-diverge a recovered run.
inline constexpr uint32_t kCheckpointVersion = 2;

/// Serializes `state` and writes it crash-safely to `path`.
Status SaveCheckpointFile(const std::string& path,
                          const CheckpointState& state);

/// Reads and validates a checkpoint. Returns InvalidArgument for anything
/// structurally wrong (bad magic, unknown version, size mismatch, CRC
/// failure, truncated sections) and IoError when the file cannot be read.
Result<CheckpointState> LoadCheckpointFile(const std::string& path);

/// Scans `dir` for files named like SaveCheckpoint's periodic output
/// (checkpoint_epoch<N>.omck) and returns the path with the highest epoch.
/// NotFound when the directory holds no checkpoints.
Result<std::string> FindLatestCheckpoint(const std::string& dir);

}  // namespace core
}  // namespace omnimatch

#endif  // OMNIMATCH_CORE_CHECKPOINT_H_
