#include "core/config.h"

#include "common/io.h"
#include "common/string_util.h"

namespace omnimatch {
namespace core {

Status OmniMatchConfig::Validate() const {
  if (embed_dim <= 0) return Status::InvalidArgument("embed_dim must be > 0");
  if (cnn_channels <= 0) {
    return Status::InvalidArgument("cnn_channels must be > 0");
  }
  if (kernel_sizes.empty()) {
    return Status::InvalidArgument("kernel_sizes must be non-empty");
  }
  for (int k : kernel_sizes) {
    if (k <= 0 || k > doc_len || k > item_doc_len) {
      return Status::InvalidArgument(
          StrFormat("kernel size %d out of range for doc_len %d", k,
                    doc_len));
    }
  }
  if (feature_dim <= 0) {
    return Status::InvalidArgument("feature_dim must be > 0");
  }
  if (projection_dim <= 0) {
    return Status::InvalidArgument("projection_dim must be > 0");
  }
  if (doc_len <= 0 || item_doc_len <= 0) {
    return Status::InvalidArgument("document lengths must be > 0");
  }
  if (num_rating_classes < 2) {
    return Status::InvalidArgument("num_rating_classes must be >= 2");
  }
  if (dropout < 0.0f || dropout >= 1.0f) {
    return Status::InvalidArgument("dropout must be in [0, 1)");
  }
  if (batch_size <= 1) {
    return Status::InvalidArgument(
        "batch_size must be > 1 (contrastive loss needs pairs)");
  }
  if (epochs < 0) return Status::InvalidArgument("epochs must be >= 0");
  if (learning_rate <= 0.0f) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (adadelta_rho <= 0.0f || adadelta_rho >= 1.0f) {
    return Status::InvalidArgument("adadelta_rho must be in (0, 1)");
  }
  if (alpha < 0.0f || beta < 0.0f) {
    return Status::InvalidArgument("loss weights must be >= 0");
  }
  if (temperature <= 0.0f) {
    return Status::InvalidArgument("temperature must be > 0");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0 (0 = auto)");
  }
  if (checkpoint_every < 0) {
    return Status::InvalidArgument("checkpoint_every must be >= 0 (0 = off)");
  }
  if (checkpoint_every > 0 && checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every > 0 requires a checkpoint_dir");
  }
  if (guard_spike_factor <= 1.0f) {
    return Status::InvalidArgument(
        "guard_spike_factor must be > 1 (a factor <= 1 flags normal noise)");
  }
  if (guard_ema_decay <= 0.0f || guard_ema_decay >= 1.0f) {
    return Status::InvalidArgument("guard_ema_decay must be in (0, 1)");
  }
  if (guard_warmup_steps < 0) {
    return Status::InvalidArgument("guard_warmup_steps must be >= 0");
  }
  if (max_recoveries < 0) {
    return Status::InvalidArgument("max_recoveries must be >= 0");
  }
  if (lr_backoff <= 0.0f || lr_backoff > 1.0f) {
    return Status::InvalidArgument("lr_backoff must be in (0, 1]");
  }
  return Status::OK();
}

uint64_t OmniMatchConfig::Fingerprint() const {
  // Serialize the trajectory-shaping fields in a fixed order, then FNV-1a
  // the bytes. Field order is part of the checkpoint format: changing it
  // (or adding a field) invalidates old checkpoints, which is exactly the
  // safe behaviour.
  ByteWriter w;
  w.Write<int32_t>(embed_dim);
  w.Write<int32_t>(cnn_channels);
  for (int k : kernel_sizes) w.Write<int32_t>(k);
  w.Write<int32_t>(feature_dim);
  w.Write<int32_t>(projection_dim);
  w.Write<int32_t>(doc_len);
  w.Write<int32_t>(item_doc_len);
  w.Write<int32_t>(num_rating_classes);
  w.Write<float>(dropout);
  w.Write<int32_t>(batch_size);
  w.Write<int32_t>(static_cast<int32_t>(optimizer));
  w.Write<float>(learning_rate);
  w.Write<float>(adadelta_rho);
  w.Write<float>(adam_lr);
  w.Write<float>(grad_clip_norm);
  w.Write<uint8_t>(select_best_epoch ? 1 : 0);
  w.Write<float>(alpha);
  w.Write<float>(beta);
  w.Write<float>(temperature);
  w.Write<float>(grl_lambda);
  w.Write<uint8_t>(use_interaction_features ? 1 : 0);
  w.Write<uint8_t>(use_mean_embedding_feature ? 1 : 0);
  w.Write<float>(aux_augmentation_prob);
  w.Write<uint8_t>(use_hybrid_inference ? 1 : 0);
  w.Write<int32_t>(aux_eval_samples);
  w.Write<uint8_t>(shuffle_reviews_in_training ? 1 : 0);
  w.Write<float>(word_dropout);
  w.Write<uint8_t>(use_scl ? 1 : 0);
  w.Write<uint8_t>(use_domain_adversarial ? 1 : 0);
  w.Write<uint8_t>(use_aux_reviews ? 1 : 0);
  w.Write<int32_t>(static_cast<int32_t>(extractor));
  w.Write<int32_t>(static_cast<int32_t>(text_field));
  w.Write<int32_t>(min_vocab_count);
  w.Write<uint64_t>(seed);

  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  for (unsigned char c : w.buffer()) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace core
}  // namespace omnimatch
