#include "core/config.h"

#include "common/string_util.h"

namespace omnimatch {
namespace core {

Status OmniMatchConfig::Validate() const {
  if (embed_dim <= 0) return Status::InvalidArgument("embed_dim must be > 0");
  if (cnn_channels <= 0) {
    return Status::InvalidArgument("cnn_channels must be > 0");
  }
  if (kernel_sizes.empty()) {
    return Status::InvalidArgument("kernel_sizes must be non-empty");
  }
  for (int k : kernel_sizes) {
    if (k <= 0 || k > doc_len || k > item_doc_len) {
      return Status::InvalidArgument(
          StrFormat("kernel size %d out of range for doc_len %d", k,
                    doc_len));
    }
  }
  if (feature_dim <= 0) {
    return Status::InvalidArgument("feature_dim must be > 0");
  }
  if (projection_dim <= 0) {
    return Status::InvalidArgument("projection_dim must be > 0");
  }
  if (doc_len <= 0 || item_doc_len <= 0) {
    return Status::InvalidArgument("document lengths must be > 0");
  }
  if (num_rating_classes < 2) {
    return Status::InvalidArgument("num_rating_classes must be >= 2");
  }
  if (dropout < 0.0f || dropout >= 1.0f) {
    return Status::InvalidArgument("dropout must be in [0, 1)");
  }
  if (batch_size <= 1) {
    return Status::InvalidArgument(
        "batch_size must be > 1 (contrastive loss needs pairs)");
  }
  if (epochs < 0) return Status::InvalidArgument("epochs must be >= 0");
  if (learning_rate <= 0.0f) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (adadelta_rho <= 0.0f || adadelta_rho >= 1.0f) {
    return Status::InvalidArgument("adadelta_rho must be in (0, 1)");
  }
  if (alpha < 0.0f || beta < 0.0f) {
    return Status::InvalidArgument("loss weights must be >= 0");
  }
  if (temperature <= 0.0f) {
    return Status::InvalidArgument("temperature must be > 0");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0 (0 = auto)");
  }
  return Status::OK();
}

}  // namespace core
}  // namespace omnimatch
