#ifndef OMNIMATCH_CORE_CONFIG_H_
#define OMNIMATCH_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace omnimatch {
namespace core {

/// Which text feature extractor backs the Feature Extraction Module.
enum class ExtractorKind {
  kCnn,          // the paper's default (§4.2)
  kTransformer,  // the Table 5 "OmniMatch-BERT" substitute
};

/// Which review field feeds the documents (§5.2 / Table 5).
enum class TextField {
  kSummary,   // "review summary" — the paper's default
  kFullText,  // "reviewText" — the OmniMatch-ReviewText ablation
};

/// Optimizer choice. The paper trains with Adadelta (§5.4); Adam is provided
/// because at this repository's reduced model scale it converges in far
/// fewer epochs (see DESIGN.md §7).
enum class OptimizerKind { kAdadelta, kAdam };

/// All hyperparameters of OmniMatch plus the ablation switches used by the
/// Table 5 experiments. Defaults are the paper's values scaled for CPU
/// execution (see DESIGN.md §7; paper values in comments).
struct OmniMatchConfig {
  // --- architecture ---
  int embed_dim = 32;                      // paper: 300 (fastText)
  int cnn_channels = 24;                   // paper: 200 kernels
  std::vector<int> kernel_sizes = {3, 4, 5};  // paper: (3, 4, 5)
  int feature_dim = 48;   // width of invariant and specific features
  int projection_dim = 24;                 // paper: 128
  int doc_len = 64;       // tokens kept per user document
  int item_doc_len = 96;  // tokens kept per item document
  int num_rating_classes = 5;

  // --- optimization (§5.4) ---
  float dropout = 0.4f;
  int batch_size = 64;
  int epochs = 10;                         // paper: 15
  /// Default optimizer is Adam: the paper's Adadelta (lr 0.02, ρ 0.95) is
  /// implemented and selectable, but at this repository's reduced model
  /// scale it needs several times more epochs to converge (see
  /// EXPERIMENTS.md, optimizer ablation).
  OptimizerKind optimizer = OptimizerKind::kAdam;
  float learning_rate = 0.02f;             // Adadelta lr (paper §5.4)
  float adadelta_rho = 0.95f;
  float adam_lr = 2e-3f;  // used when optimizer == kAdam
  float grad_clip_norm = 5.0f;
  /// After each epoch, evaluate on the split's validation users and keep the
  /// parameters of the best epoch (standard validation-based model
  /// selection; the paper's validation half of the cold users exists for
  /// exactly this).
  bool select_best_epoch = true;

  // --- loss weights (§4.5, §5.8) ---
  float alpha = 0.2f;  // supervised contrastive weight
  float beta = 0.1f;   // domain-adversarial weight
  float temperature = 0.07f;
  float grl_lambda = 1.0f;

  /// Feed the rating classifier an explicit elementwise-product feature
  /// (projected user ⊙ item) alongside the concatenation. Plain concat-MLPs
  /// approximate multiplicative user-item interactions poorly — DeepCoNN
  /// (the paper's ancestor) used a Factorization Machine for the same
  /// reason. Off reproduces the paper's literal Eq. 18 input.
  bool use_interaction_features = true;

  /// Concatenate the document's mean token embedding (bag-of-words mean) to
  /// the CNN output before the feature heads. Max-over-time pooling encodes
  /// word *presence*; the mean embedding adds word *frequency*, which the
  /// user/item taste profiles live in. Ablatable back to the paper's pure
  /// max-pooled features.
  bool use_mean_embedding_feature = true;

  /// Cold-start self-simulation (extension over the paper, ablatable):
  /// with this probability a training user's target document is replaced,
  /// per batch, by an Algorithm 1 auxiliary document generated from the
  /// *other* training users. This trains the target extractor and rating
  /// classifier on the same input distribution cold-start users will
  /// present at inference. 0 reproduces the paper's training exactly.
  float aux_augmentation_prob = 0.5f;
  /// Hybrid cold-start inference (extension, ablatable): besides the
  /// auxiliary-document target features, also score each pair with a hybrid
  /// representation [source-invariant ⊕ target-specific] and average. The
  /// invariant half comes from the user's OWN source document — exactly the
  /// features the DA + SCL modules align across domains — so the paper's
  /// domain-invariant machinery is exercised at inference, not only in
  /// training. The rating classifier is trained on the same hybrid input.
  bool use_hybrid_inference = false;

  /// Number of independently sampled auxiliary documents per cold-start
  /// user; predictions are averaged over them at evaluation time. Algorithm
  /// 1 is stochastic (random like-minded user, random review), so averaging
  /// integrates out the sampling noise. 1 reproduces the paper's single
  /// draw.
  int aux_eval_samples = 4;

  // --- regularization of the text pipeline ---
  /// During training, documents are re-assembled per batch with the user's
  /// (or item's) reviews in a fresh random order; evaluation documents are
  /// fixed. Review order inside a concatenated document is arbitrary
  /// (Eq. 1), so this augmentation only removes order memorization.
  bool shuffle_reviews_in_training = true;
  /// Probability of masking a token to <pad> during training assembly.
  float word_dropout = 0.1f;

  // --- ablation switches (Table 5) ---
  bool use_scl = true;
  bool use_domain_adversarial = true;
  bool use_aux_reviews = true;
  ExtractorKind extractor = ExtractorKind::kCnn;
  TextField text_field = TextField::kSummary;

  // --- misc ---
  int min_vocab_count = 1;
  uint64_t seed = 7;
  bool verbose = false;
  /// Worker threads for the shared compute pool (GEMM, conv, losses,
  /// document assembly). 0 = all hardware threads. Results are
  /// bit-identical for every setting; see DESIGN.md "Threading".
  int num_threads = 0;
  /// Record each distinct batch shape's training step once, compile it
  /// (dead-node elimination, kernel fusion, liveness-planned arena), and
  /// replay the compiled plan on later steps. Bit-identical to eager at
  /// every thread count; see DESIGN.md "Recorded-graph execution".
  bool graph_exec = false;

  // --- checkpointing (see DESIGN.md "Checkpoint format") ---
  /// Save a crash-safe checkpoint into `checkpoint_dir` every this many
  /// epochs. 0 disables periodic checkpointing.
  int checkpoint_every = 0;
  /// Directory for periodic checkpoints; created on first save. Required
  /// (non-empty) when checkpoint_every > 0.
  std::string checkpoint_dir;

  // --- observability (see DESIGN.md "Observability") ---
  /// When non-empty, Prepare() enables metrics collection and Train()
  /// writes a JSONL metrics snapshot (counters, gauges, phase histograms)
  /// to this path when it finishes.
  std::string metrics_out;
  /// When non-empty, Prepare() enables span tracing and Train() writes a
  /// Chrome trace_event JSON (open in chrome://tracing or Perfetto) to this
  /// path when it finishes.
  std::string trace_out;

  // --- self-healing guard (see DESIGN.md "Failure model & recovery") ---
  /// Check loss / gradient / parameter health every training step and, on a
  /// fault, roll back to the in-memory snapshot of the last good step, back
  /// off the learning rate and retry. With no faults occurring the guarded
  /// trajectory is bit-identical to an unguarded one (the guard only ever
  /// observes), so this is safe to leave on.
  bool guard_enabled = true;
  /// Divergence threshold: a step loss above spike_factor x EMA(loss) is
  /// treated as a fault once the EMA has seen guard_warmup_steps steps.
  float guard_spike_factor = 4.0f;
  float guard_ema_decay = 0.95f;
  int guard_warmup_steps = 10;
  /// Total recoveries (rollback + LR backoff + retry) allowed per Train()
  /// run before the guard gives up and stops training on the last good
  /// state.
  int max_recoveries = 3;
  /// Multiplier applied to the learning rate on every recovery.
  float lr_backoff = 0.5f;

  /// Validates ranges; returns InvalidArgument describing the first problem.
  Status Validate() const;

  /// Stable 64-bit digest of every field that shapes the training
  /// trajectory (architecture, optimization, losses, augmentation, seed).
  /// Stored in checkpoints and verified on load so a checkpoint can never
  /// be resumed under a config that would silently diverge. Deliberately
  /// EXCLUDED: `epochs` (resuming with a longer schedule is legitimate),
  /// `verbose`, `num_threads` (results are thread-count invariant), the
  /// checkpoint fields themselves, the guard fields (a fault-free
  /// guarded run is bit-identical to an unguarded one, and after a fault
  /// the backed-off learning rate travels inside the checkpoint), the
  /// observability sinks metrics_out / trace_out (instrumentation never
  /// touches an RNG stream, so traced runs are bit-identical too), and
  /// `graph_exec` (the recorded executor is bit-identical to eager, so a
  /// checkpoint from either mode resumes interchangeably under the other).
  uint64_t Fingerprint() const;
};

}  // namespace core
}  // namespace omnimatch

#endif  // OMNIMATCH_CORE_CONFIG_H_
