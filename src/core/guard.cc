#include "core/guard.h"

#include <cmath>

namespace omnimatch {
namespace core {

const char* FaultReasonName(FaultReason reason) {
  switch (reason) {
    case FaultReason::kNone:
      return "none";
    case FaultReason::kNonFiniteLoss:
      return "non-finite loss";
    case FaultReason::kLossSpike:
      return "loss spike";
    case FaultReason::kNonFiniteGrad:
      return "non-finite gradient";
    case FaultReason::kNonFiniteParam:
      return "non-finite parameter";
  }
  return "unknown";
}

FaultReason TrainingGuard::Check(double loss, bool grads_finite,
                                 bool params_finite, double* threshold_out) {
  // Order matters: a NaN loss usually comes WITH NaN gradients; report the
  // most upstream signal first so the recovery trace names the root cause.
  bool warmed_up = healthy_steps_ >= options_.warmup_steps;
  double threshold = warmed_up ? options_.spike_factor * ema_ : 0.0;
  if (threshold_out != nullptr) *threshold_out = threshold;

  if (!std::isfinite(loss)) return FaultReason::kNonFiniteLoss;
  if (!grads_finite) return FaultReason::kNonFiniteGrad;
  if (!params_finite) return FaultReason::kNonFiniteParam;
  if (warmed_up && loss > threshold) return FaultReason::kLossSpike;

  // Healthy: fold into the EMA (seeded by the first healthy loss).
  ema_ = healthy_steps_ == 0
             ? loss
             : options_.ema_decay * ema_ + (1.0 - options_.ema_decay) * loss;
  ++healthy_steps_;
  return FaultReason::kNone;
}

}  // namespace core
}  // namespace omnimatch
