#ifndef OMNIMATCH_CORE_GUARD_H_
#define OMNIMATCH_CORE_GUARD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace omnimatch {
namespace core {

/// Why the guard rejected a training step.
enum class FaultReason : int32_t {
  kNone = 0,
  kNonFiniteLoss = 1,   // NaN/Inf step loss
  kLossSpike = 2,       // loss > spike_factor x EMA after warmup
  kNonFiniteGrad = 3,   // NaN/Inf gradient (surfaced by ClipGradNorm)
  kNonFiniteParam = 4,  // NaN/Inf parameter after the update
};

const char* FaultReasonName(FaultReason reason);

/// One recovery performed by the trainer: what was detected at which step
/// and how the learning rate was backed off. The full trace is part of
/// TrainStats and travels inside checkpoints, so a resumed run knows its
/// complete fault history.
struct RecoveryEvent {
  int64_t step = 0;
  FaultReason reason = FaultReason::kNone;
  /// The offending value: the loss for loss faults, the gradient norm for
  /// gradient faults, the non-finite parameter count for parameter faults.
  double observed = 0.0;
  /// Detection threshold at that step (spike_factor x EMA for spikes, 0
  /// when not applicable).
  double threshold = 0.0;
  float lr_before = 0.0f;
  float lr_after = 0.0f;
};

/// Numerical-health watchdog for the training loop.
///
/// Purely observational: it classifies each step as healthy or faulted and
/// maintains the loss EMA used for divergence detection; the trainer owns
/// the actual rollback/backoff/retry policy. A healthy step is the ONLY
/// thing that mutates the guard, so running with the guard enabled and no
/// faults is bit-identical to running without it.
///
/// Divergence detection: an exponential moving average of the step loss,
/// armed after `warmup_steps` healthy steps; a step whose loss exceeds
/// `spike_factor` x EMA is declared divergent. Non-finite loss/gradients/
/// parameters are faults regardless of warmup.
class TrainingGuard {
 public:
  struct Options {
    double spike_factor = 4.0;
    double ema_decay = 0.95;
    int warmup_steps = 10;
  };

  explicit TrainingGuard(const Options& options) : options_(options) {}

  /// Classifies one completed step. Healthy steps fold `loss` into the EMA;
  /// faulted steps leave the guard untouched (a spiked loss must not drag
  /// the baseline up). `threshold_out`, if given, receives the spike
  /// threshold in effect (0 before warmup).
  FaultReason Check(double loss, bool grads_finite, bool params_finite,
                    double* threshold_out = nullptr);

  /// --- checkpointable state ---
  double ema() const { return ema_; }
  int64_t healthy_steps() const { return healthy_steps_; }
  void Restore(double ema, int64_t healthy_steps) {
    ema_ = ema;
    healthy_steps_ = healthy_steps;
  }

 private:
  Options options_;
  double ema_ = 0.0;
  int64_t healthy_steps_ = 0;
};

}  // namespace core
}  // namespace omnimatch

#endif  // OMNIMATCH_CORE_GUARD_H_
