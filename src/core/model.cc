#include "core/model.h"

#include "common/check.h"
#include "nn/ops.h"

namespace omnimatch {
namespace core {

using nn::Tensor;

OmniMatchModel::OmniMatchModel(const OmniMatchConfig& config, int vocab_size,
                               Rng* rng)
    : config_(config), vocab_size_(vocab_size), dropout_rng_(rng->Fork()) {
  OM_CHECK(config.Validate().ok()) << config.Validate().ToString();
  OM_CHECK_GT(vocab_size, 0);

  embed_ = std::make_unique<nn::EmbeddingTable>(vocab_size, config_.embed_dim,
                                                rng);
  if (config_.extractor == ExtractorKind::kCnn) {
    extractor_dim_ = config_.cnn_channels *
                     static_cast<int>(config_.kernel_sizes.size());
    source_cnn_ = std::make_unique<nn::TextCnn>(
        config_.embed_dim, config_.cnn_channels, config_.kernel_sizes, rng);
    target_cnn_ = std::make_unique<nn::TextCnn>(
        config_.embed_dim, config_.cnn_channels, config_.kernel_sizes, rng);
    item_cnn_ = std::make_unique<nn::TextCnn>(
        config_.embed_dim, config_.cnn_channels, config_.kernel_sizes, rng);
  } else {
    // Match the CNN output width so the heads are identical across ablation
    // variants (only the extractor changes, as in Table 5).
    extractor_dim_ = config_.cnn_channels *
                     static_cast<int>(config_.kernel_sizes.size());
    source_tf_ = std::make_unique<nn::MiniTransformerEncoder>(
        config_.embed_dim, extractor_dim_, rng);
    target_tf_ = std::make_unique<nn::MiniTransformerEncoder>(
        config_.embed_dim, extractor_dim_, rng);
    item_tf_ = std::make_unique<nn::MiniTransformerEncoder>(
        config_.embed_dim, extractor_dim_, rng);
  }
  if (config_.use_mean_embedding_feature) {
    extractor_dim_ += config_.embed_dim;
  }

  int f = config_.feature_dim;
  invariant_head_ = std::make_unique<nn::Linear>(extractor_dim_, f, rng);
  source_specific_head_ = std::make_unique<nn::Linear>(extractor_dim_, f, rng);
  target_specific_head_ = std::make_unique<nn::Linear>(extractor_dim_, f, rng);
  item_head_ = std::make_unique<nn::Linear>(extractor_dim_, f, rng);

  // User representation is invariant ⊕ specific = 2f; user-item pair = 3f.
  projection_ = std::make_unique<nn::Mlp>(
      std::vector<int>{3 * f, config_.projection_dim}, config_.dropout, rng);
  domain_classifier_invariant_ = std::make_unique<nn::Mlp>(
      std::vector<int>{f, f / 2, 2}, config_.dropout, rng);
  domain_classifier_specific_ = std::make_unique<nn::Mlp>(
      std::vector<int>{f, f / 2, 2}, config_.dropout, rng);
  int rating_in = 3 * f;
  if (config_.use_interaction_features) {
    interaction_proj_ = std::make_unique<nn::Linear>(2 * f, f, rng);
    rating_in += f;
  }
  rating_classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int>{rating_in, 2 * f, f, config_.num_rating_classes},
      config_.dropout, rng);
}

Tensor OmniMatchModel::RunExtractor(
    const nn::TextCnn* cnn, const nn::MiniTransformerEncoder* transformer,
    const std::vector<int>& doc_ids, int batch, int doc_len) {
  OM_CHECK_GT(batch, 0);
  OM_CHECK_EQ(doc_ids.size(), static_cast<size_t>(batch) * doc_len);
  Tensor pooled;
  if (cnn != nullptr) {
    Tensor flat = embed_->Forward(doc_ids);  // [B*L, E]
    Tensor docs = nn::Reshape(flat, {batch, doc_len, config_.embed_dim});
    pooled = cnn->Forward(docs);  // [B, cnn_out]
    if (config_.use_mean_embedding_feature) {
      pooled = nn::ConcatCols({pooled, nn::MeanAxis1(docs)});
    }
  } else {
    OM_CHECK(transformer != nullptr);
    std::vector<Tensor> docs;
    std::vector<Tensor> means;
    docs.reserve(static_cast<size_t>(batch));
    for (int b = 0; b < batch; ++b) {
      std::vector<int> ids(doc_ids.begin() + static_cast<size_t>(b) * doc_len,
                           doc_ids.begin() +
                               static_cast<size_t>(b + 1) * doc_len);
      docs.push_back(embed_->Forward(ids));  // [L, E]
      if (config_.use_mean_embedding_feature) {
        means.push_back(nn::MeanRows(docs.back()));
      }
    }
    pooled = transformer->Forward(docs);  // [B, tf_out]
    if (config_.use_mean_embedding_feature) {
      pooled = nn::ConcatCols({pooled, nn::ConcatRows(means)});
    }
  }
  return nn::Dropout(pooled, config_.dropout, training_, &dropout_rng_);
}

OmniMatchModel::UserFeatures OmniMatchModel::ExtractUser(
    data::DomainSide side, const std::vector<int>& doc_ids, int batch) {
  const bool is_source = side == data::DomainSide::kSource;
  Tensor pooled = RunExtractor(
      is_source ? source_cnn_.get() : target_cnn_.get(),
      is_source ? source_tf_.get() : target_tf_.get(), doc_ids, batch,
      config_.doc_len);
  UserFeatures features;
  // Eq. 8: the invariant head is the SAME object for both domains.
  features.invariant = nn::Relu(invariant_head_->Forward(pooled));
  // Eq. 9: the specific head is per-domain.
  features.specific = nn::Relu(
      (is_source ? source_specific_head_ : target_specific_head_)
          ->Forward(pooled));
  return features;
}

Tensor OmniMatchModel::ExtractItem(const std::vector<int>& doc_ids,
                                   int batch) {
  Tensor pooled = RunExtractor(item_cnn_.get(), item_tf_.get(), doc_ids,
                               batch, config_.item_doc_len);
  return nn::Relu(item_head_->Forward(pooled));
}

Tensor OmniMatchModel::UserRepresentation(const UserFeatures& features) {
  return nn::ConcatCols({features.invariant, features.specific});
}

Tensor OmniMatchModel::Project(const Tensor& user_rep,
                               const Tensor& item_rep) {
  projection_->set_training(training_);
  return projection_->Forward(nn::ConcatCols({user_rep, item_rep}));
}

Tensor OmniMatchModel::RatingLogits(const Tensor& target_rep,
                                    const Tensor& item_rep) {
  rating_classifier_->set_training(training_);
  std::vector<Tensor> features = {target_rep, item_rep};
  if (config_.use_interaction_features) {
    features.push_back(
        nn::Mul(interaction_proj_->Forward(target_rep), item_rep));
  }
  return rating_classifier_->Forward(nn::ConcatCols(features));
}

Tensor OmniMatchModel::DomainLogitsInvariant(
    const Tensor& invariant_features) {
  domain_classifier_invariant_->set_training(training_);
  // GRL: the classifier minimizes domain CE while the extractor, receiving
  // the reversed gradient, maximizes it — features become domain-invariant.
  Tensor reversed = nn::GradReverse(invariant_features, config_.grl_lambda);
  return domain_classifier_invariant_->Forward(reversed);
}

Tensor OmniMatchModel::DomainLogitsSpecific(const Tensor& specific_features) {
  domain_classifier_specific_->set_training(training_);
  return domain_classifier_specific_->Forward(specific_features);
}

void OmniMatchModel::SetTrainingMode(bool training) {
  set_training(training);
  projection_->set_training(training);
  domain_classifier_invariant_->set_training(training);
  domain_classifier_specific_->set_training(training);
  rating_classifier_->set_training(training);
}

std::vector<Tensor> OmniMatchModel::Parameters() const {
  return nn::CollectParameters({
      embed_.get(),
      source_cnn_.get(),
      target_cnn_.get(),
      item_cnn_.get(),
      source_tf_.get(),
      target_tf_.get(),
      item_tf_.get(),
      invariant_head_.get(),
      source_specific_head_.get(),
      target_specific_head_.get(),
      item_head_.get(),
      interaction_proj_.get(),
      projection_.get(),
      domain_classifier_invariant_.get(),
      domain_classifier_specific_.get(),
      rating_classifier_.get(),
  });
}

std::vector<Rng::State> OmniMatchModel::RngStates() const {
  return {
      dropout_rng_.GetState(),
      projection_->rng_state(),
      domain_classifier_invariant_->rng_state(),
      domain_classifier_specific_->rng_state(),
      rating_classifier_->rng_state(),
  };
}

Status OmniMatchModel::SetRngStates(const std::vector<Rng::State>& states) {
  if (states.size() != 5) {
    return Status::InvalidArgument(
        "model expects 5 dropout RNG states, got " +
        std::to_string(states.size()));
  }
  dropout_rng_.SetState(states[0]);
  projection_->set_rng_state(states[1]);
  domain_classifier_invariant_->set_rng_state(states[2]);
  domain_classifier_specific_->set_rng_state(states[3]);
  rating_classifier_->set_rng_state(states[4]);
  return Status::OK();
}

}  // namespace core
}  // namespace omnimatch
