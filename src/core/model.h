#ifndef OMNIMATCH_CORE_MODEL_H_
#define OMNIMATCH_CORE_MODEL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "data/types.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace core {

/// The OmniMatch network (Fig. 2, components B-D plus the rating
/// classifier).
///
/// Architecture per §4.2-§4.4:
///  * a shared token embedding table (the fastText substitute);
///  * per-domain user text extractors (CNN by default) and an item
///    extractor;
///  * a domain-INVARIANT fully-connected head whose weights are shared
///    between the source and target user paths, and per-domain
///    domain-SPECIFIC heads (the shared-private paradigm);
///  * a projection MLP for the contrastive module (Eq. 11);
///  * domain classifiers: the invariant one sits behind a Gradient
///    Reversal Layer (adversarial), the specific one trains normally;
///  * the rating classifier MLP over r_target ⊕ r_item (Eq. 18).
class OmniMatchModel : public nn::Module {
 public:
  /// Invariant and specific halves of a user's representation in a domain.
  struct UserFeatures {
    nn::Tensor invariant;  // [B, feature_dim]
    nn::Tensor specific;   // [B, feature_dim]
  };

  OmniMatchModel(const OmniMatchConfig& config, int vocab_size, Rng* rng);

  /// Runs the user feature extractor of the given domain side over a batch
  /// of fixed-length documents. `doc_ids` is batch-major, length
  /// batch * config.doc_len.
  UserFeatures ExtractUser(data::DomainSide side,
                           const std::vector<int>& doc_ids, int batch);

  /// Item extractor: items use only the shared-style feature (§4.2).
  /// `doc_ids` has length batch * config.item_doc_len.
  nn::Tensor ExtractItem(const std::vector<int>& doc_ids, int batch);

  /// r_j = invariant ⊕ specific (Eq. 10).
  static nn::Tensor UserRepresentation(const UserFeatures& features);

  /// X̃ = Proj(r_user ⊕ r_item) (Eq. 11).
  nn::Tensor Project(const nn::Tensor& user_rep, const nn::Tensor& item_rep);

  /// Rating logits over the 5 classes (Eq. 18).
  nn::Tensor RatingLogits(const nn::Tensor& target_rep,
                          const nn::Tensor& item_rep);

  /// Domain logits for invariant features; input passes through the GRL so
  /// that minimizing the returned classifier loss *maximizes* it w.r.t. the
  /// extractor (Eq. 14-15).
  nn::Tensor DomainLogitsInvariant(const nn::Tensor& invariant_features);

  /// Domain logits for specific features (no reversal; Eq. 16-17).
  nn::Tensor DomainLogitsSpecific(const nn::Tensor& specific_features);

  std::vector<nn::Tensor> Parameters() const override;

  /// Sets train/eval mode on this module AND every submodule that keeps its
  /// own flag (the four Mlps propagate lazily per forward call otherwise).
  /// A model that will run its forward concurrently on several scoring
  /// threads (src/serve multi-executor pool) MUST be switched with this
  /// before being shared: afterwards the lazy per-forward set_training
  /// calls are equality-guarded no-op reads, so concurrent eval forwards
  /// never write shared module state.
  void SetTrainingMode(bool training);

  const OmniMatchConfig& config() const { return config_; }
  int vocab_size() const { return vocab_size_; }

  /// Frozen-weight access for the quantized serving head
  /// (serve/quant_head.h): the rating-path modules RatingLogits() drives.
  /// interaction_proj() is null when use_interaction_features is off.
  const nn::Linear* interaction_proj() const {
    return interaction_proj_.get();
  }
  const nn::Mlp& rating_classifier() const { return *rating_classifier_; }

  /// The model's private dropout stream. Exposed so checkpoints can capture
  /// and restore it — training consumes it every batch, and resuming
  /// bit-for-bit requires the exact stream position.
  Rng* dropout_rng() { return &dropout_rng_; }

  /// Every dropout stream the model owns, in a fixed order: the pooled-
  /// feature stream plus one per Mlp (projection, both domain classifiers,
  /// rating classifier). Checkpoints store ALL of them — each advances
  /// independently during training, so restoring only one would desync the
  /// masks after resume.
  std::vector<Rng::State> RngStates() const;

  /// Restores the streams captured by RngStates(). InvalidArgument when the
  /// count does not match this architecture.
  Status SetRngStates(const std::vector<Rng::State>& states);

 private:
  /// Pooled text features for a batch of documents ([B, extractor_dim]).
  nn::Tensor RunExtractor(const nn::TextCnn* cnn,
                          const nn::MiniTransformerEncoder* transformer,
                          const std::vector<int>& doc_ids, int batch,
                          int doc_len);

  OmniMatchConfig config_;
  int vocab_size_;
  int extractor_dim_;
  Rng dropout_rng_;

  std::unique_ptr<nn::EmbeddingTable> embed_;

  // CNN extractors (null when extractor == kTransformer).
  std::unique_ptr<nn::TextCnn> source_cnn_;
  std::unique_ptr<nn::TextCnn> target_cnn_;
  std::unique_ptr<nn::TextCnn> item_cnn_;
  // Transformer extractors (null when extractor == kCnn).
  std::unique_ptr<nn::MiniTransformerEncoder> source_tf_;
  std::unique_ptr<nn::MiniTransformerEncoder> target_tf_;
  std::unique_ptr<nn::MiniTransformerEncoder> item_tf_;

  std::unique_ptr<nn::Linear> invariant_head_;        // SHARED across domains
  std::unique_ptr<nn::Linear> source_specific_head_;
  std::unique_ptr<nn::Linear> target_specific_head_;
  std::unique_ptr<nn::Linear> item_head_;

  /// Maps the 2f user representation to f for the ⊙-interaction feature.
  std::unique_ptr<nn::Linear> interaction_proj_;
  std::unique_ptr<nn::Mlp> projection_;
  std::unique_ptr<nn::Mlp> domain_classifier_invariant_;
  std::unique_ptr<nn::Mlp> domain_classifier_specific_;
  std::unique_ptr<nn::Mlp> rating_classifier_;
};

}  // namespace core
}  // namespace omnimatch

#endif  // OMNIMATCH_CORE_MODEL_H_
