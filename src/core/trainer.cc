#include "core/trainer.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/check.h"
#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "common/io.h"
#include "core/checkpoint.h"
#include "nn/health.h"
#include "nn/losses.h"
#include "nn/ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/document.h"
#include "text/tokenizer.h"

namespace omnimatch {
namespace core {

using data::DomainSide;
using nn::Tensor;

namespace {
/// Per-phase duration histograms (ns). Looked up once; Observe() only fires
/// while obs::MetricsEnabled(), and the paired trace span only records
/// while tracing is on, so the steady-state cost of an instrumented phase
/// is one relaxed atomic load.
obs::Histogram* PhaseHist(const char* name) {
  return obs::MetricsRegistry::Global().GetHistogram(name);
}
}  // namespace

OmniMatchTrainer::OmniMatchTrainer(const OmniMatchConfig& config,
                                   const data::CrossDomainDataset* cross,
                                   data::ColdStartSplit split)
    : config_(config),
      cross_(cross),
      split_(std::move(split)),
      rng_(config.seed) {
  OM_CHECK(cross_ != nullptr);
}

std::string_view OmniMatchTrainer::TextAt(const data::DomainDataset& domain,
                                          size_t idx) const {
  return config_.text_field == TextField::kSummary
             ? domain.ReviewSummary(idx)
             : domain.ReviewFullText(idx);
}

Status OmniMatchTrainer::Prepare() {
  OM_RETURN_IF_ERROR(config_.Validate());
  SetNumThreads(config_.num_threads);
  // Attach the observability sinks before any instrumented work runs.
  if (!config_.trace_out.empty()) obs::EnableTracing(true);
  if (!config_.metrics_out.empty()) obs::EnableMetrics(true);
  OM_TRACE_SPAN("prepare");
  if (split_.train_users.empty()) {
    return Status::FailedPrecondition("split has no training users");
  }
  aux_generator_ = std::make_unique<AuxReviewGenerator>(
      cross_, split_.train_users, config_.text_field);
  {
    OM_TRACE_SPAN("build_vocabulary");
    BuildVocabulary();
  }
  {
    OM_TRACE_SPAN("build_documents");
    BuildDocuments();
  }
  if (train_samples_.empty()) {
    return Status::FailedPrecondition(
        "training users have no target-domain records");
  }
  model_ = std::make_unique<OmniMatchModel>(config_, vocab_.size(), &rng_);
  graph_exec_ = config_.graph_exec
                    ? std::make_unique<nn::graph::GraphExecutor>()
                    : nullptr;
  if (config_.optimizer == OptimizerKind::kAdadelta) {
    optimizer_ = std::make_unique<nn::Adadelta>(
        model_->Parameters(), config_.learning_rate, config_.adadelta_rho);
  } else {
    optimizer_ =
        std::make_unique<nn::Adam>(model_->Parameters(), config_.adam_lr);
  }
  // Fresh resumable state; LoadCheckpoint overwrites it to continue a run.
  sample_order_.resize(train_samples_.size());
  for (size_t i = 0; i < sample_order_.size(); ++i) {
    sample_order_[i] = static_cast<int>(i);
  }
  progress_ = TrainStats();
  epochs_completed_ = 0;
  best_rmse_ = 1e30;
  best_params_.clear();
  guard_ = TrainingGuard(TrainingGuard::Options{
      static_cast<double>(config_.guard_spike_factor),
      static_cast<double>(config_.guard_ema_decay),
      config_.guard_warmup_steps});
  prepared_ = true;
  if (config_.verbose) {
    OM_LOG(Info) << "prepared " << cross_->ScenarioName() << ": vocab "
                 << vocab_.size() << ", train samples "
                 << train_samples_.size() << ", params "
                 << model_->NumParameters();
  }
  return Status::OK();
}

void OmniMatchTrainer::BuildVocabulary() {
  // Training-visible text: every source-domain review (cold users' source
  // history is known) plus target-domain reviews of training users only.
  std::vector<std::vector<std::string>> docs;
  const data::DomainDataset& source = cross_->source();
  for (size_t i = 0; i < source.num_reviews(); ++i) {
    docs.push_back(text::Tokenize(TextAt(source, i)));
  }
  std::unordered_set<int> train_set(split_.train_users.begin(),
                                    split_.train_users.end());
  const data::DomainDataset& target = cross_->target();
  for (size_t i = 0; i < target.num_reviews(); ++i) {
    if (train_set.count(target.ReviewUser(i)) > 0) {
      docs.push_back(text::Tokenize(TextAt(target, i)));
    }
  }
  vocab_ = text::Vocabulary();
  vocab_.BuildFromDocuments(docs, config_.min_vocab_count);
}

void OmniMatchTrainer::BuildDocuments() {
  user_source_docs_.clear();
  user_target_docs_.clear();
  item_docs_.clear();
  train_samples_.clear();

  std::unordered_set<int> train_set(split_.train_users.begin(),
                                    split_.train_users.end());

  user_source_reviews_.clear();
  user_target_reviews_.clear();
  item_reviews_.clear();

  auto reviews_of = [&](const data::DomainDataset& domain,
                        int user) -> std::vector<std::string> {
    std::vector<std::string> texts;
    for (int idx : domain.RecordsOfUser(user)) {
      texts.emplace_back(TextAt(domain, static_cast<size_t>(idx)));
    }
    return texts;
  };
  auto encode_each = [&](const std::vector<std::string>& texts) {
    std::vector<std::vector<int>> out;
    out.reserve(texts.size());
    for (const std::string& t : texts) {
      out.push_back(vocab_.Encode(text::Tokenize(t)));
    }
    return out;
  };

  // Source documents for every overlapping user (R^u of Eq. 1).
  for (int u : cross_->overlapping_users()) {
    std::vector<std::string> texts = reviews_of(cross_->source(), u);
    user_source_docs_[u] =
        text::BuildDocumentIds(texts, vocab_, config_.doc_len);
    user_source_reviews_[u] = encode_each(texts);
  }

  // Target documents: training users use their real target reviews; cold
  // users get Algorithm 1 auxiliary documents (or their source reviews as a
  // degraded fallback in the w/o-AuxReviews ablation).
  train_aux_reviews_.clear();
  for (int u : split_.train_users) {
    std::vector<std::string> texts = reviews_of(cross_->target(), u);
    user_target_docs_[u] =
        text::BuildDocumentIds(texts, vocab_, config_.doc_len);
    user_target_reviews_[u] = encode_each(texts);
  }
  if (config_.aux_augmentation_prob > 0.0f) {
    // Cold-start self-simulation: the generator already excludes the user
    // themselves from the like-minded pool. A separate loop (rather than
    // inline above) so the Algorithm 1 cost traces as its own "auxgen"
    // span; the rng_ draw order is identical either way because the doc
    // building above consumes no randomness.
    OM_TRACE_SPAN_TIMED("auxgen", PhaseHist("trainer.auxgen_ns"));
    for (int u : split_.train_users) {
      train_aux_reviews_[u] =
          encode_each(aux_generator_->GenerateForUser(u, &rng_));
    }
  }
  cold_aux_doc_variants_.clear();
  std::vector<int> cold_users = split_.validation_users;
  cold_users.insert(cold_users.end(), split_.test_users.begin(),
                    split_.test_users.end());
  int samples = std::max(1, config_.aux_eval_samples);
  {
    OM_TRACE_SPAN_TIMED("auxgen", PhaseHist("trainer.auxgen_ns"));
    for (int u : cold_users) {
      for (int k = 0; k < (config_.use_aux_reviews ? samples : 1); ++k) {
        std::vector<std::string> reviews =
            config_.use_aux_reviews
                ? aux_generator_->GenerateForUser(u, &rng_)
                : reviews_of(cross_->source(), u);
        if (reviews.empty()) reviews = reviews_of(cross_->source(), u);
        std::vector<int> doc =
            text::BuildDocumentIds(reviews, vocab_, config_.doc_len);
        if (k == 0) {
          user_target_docs_[u] = std::move(doc);
        } else {
          cold_aux_doc_variants_[u].push_back(std::move(doc));
        }
      }
    }
  }

  // Item documents from training users' target reviews only (test users'
  // reviews are hidden).
  empty_item_doc_.assign(static_cast<size_t>(config_.item_doc_len),
                         text::Vocabulary::kPadId);
  for (int item : cross_->target().items()) {
    std::vector<std::string> texts;
    for (int idx : cross_->target().RecordsOfItem(item)) {
      size_t i = static_cast<size_t>(idx);
      if (train_set.count(cross_->target().ReviewUser(i)) > 0) {
        texts.emplace_back(TextAt(cross_->target(), i));
      }
    }
    item_docs_[item] = texts.empty()
                           ? empty_item_doc_
                           : text::BuildDocumentIds(texts, vocab_,
                                                    config_.item_doc_len);
    item_reviews_[item] = encode_each(texts);
  }

  // Training samples: target-domain records of training users.
  for (int u : split_.train_users) {
    for (int idx : cross_->target().RecordsOfUser(u)) {
      size_t i = static_cast<size_t>(idx);
      TrainSample s;
      s.user = u;
      s.item = cross_->target().ReviewItem(i);
      s.label = std::clamp(
          static_cast<int>(std::lround(cross_->target().ReviewRating(i))) - 1,
          0, config_.num_rating_classes - 1);
      train_samples_.push_back(s);
    }
  }
}

std::vector<int> OmniMatchTrainer::GatherDocs(
    const std::unordered_map<int, std::vector<int>>& docs,
    const std::vector<int>& keys, int doc_len) const {
  std::vector<int> flat;
  flat.reserve(keys.size() * static_cast<size_t>(doc_len));
  for (int key : keys) {
    auto it = docs.find(key);
    if (it == docs.end()) {
      flat.insert(flat.end(), static_cast<size_t>(doc_len),
                  text::Vocabulary::kPadId);
    } else {
      OM_CHECK_EQ(it->second.size(), static_cast<size_t>(doc_len));
      flat.insert(flat.end(), it->second.begin(), it->second.end());
    }
  }
  return flat;
}

void OmniMatchTrainer::AssembleTrainingDoc(
    const std::vector<std::vector<int>>* reviews, int doc_len, Rng* rng,
    int* dst) const {
  int filled = 0;
  if (reviews != nullptr && !reviews->empty()) {
    std::vector<int> order(reviews->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    if (config_.shuffle_reviews_in_training) rng->Shuffle(order);
    for (int r : order) {
      const std::vector<int>& tokens = (*reviews)[static_cast<size_t>(r)];
      for (int tok : tokens) {
        if (filled >= doc_len) break;
        bool masked = config_.word_dropout > 0.0f &&
                      rng->Bernoulli(config_.word_dropout);
        dst[filled++] = masked ? text::Vocabulary::kPadId : tok;
      }
      if (filled >= doc_len) break;
    }
  }
  while (filled < doc_len) dst[filled++] = text::Vocabulary::kPadId;
}

uint64_t OmniMatchTrainer::NextDocSeed() {
  return (static_cast<uint64_t>(rng_.NextU32()) << 32) | rng_.NextU32();
}

namespace {
/// Child stream for document slot `index` of the batch seeded by `base`
/// (splitmix-style mixing so adjacent slots decorrelate).
Rng DocRng(uint64_t base, int64_t index) {
  return Rng(base ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(index) +
                                              0x243F6A8885A308D3ULL)));
}
}  // namespace

std::vector<int> OmniMatchTrainer::GatherTrainingDocs(
    const std::unordered_map<int, std::vector<std::vector<int>>>& reviews,
    const std::unordered_map<int, std::vector<int>>& fixed_docs,
    const std::vector<int>& keys, int doc_len) {
  if (!config_.shuffle_reviews_in_training && config_.word_dropout <= 0.0f) {
    return GatherDocs(fixed_docs, keys, doc_len);
  }
  // One base draw per batch keeps the trainer stream's consumption
  // independent of threading; each document slot then assembles from its
  // own derived stream into a disjoint span, so the batch parallelizes with
  // bit-identical results for any thread count.
  uint64_t base = NextDocSeed();
  std::vector<int> flat(keys.size() * static_cast<size_t>(doc_len));
  ParallelFor(0, static_cast<int64_t>(keys.size()), 8,
              [&](int64_t k0, int64_t k1) {
                for (int64_t k = k0; k < k1; ++k) {
                  Rng rng = DocRng(base, k);
                  auto it = reviews.find(keys[static_cast<size_t>(k)]);
                  AssembleTrainingDoc(
                      it == reviews.end() ? nullptr : &it->second, doc_len,
                      &rng, flat.data() + static_cast<size_t>(k) * doc_len);
                }
              });
  return flat;
}

std::vector<int> OmniMatchTrainer::GatherTargetTrainingDocs(
    const std::vector<int>& users) {
  uint64_t base = NextDocSeed();
  int doc_len = config_.doc_len;
  std::vector<int> flat(users.size() * static_cast<size_t>(doc_len));
  ParallelFor(0, static_cast<int64_t>(users.size()), 8,
              [&](int64_t k0, int64_t k1) {
                for (int64_t k = k0; k < k1; ++k) {
                  Rng rng = DocRng(base, k);
                  int u = users[static_cast<size_t>(k)];
                  const std::vector<std::vector<int>>* reviews = nullptr;
                  if (config_.aux_augmentation_prob > 0.0f &&
                      rng.Bernoulli(config_.aux_augmentation_prob)) {
                    auto aux = train_aux_reviews_.find(u);
                    if (aux != train_aux_reviews_.end() &&
                        !aux->second.empty()) {
                      reviews = &aux->second;
                    }
                  }
                  if (reviews == nullptr) {
                    auto real = user_target_reviews_.find(u);
                    if (real != user_target_reviews_.end()) {
                      reviews = &real->second;
                    }
                  }
                  AssembleTrainingDoc(
                      reviews, doc_len, &rng,
                      flat.data() + static_cast<size_t>(k) * doc_len);
                }
              });
  return flat;
}

namespace {
/// Writes the fault's value (NaN unless the spec gives a magnitude) into a
/// seed-chosen element of a seed-chosen tensor's data or gradient buffer.
/// Deterministic: the same spec corrupts the same element every run.
void PoisonOneValue(std::vector<nn::Tensor> params, const FaultHit& hit,
                    bool poison_grad) {
  Rng rng(hit.seed * 0x9E3779B97F4A7C15ULL + 0x7C15ULL);
  float value = hit.magnitude == 0.0
                    ? std::numeric_limits<float>::quiet_NaN()
                    : static_cast<float>(hit.magnitude);
  size_t start = rng.UniformU32(static_cast<uint32_t>(params.size()));
  for (size_t k = 0; k < params.size(); ++k) {
    nn::Tensor t = params[(start + k) % params.size()];
    std::vector<float>& buf = poison_grad ? t.grad() : t.data();
    if (buf.empty()) continue;  // grad not allocated: try the next tensor
    buf[rng.UniformU32(static_cast<uint32_t>(buf.size()))] = value;
    return;
  }
}
}  // namespace

OmniMatchTrainer::StepOutcome OmniMatchTrainer::TrainBatch(
    const std::vector<TrainSample>& batch) {
  int b = static_cast<int>(batch.size());
  std::vector<int> users, items;
  std::vector<int> labels;
  users.reserve(b);
  items.reserve(b);
  labels.reserve(b);
  for (const TrainSample& s : batch) {
    users.push_back(s.user);
    items.push_back(s.item);
    labels.push_back(s.label);
  }

  model_->set_training(true);
  optimizer_->ZeroGrad();

  // Per-batch document assembly (shuffle / word dropout / aux substitution)
  // is hoisted out of the extractor calls so it traces as its own phase.
  // The rng_ draw order is unchanged: source gather, target gather, item
  // gather — exactly the order the inline arguments evaluated in.
  std::vector<int> src_doc_ids, tgt_doc_ids, item_doc_ids;
  {
    OM_TRACE_SPAN_TIMED("doc_assembly", PhaseHist("trainer.doc_assembly_ns"));
    src_doc_ids = GatherTrainingDocs(user_source_reviews_, user_source_docs_,
                                     users, config_.doc_len);
    tgt_doc_ids = GatherTargetTrainingDocs(users);
    item_doc_ids = GatherTrainingDocs(item_reviews_, item_docs_, items,
                                      config_.item_doc_len);
  }

  // --- Feature Extraction Module (Fig. 2 B) ---
  OmniMatchModel::UserFeatures src, tgt;
  Tensor item_rep;
  Tensor r_source, r_target, rating_logits;
  Tensor loss;
  double rating_loss = 0.0;
  double scl_loss = 0.0;
  double domain_loss = 0.0;
  {
    // Recorded-graph region around forward + losses + backward: with
    // graph_exec on, the first step per batch size records and compiles the
    // op stream, later steps replay the compiled plan (nn/graph.h). The
    // batch size is the plan signature — it determines every shape in the
    // step. A null executor makes the scope a no-op.
    nn::graph::StepScope graph_scope(graph_exec_.get(), b);
    {
      OM_TRACE_SPAN_TIMED("forward", PhaseHist("trainer.forward_ns"));
      src = model_->ExtractUser(DomainSide::kSource, src_doc_ids, b);
      tgt = model_->ExtractUser(DomainSide::kTarget, tgt_doc_ids, b);
      item_rep = model_->ExtractItem(item_doc_ids, b);

      r_source = OmniMatchModel::UserRepresentation(src);
      r_target = OmniMatchModel::UserRepresentation(tgt);

      // Rating classifier (Eq. 18-19).
      rating_logits = model_->RatingLogits(r_target, item_rep);
    }

    {
      OM_TRACE_SPAN_TIMED("losses", PhaseHist("trainer.losses_ns"));
      loss = nn::SoftmaxCrossEntropy(rating_logits, labels);
      if (config_.use_hybrid_inference) {
        // Train the classifier on the hybrid representation used for
        // cold-start inference: the user's source-domain invariant features
        // (aligned by DA + SCL) concatenated with the target-side specific
        // features.
        Tensor hybrid = nn::ConcatCols({src.invariant, tgt.specific});
        Tensor hybrid_loss = nn::SoftmaxCrossEntropy(
            model_->RatingLogits(hybrid, item_rep), labels);
        loss = nn::Scale(nn::Add(loss, hybrid_loss), 0.5f);
      }
      rating_loss = loss.ScalarValue();

      // --- Contrastive Representation Learning Module (Fig. 2 D, Eq. 11-13):
      // project source and target user-item pairs; positives share a rating.
      if (config_.use_scl && config_.alpha > 0.0f) {
        Tensor x_src = model_->Project(r_source, item_rep);
        Tensor x_tgt = model_->Project(r_target, item_rep);
        Tensor features = nn::ConcatRows({x_src, x_tgt});
        std::vector<int> scl_labels = labels;
        scl_labels.insert(scl_labels.end(), labels.begin(), labels.end());
        Tensor scl = nn::SupConLoss(features, scl_labels, config_.temperature);
        scl_loss = scl.ScalarValue();
        loss = nn::Add(loss, nn::Scale(scl, config_.alpha));
      }

      // --- Domain Adversarial Training Module (Fig. 2 C, Eq. 14-17, 20):
      // invariant features behind the GRL, specific features trained normally.
      if (config_.use_domain_adversarial && config_.beta > 0.0f) {
        std::vector<int> domain_labels(static_cast<size_t>(2 * b), 0);
        for (int i = b; i < 2 * b; ++i) {
          domain_labels[static_cast<size_t>(i)] = 1;
        }
        Tensor inv = nn::ConcatRows({src.invariant, tgt.invariant});
        Tensor spec = nn::ConcatRows({src.specific, tgt.specific});
        Tensor inv_loss = nn::SoftmaxCrossEntropy(
            model_->DomainLogitsInvariant(inv), domain_labels);
        Tensor spec_loss = nn::SoftmaxCrossEntropy(
            model_->DomainLogitsSpecific(spec), domain_labels);
        Tensor domain = nn::Add(inv_loss, spec_loss);  // Eq. 20
        domain_loss = domain.ScalarValue();
        loss = nn::Add(loss, nn::Scale(domain, config_.beta));  // Eq. 21
      }
    }

    {
      OM_TRACE_SPAN_TIMED("backward", PhaseHist("trainer.backward_ns"));
      loss.Backward();
    }
  }  // graph_scope: replay verification / plan compilation happens here

  // Fault point "grad": flip one gradient value after backward, before the
  // clip — exactly the poison a real overflow would plant.
  FaultHit hit;
  FaultInjector& faults = FaultInjector::Global();
  if (faults.ShouldFire("grad", progress_.steps, &hit)) {
    PoisonOneValue(model_->Parameters(), hit, /*poison_grad=*/true);
  }

  nn::GradClipResult clip;
  {
    OM_TRACE_SPAN_TIMED("clip", PhaseHist("trainer.clip_ns"));
    clip = optimizer_->ClipGradNorm(config_.grad_clip_norm);
  }
  if (clip.finite) {
    OM_TRACE_SPAN_TIMED("optimizer_step",
                        PhaseHist("trainer.optimizer_step_ns"));
    optimizer_->Step();
  } else if (!config_.guard_enabled) {
    // No guard to roll back and retry: skipping the poisoned update is the
    // only defense left, and it deserves a loud note.
    OM_LOG(Warning) << "non-finite gradient at step " << progress_.steps
                    << "; update skipped (guard disabled)";
  }

  // Fault point "param": corrupt one parameter value after the update (a
  // torn write / bit flip in the weights).
  if (faults.ShouldFire("param", progress_.steps, &hit)) {
    PoisonOneValue(model_->Parameters(), hit, /*poison_grad=*/false);
  }

  StepOutcome out;
  out.losses = {loss.ScalarValue(), rating_loss, scl_loss, domain_loss};
  out.grad_norm = clip.norm;
  out.grads_finite = clip.finite;
  // Fault point "loss": spike the observed step loss (default 10x) to
  // exercise the divergence detector.
  if (faults.ShouldFire("loss", progress_.steps, &hit)) {
    out.losses[0] *= hit.magnitude == 0.0 ? 10.0 : hit.magnitude;
  }
  return out;
}

void OmniMatchTrainer::CaptureGuardSnapshot(GuardSnapshot* snap) const {
  const std::vector<nn::Tensor>& params = optimizer_->params();
  snap->params.resize(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    // Same-size vector assignment reuses the destination's buffer, so after
    // the first step this is a plain memcpy per parameter.
    snap->params[i] = params[i].data();
  }
  optimizer_->ExportStateInto(&snap->optimizer);
  snap->lr = optimizer_->lr();
  snap->trainer_rng = rng_.GetState();
  snap->model_rngs = model_->RngStates();
}

void OmniMatchTrainer::RestoreGuardSnapshot(const GuardSnapshot& snapshot) {
  std::vector<nn::Tensor> params = model_->Parameters();
  OM_CHECK_EQ(params.size(), snapshot.params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = snapshot.params[i];
  }
  Status restored = optimizer_->ImportState(snapshot.optimizer);
  OM_CHECK(restored.ok()) << restored.ToString();
  optimizer_->set_lr(snapshot.lr);
  rng_.SetState(snapshot.trainer_rng);
  Status rngs = model_->SetRngStates(snapshot.model_rngs);
  OM_CHECK(rngs.ok()) << rngs.ToString();
}

namespace {
std::vector<std::vector<float>> SnapshotParams(
    const std::vector<nn::Tensor>& params) {
  std::vector<std::vector<float>> out;
  out.reserve(params.size());
  for (const nn::Tensor& p : params) out.push_back(p.data());
  return out;
}

void RestoreParams(std::vector<nn::Tensor>& params,
                   const std::vector<std::vector<float>>& snapshot) {
  for (size_t i = 0; i < params.size(); ++i) params[i].data() = snapshot[i];
}
}  // namespace

TrainStats OmniMatchTrainer::Train() {
  OM_CHECK(prepared_) << "call Prepare() first";
  Stopwatch watch;
  const bool track_validation =
      config_.select_best_epoch && !split_.validation_users.empty();
  std::vector<nn::Tensor> params = model_->Parameters();
  // Resume-aware epoch loop: a fresh trainer starts at 0; one restored via
  // LoadCheckpoint continues after the checkpointed epoch with the exact
  // RNG streams and sample permutation of the original run, so the two
  // trajectories are bit-identical.
  const bool guard_on = config_.guard_enabled;
  bool gave_up = false;
  // Hoisted so the per-step capture reuses the same buffers every step
  // (see CaptureGuardSnapshot).
  GuardSnapshot snap;
  for (int epoch = epochs_completed_; epoch < config_.epochs && !gave_up;
       ++epoch) {
    rng_.Shuffle(sample_order_);
    double total = 0.0, rating = 0.0, scl = 0.0, domain = 0.0;
    int batches = 0;
    for (size_t start = 0; start < sample_order_.size();
         start += static_cast<size_t>(config_.batch_size)) {
      size_t end =
          std::min(sample_order_.size(),
                   start + static_cast<size_t>(config_.batch_size));
      if (end - start < 2) break;  // SupCon needs at least a pair
      std::vector<TrainSample> batch;
      batch.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        batch.push_back(train_samples_[static_cast<size_t>(
            sample_order_[i])]);
      }
      OM_TRACE_SPAN_TIMED("step", PhaseHist("trainer.step_ns"));
      // Self-healing step: snapshot, attempt, and on a detected fault roll
      // back to the snapshot, back off the LR, and retry the SAME batch
      // (the restored RNG streams make the retry bit-deterministic). The
      // snapshot covers everything a batch mutates, so the loop's loss
      // accumulators — updated only after the guard accepts — need none.
      if (guard_on) {
        OM_TRACE_SPAN_TIMED("guard_snapshot",
                            PhaseHist("trainer.guard_snapshot_ns"));
        CaptureGuardSnapshot(&snap);
      }
      StepOutcome outcome;
      while (true) {
        outcome = TrainBatch(batch);
        if (!guard_on) break;
        bool params_finite = false;
        double threshold = 0.0;
        FaultReason reason;
        {
          OM_TRACE_SPAN_TIMED("guard_check",
                              PhaseHist("trainer.guard_check_ns"));
          params_finite = nn::AllFinite(params);
          reason = guard_.Check(outcome.losses[0], outcome.grads_finite,
                                params_finite, &threshold);
        }
        if (reason == FaultReason::kNone) break;
        // Roll back before anything else: even when the budget is spent,
        // training must end on the last GOOD state, not the poisoned one.
        RestoreGuardSnapshot(snap);
        if (progress_.recoveries >= config_.max_recoveries) {
          OM_LOG(Error) << "guard: " << FaultReasonName(reason)
                        << " at step " << progress_.steps << " but the "
                        << config_.max_recoveries
                        << "-recovery budget is spent; stopping on the last "
                           "good state";
          progress_.guard_gave_up = true;
          gave_up = true;
          break;
        }
        RecoveryEvent event;
        event.step = progress_.steps;
        event.reason = reason;
        event.observed = reason == FaultReason::kNonFiniteGrad
                             ? outcome.grad_norm
                             : outcome.losses[0];
        event.threshold = threshold;
        event.lr_before = optimizer_->lr();
        event.lr_after = event.lr_before * config_.lr_backoff;
        optimizer_->set_lr(event.lr_after);
        ++progress_.recoveries;
        progress_.recovery_events.push_back(event);
        OM_LOG(Warning) << StrFormat(
            "guard: %s at step %d (observed %.4g, threshold %.4g); rolled "
            "back, lr %.4g -> %.4g, retry %d/%d",
            FaultReasonName(reason), progress_.steps, event.observed,
            event.threshold, static_cast<double>(event.lr_before),
            static_cast<double>(event.lr_after), progress_.recoveries,
            config_.max_recoveries);
      }
      if (gave_up) break;
      total += outcome.losses[0];
      rating += outcome.losses[1];
      scl += outcome.losses[2];
      domain += outcome.losses[3];
      ++batches;
      ++progress_.steps;
    }
    if (batches == 0) break;
    progress_.total_loss.push_back(total / batches);
    progress_.rating_loss.push_back(rating / batches);
    progress_.scl_loss.push_back(scl / batches);
    progress_.domain_loss.push_back(domain / batches);
    if (track_validation) {
      double rmse = Evaluate(split_.validation_users).rmse;
      progress_.validation_rmse.push_back(rmse);
      if (rmse < best_rmse_) {
        best_rmse_ = rmse;
        best_params_ = SnapshotParams(params);
        progress_.best_epoch = epoch;
      }
    }
    if (config_.verbose) {
      OM_LOG(Info) << StrFormat(
          "epoch %d: total %.4f rating %.4f scl %.4f domain %.4f%s", epoch,
          progress_.total_loss.back(), progress_.rating_loss.back(),
          progress_.scl_loss.back(), progress_.domain_loss.back(),
          track_validation
              ? StrFormat(" val-rmse %.4f", progress_.validation_rmse.back())
                    .c_str()
              : "");
    }
    epochs_completed_ = epoch + 1;
    if (config_.checkpoint_every > 0 &&
        epochs_completed_ % config_.checkpoint_every == 0) {
      OM_TRACE_SPAN_TIMED("checkpoint_write",
                          PhaseHist("trainer.checkpoint_write_ns"));
      Status saved = EnsureDirectory(config_.checkpoint_dir);
      if (saved.ok()) {
        saved = SaveCheckpoint(StrFormat(
            "%s/checkpoint_epoch%d.omck", config_.checkpoint_dir.c_str(),
            epochs_completed_));
      }
      if (!saved.ok()) {
        // A failed save must not kill a multi-hour run; the next interval
        // retries.
        OM_LOG(Warning) << "checkpoint save failed: " << saved.ToString();
      }
    }
  }
  progress_.train_seconds += watch.ElapsedSeconds();
  TrainStats stats = progress_;
  if (track_validation && !best_params_.empty()) {
    RestoreParams(params, best_params_);
  }
  // Flush the observability sinks configured in OmniMatchConfig. Failures
  // are warnings: a broken sink path must not kill a finished run.
  if (!config_.trace_out.empty() &&
      !obs::WriteChromeTrace(config_.trace_out)) {
    OM_LOG(Warning) << "trace export to " << config_.trace_out << " failed";
  }
  if (!config_.metrics_out.empty() &&
      !obs::MetricsRegistry::Global().WriteJsonLines(config_.metrics_out)) {
    OM_LOG(Warning) << "metrics export to " << config_.metrics_out
                    << " failed";
  }
  return stats;
}

std::vector<float> OmniMatchTrainer::PredictBatch(
    const std::vector<TrainSample>& batch) {
  int b = static_cast<int>(batch.size());
  std::vector<int> users, items;
  int max_variants = 0;
  for (const TrainSample& s : batch) {
    users.push_back(s.user);
    items.push_back(s.item);
    auto it = cold_aux_doc_variants_.find(s.user);
    if (it != cold_aux_doc_variants_.end()) {
      max_variants = std::max(max_variants,
                              static_cast<int>(it->second.size()));
    }
  }
  model_->set_training(false);
  Tensor item_rep = model_->ExtractItem(
      GatherDocs(item_docs_, items, config_.item_doc_len), b);
  int classes = config_.num_rating_classes;

  std::vector<float> preds(static_cast<size_t>(b), 0.0f);
  int passes = 1 + max_variants;
  int readouts_per_pass = config_.use_hybrid_inference ? 2 : 1;
  float weight = 1.0f / static_cast<float>(passes * readouts_per_pass);
  auto accumulate = [&](const Tensor& logits) {
    for (int i = 0; i < b; ++i) {
      float max_v = logits.At(i, 0);
      for (int c = 1; c < classes; ++c) {
        max_v = std::max(max_v, logits.At(i, c));
      }
      double sum = 0.0, weighted = 0.0;
      for (int c = 0; c < classes; ++c) {
        double e = std::exp(static_cast<double>(logits.At(i, c)) - max_v);
        sum += e;
        weighted += e * (c + 1);
      }
      preds[static_cast<size_t>(i)] +=
          weight * static_cast<float>(weighted / sum);
    }
  };

  // The user's own source-domain features (for hybrid inference) do not
  // depend on the auxiliary-document ensemble pass.
  OmniMatchModel::UserFeatures src;
  if (config_.use_hybrid_inference) {
    src = model_->ExtractUser(
        DomainSide::kSource,
        GatherDocs(user_source_docs_, users, config_.doc_len), b);
  }

  // Average expected ratings over the auxiliary-document ensemble. Pass 0
  // uses the primary documents; later passes substitute each cold user's
  // k-th variant (users without variants keep their primary document).
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<int> flat;
    flat.reserve(users.size() * static_cast<size_t>(config_.doc_len));
    for (int u : users) {
      const std::vector<int>* doc = nullptr;
      if (pass > 0) {
        auto it = cold_aux_doc_variants_.find(u);
        if (it != cold_aux_doc_variants_.end() &&
            pass - 1 < static_cast<int>(it->second.size())) {
          doc = &it->second[static_cast<size_t>(pass - 1)];
        }
      }
      if (doc == nullptr) {
        auto it = user_target_docs_.find(u);
        doc = it == user_target_docs_.end() ? nullptr : &it->second;
      }
      if (doc == nullptr) {
        flat.insert(flat.end(), static_cast<size_t>(config_.doc_len),
                    text::Vocabulary::kPadId);
      } else {
        flat.insert(flat.end(), doc->begin(), doc->end());
      }
    }
    auto tgt = model_->ExtractUser(DomainSide::kTarget, flat, b);
    accumulate(model_->RatingLogits(
        OmniMatchModel::UserRepresentation(tgt), item_rep));
    if (config_.use_hybrid_inference) {
      Tensor hybrid = nn::ConcatCols({src.invariant, tgt.specific});
      accumulate(model_->RatingLogits(hybrid, item_rep));
    }
  }
  return preds;
}

eval::Metrics OmniMatchTrainer::Evaluate(const std::vector<int>& users) {
  OM_CHECK(prepared_) << "call Prepare() first";
  OM_TRACE_SPAN_TIMED("evaluate", PhaseHist("trainer.evaluate_ns"));
  eval::MetricsAccumulator acc;
  std::vector<TrainSample> batch;
  std::vector<float> gold;
  auto flush = [&]() {
    if (batch.empty()) return;
    std::vector<float> preds = PredictBatch(batch);
    for (size_t i = 0; i < preds.size(); ++i) acc.Add(preds[i], gold[i]);
    batch.clear();
    gold.clear();
  };
  for (int u : users) {
    for (int idx : cross_->target().RecordsOfUser(u)) {
      size_t i = static_cast<size_t>(idx);
      TrainSample s;
      s.user = u;
      s.item = cross_->target().ReviewItem(i);
      batch.push_back(s);
      gold.push_back(cross_->target().ReviewRating(i));
      if (static_cast<int>(batch.size()) >= config_.batch_size) flush();
    }
  }
  flush();
  // Zero cold-start records (e.g. every user filtered out of a split) is a
  // degenerate-but-valid evaluation: report an empty Metrics instead of
  // failing — count == 0 tells the caller nothing was measured.
  Result<eval::Metrics> result = acc.Finalize();
  return result.ok() ? result.value() : eval::Metrics{};
}

namespace {

/// OMWT weight-file framing, the checkpoint (OMCK) discipline scaled down:
/// magic + version + payload size + payload CRC-32 header, then the
/// length-prefixed parameter payload, written atomically (tmp + fsync +
/// rename). The old format was a bare ofstream dump: a crash mid-write left
/// a torn file at the final path, bit flips loaded silently, and trailing
/// garbage was never noticed.
constexpr char kWeightsMagic[4] = {'O', 'M', 'W', 'T'};
constexpr uint32_t kWeightsVersion = 1;
constexpr size_t kWeightsHeaderSize = 4 + 4 + 8 + 4;

}  // namespace

Status OmniMatchTrainer::SaveWeights(const std::string& path) const {
  OM_CHECK(prepared_) << "call Prepare() first";
  std::vector<nn::Tensor> params = model_->Parameters();
  ByteWriter body;
  body.Write<uint64_t>(params.size());
  for (const nn::Tensor& p : params) {
    body.WriteVector(p.data());
  }
  std::string payload = body.Release();
  ByteWriter file;
  file.Write<char>(kWeightsMagic[0]);
  file.Write<char>(kWeightsMagic[1]);
  file.Write<char>(kWeightsMagic[2]);
  file.Write<char>(kWeightsMagic[3]);
  file.Write<uint32_t>(kWeightsVersion);
  file.Write<uint64_t>(payload.size());
  file.Write<uint32_t>(Crc32(payload));
  std::string out = file.Release();
  out += payload;
  return WriteFileAtomic(path, out);
}

Status OmniMatchTrainer::LoadWeights(const std::string& path) {
  OM_CHECK(prepared_) << "call Prepare() first";
  Result<std::string> file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  const std::string& raw = file.value();

  if (raw.size() < kWeightsHeaderSize) {
    return Status::InvalidArgument(path + ": too small to be a weight file");
  }
  ByteReader header(std::string_view(raw).substr(0, kWeightsHeaderSize));
  char magic[4];
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  header.Read(&magic[0]);
  header.Read(&magic[1]);
  header.Read(&magic[2]);
  header.Read(&magic[3]);
  header.Read(&version);
  header.Read(&payload_size);
  header.Read(&crc);
  if (std::memcmp(magic, kWeightsMagic, 4) != 0) {
    return Status::InvalidArgument(path + ": not a weight file");
  }
  if (version != kWeightsVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: weight file version %u, this build reads %u",
                  path.c_str(), version, kWeightsVersion));
  }
  // An exact size match rejects both truncation AND trailing garbage — an
  // appended byte is as much corruption as a missing one.
  if (raw.size() - kWeightsHeaderSize != payload_size) {
    return Status::InvalidArgument(StrFormat(
        "%s: payload is %zu bytes, header promises %llu "
        "(truncated or trailing garbage)",
        path.c_str(), raw.size() - kWeightsHeaderSize,
        static_cast<unsigned long long>(payload_size)));
  }
  std::string_view payload = std::string_view(raw).substr(kWeightsHeaderSize);
  if (Crc32(payload) != crc) {
    return Status::InvalidArgument(path + ": payload checksum mismatch");
  }

  std::vector<nn::Tensor> params = model_->Parameters();
  ByteReader r(payload);
  uint64_t count = 0;
  if (!r.Read(&count)) {
    return Status::InvalidArgument(path + ": truncated weight payload");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("%s holds %llu parameters, model has %zu", path.c_str(),
                  static_cast<unsigned long long>(count), params.size()));
  }
  // Parse EVERYTHING into staging before touching the model: a shape
  // mismatch halfway through must not leave half-restored parameters.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    if (!r.ReadVector(&staged[i])) {
      return Status::InvalidArgument(path + ": truncated weight payload");
    }
    if (staged[i].size() != params[i].data().size()) {
      return Status::InvalidArgument(
          StrFormat("%s: parameter %zu has %zu values, model expects %zu",
                    path.c_str(), i, staged[i].size(),
                    params[i].data().size()));
    }
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument(path +
                                   ": trailing bytes after weight payload");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = std::move(staged[i]);
  }
  return Status::OK();
}

Status OmniMatchTrainer::SaveCheckpoint(const std::string& path) const {
  OM_CHECK(prepared_) << "call Prepare() first";
  CheckpointState state;
  state.config_fingerprint = config_.Fingerprint();
  state.epochs_completed = epochs_completed_;
  state.steps = progress_.steps;
  for (const nn::Tensor& p : model_->Parameters()) {
    state.params.push_back(p.data());
  }
  state.optimizer = optimizer_->ExportState();
  state.trainer_rng = rng_.GetState();
  state.model_rngs = model_->RngStates();
  state.total_loss = progress_.total_loss;
  state.rating_loss = progress_.rating_loss;
  state.scl_loss = progress_.scl_loss;
  state.domain_loss = progress_.domain_loss;
  state.validation_rmse = progress_.validation_rmse;
  state.best_epoch = progress_.best_epoch;
  state.best_rmse = best_rmse_;
  state.best_params = best_params_;
  state.sample_order.assign(sample_order_.begin(), sample_order_.end());
  state.recovery_events = progress_.recovery_events;
  state.recoveries = progress_.recoveries;
  state.guard_gave_up = progress_.guard_gave_up ? 1 : 0;
  state.current_lr = optimizer_->lr();
  state.guard_ema = guard_.ema();
  state.guard_healthy_steps = guard_.healthy_steps();
  return SaveCheckpointFile(path, state);
}

Status OmniMatchTrainer::LoadCheckpoint(const std::string& path) {
  OM_CHECK(prepared_) << "call Prepare() first";
  Result<CheckpointState> loaded = LoadCheckpointFile(path);
  if (!loaded.ok()) return loaded.status();
  CheckpointState state = std::move(loaded).value();

  // Validate everything against this trainer BEFORE mutating any state, so
  // a rejected checkpoint leaves the trainer usable.
  if (state.config_fingerprint != config_.Fingerprint()) {
    return Status::InvalidArgument(
        path + ": checkpoint was written under a different config "
               "(fingerprint mismatch)");
  }
  std::vector<nn::Tensor> params = model_->Parameters();
  if (state.params.size() != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: checkpoint holds %zu parameter tensors, model has %zu",
        path.c_str(), state.params.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (state.params[i].size() != params[i].data().size()) {
      return Status::InvalidArgument(
          StrFormat("%s: parameter %zu has %zu values, model expects %zu",
                    path.c_str(), i, state.params[i].size(),
                    params[i].data().size()));
    }
  }
  if (!state.best_params.empty() &&
      state.best_params.size() != params.size()) {
    return Status::InvalidArgument(path +
                                   ": best-epoch snapshot shape mismatch");
  }
  for (size_t i = 0; i < state.best_params.size(); ++i) {
    if (state.best_params[i].size() != params[i].data().size()) {
      return Status::InvalidArgument(path +
                                     ": best-epoch snapshot shape mismatch");
    }
  }
  if (state.sample_order.size() != train_samples_.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: sample order covers %zu samples, trainer has %zu",
        path.c_str(), state.sample_order.size(), train_samples_.size()));
  }
  for (int32_t idx : state.sample_order) {
    if (idx < 0 || static_cast<size_t>(idx) >= train_samples_.size()) {
      return Status::InvalidArgument(
          path + ": sample order index out of range");
    }
  }
  if (state.epochs_completed < 0) {
    return Status::InvalidArgument(path + ": negative epoch counter");
  }
  if (state.model_rngs.size() != model_->RngStates().size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: checkpoint holds %zu model RNG streams, model has %zu",
        path.c_str(), state.model_rngs.size(), model_->RngStates().size()));
  }
  // Optimizer state import validates its own slot/counter layout.
  OM_RETURN_IF_ERROR(optimizer_->ImportState(state.optimizer));

  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = std::move(state.params[i]);
  }
  rng_.SetState(state.trainer_rng);
  OM_RETURN_IF_ERROR(model_->SetRngStates(state.model_rngs));
  progress_ = TrainStats();
  progress_.total_loss = std::move(state.total_loss);
  progress_.rating_loss = std::move(state.rating_loss);
  progress_.scl_loss = std::move(state.scl_loss);
  progress_.domain_loss = std::move(state.domain_loss);
  progress_.validation_rmse = std::move(state.validation_rmse);
  progress_.best_epoch = state.best_epoch;
  progress_.steps = static_cast<int>(state.steps);
  progress_.recovery_events = std::move(state.recovery_events);
  progress_.recoveries = state.recoveries;
  progress_.guard_gave_up = state.guard_gave_up != 0;
  epochs_completed_ = state.epochs_completed;
  best_rmse_ = state.best_rmse;
  best_params_ = std::move(state.best_params);
  sample_order_.assign(state.sample_order.begin(),
                       state.sample_order.end());
  // Resume on the LIVE learning rate (post-backoff, not the config value)
  // and the guard's divergence baseline, or a recovered run would repeat
  // the divergence it already escaped.
  optimizer_->set_lr(state.current_lr);
  guard_.Restore(state.guard_ema, state.guard_healthy_steps);
  return Status::OK();
}

void OmniMatchTrainer::UseOracleTargetDocs(const std::vector<int>& users) {
  OM_CHECK(prepared_) << "call Prepare() first";
  for (int u : users) {
    std::vector<std::string> texts;
    for (int idx : cross_->target().RecordsOfUser(u)) {
      texts.emplace_back(TextAt(cross_->target(), static_cast<size_t>(idx)));
    }
    if (texts.empty()) continue;
    user_target_docs_[u] =
        text::BuildDocumentIds(texts, vocab_, config_.doc_len);
  }
}

float OmniMatchTrainer::PredictRating(int user_id, int item_id) {
  OM_CHECK(prepared_) << "call Prepare() first";
  if (user_target_docs_.find(user_id) == user_target_docs_.end()) {
    return cross_->target().GlobalMeanRating();
  }
  TrainSample s;
  s.user = user_id;
  s.item = item_id;
  return PredictBatch({s})[0];
}

}  // namespace core
}  // namespace omnimatch
