#ifndef OMNIMATCH_CORE_TRAINER_H_
#define OMNIMATCH_CORE_TRAINER_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/aux_review.h"
#include "core/config.h"
#include "core/guard.h"
#include "core/model.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "eval/metrics.h"
#include "nn/graph.h"
#include "nn/optimizer.h"
#include "text/vocabulary.h"

namespace omnimatch {
namespace core {

/// Per-epoch loss trace plus wall-clock, returned by Train(). The timing
/// fields feed the Table 6 experiment.
struct TrainStats {
  std::vector<double> total_loss;
  std::vector<double> rating_loss;
  std::vector<double> scl_loss;
  std::vector<double> domain_loss;
  double train_seconds = 0.0;
  int steps = 0;
  /// Validation RMSE per epoch (empty when select_best_epoch is off) and
  /// the epoch whose parameters were kept.
  std::vector<double> validation_rmse;
  int best_epoch = -1;
  /// Self-healing guard outcome: every rollback performed (in step order),
  /// how much of the --max_recoveries budget was spent, and whether the
  /// guard exhausted it and stopped training on the last good state.
  std::vector<RecoveryEvent> recovery_events;
  int recoveries = 0;
  bool guard_gave_up = false;
};

/// End-to-end OmniMatch training and cold-start evaluation for one
/// cross-domain scenario (§5.2 protocol).
///
/// Responsibilities:
///  * builds the vocabulary from training-visible text (all source reviews
///    plus training users' target reviews);
///  * builds fixed-length documents: per-user source documents, per-user
///    target documents (real reviews for training users; Algorithm 1
///    auxiliary documents for cold-start users), and per-item documents
///    from training users' target reviews;
///  * runs the §4.5 objective L = L_rating + α·L_SCL + β·L_domain with
///    Adadelta;
///  * evaluates RMSE/MAE on cold users' hidden target records (Eq. 22-23).
class OmniMatchTrainer {
 public:
  /// `cross` must outlive the trainer.
  OmniMatchTrainer(const OmniMatchConfig& config,
                   const data::CrossDomainDataset* cross,
                   data::ColdStartSplit split);

  /// Builds vocabulary, documents and the model. Must be called before
  /// Train()/Evaluate(). Returns InvalidArgument for bad configs or
  /// FailedPrecondition for unusable splits.
  Status Prepare();

  /// Runs the configured number of epochs.
  TrainStats Train();

  /// RMSE/MAE over the target-domain records of `users` (they are treated
  /// as cold-start: their target documents are the auxiliary documents).
  eval::Metrics Evaluate(const std::vector<int>& users);

  /// Expected rating (sum_k k * p(k)) for one user-item pair. Unknown users
  /// or items fall back to the target domain's global mean rating.
  float PredictRating(int user_id, int item_id);

  /// Diagnostic: replaces the stored target documents of `users` with
  /// documents built from their REAL target-domain reviews (which the model
  /// never trained on). Evaluating cold users afterwards upper-bounds what
  /// auxiliary documents could achieve — the gap between this oracle and the
  /// normal evaluation isolates the Algorithm 1 contribution.
  void UseOracleTargetDocs(const std::vector<int>& users);

  /// Persists the trained weights (all model parameters, in Parameters()
  /// order) to a binary OMWT file. The architecture itself is not stored:
  /// load into a trainer Prepared with the same config and data. Crash-safe
  /// like SaveCheckpoint: staged to a tmp file, fsync'd, renamed into
  /// place, with a CRC-32 over the payload — a crash leaves the old file or
  /// the new one, never a torn half-write.
  Status SaveWeights(const std::string& path) const;

  /// Restores weights saved by SaveWeights. Fails with InvalidArgument when
  /// the parameter count or any shape differs, when the checksum does not
  /// match, or when the file is truncated or carries trailing bytes; the
  /// model is untouched unless the whole file validates.
  Status LoadWeights(const std::string& path);

  /// Writes a crash-safe, CRC-protected checkpoint of the FULL training
  /// state: parameters, optimizer accumulators, both RNG streams, the
  /// epoch-shuffle permutation, the loss/validation traces and the
  /// best-epoch snapshot. A run restored from it continues bit-for-bit as
  /// if it had never stopped. Train() calls this automatically every
  /// config.checkpoint_every epochs; it can also be called directly at any
  /// epoch boundary.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores a checkpoint written by SaveCheckpoint into a trainer that
  /// was Prepared with the same config (fingerprint-checked) and data. The
  /// next Train() call resumes after the checkpointed epoch. Corrupt,
  /// truncated or mismatched files are rejected with InvalidArgument /
  /// IoError and leave the trainer unchanged.
  Status LoadCheckpoint(const std::string& path);

  /// Epochs completed so far (across resumes). Train() runs epochs
  /// [epochs_completed, config.epochs).
  int epochs_completed() const { return epochs_completed_; }

  const text::Vocabulary& vocabulary() const { return vocab_; }
  const AuxReviewGenerator* aux_generator() const {
    return aux_generator_.get();
  }
  OmniMatchModel* model() { return model_.get(); }
  const data::ColdStartSplit& split() const { return split_; }
  /// Fixed evaluation-time documents, exposed read-only so an inference
  /// snapshot (src/serve) can be exported without re-deriving them.
  const std::unordered_map<int, std::vector<int>>& user_source_docs() const {
    return user_source_docs_;
  }
  const std::unordered_map<int, std::vector<int>>& user_target_docs() const {
    return user_target_docs_;
  }
  const std::unordered_map<int, std::vector<int>>& item_docs() const {
    return item_docs_;
  }
  /// Extra auxiliary-document samples per cold user (aux_eval_samples - 1
  /// of them; the first sample lives in user_target_docs()).
  const std::unordered_map<int, std::vector<std::vector<int>>>&
  cold_aux_doc_variants() const {
    return cold_aux_doc_variants_;
  }
  /// Null unless the trainer was Prepared with config.graph_exec.
  const nn::graph::GraphExecutor* graph_executor() const {
    return graph_exec_.get();
  }

 private:
  struct TrainSample {
    int user = -1;
    int item = -1;
    int label = 0;  // rating - 1, in [0, num_rating_classes)
  };

  /// Loss breakdown plus gradient health of one training step, consumed by
  /// the guard.
  struct StepOutcome {
    std::array<double, 4> losses = {0.0, 0.0, 0.0, 0.0};
    double grad_norm = 0.0;
    bool grads_finite = true;
  };

  /// Everything a mid-epoch rollback must restore: parameters, optimizer
  /// accumulators, the live learning rate, and every RNG stream (document
  /// assembly and dropout draw from them per batch). The epoch loop's loss
  /// accumulators need no snapshot — they are only updated after the guard
  /// accepts the step.
  struct GuardSnapshot {
    std::vector<std::vector<float>> params;
    nn::OptimizerState optimizer;
    float lr = 0.0f;
    Rng::State trainer_rng;
    std::vector<Rng::State> model_rngs;
  };

  /// The configured text field of record `idx` (works on both dataset
  /// backends; the view borrows from the dataset).
  std::string_view TextAt(const data::DomainDataset& domain, size_t idx) const;
  void BuildVocabulary();
  void BuildDocuments();
  /// Runs one training batch: forward, backward, hardened gradient clip,
  /// and — only when the gradients are finite — the optimizer step.
  /// Consults the "grad", "param" and "loss" fault-injection points.
  StepOutcome TrainBatch(const std::vector<TrainSample>& batch);
  /// Writes the full rollback state into `snap`, reusing its buffers when
  /// the shapes already match: the guard captures before EVERY step, so
  /// this path must be allocation-free in steady state (the <5%% per-step
  /// overhead budget leaves no room for heap churn).
  void CaptureGuardSnapshot(GuardSnapshot* snap) const;
  void RestoreGuardSnapshot(const GuardSnapshot& snapshot);
  /// Batched expected-rating predictions (eval mode).
  std::vector<float> PredictBatch(const std::vector<TrainSample>& batch);
  /// Flattened fixed-length documents for a batch (evaluation path).
  std::vector<int> GatherDocs(
      const std::unordered_map<int, std::vector<int>>& docs,
      const std::vector<int>& keys, int doc_len) const;
  /// Training path: re-assembles each document from its reviews in a fresh
  /// random order with word dropout; falls back to the fixed documents when
  /// augmentation is disabled.
  std::vector<int> GatherTrainingDocs(
      const std::unordered_map<int, std::vector<std::vector<int>>>& reviews,
      const std::unordered_map<int, std::vector<int>>& fixed_docs,
      const std::vector<int>& keys, int doc_len);
  /// Writes one augmented document assembled from `reviews` (or pads) into
  /// dst[0, doc_len), drawing shuffle/word-dropout randomness from `rng`.
  void AssembleTrainingDoc(const std::vector<std::vector<int>>* reviews,
                           int doc_len, Rng* rng, int* dst) const;
  /// Draws one 64-bit value from rng_ from which each document slot derives
  /// an independent child stream; keeps batch assembly parallelizable while
  /// consuming the trainer stream identically for every thread count.
  uint64_t NextDocSeed();
  /// Target-side training documents with cold-start self-simulation.
  std::vector<int> GatherTargetTrainingDocs(const std::vector<int>& users);

  OmniMatchConfig config_;
  const data::CrossDomainDataset* cross_;
  data::ColdStartSplit split_;
  Rng rng_;

  text::Vocabulary vocab_;
  std::unique_ptr<AuxReviewGenerator> aux_generator_;
  std::unique_ptr<OmniMatchModel> model_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  /// Recorded-graph step executor; null unless config_.graph_exec.
  std::unique_ptr<nn::graph::GraphExecutor> graph_exec_;

  /// Fixed documents used at evaluation time (deterministic).
  std::unordered_map<int, std::vector<int>> user_source_docs_;
  std::unordered_map<int, std::vector<int>> user_target_docs_;
  std::unordered_map<int, std::vector<int>> item_docs_;
  /// Per-review encoded token lists, re-assembled per training batch when
  /// shuffle_reviews_in_training is on.
  std::unordered_map<int, std::vector<std::vector<int>>> user_source_reviews_;
  std::unordered_map<int, std::vector<std::vector<int>>> user_target_reviews_;
  std::unordered_map<int, std::vector<std::vector<int>>> item_reviews_;
  /// Auxiliary documents for TRAIN users (cold-start self-simulation),
  /// generated with the user excluded from the eligible like-minded pool.
  std::unordered_map<int, std::vector<std::vector<int>>> train_aux_reviews_;
  /// Extra independently sampled auxiliary documents per cold user
  /// (aux_eval_samples - 1 of them; the first sample is user_target_docs_).
  std::unordered_map<int, std::vector<std::vector<int>>> cold_aux_doc_variants_;
  std::vector<TrainSample> train_samples_;
  std::vector<int> empty_item_doc_;
  bool prepared_ = false;

  /// --- resumable training state (checkpointed) ---
  /// Traces and step count accumulated over every epoch so far, including
  /// epochs run before a resume. Train() returns a copy of this.
  TrainStats progress_;
  int epochs_completed_ = 0;
  /// Validation-selection state (select_best_epoch).
  double best_rmse_ = 1e30;
  std::vector<std::vector<float>> best_params_;
  /// Current permutation of train_samples_ indices. Epoch shuffles compose
  /// in place, so the order is part of the resumable state.
  std::vector<int> sample_order_;
  /// Numerical-health watchdog (EMA state is checkpointed).
  TrainingGuard guard_{TrainingGuard::Options{}};
};

}  // namespace core
}  // namespace omnimatch

#endif  // OMNIMATCH_CORE_TRAINER_H_
