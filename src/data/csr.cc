#include "data/csr.h"

#include <algorithm>

#include "common/check.h"
#include "common/threadpool.h"

namespace omnimatch {
namespace data {

namespace {

/// Shard count for the parallel key sort, derived from `n` alone so the
/// sorted-run merge order — and therefore the final index — is independent
/// of the thread-pool size.
size_t NumShards(size_t n) {
  constexpr size_t kMinPerShard = size_t{1} << 15;
  size_t shards = (n + kMinPerShard - 1) / kMinPerShard;
  return std::max<size_t>(1, std::min<size_t>(shards, 64));
}

}  // namespace

template <typename Key>
CsrIndex<Key> CsrIndex<Key>::Build(
    size_t n, const std::function<Key(size_t)>& key_of,
    const std::function<int(size_t)>& value_of, bool sort_unique_values) {
  CsrIndex<Key> out;
  if (n == 0) return out;
  const int64_t sn = static_cast<int64_t>(n);

  // 1. Every record's key (parallel; each element is independent).
  std::vector<Key> record_keys(n);
  ParallelFor(0, sn, 4096, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      record_keys[static_cast<size_t>(i)] = key_of(static_cast<size_t>(i));
    }
  });

  // 2. Sorted unique key set: fixed shards sorted in parallel, then merged
  //    sequentially in shard order (the determinism contract's merge step).
  const size_t shards = NumShards(n);
  std::vector<std::vector<Key>> runs(shards);
  ParallelFor(0, static_cast<int64_t>(shards), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      size_t begin = n * static_cast<size_t>(s) / shards;
      size_t end = n * (static_cast<size_t>(s) + 1) / shards;
      auto& run = runs[static_cast<size_t>(s)];
      run.assign(record_keys.begin() + static_cast<int64_t>(begin),
                 record_keys.begin() + static_cast<int64_t>(end));
      std::sort(run.begin(), run.end());
      run.erase(std::unique(run.begin(), run.end()), run.end());
    }
  });
  std::vector<Key> merged = std::move(runs[0]);
  for (size_t s = 1; s < shards; ++s) {
    std::vector<Key> next;
    next.reserve(merged.size() + runs[s].size());
    std::merge(merged.begin(), merged.end(), runs[s].begin(), runs[s].end(),
               std::back_inserter(next));
    merged = std::move(next);
  }
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  out.keys_ = std::move(merged);
  const size_t num_keys = out.keys_.size();

  // 3. Bucket position of each record (parallel binary search).
  std::vector<uint32_t> pos(n);
  ParallelFor(0, sn, 2048, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      size_t idx = static_cast<size_t>(i);
      pos[idx] = static_cast<uint32_t>(
          std::lower_bound(out.keys_.begin(), out.keys_.end(),
                           record_keys[idx]) -
          out.keys_.begin());
    }
  });

  // 4. Counting pass + exclusive prefix sum; 5. fill in record order. Both
  //    sequential O(n): cheap relative to the sorts, and trivially
  //    thread-count independent.
  out.offsets_.assign(num_keys + 1, 0);
  for (size_t i = 0; i < n; ++i) ++out.offsets_[pos[i] + 1];
  for (size_t k = 0; k < num_keys; ++k) out.offsets_[k + 1] += out.offsets_[k];
  out.values_.resize(n);
  std::vector<uint64_t> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    out.values_[cursor[pos[i]]++] = value_of(i);
  }

  if (sort_unique_values) {
    // Per-bucket sort runs on disjoint ranges (parallel-safe), then one
    // sequential left-compaction drops duplicates.
    ParallelFor(0, static_cast<int64_t>(num_keys), 64,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t k = lo; k < hi; ++k) {
                    auto b = out.values_.begin() +
                             static_cast<int64_t>(out.offsets_[k]);
                    auto e = out.values_.begin() +
                             static_cast<int64_t>(out.offsets_[k + 1]);
                    std::sort(b, e);
                  }
                });
    std::vector<uint64_t> compact(num_keys + 1, 0);
    uint64_t w = 0;
    for (size_t k = 0; k < num_keys; ++k) {
      const uint64_t bucket_start = w;
      for (uint64_t i = out.offsets_[k]; i < out.offsets_[k + 1]; ++i) {
        int v = out.values_[i];
        if (w == bucket_start || out.values_[w - 1] != v) {
          out.values_[w++] = v;
        }
      }
      compact[k + 1] = w;
    }
    out.values_.resize(w);
    out.offsets_ = std::move(compact);
  }
  return out;
}

template <typename Key>
CsrIndex<Key> CsrIndex<Key>::Filter(const CsrIndex<Key>& src,
                                    const std::function<bool(int)>& keep) {
  CsrIndex<Key> out;
  out.keys_ = src.keys_;
  const size_t num_keys = out.keys_.size();
  out.offsets_.assign(num_keys + 1, 0);
  if (num_keys == 0) return out;

  // Count survivors per bucket in parallel (buckets are independent), then
  // prefix-sum sequentially and fill each bucket into its disjoint range.
  std::vector<uint64_t> counts(num_keys, 0);
  ParallelFor(0, static_cast<int64_t>(num_keys), 32,
              [&](int64_t lo, int64_t hi) {
                for (int64_t k = lo; k < hi; ++k) {
                  uint64_t c = 0;
                  for (uint64_t i = src.offsets_[k]; i < src.offsets_[k + 1];
                       ++i) {
                    if (keep(src.values_[i])) ++c;
                  }
                  counts[static_cast<size_t>(k)] = c;
                }
              });
  for (size_t k = 0; k < num_keys; ++k) {
    out.offsets_[k + 1] = out.offsets_[k] + counts[k];
  }
  out.values_.resize(out.offsets_[num_keys]);
  ParallelFor(0, static_cast<int64_t>(num_keys), 32,
              [&](int64_t lo, int64_t hi) {
                for (int64_t k = lo; k < hi; ++k) {
                  uint64_t w = out.offsets_[k];
                  for (uint64_t i = src.offsets_[k]; i < src.offsets_[k + 1];
                       ++i) {
                    int v = src.values_[i];
                    if (keep(v)) out.values_[w++] = v;
                  }
                }
              });
  return out;
}

template <typename Key>
IdSpan CsrIndex<Key>::Find(Key key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return IdSpan();
  return ValuesAt(static_cast<size_t>(it - keys_.begin()));
}

template class CsrIndex<int>;
template class CsrIndex<long long>;

}  // namespace data
}  // namespace omnimatch
