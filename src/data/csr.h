#ifndef OMNIMATCH_DATA_CSR_H_
#define OMNIMATCH_DATA_CSR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

namespace omnimatch {
namespace data {

/// Non-owning view of one bucket inside a CsrIndex: a contiguous run of
/// int ids. Cheap to copy (pointer + length); valid as long as the owning
/// index is alive and not rebuilt. Supports range-for and comparison with
/// std::vector<int> so call sites (and tests) read like the map-of-vectors
/// API it replaced.
class IdSpan {
 public:
  IdSpan() = default;
  IdSpan(const int* data, size_t size) : data_(data), size_(size) {}

  const int* begin() const { return data_; }
  const int* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int operator[](size_t i) const { return data_[i]; }
  int front() const { return data_[0]; }
  int back() const { return data_[size_ - 1]; }

 private:
  const int* data_ = nullptr;
  size_t size_ = 0;
};

inline bool operator==(const IdSpan& a, const IdSpan& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}
inline bool operator==(const IdSpan& a, const std::vector<int>& b) {
  return a == IdSpan(b.data(), b.size());
}
inline bool operator==(const std::vector<int>& a, const IdSpan& b) {
  return b == a;
}
inline bool operator!=(const IdSpan& a, const IdSpan& b) { return !(a == b); }

/// Readable gtest/log output: "[1, 5, 9]".
inline std::ostream& operator<<(std::ostream& os, const IdSpan& s) {
  os << '[';
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) os << ", ";
    os << s[i];
  }
  return os << ']';
}

/// CSR-packed multimap `Key -> [int]`: sorted unique keys, an offsets array
/// of size num_keys()+1, and one contiguous values array. Replaces the
/// per-bucket heap allocations of unordered_map<Key, vector<int>> — at 10⁶
/// users that map costs one allocation and ~3 cache lines of overhead per
/// bucket; CSR is three flat arrays and a binary-searched lookup.
///
/// Determinism contract (DESIGN.md "Out-of-core data path"): Build() and
/// Filter() produce bit-identical arrays for any thread-pool size. Shard
/// boundaries are computed from the element count alone, per-shard sorted
/// runs are merged in fixed shard order on the calling thread, and the
/// value fill walks records in index order.
template <typename Key>
class CsrIndex {
 public:
  CsrIndex() { offsets_.assign(1, 0); }

  /// Builds the index over `n` records. `key_of(i)` / `value_of(i)` give
  /// record i's key and stored value. Bucket values keep ascending record
  /// order; with `sort_unique_values` each bucket is additionally sorted
  /// and deduplicated (the UsersWhoRated contract).
  static CsrIndex Build(size_t n, const std::function<Key(size_t)>& key_of,
                        const std::function<int(size_t)>& value_of,
                        bool sort_unique_values);

  /// A copy of `src` keeping only values that satisfy `keep`. The key set
  /// is preserved (buckets may become empty), so offsets stay comparable
  /// with the source index. Parallel over keys, deterministic.
  static CsrIndex Filter(const CsrIndex& src,
                         const std::function<bool(int)>& keep);

  /// The bucket for `key`; empty when the key is absent. O(log num_keys).
  IdSpan Find(Key key) const;

  bool Contains(Key key) const { return !Find(key).empty(); }

  size_t num_keys() const { return keys_.size(); }

  /// Bucket by key position (keys()[k]); O(1).
  IdSpan ValuesAt(size_t k) const {
    return IdSpan(values_.data() + offsets_[k],
                  static_cast<size_t>(offsets_[k + 1] - offsets_[k]));
  }

  const std::vector<Key>& keys() const { return keys_; }
  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<int>& values() const { return values_; }

 private:
  std::vector<Key> keys_;        // sorted, unique
  std::vector<uint64_t> offsets_;  // size keys_.size() + 1
  std::vector<int> values_;      // packed buckets
};

extern template class CsrIndex<int>;
extern template class CsrIndex<long long>;

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_CSR_H_
