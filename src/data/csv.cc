#include "data/csv.h"

#include <cstdlib>
#include <fstream>

#include "common/string_util.h"

namespace omnimatch {
namespace data {

namespace {
std::string SanitizeText(std::string text) {
  for (char& c : text) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return text;
}
}  // namespace

Status SaveDomainTsv(const DomainDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "user_id\titem_id\trating\tsummary\tfull_text\n";
  for (const Review& r : dataset.reviews()) {
    out << r.user_id << '\t' << r.item_id << '\t' << r.rating << '\t'
        << SanitizeText(r.summary) << '\t' << SanitizeText(r.full_text)
        << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<DomainDataset> LoadDomainTsv(const std::string& path,
                                    const std::string& name) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  DomainDataset dataset(name);
  std::string line;
  bool first = true;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (first) {
      first = false;
      if (!StartsWith(line, "user_id\t")) {
        return Status::InvalidArgument(path + ": missing TSV header");
      }
      continue;
    }
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() < 4) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected >=4 tab-separated fields, got %d",
                    path.c_str(), line_no, static_cast<int>(fields.size())));
    }
    Review r;
    r.user_id = std::atoi(fields[0].c_str());
    r.item_id = std::atoi(fields[1].c_str());
    r.rating = static_cast<float>(std::atof(fields[2].c_str()));
    if (r.user_id < 0 || r.item_id < 0 || r.rating < 1.0f ||
        r.rating > 5.0f) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: invalid ids or rating", path.c_str(), line_no));
    }
    r.summary = fields[3];
    r.full_text = fields.size() >= 5 ? fields[4] : fields[3];
    dataset.AddReview(std::move(r));
  }
  dataset.BuildIndices();
  return dataset;
}

}  // namespace data
}  // namespace omnimatch
