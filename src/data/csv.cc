#include "data/csv.h"

#include <fstream>
#include <string_view>

#include "common/io.h"
#include "common/string_util.h"

namespace omnimatch {
namespace data {

namespace {

/// Escapes the TSV structural characters so review text round-trips
/// exactly: tab, newline, carriage return and backslash become two-character
/// sequences. The inverse is UnescapeText.
std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    switch (text[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      // Unknown escape: keep both characters (forward compatibility with
      // files written by a newer escaper).
      default: out += '\\'; out += text[i];
    }
  }
  return out;
}

}  // namespace

Status SaveDomainTsv(const DomainDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "user_id\titem_id\trating\tsummary\tfull_text\n";
  for (size_t i = 0; i < dataset.num_reviews(); ++i) {
    out << dataset.ReviewUser(i) << '\t' << dataset.ReviewItem(i) << '\t'
        << dataset.ReviewRating(i) << '\t'
        << EscapeText(dataset.ReviewSummary(i)) << '\t'
        << EscapeText(dataset.ReviewFullText(i)) << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<DomainDataset> LoadDomainTsv(const std::string& path,
                                    const std::string& name) {
  // One whole-file read instead of a getline loop: the buffer doubles as
  // the pre-scan for the reserve below, and parsing walks string_views into
  // it without per-line stream overhead.
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string& buffer = read.value();

  DomainDataset dataset(name);
  // Pre-scan: one row per newline is an upper bound (header and blank lines
  // only over-reserve slightly), so reviews_ grows exactly once instead of
  // through log2(n) reallocations on large files.
  size_t newlines = 0;
  for (char c : buffer) {
    if (c == '\n') ++newlines;
  }
  dataset.ReserveReviews(newlines);

  bool first = true;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= buffer.size()) {
    // getline semantics: a trailing fragment without '\n' is still a line;
    // a buffer ending in '\n' does not yield an extra empty line.
    if (pos == buffer.size()) {
      if (pos == 0 || buffer.back() == '\n') break;
    }
    size_t eol = buffer.find('\n', pos);
    if (eol == std::string::npos) eol = buffer.size();
    std::string line = buffer.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (first) {
      first = false;
      if (!StartsWith(line, "user_id\t")) {
        return Status::InvalidArgument(path + ": missing TSV header");
      }
      continue;
    }
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() < 4) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected >=4 tab-separated fields, got %d",
                    path.c_str(), line_no, static_cast<int>(fields.size())));
    }
    Review r;
    // Checked parses: std::atoi/atof silently read "3x" as 3 and turn any
    // garbage into 0 — a dataset bug the model would then train on. Every
    // field must parse in full or the row is rejected with its location.
    if (!ParseInt32(fields[0], &r.user_id)) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: bad user_id '%s'", path.c_str(), line_no,
                    fields[0].c_str()));
    }
    if (!ParseInt32(fields[1], &r.item_id)) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: bad item_id '%s'", path.c_str(), line_no,
                    fields[1].c_str()));
    }
    if (!ParseFloat(fields[2], &r.rating)) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: bad rating '%s'", path.c_str(), line_no,
                    fields[2].c_str()));
    }
    if (r.user_id < 0 || r.item_id < 0 || r.rating < 1.0f ||
        r.rating > 5.0f) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: invalid ids or rating", path.c_str(), line_no));
    }
    r.summary = UnescapeText(fields[3]);
    r.full_text =
        fields.size() >= 5 ? UnescapeText(fields[4]) : r.summary;
    dataset.AddReview(std::move(r));
  }
  dataset.BuildIndices();
  return dataset;
}

}  // namespace data
}  // namespace omnimatch
