#ifndef OMNIMATCH_DATA_CSV_H_
#define OMNIMATCH_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace omnimatch {
namespace data {

/// Saves a domain as tab-separated values with a header row:
///   user_id \t item_id \t rating \t summary \t full_text
/// Tabs and newlines inside text fields are replaced with spaces.
Status SaveDomainTsv(const DomainDataset& dataset, const std::string& path);

/// Loads a domain written by SaveDomainTsv (or hand-authored in the same
/// format). Builds indices before returning. The dataset name is taken from
/// `name`, not the file.
Result<DomainDataset> LoadDomainTsv(const std::string& path,
                                    const std::string& name);

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_CSV_H_
