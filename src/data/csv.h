#ifndef OMNIMATCH_DATA_CSV_H_
#define OMNIMATCH_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace omnimatch {
namespace data {

/// Saves a domain as tab-separated values with a header row:
///   user_id \t item_id \t rating \t summary \t full_text
/// Tabs, newlines, carriage returns and backslashes inside text fields are
/// escaped (\t, \n, \r, \\) so save -> load round-trips review text
/// exactly.
Status SaveDomainTsv(const DomainDataset& dataset, const std::string& path);

/// Loads a domain written by SaveDomainTsv (or hand-authored in the same
/// format). Escape sequences in text fields are decoded; numeric fields are
/// parsed strictly (trailing garbage or out-of-range values reject the row
/// with file:line context). Builds indices before returning. The dataset
/// name is taken from `name`, not the file.
Result<DomainDataset> LoadDomainTsv(const std::string& path,
                                    const std::string& name);

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_CSV_H_
