#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "data/omds.h"

namespace omnimatch {
namespace data {

long long DomainDataset::ItemRatingKey(int item_id, float rating) {
  // Half-step buckets: 4.5 and 5.0 must key differently (Algorithm 1's
  // "same rating" is exact, and half-star ratings are legal inputs).
  int r = static_cast<int>(std::lround(rating * 2.0f));
  OM_CHECK(r >= 0 && r <= 15) << "rating out of key range: " << rating;
  return static_cast<long long>(item_id) * 16 + r;
}

DomainDataset::DomainDataset(std::string name,
                             std::shared_ptr<const OmdsFile> omds)
    : name_(std::move(name)), omds_(std::move(omds)) {
  OM_CHECK(omds_ != nullptr);
}

void DomainDataset::AddReview(Review review) {
  OM_CHECK(!is_mapped()) << "mapped datasets are read-only";
  OM_CHECK_GE(review.user_id, 0);
  OM_CHECK_GE(review.item_id, 0);
  OM_CHECK(review.rating >= 1.0f && review.rating <= 5.0f)
      << "rating " << review.rating;
  reviews_.push_back(std::move(review));
  indices_built_ = false;
}

void DomainDataset::ReserveReviews(size_t n) {
  OM_CHECK(!is_mapped()) << "mapped datasets are read-only";
  reviews_.reserve(n);
}

const std::vector<Review>& DomainDataset::reviews() const {
  OM_CHECK(!is_mapped())
      << "reviews() is in-memory only; use the per-record accessors";
  return reviews_;
}

size_t DomainDataset::num_reviews() const {
  return omds_ ? omds_->num_records() : reviews_.size();
}

int DomainDataset::ReviewUser(size_t i) const {
  return omds_ ? omds_->meta(i).user_id : reviews_[i].user_id;
}

int DomainDataset::ReviewItem(size_t i) const {
  return omds_ ? omds_->meta(i).item_id : reviews_[i].item_id;
}

float DomainDataset::ReviewRating(size_t i) const {
  return omds_ ? omds_->meta(i).rating : reviews_[i].rating;
}

std::string_view DomainDataset::ReviewSummary(size_t i) const {
  return omds_ ? omds_->summary(i) : std::string_view(reviews_[i].summary);
}

std::string_view DomainDataset::ReviewFullText(size_t i) const {
  return omds_ ? omds_->full_text(i) : std::string_view(reviews_[i].full_text);
}

Review DomainDataset::CopyReview(size_t i) const {
  if (!omds_) return reviews_[i];
  Review r;
  r.user_id = ReviewUser(i);
  r.item_id = ReviewItem(i);
  r.rating = ReviewRating(i);
  r.summary = std::string(ReviewSummary(i));
  r.full_text = std::string(ReviewFullText(i));
  return r;
}

void DomainDataset::BuildIndices() {
  const size_t n = num_reviews();
  user_index_ = CsrIndex<int>::Build(
      n, [this](size_t i) { return ReviewUser(i); },
      [](size_t i) { return static_cast<int>(i); },
      /*sort_unique_values=*/false);
  item_index_ = CsrIndex<int>::Build(
      n, [this](size_t i) { return ReviewItem(i); },
      [](size_t i) { return static_cast<int>(i); },
      /*sort_unique_values=*/false);
  // A user who reviewed the same item with the same rating twice must still
  // appear once per bucket: Algorithm 1 samples like-minded users uniformly,
  // so duplicates would skew the draw — hence sort_unique_values.
  item_rating_index_ = CsrIndex<long long>::Build(
      n, [this](size_t i) { return ItemRatingKey(ReviewItem(i),
                                                 ReviewRating(i)); },
      [this](size_t i) { return ReviewUser(i); },
      /*sort_unique_values=*/true);
  indices_built_ = true;
}

IdSpan DomainDataset::RecordsOfUser(int user_id) const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  return user_index_.Find(user_id);
}

IdSpan DomainDataset::RecordsOfItem(int item_id) const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  return item_index_.Find(item_id);
}

IdSpan DomainDataset::UsersWhoRated(int item_id, float rating) const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  return item_rating_index_.Find(ItemRatingKey(item_id, rating));
}

const CsrIndex<long long>& DomainDataset::item_rating_index() const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  return item_rating_index_;
}

float DomainDataset::GlobalMeanRating() const {
  const size_t n = num_reviews();
  if (n == 0) return 3.0f;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += ReviewRating(i);
  return static_cast<float>(sum / static_cast<double>(n));
}

double DomainDataset::MeanReviewsPerUser() const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  if (users().empty()) return 0.0;
  return static_cast<double>(num_reviews()) /
         static_cast<double>(users().size());
}

CrossDomainDataset::CrossDomainDataset(DomainDataset source,
                                       DomainDataset target)
    : source_(std::move(source)), target_(std::move(target)) {
  RecomputeOverlap();
}

void CrossDomainDataset::RecomputeOverlap() {
  source_.BuildIndices();
  target_.BuildIndices();
  overlapping_users_.clear();
  std::set_intersection(source_.users().begin(), source_.users().end(),
                        target_.users().begin(), target_.users().end(),
                        std::back_inserter(overlapping_users_));
}

std::string CrossDomainDataset::ScenarioName() const {
  return source_.name() + " -> " + target_.name();
}

}  // namespace data
}  // namespace omnimatch
