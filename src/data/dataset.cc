#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace omnimatch {
namespace data {

namespace {
long long ItemRatingKey(int item_id, float rating) {
  // Half-step buckets: 4.5 and 5.0 must key differently (Algorithm 1's
  // "same rating" is exact, and half-star ratings are legal inputs).
  int r = static_cast<int>(std::lround(rating * 2.0f));
  OM_CHECK(r >= 0 && r <= 15) << "rating out of key range: " << rating;
  return static_cast<long long>(item_id) * 16 + r;
}
}  // namespace

const std::vector<int>& DomainDataset::EmptyVector() {
  static const std::vector<int>* empty = new std::vector<int>();
  return *empty;
}

void DomainDataset::AddReview(Review review) {
  OM_CHECK_GE(review.user_id, 0);
  OM_CHECK_GE(review.item_id, 0);
  OM_CHECK(review.rating >= 1.0f && review.rating <= 5.0f)
      << "rating " << review.rating;
  reviews_.push_back(std::move(review));
  indices_built_ = false;
}

void DomainDataset::BuildIndices() {
  user_records_.clear();
  item_records_.clear();
  item_rating_users_.clear();
  users_.clear();
  items_.clear();
  for (size_t i = 0; i < reviews_.size(); ++i) {
    const Review& r = reviews_[i];
    user_records_[r.user_id].push_back(static_cast<int>(i));
    item_records_[r.item_id].push_back(static_cast<int>(i));
    item_rating_users_[ItemRatingKey(r.item_id, r.rating)].push_back(
        r.user_id);
  }
  // A user who reviewed the same item with the same rating twice must still
  // appear once per bucket: Algorithm 1 samples like-minded users uniformly,
  // so duplicates would skew the draw. Sorted buckets are also what
  // AuxReviewGenerator's deterministic candidate lists rely on.
  for (auto& [_, users] : item_rating_users_) {
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
  }
  users_.reserve(user_records_.size());
  for (const auto& [uid, _] : user_records_) users_.push_back(uid);
  std::sort(users_.begin(), users_.end());
  items_.reserve(item_records_.size());
  for (const auto& [iid, _] : item_records_) items_.push_back(iid);
  std::sort(items_.begin(), items_.end());
  indices_built_ = true;
}

const std::vector<int>& DomainDataset::RecordsOfUser(int user_id) const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  auto it = user_records_.find(user_id);
  return it == user_records_.end() ? EmptyVector() : it->second;
}

const std::vector<int>& DomainDataset::RecordsOfItem(int item_id) const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  auto it = item_records_.find(item_id);
  return it == item_records_.end() ? EmptyVector() : it->second;
}

const std::vector<int>& DomainDataset::UsersWhoRated(int item_id,
                                                     float rating) const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  auto it = item_rating_users_.find(ItemRatingKey(item_id, rating));
  return it == item_rating_users_.end() ? EmptyVector() : it->second;
}

float DomainDataset::GlobalMeanRating() const {
  if (reviews_.empty()) return 3.0f;
  double sum = 0.0;
  for (const Review& r : reviews_) sum += r.rating;
  return static_cast<float>(sum / reviews_.size());
}

double DomainDataset::MeanReviewsPerUser() const {
  OM_CHECK(indices_built_) << "call BuildIndices() first";
  if (users_.empty()) return 0.0;
  return static_cast<double>(reviews_.size()) /
         static_cast<double>(users_.size());
}

CrossDomainDataset::CrossDomainDataset(DomainDataset source,
                                       DomainDataset target)
    : source_(std::move(source)), target_(std::move(target)) {
  RecomputeOverlap();
}

void CrossDomainDataset::RecomputeOverlap() {
  source_.BuildIndices();
  target_.BuildIndices();
  overlapping_users_.clear();
  std::set_intersection(source_.users().begin(), source_.users().end(),
                        target_.users().begin(), target_.users().end(),
                        std::back_inserter(overlapping_users_));
}

std::string CrossDomainDataset::ScenarioName() const {
  return source_.name() + " -> " + target_.name();
}

}  // namespace data
}  // namespace omnimatch
