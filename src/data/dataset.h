#ifndef OMNIMATCH_DATA_DATASET_H_
#define OMNIMATCH_DATA_DATASET_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/types.h"

namespace omnimatch {
namespace data {

/// All reviews of one domain plus the two lookup dictionaries the paper's
/// Algorithm 1 preprocessing builds (§4.1):
///   1. user_id -> [(item, rating, review)] — RecordsOfUser()
///   2. (item_id, rating) -> [user_id]      — UsersWhoRated()
/// Index construction is O(N·M) in the paper's notation; the lookups are
/// then O(1) per call.
class DomainDataset {
 public:
  DomainDataset() = default;
  explicit DomainDataset(std::string name) : name_(std::move(name)) {}

  /// Appends a review. Invalidates indices until BuildIndices() is called.
  void AddReview(Review review);

  /// (Re)builds the user/item/(item,rating) dictionaries.
  void BuildIndices();

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Review>& reviews() const { return reviews_; }
  size_t num_reviews() const { return reviews_.size(); }

  /// Users and items present, sorted ascending.
  const std::vector<int>& users() const { return users_; }
  const std::vector<int>& items() const { return items_; }

  bool HasUser(int user_id) const {
    return user_records_.count(user_id) > 0;
  }
  bool HasItem(int item_id) const {
    return item_records_.count(item_id) > 0;
  }

  /// Indices (into reviews()) of a user's records; empty if unknown user.
  const std::vector<int>& RecordsOfUser(int user_id) const;

  /// Indices (into reviews()) of an item's records; empty if unknown item.
  const std::vector<int>& RecordsOfItem(int item_id) const;

  /// The like-minded lookup: users who rated `item_id` exactly `rating`.
  /// Ratings match at half-star resolution (4.5 and 5.0 are distinct
  /// buckets). The returned list is sorted ascending and duplicate-free —
  /// a user appears once even if they reviewed the item with that rating
  /// several times. Empty if none.
  const std::vector<int>& UsersWhoRated(int item_id, float rating) const;

  /// Mean rating across all records (the mu fallback of rating baselines).
  /// Returns 3.0 for an empty dataset.
  float GlobalMeanRating() const;

  /// Average number of reviews per user (the paper's M in §4.1).
  double MeanReviewsPerUser() const;

 private:
  std::string name_;
  std::vector<Review> reviews_;
  bool indices_built_ = false;

  std::vector<int> users_;
  std::vector<int> items_;
  std::unordered_map<int, std::vector<int>> user_records_;
  std::unordered_map<int, std::vector<int>> item_records_;
  /// key = item_id * 16 + lround(rating * 2): half-step rating buckets, so
  /// half-star ratings never collide with their neighbours. Each bucket is
  /// sorted and deduplicated by BuildIndices().
  std::unordered_map<long long, std::vector<int>> item_rating_users_;

  static const std::vector<int>& EmptyVector();
};

/// A (source, target) domain pair plus the overlap bookkeeping of §2:
/// U^o = U^s ∩ U^t.
class CrossDomainDataset {
 public:
  CrossDomainDataset() = default;
  CrossDomainDataset(DomainDataset source, DomainDataset target);

  const DomainDataset& source() const { return source_; }
  const DomainDataset& target() const { return target_; }
  DomainDataset& mutable_source() { return source_; }
  DomainDataset& mutable_target() { return target_; }

  /// Recomputes the overlap after datasets change.
  void RecomputeOverlap();

  /// Users with records in both domains, sorted.
  const std::vector<int>& overlapping_users() const {
    return overlapping_users_;
  }

  /// "<source> -> <target>", e.g. "Books -> Movies".
  std::string ScenarioName() const;

 private:
  DomainDataset source_;
  DomainDataset target_;
  std::vector<int> overlapping_users_;
};

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_DATASET_H_
