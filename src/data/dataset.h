#ifndef OMNIMATCH_DATA_DATASET_H_
#define OMNIMATCH_DATA_DATASET_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/csr.h"
#include "data/types.h"

namespace omnimatch {
namespace data {

class OmdsFile;

/// All reviews of one domain plus the two lookup dictionaries the paper's
/// Algorithm 1 preprocessing builds (§4.1):
///   1. user_id -> [(item, rating, review)] — RecordsOfUser()
///   2. (item_id, rating) -> [user_id]      — UsersWhoRated()
/// Both dictionaries (and the item index) are CSR-packed flat arrays built
/// in parallel shards with a deterministic merge order, so index
/// construction is thread-count independent and a lookup is one binary
/// search over a contiguous key array — no per-bucket heap allocations,
/// which is what makes the million-user worlds fit.
///
/// Two record backends share this one API:
///   * in-memory — AddReview()-built or TSV-loaded `std::vector<Review>`;
///   * mapped    — an OMDS file (see data/omds.h) accessed through a
///     shared, read-only memory mapping; records stream from disk and the
///     resident set tracks the working set instead of the corpus size.
/// Field accessors (ReviewUser/ReviewItem/ReviewRating/ReviewSummary/
/// ReviewFullText) work on either backend; reviews() and AddReview() are
/// in-memory only (they OM_CHECK on a mapped dataset).
class DomainDataset {
 public:
  DomainDataset() = default;
  explicit DomainDataset(std::string name) : name_(std::move(name)) {}
  /// Mapped backend: records come from `omds` (shared so the dataset stays
  /// copyable and string_views into the mapping stay valid). Indices are
  /// not built yet; call BuildIndices() (LoadDomainOmds does).
  DomainDataset(std::string name, std::shared_ptr<const OmdsFile> omds);

  /// Appends a review (in-memory backend only). Invalidates indices until
  /// BuildIndices() is called.
  void AddReview(Review review);

  /// Pre-allocates review storage (in-memory backend only): bulk loaders
  /// reserve once instead of growing through reallocations.
  void ReserveReviews(size_t n);

  /// (Re)builds the user/item/(item,rating) CSR dictionaries.
  void BuildIndices();

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// True when records are backed by a memory-mapped OMDS file.
  bool is_mapped() const { return omds_ != nullptr; }

  /// In-memory backend only; use the per-record accessors below for code
  /// that must handle both backends.
  const std::vector<Review>& reviews() const;

  size_t num_reviews() const;

  // --- backend-independent per-record accessors ---
  int ReviewUser(size_t i) const;
  int ReviewItem(size_t i) const;
  float ReviewRating(size_t i) const;
  /// Views are valid as long as the dataset (and, for the mapped backend,
  /// its shared OmdsFile) is alive.
  std::string_view ReviewSummary(size_t i) const;
  std::string_view ReviewFullText(size_t i) const;
  /// Materializes record i as an owned Review (either backend).
  Review CopyReview(size_t i) const;

  /// Users and items present, sorted ascending.
  const std::vector<int>& users() const { return user_index_.keys(); }
  const std::vector<int>& items() const { return item_index_.keys(); }

  bool HasUser(int user_id) const { return !RecordsOfUser(user_id).empty(); }
  bool HasItem(int item_id) const { return !RecordsOfItem(item_id).empty(); }

  /// Indices (into records) of a user's reviews, ascending; empty if
  /// unknown user. The span stays valid until the next BuildIndices().
  IdSpan RecordsOfUser(int user_id) const;

  /// Indices (into records) of an item's reviews; empty if unknown item.
  IdSpan RecordsOfItem(int item_id) const;

  /// The like-minded lookup: users who rated `item_id` exactly `rating`.
  /// Ratings match at half-star resolution (4.5 and 5.0 are distinct
  /// buckets). The returned span is sorted ascending and duplicate-free —
  /// a user appears once even if they reviewed the item with that rating
  /// several times. Empty if none.
  IdSpan UsersWhoRated(int item_id, float rating) const;

  /// The packed (item, rating) -> users dictionary itself. Key layout:
  /// ItemRatingKey(). AuxReviewGenerator derives its eligible-filtered view
  /// from this.
  const CsrIndex<long long>& item_rating_index() const;

  /// key = item_id * 16 + lround(rating * 2): half-step rating buckets, so
  /// half-star ratings never collide with their neighbours.
  static long long ItemRatingKey(int item_id, float rating);

  /// Mean rating across all records (the mu fallback of rating baselines).
  /// Returns 3.0 for an empty dataset.
  float GlobalMeanRating() const;

  /// Average number of reviews per user (the paper's M in §4.1).
  double MeanReviewsPerUser() const;

 private:
  std::string name_;
  std::vector<Review> reviews_;
  std::shared_ptr<const OmdsFile> omds_;
  bool indices_built_ = false;

  CsrIndex<int> user_index_;              // user -> record indices
  CsrIndex<int> item_index_;              // item -> record indices
  CsrIndex<long long> item_rating_index_;  // (item, rating) -> users
};

/// A (source, target) domain pair plus the overlap bookkeeping of §2:
/// U^o = U^s ∩ U^t.
class CrossDomainDataset {
 public:
  CrossDomainDataset() = default;
  CrossDomainDataset(DomainDataset source, DomainDataset target);

  const DomainDataset& source() const { return source_; }
  const DomainDataset& target() const { return target_; }
  DomainDataset& mutable_source() { return source_; }
  DomainDataset& mutable_target() { return target_; }

  /// Recomputes the overlap after datasets change.
  void RecomputeOverlap();

  /// Users with records in both domains, sorted.
  const std::vector<int>& overlapping_users() const {
    return overlapping_users_;
  }

  /// "<source> -> <target>", e.g. "Books -> Movies".
  std::string ScenarioName() const;

 private:
  DomainDataset source_;
  DomainDataset target_;
  std::vector<int> overlapping_users_;
};

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_DATASET_H_
