#include "data/omds.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"
#include "common/string_util.h"
#include "common/threadpool.h"

namespace omnimatch {
namespace data {

namespace {

constexpr char kMagic[8] = {'O', 'M', 'D', 'S', 'v', '0', '1', '\n'};
constexpr uint32_t kVersion = 1;
constexpr uint64_t kTextOffset = 64;

struct OmdsHeader {
  char magic[8] = {};
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t num_records = 0;
  uint64_t text_offset = 0;
  uint64_t text_bytes = 0;
  uint64_t meta_offset = 0;
  uint32_t meta_crc32 = 0;
  uint32_t header_crc32 = 0;  // CRC of the 52 bytes preceding this field
  uint32_t text_crc32 = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(OmdsHeader) == 64, "OMDS header layout is fixed");
static_assert(offsetof(OmdsHeader, header_crc32) == 52,
              "header CRC covers bytes [0, 52)");

uint64_t AlignUp8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument(path + ": " + what);
}

}  // namespace

Result<std::shared_ptr<const OmdsFile>> OmdsFile::Open(
    const std::string& path) {
  Result<MemoryMappedFile> mapped = MemoryMappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();

  auto file = std::shared_ptr<OmdsFile>(new OmdsFile());
  file->path_ = path;
  file->map_ = std::move(mapped).value();
  const char* base = file->map_.data();
  const uint64_t size = file->map_.size();

  if (size < sizeof(OmdsHeader)) {
    return Corrupt(path, "not an OMDS file (shorter than the header)");
  }
  OmdsHeader header;
  std::memcpy(&header, base, sizeof header);
  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0) {
    return Corrupt(path, "bad magic (not an OMDS file)");
  }
  if (header.version != kVersion) {
    return Corrupt(path, StrFormat("unsupported OMDS version %u",
                                   header.version));
  }
  if (Crc32(base, offsetof(OmdsHeader, header_crc32)) != header.header_crc32) {
    return Corrupt(path, "header CRC mismatch");
  }
  if (header.text_offset != kTextOffset) {
    return Corrupt(path, "unexpected text offset");
  }
  if (header.text_bytes > size - kTextOffset) {
    return Corrupt(path, "truncated file (text section out of bounds)");
  }
  if (header.meta_offset % 8 != 0 || header.meta_offset > size ||
      header.meta_offset < kTextOffset + header.text_bytes) {
    return Corrupt(path, "misaligned or overlapping meta table");
  }
  if (header.num_records > (uint64_t{1} << 40)) {
    return Corrupt(path, "implausible record count");
  }
  const uint64_t meta_bytes = header.num_records * sizeof(OmdsRecordMeta);
  if (meta_bytes > size - header.meta_offset) {
    return Corrupt(path, "truncated file (meta table out of bounds)");
  }
  if (Crc32(base + header.meta_offset, meta_bytes) != header.meta_crc32) {
    return Corrupt(path, "meta table CRC mismatch");
  }
  if (Crc32(base + kTextOffset, header.text_bytes) != header.text_crc32) {
    return Corrupt(path, "text section CRC mismatch");
  }

  file->text_ = base + kTextOffset;
  file->meta_ = base + header.meta_offset;
  file->num_records_ = static_cast<size_t>(header.num_records);

  // Record-level validation, parallel over fixed chunks: every text span in
  // bounds, ids and ratings in the ranges AddReview would enforce. A mapped
  // dataset must never be weaker than an AddReview-built one.
  std::atomic<bool> ok{true};
  const int64_t n = static_cast<int64_t>(file->num_records_);
  ParallelFor(0, n, 4096, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      OmdsRecordMeta m = file->meta(static_cast<size_t>(i));
      uint64_t span = uint64_t{m.summary_len} + uint64_t{m.full_len};
      if (m.text_off > header.text_bytes ||
          span > header.text_bytes - m.text_off || m.user_id < 0 ||
          m.item_id < 0 || !(m.rating >= 1.0f && m.rating <= 5.0f)) {
        ok.store(false, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (!ok.load()) {
    return Corrupt(path, "invalid record (bad text span, id or rating)");
  }
  return std::shared_ptr<const OmdsFile>(std::move(file));
}

OmdsRecordMeta OmdsFile::meta(size_t i) const {
  OmdsRecordMeta m;
  std::memcpy(&m, meta_ + i * sizeof(OmdsRecordMeta), sizeof m);
  return m;
}

std::string_view OmdsFile::summary(size_t i) const {
  OmdsRecordMeta m = meta(i);
  return std::string_view(text_ + m.text_off, m.summary_len);
}

std::string_view OmdsFile::full_text(size_t i) const {
  OmdsRecordMeta m = meta(i);
  return std::string_view(text_ + m.text_off + m.summary_len, m.full_len);
}

OmdsWriter::~OmdsWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

Status OmdsWriter::Open(const std::string& path) {
  OM_CHECK(file_ == nullptr) << "OmdsWriter::Open called twice";
  path_ = path;
  tmp_path_ = UniqueTmpPath(path);
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError(tmp_path_ + ": " + std::strerror(errno));
  }
  // Placeholder header; Finalize() seeks back and fills it in.
  char zeros[sizeof(OmdsHeader)] = {};
  if (std::fwrite(zeros, 1, sizeof zeros, file_) != sizeof zeros) {
    return Status::IoError("write failed for " + tmp_path_);
  }
  return Status::OK();
}

Status OmdsWriter::Add(int user_id, int item_id, float rating,
                       std::string_view summary, std::string_view full_text) {
  OM_CHECK(file_ != nullptr) << "OmdsWriter not open";
  if (user_id < 0 || item_id < 0 || !(rating >= 1.0f && rating <= 5.0f)) {
    return Status::InvalidArgument(
        StrFormat("record %zu: invalid ids or rating", meta_.size()));
  }
  OmdsRecordMeta m;
  m.user_id = user_id;
  m.item_id = item_id;
  m.rating = rating;
  m.summary_len = static_cast<uint32_t>(summary.size());
  m.full_len = static_cast<uint32_t>(full_text.size());
  m.text_off = text_bytes_;
  bool ok = (summary.empty() ||
             std::fwrite(summary.data(), 1, summary.size(), file_) ==
                 summary.size()) &&
            (full_text.empty() ||
             std::fwrite(full_text.data(), 1, full_text.size(), file_) ==
                 full_text.size());
  if (!ok) return Status::IoError("write failed for " + tmp_path_);
  text_crc_ = Crc32(summary, text_crc_);
  text_crc_ = Crc32(full_text, text_crc_);
  text_bytes_ += summary.size() + full_text.size();
  meta_.push_back(m);
  return Status::OK();
}

Status OmdsWriter::Finalize() {
  OM_CHECK(file_ != nullptr) << "OmdsWriter not open";
  // Pad the text section so the meta table lands 8-byte aligned.
  const uint64_t meta_offset = kTextOffset + AlignUp8(text_bytes_);
  const uint64_t pad = meta_offset - kTextOffset - text_bytes_;
  const char zeros[8] = {};
  bool ok = pad == 0 || std::fwrite(zeros, 1, pad, file_) == pad;
  const size_t meta_bytes = meta_.size() * sizeof(OmdsRecordMeta);
  ok = ok && (meta_bytes == 0 ||
              std::fwrite(meta_.data(), 1, meta_bytes, file_) == meta_bytes);

  OmdsHeader header;
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kVersion;
  header.num_records = meta_.size();
  header.text_offset = kTextOffset;
  header.text_bytes = text_bytes_;
  header.meta_offset = meta_offset;
  header.meta_crc32 = Crc32(meta_.data(), meta_bytes);
  header.text_crc32 = text_crc_;
  header.header_crc32 =
      Crc32(&header, offsetof(OmdsHeader, header_crc32));
  ok = ok && std::fseek(file_, 0, SEEK_SET) == 0 &&
       std::fwrite(&header, 1, sizeof header, file_) == sizeof header;
  ok = ok && std::fflush(file_) == 0;
  // fsync before rename, like WriteFileAtomic: the name must never point at
  // data the disk has not seen.
  ok = ok && ::fsync(fileno(file_)) == 0;
  if (std::fclose(file_) != 0) ok = false;
  file_ = nullptr;
  if (!ok) {
    std::remove(tmp_path_.c_str());
    return Status::IoError("write failed for " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::IoError(StrFormat("rename %s -> %s: %s", tmp_path_.c_str(),
                                     path_.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

Status WriteDomainOmds(const DomainDataset& dataset, const std::string& path) {
  OmdsWriter writer;
  OM_RETURN_IF_ERROR(writer.Open(path));
  for (size_t i = 0; i < dataset.num_reviews(); ++i) {
    OM_RETURN_IF_ERROR(writer.Add(dataset.ReviewUser(i), dataset.ReviewItem(i),
                                  dataset.ReviewRating(i),
                                  dataset.ReviewSummary(i),
                                  dataset.ReviewFullText(i)));
  }
  return writer.Finalize();
}

Result<DomainDataset> LoadDomainOmds(const std::string& path,
                                     const std::string& name) {
  Result<std::shared_ptr<const OmdsFile>> file = OmdsFile::Open(path);
  if (!file.ok()) return file.status();
  DomainDataset dataset(name, std::move(file).value());
  dataset.BuildIndices();
  return dataset;
}

}  // namespace data
}  // namespace omnimatch
