#ifndef OMNIMATCH_DATA_OMDS_H_
#define OMNIMATCH_DATA_OMDS_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "data/dataset.h"

namespace omnimatch {
namespace data {

/// OMDS ("OmniMatch Dataset") v1: the binary, memory-mappable domain-file
/// format behind the out-of-core data path (DESIGN.md "Out-of-core data
/// path"). Layout, all little-endian:
///
///   [ 0,  64)  OmdsHeader (below)
///   [64,  64 + text_bytes)           text blob: per record, the summary
///                                    bytes immediately followed by the
///                                    full_text bytes — no separators
///   [meta_offset, + 32*num_records)  OmdsRecordMeta table
///
/// meta_offset is the text section's end rounded up to 8 bytes, so every
/// OmdsRecordMeta (whose widest member is the 8-byte text_off) is 8-byte
/// aligned both in the file and — because mmap bases are page-aligned — in
/// memory. Integrity: CRC-32 over the meta table and over the text blob,
/// plus a header CRC; Open() verifies all three and bounds-checks every
/// record, so a truncated or bit-flipped file is rejected instead of served.

/// Fixed 32-byte per-record entry. text_off is relative to the text
/// section's start (file offset 64), so records are position-independent.
struct OmdsRecordMeta {
  int32_t user_id = 0;
  int32_t item_id = 0;
  float rating = 0.0f;
  uint32_t summary_len = 0;
  uint64_t text_off = 0;
  uint32_t full_len = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(OmdsRecordMeta) == 32, "OMDS meta layout is fixed");

/// An opened, validated, memory-mapped OMDS file. Read-only and immutable
/// after Open(); shared via shared_ptr so DomainDataset copies (and
/// string_views into the text blob) keep the mapping alive.
class OmdsFile {
 public:
  static Result<std::shared_ptr<const OmdsFile>> Open(const std::string& path);

  size_t num_records() const { return num_records_; }
  OmdsRecordMeta meta(size_t i) const;
  std::string_view summary(size_t i) const;
  std::string_view full_text(size_t i) const;
  const std::string& path() const { return path_; }
  size_t file_bytes() const { return map_.size(); }

 private:
  OmdsFile() = default;

  std::string path_;
  MemoryMappedFile map_;
  const char* text_ = nullptr;  // text section base
  const char* meta_ = nullptr;  // meta table base (8-byte aligned)
  size_t num_records_ = 0;
};

/// Streaming OMDS writer: records are appended one at a time (text goes
/// straight to disk; only the 32-byte metas accumulate in RAM), so a
/// million-user world can be converted without materializing it. Writes to
/// `<path>.tmp` and renames into place on Finalize() — crash-safe like
/// WriteFileAtomic. Abandoning a writer (destruction without Finalize)
/// removes the tmp file.
class OmdsWriter {
 public:
  OmdsWriter() = default;
  ~OmdsWriter();
  OmdsWriter(const OmdsWriter&) = delete;
  OmdsWriter& operator=(const OmdsWriter&) = delete;

  Status Open(const std::string& path);
  /// Validates like DomainDataset::AddReview (ids >= 0, rating in [1, 5]).
  Status Add(int user_id, int item_id, float rating, std::string_view summary,
             std::string_view full_text);
  Status Finalize();

  size_t num_records() const { return meta_.size(); }

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  std::vector<OmdsRecordMeta> meta_;
  uint64_t text_bytes_ = 0;
  uint32_t text_crc_ = 0;
};

/// Writes `dataset` (either backend) as an OMDS file at `path`.
Status WriteDomainOmds(const DomainDataset& dataset, const std::string& path);

/// Opens `path` as a memory-mapped DomainDataset named `name` and builds
/// its indices — the drop-in out-of-core counterpart of LoadDomainTsv.
Result<DomainDataset> LoadDomainOmds(const std::string& path,
                                     const std::string& name);

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_OMDS_H_
