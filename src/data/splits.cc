#include "data/splits.h"

#include <algorithm>

#include "common/check.h"

namespace omnimatch {
namespace data {

ColdStartSplit MakeColdStartSplit(const CrossDomainDataset& cross, Rng* rng,
                                  double train_fraction) {
  OM_CHECK(rng != nullptr);
  OM_CHECK(train_fraction > 0.0 && train_fraction < 1.0)
      << "train_fraction " << train_fraction;
  std::vector<int> users = cross.overlapping_users();
  OM_CHECK_GE(users.size(), 4u) << "too few overlapping users to split";
  rng->Shuffle(users);

  size_t n_train = static_cast<size_t>(users.size() * train_fraction);
  n_train = std::min(std::max<size_t>(n_train, 1), users.size() - 2);

  ColdStartSplit split;
  split.train_users.assign(users.begin(), users.begin() + n_train);
  size_t n_cold = users.size() - n_train;
  size_t n_valid = n_cold / 2;
  split.validation_users.assign(users.begin() + n_train,
                                users.begin() + n_train + n_valid);
  split.test_users.assign(users.begin() + n_train + n_valid, users.end());

  std::sort(split.train_users.begin(), split.train_users.end());
  std::sort(split.validation_users.begin(), split.validation_users.end());
  std::sort(split.test_users.begin(), split.test_users.end());
  return split;
}

ColdStartSplit SubsampleTrainUsers(const ColdStartSplit& split,
                                   double fraction, Rng* rng) {
  OM_CHECK(rng != nullptr);
  OM_CHECK(fraction > 0.0 && fraction <= 1.0) << "fraction " << fraction;
  ColdStartSplit out = split;
  if (fraction >= 1.0) return out;
  std::vector<int> users = split.train_users;
  rng->Shuffle(users);
  size_t keep = std::max<size_t>(
      1, static_cast<size_t>(users.size() * fraction));
  users.resize(keep);
  std::sort(users.begin(), users.end());
  out.train_users = std::move(users);
  return out;
}

std::vector<int> TargetRecordsOfUsers(const CrossDomainDataset& cross,
                                      const std::vector<int>& users) {
  std::vector<int> records;
  for (int u : users) {
    IdSpan recs = cross.target().RecordsOfUser(u);
    records.insert(records.end(), recs.begin(), recs.end());
  }
  return records;
}

}  // namespace data
}  // namespace omnimatch
