#ifndef OMNIMATCH_DATA_SPLITS_H_
#define OMNIMATCH_DATA_SPLITS_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace omnimatch {
namespace data {

/// The §5.2 evaluation split over overlapping users:
/// 80% training users (their data in both domains is visible), 20% treated
/// as cold-start — their *target-domain* records are hidden from training
/// and used only for validation (half) and test (half).
struct ColdStartSplit {
  std::vector<int> train_users;
  std::vector<int> validation_users;
  std::vector<int> test_users;
};

/// Randomly partitions `cross.overlapping_users()` into the §5.2 split.
/// `train_fraction` defaults to the paper's 0.8.
ColdStartSplit MakeColdStartSplit(const CrossDomainDataset& cross, Rng* rng,
                                  double train_fraction = 0.8);

/// Keeps only `fraction` of the training users (the Table 4 "proportion of
/// overlapping users" sweep); validation/test users are untouched.
ColdStartSplit SubsampleTrainUsers(const ColdStartSplit& split,
                                   double fraction, Rng* rng);

/// Target-domain record indices of the given users (the cold-start test
/// set O_test of Eq. 22-23 when called with split.test_users).
std::vector<int> TargetRecordsOfUsers(const CrossDomainDataset& cross,
                                      const std::vector<int>& users);

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_SPLITS_H_
