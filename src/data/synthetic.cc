#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace omnimatch {
namespace data {

namespace {

/// Item ids are namespaced per domain so scenario pairs never collide.
int GlobalItemId(int domain_idx, int local_idx) {
  return domain_idx * 100000 + local_idx;
}

float Dot(const std::vector<float>& a, const std::vector<float>& b) {
  OM_CHECK_EQ(a.size(), b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

std::vector<float> RandomUnitVector(int dim, Rng* rng) {
  std::vector<float> v(dim);
  double sq = 0.0;
  for (float& x : v) {
    x = static_cast<float>(rng->Normal());
    sq += static_cast<double>(x) * x;
  }
  float inv = static_cast<float>(1.0 / (std::sqrt(sq) + 1e-9));
  for (float& x : v) x *= inv;
  return v;
}

// Human-readable stems so the §5.10 case study output reads like the paper's.
constexpr const char* kTopicStems[] = {
    "vampire", "romance", "action",  "space", "magic",  "crime",
    "history", "comedy",  "melody",  "sport", "nature", "gadget"};
constexpr const char* kSentimentStems[] = {"awful", "weak", "decent", "good",
                                           "superb"};

}  // namespace

SyntheticConfig SyntheticConfig::AmazonLike() {
  SyntheticConfig c;
  c.num_users = 550;
  c.items_per_domain = 520;
  c.mean_reviews_per_user = 8.0;
  c.rating_noise = 0.60;
  c.user_bias_std = 0.45;
  c.seed = 41001;
  return c;
}

SyntheticConfig SyntheticConfig::DoubanLike() {
  SyntheticConfig c;
  c.num_users = 420;
  c.items_per_domain = 240;
  c.mean_reviews_per_user = 4.5;
  c.min_reviews_per_user = 2;
  c.rating_noise = 0.62;
  c.user_bias_std = 0.40;
  c.item_bias_std = 0.30;
  c.affinity_scale = 1.15;   // preferences matter more, ratings alone mislead
  c.domain_specific_std = 0.30;  // shared tastes transfer well via text
  c.participation = 0.80;
  c.seed = 52002;
  return c;
}

SyntheticWorld::SyntheticWorld(const SyntheticConfig& config,
                               std::vector<std::string> domain_names,
                               bool materialize)
    : config_(config),
      domain_names_(std::move(domain_names)),
      materialized_(materialize) {
  OM_CHECK_GE(domain_names_.size(), 2u);
  OM_CHECK_GT(config_.num_users, 0);
  OM_CHECK_GT(config_.items_per_domain, 0);
  OM_CHECK_LE(config_.num_topics,
              static_cast<int>(std::size(kTopicStems)));

  Rng master(config_.seed);
  GenerateVocabularyWords();

  // Topic directions in latent space.
  Rng topic_rng = master.Fork();
  topic_dirs_.clear();
  for (int t = 0; t < config_.num_topics; ++t) {
    topic_dirs_.push_back(RandomUnitVector(config_.latent_dim, &topic_rng));
  }

  // Users: shared preferences, biases, per-domain offsets & participation.
  Rng user_rng = master.Fork();
  user_pref_.resize(config_.num_users);
  user_bias_.resize(config_.num_users);
  for (int u = 0; u < config_.num_users; ++u) {
    user_pref_[u].resize(config_.latent_dim);
    for (float& v : user_pref_[u]) {
      v = static_cast<float>(user_rng.Normal());
    }
    user_bias_[u] =
        static_cast<float>(user_rng.Normal(0.0, config_.user_bias_std));
  }
  int num_domains = static_cast<int>(domain_names_.size());
  user_offset_.resize(num_domains);
  participates_.resize(num_domains);
  for (int d = 0; d < num_domains; ++d) {
    user_offset_[d].resize(config_.num_users);
    participates_[d].resize(config_.num_users);
    for (int u = 0; u < config_.num_users; ++u) {
      user_offset_[d][u].resize(config_.latent_dim);
      for (float& v : user_offset_[d][u]) {
        v = static_cast<float>(
            user_rng.Normal(0.0, config_.domain_specific_std));
      }
      participates_[d][u] = user_rng.Bernoulli(config_.participation);
    }
  }

  // Items and reviews per domain. The item latents are always drawn (they
  // are the first draws of each domain's forked stream); the RNG state is
  // then snapshotted so review emission can be replayed later, and the
  // reviews themselves are only materialized when asked to.
  domains_.clear();
  item_attr_.resize(num_domains);
  item_bias_.resize(num_domains);
  for (int d = 0; d < num_domains; ++d) {
    Rng domain_rng = master.Fork();
    GenerateItemLatents(d, &domain_rng);
    review_rngs_.push_back(domain_rng);
    if (materialized_) {
      DomainDataset dataset(domain_names_[static_cast<size_t>(d)]);
      EmitReviews(d, &domain_rng,
                  [&](Review&& r) { dataset.AddReview(std::move(r)); });
      dataset.BuildIndices();
      domains_.push_back(std::move(dataset));
    }
  }
}

void SyntheticWorld::GenerateVocabularyWords() {
  // Per-domain surface forms for shared topic concepts, e.g. the "vampire"
  // taste shows up as vampireb* tokens in Books and vampirem* in Movies.
  topic_words_.assign(domain_names_.size(), {});
  for (size_t d = 0; d < domain_names_.size(); ++d) {
    std::string domain_tag = ToLower(domain_names_[d]).substr(0, 1);
    topic_words_[d].assign(config_.num_topics, {});
    for (int t = 0; t < config_.num_topics; ++t) {
      for (int w = 0; w < config_.words_per_topic; ++w) {
        topic_words_[d][t].push_back(StrFormat(
            "%s%s%d", kTopicStems[t], domain_tag.c_str(), w));
      }
    }
  }
  sentiment_words_.assign(5, {});
  for (int level = 0; level < 5; ++level) {
    for (int w = 0; w < config_.sentiment_words_per_level; ++w) {
      sentiment_words_[level].push_back(
          StrFormat("%s%d", kSentimentStems[level], w));
    }
  }
  domain_words_.assign(domain_names_.size(), {});
  for (size_t d = 0; d < domain_names_.size(); ++d) {
    std::string stem = ToLower(domain_names_[d]);
    for (int w = 0; w < config_.domain_marker_words; ++w) {
      domain_words_[d].push_back(StrFormat("%s%d", stem.c_str(), w));
    }
  }
  noise_words_.clear();
  for (int w = 0; w < config_.noise_words; ++w) {
    noise_words_.push_back(StrFormat("filler%d", w));
  }
}

void SyntheticWorld::GenerateItemLatents(int d, Rng* rng) {
  item_attr_[d].resize(config_.items_per_domain);
  item_bias_[d].resize(config_.items_per_domain);
  for (int i = 0; i < config_.items_per_domain; ++i) {
    item_attr_[d][i].resize(config_.latent_dim);
    for (float& v : item_attr_[d][i]) {
      v = static_cast<float>(rng->Normal());
    }
    item_bias_[d][i] =
        static_cast<float>(rng->Normal(0.0, config_.item_bias_std));
  }
}

void SyntheticWorld::EmitReviews(
    int d, Rng* rng, const std::function<void(Review&&)>& emit) const {
  float inv_sqrt_k = 1.0f / std::sqrt(static_cast<float>(config_.latent_dim));
  for (int u = 0; u < config_.num_users; ++u) {
    if (!participates_[d][u]) continue;
    int n_reviews = std::max<int>(
        config_.min_reviews_per_user,
        static_cast<int>(std::lround(rng->Normal(
            config_.mean_reviews_per_user,
            config_.mean_reviews_per_user / 3.0))));
    n_reviews = std::min(n_reviews, config_.items_per_domain);

    // Effective preference in this domain: shared + offset (assumption 1).
    std::vector<float> pref = user_pref_[u];
    for (int k = 0; k < config_.latent_dim; ++k) {
      pref[k] += user_offset_[d][u][k];
    }

    // Preference-driven item selection without replacement: users gravitate
    // toward items matching their tastes, so their review history itself
    // carries the preference signal.
    std::vector<int> pool;
    {
      std::vector<double> weights(
          static_cast<size_t>(config_.items_per_domain));
      for (int i = 0; i < config_.items_per_domain; ++i) {
        double affinity = Dot(pref, item_attr_[d][i]) * inv_sqrt_k;
        weights[static_cast<size_t>(i)] =
            std::exp(config_.selection_gain * affinity);
      }
      for (int j = 0; j < n_reviews; ++j) {
        int pick = rng->SampleDiscrete(weights);
        pool.push_back(pick);
        weights[static_cast<size_t>(pick)] = 0.0;
      }
    }

    for (int j = 0; j < n_reviews; ++j) {
      int item = pool[j];
      float affinity = Dot(pref, item_attr_[d][item]) * inv_sqrt_k;
      double raw = config_.rating_intercept + user_bias_[u] +
                   item_bias_[d][item] +
                   config_.affinity_scale * affinity +
                   rng->Normal(0.0, config_.rating_noise);
      int rating = static_cast<int>(std::lround(raw));
      rating = std::clamp(rating, 1, 5);

      Review review;
      review.user_id = u;
      review.item_id = GlobalItemId(d, item);
      review.rating = static_cast<float>(rating);
      int len = rng->UniformInt(config_.summary_len_min,
                                config_.summary_len_max);
      review.summary = SampleSummary(u, d, item_attr_[d][item], rating, len,
                                     /*noise_boost=*/1.0, rng);
      review.full_text = SampleSummary(
          u, d, item_attr_[d][item], rating, len * config_.full_text_multiplier,
          config_.full_text_noise_boost, rng);
      emit(std::move(review));
    }
  }
}

void SyntheticWorld::StreamDomain(
    const std::string& name,
    const std::function<void(Review&&)>& emit) const {
  int d = DomainIndex(name);
  // A copy of the post-latent snapshot, so replays are repeatable and const.
  Rng rng = review_rngs_[static_cast<size_t>(d)];
  EmitReviews(d, &rng, emit);
}

std::string SyntheticWorld::SampleSummary(int user_id, int domain_idx,
                                          const std::vector<float>& item_attr,
                                          int rating, int length,
                                          double noise_boost,
                                          Rng* rng) const {
  // Topic mixture driven by the *shared* user preference plus the item's
  // attributes — this is what makes review text domain-invariant evidence.
  std::vector<double> topic_weights(topic_dirs_.size());
  for (size_t t = 0; t < topic_dirs_.size(); ++t) {
    double score =
        config_.topic_user_gain * Dot(user_pref_[user_id], topic_dirs_[t]) +
        config_.topic_item_gain * Dot(item_attr, topic_dirs_[t]);
    topic_weights[t] = std::exp(score);
  }

  double noise_frac = 1.0 - config_.topic_word_frac -
                      config_.sentiment_word_frac - config_.domain_word_frac;
  noise_frac *= noise_boost;
  double total = config_.topic_word_frac + config_.sentiment_word_frac +
                 config_.domain_word_frac + noise_frac;

  std::vector<std::string> words;
  words.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    double u = rng->UniformDouble() * total;
    if (u < config_.topic_word_frac) {
      int t = rng->SampleDiscrete(topic_weights);
      const auto& list =
          topic_words_[static_cast<size_t>(domain_idx)][static_cast<size_t>(
              t)];
      words.push_back(list[rng->UniformU32(
          static_cast<uint32_t>(list.size()))]);
    } else if (u < config_.topic_word_frac + config_.sentiment_word_frac) {
      const auto& list = sentiment_words_[static_cast<size_t>(rating - 1)];
      words.push_back(list[rng->UniformU32(
          static_cast<uint32_t>(list.size()))]);
    } else if (u < config_.topic_word_frac + config_.sentiment_word_frac +
                       config_.domain_word_frac) {
      const auto& list = domain_words_[static_cast<size_t>(domain_idx)];
      words.push_back(list[rng->UniformU32(
          static_cast<uint32_t>(list.size()))]);
    } else {
      words.push_back(noise_words_[rng->UniformU32(
          static_cast<uint32_t>(noise_words_.size()))]);
    }
  }
  return Join(words, " ");
}

int SyntheticWorld::DomainIndex(const std::string& name) const {
  for (size_t d = 0; d < domain_names_.size(); ++d) {
    if (domain_names_[d] == name) return static_cast<int>(d);
  }
  OM_CHECK(false) << "unknown domain " << name;
  return -1;
}

const DomainDataset& SyntheticWorld::domain(const std::string& name) const {
  OM_CHECK(materialized_)
      << "deferred world: use StreamDomain() to replay reviews";
  return domains_[static_cast<size_t>(DomainIndex(name))];
}

const std::vector<float>& SyntheticWorld::UserPreference(int user_id) const {
  OM_CHECK(user_id >= 0 && user_id < config_.num_users);
  return user_pref_[static_cast<size_t>(user_id)];
}

CrossDomainDataset SyntheticWorld::MakePair(const std::string& source,
                                            const std::string& target) const {
  OM_CHECK(source != target) << "source and target must differ";
  return CrossDomainDataset(domain(source), domain(target));
}

}  // namespace data
}  // namespace omnimatch
