#ifndef OMNIMATCH_DATA_SYNTHETIC_H_
#define OMNIMATCH_DATA_SYNTHETIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace omnimatch {
namespace data {

/// Parameters of the synthetic review-corpus generator.
///
/// This generator is the repository's substitute for the Amazon Review and
/// Douban dumps (see DESIGN.md §2): it instantiates exactly the mechanism
/// the paper relies on —
///   * each user has a latent preference vector *shared across domains*
///     (assumption 1, Fig. 1) plus a small domain-specific offset;
///   * ratings are biases + latent affinity + noise, so users who give the
///     same item the same rating have correlated latents (assumption 2);
///   * review summaries are short token sequences whose topic words are
///     sampled according to the same latents, so text carries
///     domain-invariant preference signal, plus rating-keyed sentiment
///     words, domain-marker words (what the domain classifier can detect),
///     and noise.
struct SyntheticConfig {
  int num_users = 550;
  int items_per_domain = 320;
  /// Probability a user is active in any given domain (controls overlap).
  double participation = 0.85;
  int latent_dim = 6;
  /// Mean reviews per active user per domain (>= min_reviews_per_user).
  double mean_reviews_per_user = 8.0;
  int min_reviews_per_user = 3;
  /// Stddev of the Gaussian rating noise before rounding.
  double rating_noise = 0.68;
  double user_bias_std = 0.35;
  double item_bias_std = 0.35;
  /// Scale of the per-domain offset q_{u,d} added to the shared p_u.
  double domain_specific_std = 0.45;
  /// Scale of the latent affinity term in the rating model.
  double affinity_scale = 0.9;
  double rating_intercept = 3.4;
  /// Users pick items with probability ∝ exp(selection_gain · affinity):
  /// the real-world selection effect that makes a user's review history
  /// reflect their preferences. 0 recovers uniform item choice.
  double selection_gain = 0.9;

  // --- review text ---
  int summary_len_min = 7;
  int summary_len_max = 12;
  /// Full reviews are this many times longer than summaries, with extra
  /// noise (the paper found summaries to work better, §5.7).
  int full_text_multiplier = 4;
  double full_text_noise_boost = 2.2;
  int num_topics = 10;
  int words_per_topic = 12;
  int sentiment_words_per_level = 12;
  int domain_marker_words = 18;
  int noise_words = 60;
  /// Word-category mixture for summaries; must sum to <= 1, remainder noise.
  double topic_word_frac = 0.47;
  double sentiment_word_frac = 0.28;
  double domain_word_frac = 0.12;
  /// Sharpness of user-latent -> topic selection.
  double topic_user_gain = 1.1;
  double topic_item_gain = 2.0;

  uint64_t seed = 2025;

  /// Denser, lower-noise preset mirroring the Amazon Review dataset's
  /// relative difficulty.
  static SyntheticConfig AmazonLike();

  /// Sparser, noisier preset mirroring Douban (fewer reviews per user,
  /// heavier user bias), where rating-only methods degrade much harder.
  static SyntheticConfig DoubanLike();
};

/// A generated multi-domain world (default domains: Books, Movies, Music)
/// with consistent users across domains.
///
/// Two modes share identical record streams:
///   * materialized (default) — every domain is generated into an in-memory
///     DomainDataset up front; domain()/MakePair() serve from RAM.
///   * deferred (materialize = false) — only the latents are generated; the
///     per-domain review stream is replayed on demand via StreamDomain(),
///     record for record identical to what the materialized mode stores.
///     This is how million-user worlds are written straight to OMDS files
///     without ever holding a domain's reviews in memory.
/// The equivalence holds because the constructor always advances each
/// domain's forked RNG through the item-latent draws and snapshots the
/// state; StreamDomain replays emission from a copy of that snapshot.
class SyntheticWorld {
 public:
  SyntheticWorld(const SyntheticConfig& config,
                 std::vector<std::string> domain_names = {"Books", "Movies",
                                                          "Music"},
                 bool materialize = true);

  /// Builds the cross-domain dataset for one scenario, e.g.
  /// MakePair("Books", "Movies"). Both names must be known domains.
  /// Materialized worlds only.
  CrossDomainDataset MakePair(const std::string& source,
                              const std::string& target) const;

  const std::vector<std::string>& domain_names() const {
    return domain_names_;
  }

  /// The generated dataset of one domain (for inspection and tests).
  /// Materialized worlds only.
  const DomainDataset& domain(const std::string& name) const;

  /// Replays the review stream of one domain through `emit`, in the exact
  /// order (and with the exact contents) the materialized dataset would
  /// hold. Works in both modes; const — each call replays from the stored
  /// post-latent RNG snapshot.
  void StreamDomain(const std::string& name,
                    const std::function<void(Review&&)>& emit) const;

  /// Ground-truth shared preference vector of a user (tests only).
  const std::vector<float>& UserPreference(int user_id) const;

  const SyntheticConfig& config() const { return config_; }

 private:
  int DomainIndex(const std::string& name) const;
  void GenerateVocabularyWords();
  /// Draws item_attr_[d] / item_bias_[d] from `rng` — the first draws of a
  /// domain's forked stream, in both modes.
  void GenerateItemLatents(int domain_idx, Rng* rng);
  /// The review-emission phase: consumes `rng` from the post-latent state.
  void EmitReviews(int domain_idx, Rng* rng,
                   const std::function<void(Review&&)>& emit) const;
  std::string SampleSummary(int user_id, int domain_idx,
                            const std::vector<float>& item_attr, int rating,
                            int length, double noise_boost, Rng* rng) const;

  SyntheticConfig config_;
  std::vector<std::string> domain_names_;
  bool materialized_ = true;
  std::vector<DomainDataset> domains_;
  /// Per-domain RNG state right after the item-latent draws; EmitReviews on
  /// a copy of review_rngs_[d] reproduces the domain's review stream.
  std::vector<Rng> review_rngs_;

  // Ground truth latents.
  std::vector<std::vector<float>> user_pref_;          // [U][k] shared
  std::vector<float> user_bias_;                       // [U]
  std::vector<std::vector<std::vector<float>>> user_offset_;  // [D][U][k]
  std::vector<std::vector<bool>> participates_;        // [D][U]
  std::vector<std::vector<std::vector<float>>> item_attr_;  // [D][I][k]
  std::vector<std::vector<float>> item_bias_;          // [D][I]

  // Word inventories.
  std::vector<std::vector<float>> topic_dirs_;          // [T][k]
  /// Per-domain surface vocabulary of the shared topic concepts: the same
  /// taste uses different words in different domains, forcing genuine
  /// cross-domain transfer.
  std::vector<std::vector<std::vector<std::string>>> topic_words_;  // [D][T][W]
  std::vector<std::vector<std::string>> sentiment_words_;  // [5][S]
  std::vector<std::vector<std::string>> domain_words_;  // [D][F]
  std::vector<std::string> noise_words_;
};

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_SYNTHETIC_H_
