#ifndef OMNIMATCH_DATA_TYPES_H_
#define OMNIMATCH_DATA_TYPES_H_

#include <string>

namespace omnimatch {
namespace data {

/// One purchase record: the paper's {u, i, txt, r} tuple (§2).
///
/// `summary` is the "review summary" field the paper trains on (§5.2);
/// `full_text` is the longer "reviewText" field used by the
/// OmniMatch-ReviewText ablation (Table 5).
struct Review {
  int user_id = -1;
  int item_id = -1;
  /// Integer star rating in [1, 5], stored as float for metric math.
  float rating = 0.0f;
  std::string summary;
  std::string full_text;
};

/// Identifies which side of a cross-domain pair a sample came from.
enum class DomainSide { kSource = 0, kTarget = 1 };

}  // namespace data
}  // namespace omnimatch

#endif  // OMNIMATCH_DATA_TYPES_H_
