#include "eval/metrics.h"

#include <cmath>

#include "common/check.h"

namespace omnimatch {
namespace eval {

Metrics ComputeMetrics(const std::vector<float>& predictions,
                       const std::vector<float>& gold) {
  OM_CHECK_EQ(predictions.size(), gold.size());
  OM_CHECK(!predictions.empty());
  MetricsAccumulator acc;
  for (size_t i = 0; i < predictions.size(); ++i) {
    acc.Add(predictions[i], gold[i]);
  }
  return acc.Finalize();
}

void MetricsAccumulator::Add(float prediction, float gold) {
  double d = static_cast<double>(prediction) - gold;
  sum_sq_ += d * d;
  sum_abs_ += std::abs(d);
  ++count_;
}

Metrics MetricsAccumulator::Finalize() const {
  OM_CHECK_GT(count_, 0) << "no samples accumulated";
  Metrics m;
  m.count = count_;
  m.rmse = std::sqrt(sum_sq_ / count_);
  m.mae = sum_abs_ / count_;
  return m;
}

}  // namespace eval
}  // namespace omnimatch
