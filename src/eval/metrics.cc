#include "eval/metrics.h"

#include <cmath>

#include "common/string_util.h"

namespace omnimatch {
namespace eval {

Result<Metrics> ComputeMetrics(const std::vector<float>& predictions,
                               const std::vector<float>& gold) {
  if (predictions.size() != gold.size()) {
    return Status::InvalidArgument(
        StrFormat("%zu predictions vs %zu gold ratings", predictions.size(),
                  gold.size()));
  }
  MetricsAccumulator acc;
  for (size_t i = 0; i < predictions.size(); ++i) {
    acc.Add(predictions[i], gold[i]);
  }
  return acc.Finalize();
}

void MetricsAccumulator::Add(float prediction, float gold) {
  double d = static_cast<double>(prediction) - gold;
  sum_sq_ += d * d;
  sum_abs_ += std::abs(d);
  ++count_;
}

Result<Metrics> MetricsAccumulator::Finalize() const {
  if (count_ == 0) {
    return Status::FailedPrecondition("no samples accumulated");
  }
  Metrics m;
  m.count = count_;
  m.rmse = std::sqrt(sum_sq_ / count_);
  m.mae = sum_abs_ / count_;
  return m;
}

}  // namespace eval
}  // namespace omnimatch
