#ifndef OMNIMATCH_EVAL_METRICS_H_
#define OMNIMATCH_EVAL_METRICS_H_

#include <vector>

#include "common/status.h"

namespace omnimatch {
namespace eval {

/// RMSE and MAE over a prediction set (Eq. 22-23).
struct Metrics {
  double rmse = 0.0;
  double mae = 0.0;
  int count = 0;
};

/// Computes RMSE/MAE between parallel prediction and gold vectors.
/// InvalidArgument when the vectors differ in length;
/// FailedPrecondition when they are empty (a metric over zero samples is
/// undefined — callers decide whether that is an error or an empty slice).
Result<Metrics> ComputeMetrics(const std::vector<float>& predictions,
                               const std::vector<float>& gold);

/// Streaming accumulator for the same metrics.
class MetricsAccumulator {
 public:
  void Add(float prediction, float gold);

  /// FailedPrecondition when nothing was accumulated: an evaluation over
  /// zero cold-start users must degrade gracefully, not abort the process.
  Result<Metrics> Finalize() const;

  int count() const { return count_; }

 private:
  double sum_sq_ = 0.0;
  double sum_abs_ = 0.0;
  int count_ = 0;
};

}  // namespace eval
}  // namespace omnimatch

#endif  // OMNIMATCH_EVAL_METRICS_H_
