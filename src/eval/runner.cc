#include "eval/runner.h"

#include <memory>

#include "baselines/cmf.h"
#include "baselines/emcdr.h"
#include "baselines/herograph.h"
#include "baselines/lightgcn.h"
#include "baselines/ngcf.h"
#include "baselines/ptupcdr.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace omnimatch {
namespace eval {

namespace {

/// Stable per-method seed offset: FNV-1a of the method NAME, so editing the
/// method list (reordering, inserting a baseline) never changes any other
/// method's seed. The old `trial_seed + 17 + m` re-seeded every method to
/// the right of an edit.
uint64_t MethodSeedOffset(const std::string& name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Seconds-scale buckets for the per-method runner histograms.
std::vector<double> SecondsBounds() {
  return {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};
}

std::unique_ptr<baselines::Recommender> MakeBaseline(
    const std::string& name, uint64_t seed) {
  if (name == "CMF") {
    baselines::MfConfig config;
    config.seed = seed;
    return std::make_unique<baselines::Cmf>(config);
  }
  if (name == "EMCDR") {
    baselines::Emcdr::Config config;
    config.mf.seed = seed;
    config.seed = seed + 1;
    return std::make_unique<baselines::Emcdr>(config);
  }
  if (name == "PTUPCDR") {
    baselines::Ptupcdr::Config config;
    config.mf.seed = seed;
    config.seed = seed + 1;
    return std::make_unique<baselines::Ptupcdr>(config);
  }
  baselines::GnnConfig gnn;
  gnn.seed = seed;
  if (name == "NGCF") return std::make_unique<baselines::Ngcf>(gnn);
  if (name == "LIGHTGCN") return std::make_unique<baselines::LightGcn>(gnn);
  if (name == "HeroGraph") {
    // The joint cross-domain graph benefits from a longer schedule and
    // stronger decay: cold users' propagated embeddings otherwise drift.
    gnn.epochs = 40;
    
    return std::make_unique<baselines::HeroGraph>(gnn);
  }
  return nullptr;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> PaperScenarios() {
  return {{"Books", "Movies"}, {"Movies", "Books"}, {"Books", "Music"},
          {"Music", "Books"},  {"Movies", "Music"}, {"Music", "Movies"}};
}

ScenarioResult RunScenario(const data::SyntheticWorld& world,
                           const std::string& source,
                           const std::string& target,
                           const RunnerOptions& options) {
  data::CrossDomainDataset cross = world.MakePair(source, target);
  ScenarioResult result;
  result.scenario = cross.ScenarioName();

  // Per-method training and evaluation time, accumulated over trials.
  std::vector<double> train_seconds(options.methods.size(), 0.0);
  std::vector<double> eval_seconds(options.methods.size(), 0.0);

  for (int trial = 0; trial < options.trials; ++trial) {
    uint64_t trial_seed = options.seed + static_cast<uint64_t>(trial) * 7919;
    Rng split_rng(trial_seed);
    data::ColdStartSplit split =
        data::MakeColdStartSplit(cross, &split_rng, options.train_fraction);
    if (options.train_user_fraction < 1.0) {
      split = data::SubsampleTrainUsers(split, options.train_user_fraction,
                                        &split_rng);
    }

    for (size_t m = 0; m < options.methods.size(); ++m) {
      const std::string& name = options.methods[m];
      // Training and evaluation are timed SEPARATELY: Table 6 reports
      // training time, and the old single stopwatch silently folded the
      // test-set evaluation into it.
      Stopwatch watch;
      double trained_s = 0.0;
      Metrics metrics;
      if (name == "OmniMatch") {
        core::OmniMatchConfig config = options.omnimatch;
        config.seed = trial_seed + 13;
        core::OmniMatchTrainer trainer(config, &cross, split);
        {
          OM_TRACE_SPAN("runner.train");
          Status status = trainer.Prepare();
          OM_CHECK(status.ok()) << status.ToString();
          trainer.Train();
        }
        trained_s = watch.ElapsedSeconds();
        watch.Reset();
        OM_TRACE_SPAN("runner.evaluate");
        metrics = trainer.Evaluate(split.test_users);
      } else {
        std::unique_ptr<baselines::Recommender> model =
            MakeBaseline(name, trial_seed + MethodSeedOffset(name));
        OM_CHECK(model != nullptr) << "unknown method " << name;
        {
          OM_TRACE_SPAN("runner.train");
          Status status = model->Fit(cross, split);
          OM_CHECK(status.ok()) << name << ": " << status.ToString();
        }
        trained_s = watch.ElapsedSeconds();
        watch.Reset();
        OM_TRACE_SPAN("runner.evaluate");
        metrics = baselines::EvaluateRecommender(*model, cross,
                                                 split.test_users);
      }
      double evaluated_s = watch.ElapsedSeconds();
      train_seconds[m] += trained_s;
      eval_seconds[m] += evaluated_s;
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      registry.GetHistogram("runner.train_seconds." + name, SecondsBounds())
          ->Observe(trained_s);
      registry.GetHistogram("runner.eval_seconds." + name, SecondsBounds())
          ->Observe(evaluated_s);
      registry.GetCounter("runner.method_runs")->Increment();
      MethodResult* slot = nullptr;
      for (auto& mr : result.methods) {
        if (mr.name == name) slot = &mr;
      }
      if (slot == nullptr) {
        result.methods.push_back({name, Metrics{}, 0.0});
        slot = &result.methods.back();
      }
      slot->test.rmse += metrics.rmse;
      slot->test.mae += metrics.mae;
      slot->test.count += metrics.count;
    }
  }

  for (size_t m = 0; m < result.methods.size(); ++m) {
    result.methods[m].test.rmse /= options.trials;
    result.methods[m].test.mae /= options.trials;
    result.methods[m].train_seconds =
        train_seconds[m] / static_cast<double>(options.trials);
    result.methods[m].eval_seconds =
        eval_seconds[m] / static_cast<double>(options.trials);
  }
  return result;
}

}  // namespace eval
}  // namespace omnimatch
