#ifndef OMNIMATCH_EVAL_RUNNER_H_
#define OMNIMATCH_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/recommender.h"
#include "core/config.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace omnimatch {
namespace eval {

/// One method's averaged cold-start test metrics for a scenario.
struct MethodResult {
  std::string name;
  Metrics test;
  /// Wall-clock spent TRAINING (Prepare + Train / Fit), averaged over
  /// trials. Test-set evaluation is deliberately excluded — it is reported
  /// separately below so the Table 6 comparison measures what the paper
  /// measures.
  double train_seconds = 0.0;
  /// Wall-clock spent evaluating the test users, averaged over trials.
  double eval_seconds = 0.0;
};

/// Everything the table benchmarks need to run one scenario.
struct RunnerOptions {
  /// Methods to run, using the paper's names: NGCF, LIGHTGCN, CMF, EMCDR,
  /// PTUPCDR, HeroGraph, OmniMatch. Order is preserved in the output.
  std::vector<std::string> methods = {"NGCF",    "LIGHTGCN",  "CMF",
                                      "EMCDR",   "PTUPCDR",   "HeroGraph",
                                      "OmniMatch"};
  /// Random (re-split + retrain) trials to average; the paper uses 5.
  int trials = 1;
  uint64_t seed = 99;
  double train_fraction = 0.8;
  /// Fraction of training users kept after the split (Table 4 sweep).
  double train_user_fraction = 1.0;
  core::OmniMatchConfig omnimatch;
};

/// Per-scenario results for every requested method.
struct ScenarioResult {
  std::string scenario;
  std::vector<MethodResult> methods;
};

/// Runs every requested method on the (source -> target) scenario of
/// `world`, averaging metrics over `options.trials` random splits.
/// OM_CHECKs on unknown method names.
ScenarioResult RunScenario(const data::SyntheticWorld& world,
                           const std::string& source,
                           const std::string& target,
                           const RunnerOptions& options);

/// The paper's six evaluation scenarios over Books/Movies/Music (§5.1).
std::vector<std::pair<std::string, std::string>> PaperScenarios();

}  // namespace eval
}  // namespace omnimatch

#endif  // OMNIMATCH_EVAL_RUNNER_H_
