#include "eval/table.h"

#include "common/check.h"
#include "common/string_util.h"

namespace omnimatch {
namespace eval {

void AsciiTable::SetHeader(std::vector<std::string> header) {
  OM_CHECK(!header.empty());
  header_ = std::move(header);
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  OM_CHECK(!header_.empty()) << "SetHeader first";
  OM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::Render() const {
  OM_CHECK(!header_.empty());
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += "|";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) {
    sep.append(w + 2, '-');
    sep += "+";
  }
  sep += "\n";
  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string FormatMetric(double value) { return StrFormat("%.3f", value); }

std::string StrFormatDelta(double percent) {
  return StrFormat("%+.1f%%", percent);
}

}  // namespace eval
}  // namespace omnimatch
