#ifndef OMNIMATCH_EVAL_TABLE_H_
#define OMNIMATCH_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace omnimatch {
namespace eval {

/// Minimal ASCII table used by the benchmark binaries to print results in
/// the layout of the paper's tables.
class AsciiTable {
 public:
  /// Sets the header row; defines the column count.
  void SetHeader(std::vector<std::string> header);

  /// Adds a body row; must match the header's column count.
  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment and a header separator.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a metric to the paper's 3-decimal convention, e.g. "1.031".
std::string FormatMetric(double value);

/// Formats a signed percentage, e.g. "+5.7%" / "-1.2%".
std::string StrFormatDelta(double percent);

}  // namespace eval
}  // namespace omnimatch

#endif  // OMNIMATCH_EVAL_TABLE_H_
