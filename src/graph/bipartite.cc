#include "graph/bipartite.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace omnimatch {
namespace graph {

InteractionGraph::InteractionGraph(
    int num_users, int num_items,
    const std::vector<std::pair<int, int>>& edges)
    : num_users_(num_users), num_items_(num_items) {
  OM_CHECK_GT(num_users, 0);
  OM_CHECK_GT(num_items, 0);
  int n = num_nodes();

  // Coalesce duplicates; store both directions (symmetric graph).
  std::vector<std::set<int>> neighbors(static_cast<size_t>(n));
  for (const auto& [u, i] : edges) {
    OM_CHECK(u >= 0 && u < num_users) << "user node " << u;
    OM_CHECK(i >= 0 && i < num_items) << "item node " << i;
    int item_node = num_users + i;
    neighbors[static_cast<size_t>(u)].insert(item_node);
    neighbors[static_cast<size_t>(item_node)].insert(u);
  }

  adj_.rows = n;
  adj_.cols = n;
  adj_.row_ptr.assign(static_cast<size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    adj_.row_ptr[static_cast<size_t>(v) + 1] =
        adj_.row_ptr[static_cast<size_t>(v)] +
        static_cast<int>(neighbors[static_cast<size_t>(v)].size());
  }
  adj_.col_idx.reserve(static_cast<size_t>(adj_.row_ptr.back()));
  adj_.values.reserve(static_cast<size_t>(adj_.row_ptr.back()));
  for (int v = 0; v < n; ++v) {
    float dv = static_cast<float>(neighbors[static_cast<size_t>(v)].size());
    for (int w : neighbors[static_cast<size_t>(v)]) {
      float dw = static_cast<float>(neighbors[static_cast<size_t>(w)].size());
      adj_.col_idx.push_back(w);
      adj_.values.push_back(1.0f / std::sqrt(std::max(dv * dw, 1.0f)));
    }
  }
}

int InteractionGraph::Degree(int node) const {
  OM_CHECK(node >= 0 && node < num_nodes()) << "node " << node;
  return adj_.row_ptr[static_cast<size_t>(node) + 1] -
         adj_.row_ptr[static_cast<size_t>(node)];
}

}  // namespace graph
}  // namespace omnimatch
