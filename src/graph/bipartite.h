#ifndef OMNIMATCH_GRAPH_BIPARTITE_H_
#define OMNIMATCH_GRAPH_BIPARTITE_H_

#include <unordered_map>
#include <vector>

#include "data/dataset.h"

namespace omnimatch {
namespace graph {

/// Compressed sparse row matrix over float, used as the (symmetric,
/// degree-normalized) adjacency of user-item interaction graphs.
struct Csr {
  int rows = 0;
  int cols = 0;
  std::vector<int> row_ptr;   // size rows + 1
  std::vector<int> col_idx;   // size nnz
  std::vector<float> values;  // size nnz

  size_t nnz() const { return col_idx.size(); }
};

/// A user-item interaction graph with dense 0-based node ids.
///
/// Node layout: users occupy [0, num_users), items occupy
/// [num_users, num_users + num_items). The symmetric normalized adjacency
/// Â = D^{-1/2} A D^{-1/2} (LightGCN/NGCF propagation operator) is built
/// over the combined node set.
class InteractionGraph {
 public:
  /// Builds from (user, item) interaction pairs using externally supplied
  /// dense id maps. Duplicate edges are coalesced.
  InteractionGraph(int num_users, int num_items,
                   const std::vector<std::pair<int, int>>& edges);

  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  int num_nodes() const { return num_users_ + num_items_; }

  /// The symmetric normalized adjacency over all nodes.
  const Csr& normalized_adjacency() const { return adj_; }

  /// Degree (distinct neighbors) of a node.
  int Degree(int node) const;

 private:
  int num_users_;
  int num_items_;
  Csr adj_;
};

}  // namespace graph
}  // namespace omnimatch

#endif  // OMNIMATCH_GRAPH_BIPARTITE_H_
