#include "graph/propagate.h"

#include "common/check.h"

namespace omnimatch {
namespace graph {

void SpMv(const Csr& adj, const float* x, int width, float* y) {
  for (int r = 0; r < adj.rows; ++r) {
    float* yrow = y + static_cast<size_t>(r) * width;
    for (int e = adj.row_ptr[static_cast<size_t>(r)];
         e < adj.row_ptr[static_cast<size_t>(r) + 1]; ++e) {
      float v = adj.values[static_cast<size_t>(e)];
      const float* xrow =
          x + static_cast<size_t>(adj.col_idx[static_cast<size_t>(e)]) * width;
      for (int d = 0; d < width; ++d) yrow[d] += v * xrow[d];
    }
  }
}

Csr Transpose(const Csr& adj) {
  Csr t;
  t.rows = adj.cols;
  t.cols = adj.rows;
  t.row_ptr.assign(static_cast<size_t>(t.rows) + 1, 0);
  for (int c : adj.col_idx) ++t.row_ptr[static_cast<size_t>(c) + 1];
  for (int r = 0; r < t.rows; ++r) {
    t.row_ptr[static_cast<size_t>(r) + 1] +=
        t.row_ptr[static_cast<size_t>(r)];
  }
  t.col_idx.resize(adj.nnz());
  t.values.resize(adj.nnz());
  std::vector<int> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (int r = 0; r < adj.rows; ++r) {
    for (int e = adj.row_ptr[static_cast<size_t>(r)];
         e < adj.row_ptr[static_cast<size_t>(r) + 1]; ++e) {
      int c = adj.col_idx[static_cast<size_t>(e)];
      int slot = cursor[static_cast<size_t>(c)]++;
      t.col_idx[static_cast<size_t>(slot)] = r;
      t.values[static_cast<size_t>(slot)] =
          adj.values[static_cast<size_t>(e)];
    }
  }
  return t;
}

nn::Tensor SparseMatMul(std::shared_ptr<const Csr> adj, const nn::Tensor& x) {
  OM_CHECK(adj != nullptr);
  OM_CHECK_EQ(x.ndim(), 2);
  OM_CHECK_EQ(x.dim(0), adj->cols) << "SparseMatMul dims";
  int width = x.dim(1);

  auto out = std::make_shared<nn::TensorImpl>();
  out->shape = {adj->rows, width};
  out->data.assign(static_cast<size_t>(adj->rows) * width, 0.0f);
  out->requires_grad = x.requires_grad();
  SpMv(*adj, x.data().data(), width, out->data.data());

  if (out->requires_grad) {
    out->parents = {x.impl()};
    auto xi = x.impl();
    nn::TensorImpl* o = out.get();
    auto adj_t = std::make_shared<Csr>(Transpose(*adj));
    out->backward_fn = [xi, o, adj_t, width]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      SpMv(*adj_t, o->grad.data(), width, xi->grad.data());
    };
  }
  return nn::Tensor(std::move(out));
}

}  // namespace graph
}  // namespace omnimatch
