#ifndef OMNIMATCH_GRAPH_PROPAGATE_H_
#define OMNIMATCH_GRAPH_PROPAGATE_H_

#include <memory>

#include "graph/bipartite.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace graph {

/// Differentiable sparse-dense product: out = adj * x, with x [N, D].
///
/// The backward pass uses the transpose; for the symmetric normalized
/// adjacencies produced by InteractionGraph, adj^T == adj, but the
/// implementation handles general CSR by building the transpose once and
/// caching it inside the returned node.
///
/// This is the propagation kernel of the NGCF / LightGCN / HeroGraph
/// baselines; one call is one embedding-propagation layer.
nn::Tensor SparseMatMul(std::shared_ptr<const Csr> adj, const nn::Tensor& x);

/// Non-autograd helper: y = adj * x over raw row-major buffers.
void SpMv(const Csr& adj, const float* x, int width, float* y);

/// Builds the transpose of a CSR matrix.
Csr Transpose(const Csr& adj);

}  // namespace graph
}  // namespace omnimatch

#endif  // OMNIMATCH_GRAPH_PROPAGATE_H_
