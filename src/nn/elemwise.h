#ifndef OMNIMATCH_NN_ELEMWISE_H_
#define OMNIMATCH_NN_ELEMWISE_H_

#include <cstdint>

#include "common/threadpool.h"

namespace omnimatch {
namespace nn {

/// Minimum number of scalar ops before an elementwise loop is worth
/// sharding over the pool; below this the loop runs inline.
///
/// Shared between the eager ops (ops.cc) and the recorded-graph replay
/// executor (graph.cc): both sides MUST shard with identical grains so a
/// replayed step partitions every loop exactly like the eager step it was
/// recorded from. (Chunking never changes values — each index is written by
/// exactly one chunk — but keeping the grains in one place keeps the two
/// execution paths from drifting apart.)
constexpr int64_t kElemGrain = 1 << 14;

/// Shards an elementwise loop [0, n) over the thread pool. Each index is
/// written by exactly one chunk, so any fn with per-index independent
/// writes is bit-deterministic for every thread count.
template <typename Fn>
void ParallelElems(size_t n, Fn&& fn) {
  ParallelFor(0, static_cast<int64_t>(n), kElemGrain,
              [&fn](int64_t b, int64_t e) {
                fn(static_cast<size_t>(b), static_cast<size_t>(e));
              });
}

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_ELEMWISE_H_
