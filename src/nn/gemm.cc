#include "nn/gemm.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "nn/elemwise.h"
#include "obs/metrics.h"

namespace omnimatch {
namespace nn {

namespace {

// Kernel-dispatch instrumentation: one call counter per public variant plus
// a shared FLOP counter. Two relaxed increments per GEMM — noise next to
// the packing the kernel does anyway.
obs::Counter* GemmCallCounter(const char* variant) {
  return obs::MetricsRegistry::Global().GetCounter(
      std::string("gemm.calls.") + variant);
}
obs::Counter* GemmFlops() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("gemm.flops");
  return c;
}
void CountGemm(obs::Counter* calls, int m_dim, int k_dim, int n_dim) {
  calls->Increment();
  GemmFlops()->Add(2LL * m_dim * k_dim * n_dim);
}

// Micro-tile: kMR x kNR accumulators live in registers across the K loop.
// 8 rows x 32 columns = 16 zmm accumulators under AVX-512 (half the
// register file), or spills gracefully to narrower ISAs — correctness never
// depends on the vector width.
constexpr int kMR = 8;
constexpr int kNR = 32;
// Cache blocking: a kMC x kKC packed A block (~128 KiB) targets L2, a
// kKC x kNC packed B block streams through the micro-kernel panel by panel.
constexpr int kMC = 128;
constexpr int kKC = 256;
constexpr int kNC = 512;

// Computes a kMR x kNR tile of C from packed panels.
// ap: kc x kMR (column i is row i0+i of A), bp: kc x kNR, both zero-padded.
// The full-tile path reads and writes C directly; edge tiles go through a
// local buffer so the zero padding never leaks out of bounds.
void MicroKernel(const float* ap, const float* bp, int kc, float* c, int ldc,
                 int mr, int nr) {
  float acc[kMR * kNR];
  if (mr == kMR && nr == kNR) {
    for (int i = 0; i < kMR; ++i) {
      for (int j = 0; j < kNR; ++j) acc[i * kNR + j] = c[i * ldc + j];
    }
    for (int k = 0; k < kc; ++k) {
      const float* arow = ap + static_cast<size_t>(k) * kMR;
      const float* brow = bp + static_cast<size_t>(k) * kNR;
      for (int i = 0; i < kMR; ++i) {
        float av = arow[i];
        for (int j = 0; j < kNR; ++j) acc[i * kNR + j] += av * brow[j];
      }
    }
    for (int i = 0; i < kMR; ++i) {
      for (int j = 0; j < kNR; ++j) c[i * ldc + j] = acc[i * kNR + j];
    }
  } else {
    std::memset(acc, 0, sizeof(acc));
    for (int k = 0; k < kc; ++k) {
      const float* arow = ap + static_cast<size_t>(k) * kMR;
      const float* brow = bp + static_cast<size_t>(k) * kNR;
      for (int i = 0; i < kMR; ++i) {
        float av = arow[i];
        for (int j = 0; j < kNR; ++j) acc[i * kNR + j] += av * brow[j];
      }
    }
    for (int i = 0; i < mr; ++i) {
      for (int j = 0; j < nr; ++j) c[i * ldc + j] += acc[i * kNR + j];
    }
  }
}

/// Packs rows [0, mc) x cols [0, kc) of an A view into kMR-tall strips
/// (ap[strip][k][i]), zero-padding the last strip to kMR rows.
/// trans == false: element (i, k) = a[i * lda + k] (lda may be < K for the
/// text conv's overlapping windows). trans == true: element (i, k) =
/// a[k * lda + i], i.e. A is stored [K, M].
void PackA(const float* a, int lda, bool trans, int mc, int kc, float* ap) {
  for (int i0 = 0; i0 < mc; i0 += kMR) {
    int mr = std::min(kMR, mc - i0);
    if (!trans) {
      for (int k = 0; k < kc; ++k) {
        float* dst = ap + static_cast<size_t>(k) * kMR;
        for (int i = 0; i < mr; ++i) {
          dst[i] = a[static_cast<size_t>(i0 + i) * lda + k];
        }
        for (int i = mr; i < kMR; ++i) dst[i] = 0.0f;
      }
    } else {
      for (int k = 0; k < kc; ++k) {
        const float* src = a + static_cast<size_t>(k) * lda + i0;
        float* dst = ap + static_cast<size_t>(k) * kMR;
        for (int i = 0; i < mr; ++i) dst[i] = src[i];
        for (int i = mr; i < kMR; ++i) dst[i] = 0.0f;
      }
    }
    ap += static_cast<size_t>(kc) * kMR;
  }
}

/// Packs rows [0, kc) x cols [0, nc) of a B view into kNR-wide panels
/// (bp[panel][k][j]), zero-padding the last panel to kNR columns.
/// trans == false: element (k, j) = b[k * ldb + j]. trans == true: element
/// (k, j) = b[j * ldb + k], i.e. B is stored [N, K].
void PackB(const float* b, int ldb, bool trans, int kc, int nc, float* bp) {
  for (int j0 = 0; j0 < nc; j0 += kNR) {
    int nr = std::min(kNR, nc - j0);
    if (!trans) {
      for (int k = 0; k < kc; ++k) {
        const float* src = b + static_cast<size_t>(k) * ldb + j0;
        float* dst = bp + static_cast<size_t>(k) * kNR;
        for (int j = 0; j < nr; ++j) dst[j] = src[j];
        for (int j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
    } else {
      for (int k = 0; k < kc; ++k) {
        float* dst = bp + static_cast<size_t>(k) * kNR;
        for (int j = 0; j < nr; ++j) {
          dst[j] = b[static_cast<size_t>(j0 + j) * ldb + k];
        }
        for (int j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
    }
    bp += static_cast<size_t>(kc) * kNR;
  }
}

/// C[M,N] += opA(A) * opB(B). The outer loops follow the BLIS scheme
/// (jc -> pc -> ic); rows of C are sharded over the thread pool inside each
/// (jc, pc) block, every task packing its own A strips into a thread-local
/// buffer. Per C element the K dimension is accumulated in ascending order
/// regardless of sharding, so results are thread-count invariant.
void BlockedGemm(const float* a, int lda, bool trans_a, const float* b,
                 int ldb, bool trans_b, float* c, int m_dim, int k_dim,
                 int n_dim) {
  if (m_dim <= 0 || k_dim <= 0 || n_dim <= 0) return;
  static thread_local std::vector<float> bpack;
  for (int jc = 0; jc < n_dim; jc += kNC) {
    int nc = std::min(kNC, n_dim - jc);
    int npanels = (nc + kNR - 1) / kNR;
    for (int pc = 0; pc < k_dim; pc += kKC) {
      int kc = std::min(kKC, k_dim - pc);
      bpack.resize(static_cast<size_t>(npanels) * kc * kNR);
      const float* bblock = trans_b
                                ? b + static_cast<size_t>(jc) * ldb + pc
                                : b + static_cast<size_t>(pc) * ldb + jc;
      PackB(bblock, ldb, trans_b, kc, nc, bpack.data());
      const float* bp = bpack.data();

      int mstrips = (m_dim + kMR - 1) / kMR;
      // A chunk packs and computes kMC rows at a time; smaller jobs run
      // inline on the calling thread (grain), larger ones shard over rows.
      ParallelFor(0, mstrips, kMC / kMR, [&](int64_t s0, int64_t s1) {
        static thread_local std::vector<float> apack;
        for (int64_t sc = s0; sc < s1; sc += kMC / kMR) {
          int64_t se = std::min(s1, sc + kMC / kMR);
          int ic = static_cast<int>(sc) * kMR;
          int mc = std::min(static_cast<int>(se) * kMR, m_dim) - ic;
          int strips = (mc + kMR - 1) / kMR;
          apack.resize(static_cast<size_t>(strips) * kc * kMR);
          const float* ablock = trans_a
                                    ? a + static_cast<size_t>(pc) * lda + ic
                                    : a + static_cast<size_t>(ic) * lda + pc;
          PackA(ablock, lda, trans_a, mc, kc, apack.data());
          for (int i0 = 0; i0 < mc; i0 += kMR) {
            const float* ap =
                apack.data() + static_cast<size_t>(i0 / kMR) * kc * kMR;
            int mr = std::min(kMR, mc - i0);
            for (int j0 = 0; j0 < nc; j0 += kNR) {
              int nr = std::min(kNR, nc - j0);
              MicroKernel(ap, bp + static_cast<size_t>(j0 / kNR) * kc * kNR,
                          kc,
                          c + static_cast<size_t>(ic + i0) * n_dim + jc + j0,
                          n_dim, mr, nr);
            }
          }
        }
      });
    }
  }
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim) {
  static obs::Counter* const calls = GemmCallCounter("nn");
  CountGemm(calls, m_dim, k_dim, n_dim);
  BlockedGemm(a, k_dim, /*trans_a=*/false, b, n_dim, /*trans_b=*/false, c,
              m_dim, k_dim, n_dim);
}

void GemmNT(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim) {
  static obs::Counter* const calls = GemmCallCounter("nt");
  CountGemm(calls, m_dim, k_dim, n_dim);
  BlockedGemm(a, k_dim, /*trans_a=*/false, b, k_dim, /*trans_b=*/true, c,
              m_dim, k_dim, n_dim);
}

void GemmNTStrided(const float* a, int lda, const float* b, float* c,
                   int m_dim, int k_dim, int n_dim) {
  static obs::Counter* const calls = GemmCallCounter("nt_strided");
  CountGemm(calls, m_dim, k_dim, n_dim);
  BlockedGemm(a, lda, /*trans_a=*/false, b, k_dim, /*trans_b=*/true, c,
              m_dim, k_dim, n_dim);
}

void GemmTN(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim) {
  static obs::Counter* const calls = GemmCallCounter("tn");
  CountGemm(calls, m_dim, k_dim, n_dim);
  BlockedGemm(a, m_dim, /*trans_a=*/true, b, n_dim, /*trans_b=*/false, c,
              m_dim, k_dim, n_dim);
}

void FusedLinearForward(const float* a, const float* b, const float* bias,
                        float* c, int m_dim, int k_dim, int n_dim,
                        bool relu) {
  size_t total = static_cast<size_t>(m_dim) * n_dim;
  std::fill(c, c + total, 0.0f);
  GemmNN(a, b, c, m_dim, k_dim, n_dim);
  // Row sharding and the ReLU expression match the eager AddRowBroadcast /
  // Relu kernels exactly (including `v > 0 ? v : 0`, which maps -0.0f to
  // +0.0f the same way), keeping fused output bit-identical to unfused.
  ParallelFor(0, m_dim, std::max<int64_t>(1, kElemGrain / n_dim),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  float* row = c + static_cast<size_t>(r) * n_dim;
                  for (int n = 0; n < n_dim; ++n) {
                    float v = row[n] + bias[n];
                    row[n] = relu ? (v > 0.0f ? v : 0.0f) : v;
                  }
                }
              });
}

namespace reference {

void GemmNN(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim) {
  for (int m = 0; m < m_dim; ++m) {
    float* crow = c + static_cast<size_t>(m) * n_dim;
    const float* arow = a + static_cast<size_t>(m) * k_dim;
    for (int k = 0; k < k_dim; ++k) {
      float av = arow[k];
      const float* brow = b + static_cast<size_t>(k) * n_dim;
      for (int n = 0; n < n_dim; ++n) crow[n] += av * brow[n];
    }
  }
}

void GemmNTStrided(const float* a, int lda, const float* b, float* c,
                   int m_dim, int k_dim, int n_dim) {
  for (int m = 0; m < m_dim; ++m) {
    const float* arow = a + static_cast<size_t>(m) * lda;
    float* crow = c + static_cast<size_t>(m) * n_dim;
    for (int n = 0; n < n_dim; ++n) {
      const float* brow = b + static_cast<size_t>(n) * k_dim;
      float acc = 0.0f;
      for (int k = 0; k < k_dim; ++k) acc += arow[k] * brow[k];
      crow[n] += acc;
    }
  }
}

void GemmNT(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim) {
  GemmNTStrided(a, k_dim, b, c, m_dim, k_dim, n_dim);
}

void GemmTN(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim) {
  for (int k = 0; k < k_dim; ++k) {
    const float* arow = a + static_cast<size_t>(k) * m_dim;
    const float* brow = b + static_cast<size_t>(k) * n_dim;
    for (int m = 0; m < m_dim; ++m) {
      float av = arow[m];
      float* crow = c + static_cast<size_t>(m) * n_dim;
      for (int n = 0; n < n_dim; ++n) crow[n] += av * brow[n];
    }
  }
}

}  // namespace reference

}  // namespace nn
}  // namespace omnimatch
