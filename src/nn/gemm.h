#ifndef OMNIMATCH_NN_GEMM_H_
#define OMNIMATCH_NN_GEMM_H_

namespace omnimatch {
namespace nn {

/// Cache-blocked, register-tiled, thread-parallel single-precision matrix
/// multiplication kernels — the compute substrate under MatMul, MatMulNT,
/// their backward passes, and the fused text convolution.
///
/// All variants *accumulate* (C += ...) over row-major contiguous C[M, N].
/// The BLIS-style structure: B is packed once per (N-block, K-block) into
/// kNR-wide panels, A is packed per M-block into kMR-tall strips, and an
/// 8x32 register-tiled micro-kernel (auto-vectorized; 16 zmm accumulators
/// with AVX-512) does the FLOPs. Work is sharded over rows of C on the
/// shared ThreadPool; each output element is produced by exactly one task
/// and K is always walked in ascending order, so results are bit-identical
/// for every thread count.

/// C[M,N] += A[M,K] * B[K,N].
void GemmNN(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim);

/// C[M,N] += A[M,K] * B[N,K]^T.
void GemmNT(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim);

/// C[M,N] += A * B[N,K]^T where row i of A starts at a + i*lda (row length
/// K; rows may overlap when lda < K, which the text convolution uses for
/// sliding windows).
void GemmNTStrided(const float* a, int lda, const float* b, float* c,
                   int m_dim, int k_dim, int n_dim);

/// C[M,N] += A[K,M]^T * B[K,N].
void GemmTN(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim);

/// Fused linear layer: C[M,N] = A[M,K] * B[K,N] + bias[N], optionally
/// followed by ReLU. Zeroes C, runs GemmNN, then applies the bias/ReLU
/// epilogue in one pass over C — the graph executor's kFusedLinear kernel
/// (eager MatMul + AddRowBroadcast + Relu collapsed into one call, bit-
/// identical to the unfused sequence at every thread count).
void FusedLinearForward(const float* a, const float* b, const float* bias,
                        float* c, int m_dim, int k_dim, int n_dim, bool relu);

namespace reference {

/// Naive triple-loop versions of the kernels above, kept as the ground
/// truth for property tests and as the "before" side of the benchmark
/// trajectory (bench_report). Serial, unblocked, branch-free.
void GemmNN(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim);
void GemmNT(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim);
void GemmNTStrided(const float* a, int lda, const float* b, float* c,
                   int m_dim, int k_dim, int n_dim);
void GemmTN(const float* a, const float* b, float* c, int m_dim, int k_dim,
            int n_dim);

}  // namespace reference

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_GEMM_H_
