// AVX2 int8 GEMM flavor. This translation unit — and only this one — is
// compiled with -mavx2; it must never be entered on a CPU without AVX2
// (SelectKernel guarantees that via cpuid).
#define OMNIMATCH_INT8_NAMESPACE isa_avx2
#include "nn/gemm/int8_gemm_impl.inc"
