// AVX-512 int8 GEMM flavor. This translation unit — and only this one — is
// compiled with -mavx512f -mavx512bw; it must never be entered on a CPU
// without those features (SelectKernel guarantees that via cpuid).
#define OMNIMATCH_INT8_NAMESPACE isa_avx512
#include "nn/gemm/int8_gemm_impl.inc"
