// Runtime kernel selection for the int8 GEMM flavors. Compiled with the
// default portable flags; it only takes the *address* of the per-ISA entry
// points, so no wide instruction can execute before cpuid approves it.

#include "nn/gemm/int8_gemm.h"

#include "common/cpu.h"

namespace omnimatch {
namespace nn {
namespace int8gemm {

IsaLevel BestCompiledIsa() {
#if defined(OMNIMATCH_INT8_HAVE_AVX512)
  return IsaLevel::kAvx512;
#elif defined(OMNIMATCH_INT8_HAVE_AVX2)
  return IsaLevel::kAvx2;
#elif defined(OMNIMATCH_INT8_HAVE_NEON)
  return IsaLevel::kNeon;
#else
  return IsaLevel::kScalar;
#endif
}

Int8GemmNTFn SelectKernel(IsaLevel level) {
  if (static_cast<int>(level) > static_cast<int>(BestCompiledIsa())) {
    level = BestCompiledIsa();
  }
  switch (level) {
#if defined(OMNIMATCH_INT8_HAVE_AVX512)
    case IsaLevel::kAvx512:
      return &isa_avx512::GemmS8NT;
#endif
#if defined(OMNIMATCH_INT8_HAVE_AVX2)
    case IsaLevel::kAvx2:
      return &isa_avx2::GemmS8NT;
#endif
#if defined(OMNIMATCH_INT8_HAVE_NEON)
    case IsaLevel::kNeon:
      return &isa_neon::GemmS8NT;
#endif
    default:
      return &isa_scalar::GemmS8NT;
  }
}

Int8GemmNTFn ActiveKernel() {
  static const Int8GemmNTFn fn = SelectKernel(ActiveIsa());
  return fn;
}

}  // namespace int8gemm
}  // namespace nn
}  // namespace omnimatch
