#ifndef OMNIMATCH_NN_GEMM_INT8_GEMM_H_
#define OMNIMATCH_NN_GEMM_INT8_GEMM_H_

#include <cstdint>

#include "common/cpu.h"

namespace omnimatch {
namespace nn {
namespace int8gemm {

/// Int8 GEMM kernels with runtime ISA dispatch — the integer compute
/// substrate under the quantized inference path (nn/quant.h).
///
/// Exactly one operation is exposed:
///
///   C[M,N] = A[M,K] · B[N,K]^T     (s8 × s8 → s32, pure accumulation)
///
/// A is row-major [M, K] int8 (quantized activations); B is row-major
/// [N, K] int8 — one row per OUTPUT CHANNEL with its K weights contiguous
/// (the layout QuantizedLinear packs weights into at load time), so every
/// (m, n) output is a contiguous dot product. C is row-major [M, N] int32,
/// OVERWRITTEN (not accumulated into).
///
/// Determinism contract: every flavor computes the identical int32 result.
/// Integer accumulation is exact and associative, so vector width and
/// summation order cannot change a single bit — the per-ISA equivalence
/// test (tests/nn/quant_test.cc) pins this. All float math (quantize /
/// dequantize / bias / ReLU) lives in nn/quant.cc, a single ordinary
/// translation unit, so the numeric results of the quantized path do not
/// depend on which kernel flavor ran.
///
/// Overflow bound: |a·b| per element ≤ 127² = 16129, and the widest
/// accumulation path sums two adjacent products into s32 before widening,
/// so K ≤ 2^31 / (2 · 16129) ≈ 66K is safe. Kernels OM_CHECK K against
/// kMaxK; model layers are orders of magnitude below it.
inline constexpr int kMaxK = 1 << 16;

using Int8GemmNTFn = void (*)(const int8_t* a, const int8_t* b, int32_t* c,
                              int m_dim, int k_dim, int n_dim);

/// The kernel for `level`, clamped to the widest flavor actually compiled
/// into this binary (a portable build may lack, e.g., the AVX-512 TU).
/// Never returns null — the scalar flavor always exists.
Int8GemmNTFn SelectKernel(IsaLevel level);

/// The kernel dispatch uses by default: SelectKernel(ActiveIsa()) — the
/// hardware's widest supported flavor, unless OMNIMATCH_ISA forces a lower
/// one. Resolved once at first use.
Int8GemmNTFn ActiveKernel();

/// The widest flavor compiled into this binary (build fact, not host
/// fact). SelectKernel clamps to this.
IsaLevel BestCompiledIsa();

/// Per-ISA entry points (each defined in its own translation unit,
/// compiled with exactly the arch flags that flavor needs — see
/// src/nn/CMakeLists.txt). Only the flavors the build enabled exist;
/// dispatch code must consult BestCompiledIsa() / SelectKernel.
namespace isa_scalar {
void GemmS8NT(const int8_t* a, const int8_t* b, int32_t* c, int m_dim,
              int k_dim, int n_dim);
}
#if defined(OMNIMATCH_INT8_HAVE_AVX2)
namespace isa_avx2 {
void GemmS8NT(const int8_t* a, const int8_t* b, int32_t* c, int m_dim,
              int k_dim, int n_dim);
}
#endif
#if defined(OMNIMATCH_INT8_HAVE_AVX512)
namespace isa_avx512 {
void GemmS8NT(const int8_t* a, const int8_t* b, int32_t* c, int m_dim,
              int k_dim, int n_dim);
}
#endif
#if defined(OMNIMATCH_INT8_HAVE_NEON)
namespace isa_neon {
void GemmS8NT(const int8_t* a, const int8_t* b, int32_t* c, int m_dim,
              int k_dim, int n_dim);
}
#endif

}  // namespace int8gemm
}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_GEMM_INT8_GEMM_H_
