// NEON int8 GEMM flavor, aarch64 builds only (ASIMD is architecturally
// mandatory there, so no runtime feature probe beyond the target arch is
// needed).
#define OMNIMATCH_INT8_NAMESPACE isa_neon
#include "nn/gemm/int8_gemm_impl.inc"
