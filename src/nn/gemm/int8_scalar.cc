// Scalar int8 GEMM flavor — the universal fallback, compiled with the
// project's default (portable) flags. OMNIMATCH_INT8_FORCE_SCALAR keeps it
// scalar even when the whole build carries -march=native (the
// OMNIMATCH_NATIVE_ARCH escape hatch), so "forced scalar" dispatch always
// means what it says.
#define OMNIMATCH_INT8_NAMESPACE isa_scalar
#define OMNIMATCH_INT8_FORCE_SCALAR 1
#include "nn/gemm/int8_gemm_impl.inc"
