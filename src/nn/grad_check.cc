#include "nn/grad_check.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace omnimatch {
namespace nn {

double MaxGradError(const std::function<Tensor()>& forward, Tensor input,
                    double eps) {
  OM_CHECK(input.defined());
  OM_CHECK(input.requires_grad());

  // Analytic gradient.
  input.ZeroGrad();
  Tensor loss = forward();
  loss.Backward();
  std::vector<float> analytic = input.grad();

  // Central finite differences, element by element.
  double max_err = 0.0;
  auto& data = input.data();
  for (size_t i = 0; i < data.size(); ++i) {
    float saved = data[i];
    data[i] = saved + static_cast<float>(eps);
    double f_plus = forward().ScalarValue();
    data[i] = saved - static_cast<float>(eps);
    double f_minus = forward().ScalarValue();
    data[i] = saved;
    double numeric = (f_plus - f_minus) / (2.0 * eps);
    max_err = std::max(max_err, std::abs(numeric - analytic[i]));
  }
  return max_err;
}

}  // namespace nn
}  // namespace omnimatch
