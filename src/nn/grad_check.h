#ifndef OMNIMATCH_NN_GRAD_CHECK_H_
#define OMNIMATCH_NN_GRAD_CHECK_H_

#include <functional>

#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Finite-difference gradient checking used by the test suite to validate
/// every op's analytic backward pass.
///
/// `forward` must rebuild the graph from the *current contents* of `input`
/// (it is called repeatedly with perturbed values) and return a scalar.
/// Returns the maximum absolute difference between the analytic gradient
/// of `input` and the central finite difference.
double MaxGradError(const std::function<Tensor()>& forward, Tensor input,
                    double eps = 1e-3);

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_GRAD_CHECK_H_
