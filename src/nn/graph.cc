#include "nn/graph.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "nn/elemwise.h"
#include "nn/gemm.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace omnimatch {
namespace nn {
namespace graph {

namespace {

obs::Counter* RecordStepsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("graph.record_steps");
  return counter;
}

obs::Counter* ReplayStepsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("graph.replay_steps");
  return counter;
}

obs::Gauge* ArenaBytesGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("graph.arena_bytes");
  return gauge;
}

int64_t AlignUp(int64_t v) {
  return (v + kArenaAlign - 1) / kArenaAlign * kArenaAlign;
}

/// Recording longer than this means a StepScope leaked across steps.
constexpr size_t kMaxRecordedCalls = size_t{1} << 20;

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLeaf: return "Leaf";
    case OpKind::kAdd: return "Add";
    case OpKind::kMul: return "Mul";
    case OpKind::kScale: return "Scale";
    case OpKind::kAddRowBroadcast: return "AddRowBroadcast";
    case OpKind::kRelu: return "Relu";
    case OpKind::kReshape: return "Reshape";
    case OpKind::kDropout: return "Dropout";
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kConcatCols: return "ConcatCols";
    case OpKind::kConcatRows: return "ConcatRows";
    case OpKind::kGather: return "Gather";
    case OpKind::kMeanAxis1: return "MeanAxis1";
    case OpKind::kGradReverse: return "GradReverse";
    case OpKind::kTextConvMaxPool: return "TextConvMaxPool";
    case OpKind::kSoftmaxCrossEntropy: return "SoftmaxCrossEntropy";
    case OpKind::kSupConLoss: return "SupConLoss";
    case OpKind::kFusedLinear: return "FusedLinear";
    case OpKind::kGatherReshape: return "GatherReshape";
    case OpKind::kNop: return "Nop";
  }
  return "Unknown";
}

std::vector<int64_t> FirstFitArena(const std::vector<ArenaRequest>& requests,
                                   int64_t* total_bytes) {
  std::vector<int64_t> offsets(requests.size(), 0);
  int64_t high = 0;
  std::vector<std::pair<int64_t, int64_t>> busy;  // [offset, offset + bytes)
  for (size_t i = 0; i < requests.size(); ++i) {
    const ArenaRequest& r = requests[i];
    OM_CHECK_GE(r.end, r.start);
    OM_CHECK_GT(r.bytes, 0);
    busy.clear();
    for (size_t j = 0; j < i; ++j) {
      const ArenaRequest& q = requests[j];
      // Closed intervals: live at the same step means bytes must not alias.
      if (q.start <= r.end && r.start <= q.end) {
        busy.emplace_back(offsets[j], offsets[j] + q.bytes);
      }
    }
    std::sort(busy.begin(), busy.end());
    int64_t cand = 0;
    for (const auto& [begin, end] : busy) {
      if (cand + r.bytes <= begin) break;  // fits in the gap before `begin`
      cand = std::max(cand, AlignUp(end));
    }
    offsets[i] = cand;
    high = std::max(high, cand + r.bytes);
  }
  *total_bytes = AlignUp(high);
  return offsets;
}

/// One IR node: either an interned leaf (parameter / input tensor) or one
/// recorded op call. After the pass pipeline a node may additionally be a
/// fusion tail (kind kFusedLinear/kGatherReshape executing a whole chain),
/// a fused-away member (kind kNop), or dead (live == false).
struct Node {
  OpKind call_kind = OpKind::kLeaf;  // matched against the op-call stream
  OpKind kind = OpKind::kLeaf;       // what actually executes
  bool is_op = false;                // recorded op (false: interned leaf)
  bool live = true;                  // false after dead-node elimination
  bool req_grad = false;
  bool fused_relu = false;  // FusedLinear tail: chain ended in a Relu
  // Pre-scheduled chunking decision: true when the node's recorded work is
  // too small to amortize a pool dispatch, so its kernels (forward and
  // backward) run inside a SerialRegion. Bit-identical either way by the
  // pool's determinism contract; this only removes scheduling overhead.
  bool serial = false;

  std::vector<int> inputs;   // node ids as the call stream presented them
  std::vector<char> in_req;  // input requires_grad at record time
  std::vector<int> xinputs;  // fusion tail: the chain's true data inputs
  std::vector<char> xin_req;
  std::vector<int> members;  // fusion tail: fused-away member node ids
  int fused_tail = -1;       // member: tail node executing its work

  std::vector<int> shape;
  int64_t numel = 0;
  int fpos = -1;     // index in Plan::call_order
  int bwd_pos = -1;  // index in Plan::bwd (-1: no backward step)
  std::shared_ptr<TensorImpl> impl;

  // Attributes. f0 and ints are dynamic (copied from the live call each
  // step); i0, rng and shape_attr are static and verified on replay.
  float f0 = 0.0f;  // Scale s / Dropout p / GradReverse lambda / SupCon tau
  int i0 = 0;       // TextConvMaxPool kernel_size
  int i1 = 0;       // SupConLoss valid_anchors (recomputed each forward)
  Rng* rng = nullptr;
  std::vector<int> ints;        // Gather ids / loss labels
  std::vector<int> shape_attr;  // Reshape target shape

  // Arena placement in floats (-1: backed by impl storage — leaves and
  // scalars). scratch holds the conv score slabs / FusedLinear relu mask.
  int64_t data_off = -1;
  int64_t grad_off = -1;
  int64_t scratch_off = -1;

  // Plan-owned op workspaces, sized once at compile and reused every step
  // (dropout mask, softmax probs, SupCon intermediates, conv argmax).
  std::vector<float> ws0, ws1, ws2, ws3, ws4, ws5, ws6, ws7;
  std::vector<double> dws0;
  std::vector<int> iws0, iws1;
};

/// A compiled step: the node IR, the forward call order, the backward
/// schedule (an exact mirror of the eager reverse-topological walk), and
/// the arena every intermediate lives in.
struct Plan {
  int64_t signature = 0;
  std::vector<Node> nodes;
  std::vector<int> call_order;
  int root = -1;

  struct BwdStep {
    int node = -1;
    // Arena grad buffers zeroed right before this step runs (their first
    // writer); eager gets the same zeros from fresh EnsureGrad() buffers.
    std::vector<int> zero_grads;
  };
  std::vector<BwdStep> bwd;
  // Impl-backed scalar grads zeroed once before the schedule runs.
  std::vector<int> scalar_grad_zero;

  std::vector<float> arena;
  int64_t arena_bytes = 0;
};

/// One StepScope's state: either recording into `rec` or replaying `plan`.
class Session {
 public:
  GraphExecutor* exec = nullptr;
  int64_t signature = 0;
  bool recording = false;
  bool replaying = false;
  bool aborted = false;
  std::string abort_reason;

  // Recording.
  std::unique_ptr<Plan> rec;
  std::unordered_map<const TensorImpl*, int> node_of;
  int root_node = -1;

  // Replaying.
  Plan* plan = nullptr;
  size_t cursor = 0;
  bool bwd_ran = false;
};

namespace {

/// Ops run only on the thread that owns the StepScope (pool workers execute
/// kernel chunks, never ops), so one thread-local is the whole story.
thread_local Session* tls_session = nullptr;

float* NodeData(Plan& p, int id) {
  Node& n = p.nodes[id];
  return n.data_off >= 0 ? p.arena.data() + n.data_off
                         : n.impl->data.data();
}

float* NodeGrad(Plan& p, int id) {
  Node& n = p.nodes[id];
  if (n.grad_off >= 0) return p.arena.data() + n.grad_off;
  n.impl->EnsureGrad();
  return n.impl->grad.data();
}

/// Runs one node's forward kernel on the plan's buffers. Each case is a
/// transcription of the matching eager kernel in ops.cc/losses.cc — same
/// loops, same grains, same accumulation order — so a replayed step is
/// bit-identical to the eager step it was recorded from.
void ExecForward(Plan& p, int id) {
  Node& n = p.nodes[id];
  float* out = NodeData(p, id);
  switch (n.kind) {
    case OpKind::kAdd: {
      const float* a = NodeData(p, n.inputs[0]);
      const float* b = NodeData(p, n.inputs[1]);
      ParallelElems(static_cast<size_t>(n.numel), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) out[i] = a[i] + b[i];
      });
      break;
    }
    case OpKind::kMul: {
      const float* a = NodeData(p, n.inputs[0]);
      const float* b = NodeData(p, n.inputs[1]);
      ParallelElems(static_cast<size_t>(n.numel), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) out[i] = a[i] * b[i];
      });
      break;
    }
    case OpKind::kScale: {
      const float* a = NodeData(p, n.inputs[0]);
      float s = n.f0;
      ParallelElems(static_cast<size_t>(n.numel), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) out[i] = a[i] * s;
      });
      break;
    }
    case OpKind::kAddRowBroadcast: {
      int rows = n.shape[0];
      int cols = n.shape[1];
      const float* mv = NodeData(p, n.inputs[0]);
      const float* rv = NodeData(p, n.inputs[1]);
      ParallelFor(0, rows, std::max<int64_t>(1, kElemGrain / cols),
                  [&](int64_t r0, int64_t r1) {
                    for (int64_t r = r0; r < r1; ++r) {
                      const float* src = mv + static_cast<size_t>(r) * cols;
                      float* dst = out + static_cast<size_t>(r) * cols;
                      for (int c = 0; c < cols; ++c) dst[c] = src[c] + rv[c];
                    }
                  });
      break;
    }
    case OpKind::kRelu: {
      const float* x = NodeData(p, n.inputs[0]);
      ParallelElems(static_cast<size_t>(n.numel), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
      });
      break;
    }
    case OpKind::kReshape:
    case OpKind::kGradReverse: {
      const float* x = NodeData(p, n.inputs[0]);
      std::copy(x, x + n.numel, out);
      break;
    }
    case OpKind::kDropout: {
      const float* x = NodeData(p, n.inputs[0]);
      float keep_scale = 1.0f / (1.0f - n.f0);
      float* mask = n.ws0.data();
      size_t count = static_cast<size_t>(n.numel);
      // Serial, one Bernoulli per element: consumes the caller's RNG stream
      // exactly like the eager op.
      for (size_t i = 0; i < count; ++i) {
        mask[i] = n.rng->Bernoulli(n.f0) ? 0.0f : keep_scale;
        out[i] = x[i] * mask[i];
      }
      break;
    }
    case OpKind::kMatMul: {
      const Node& a = p.nodes[n.inputs[0]];
      const Node& b = p.nodes[n.inputs[1]];
      int m = a.shape[0], k = a.shape[1], cols = b.shape[1];
      std::fill(out, out + n.numel, 0.0f);
      GemmNN(NodeData(p, n.inputs[0]), NodeData(p, n.inputs[1]), out, m, k,
             cols);
      break;
    }
    case OpKind::kFusedLinear: {
      const Node& x = p.nodes[n.xinputs[0]];
      const Node& w = p.nodes[n.xinputs[1]];
      FusedLinearForward(NodeData(p, n.xinputs[0]), NodeData(p, n.xinputs[1]),
                         NodeData(p, n.xinputs[2]), out, x.shape[0],
                         x.shape[1], w.shape[1], n.fused_relu);
      break;
    }
    case OpKind::kConcatCols: {
      int rows = n.shape[0];
      int total_cols = n.shape[1];
      int col_offset = 0;
      for (int pid : n.inputs) {
        const Node& part = p.nodes[pid];
        int cols = part.shape[1];
        const float* pv = NodeData(p, pid);
        for (int r = 0; r < rows; ++r) {
          std::copy(pv + static_cast<size_t>(r) * cols,
                    pv + static_cast<size_t>(r + 1) * cols,
                    out + static_cast<size_t>(r) * total_cols + col_offset);
        }
        col_offset += cols;
      }
      break;
    }
    case OpKind::kConcatRows: {
      size_t offset = 0;
      for (int pid : n.inputs) {
        const Node& part = p.nodes[pid];
        const float* pv = NodeData(p, pid);
        std::copy(pv, pv + part.numel, out + offset);
        offset += static_cast<size_t>(part.numel);
      }
      break;
    }
    case OpKind::kGather:
    case OpKind::kGatherReshape: {
      bool fused = n.kind == OpKind::kGatherReshape;
      int table_id = fused ? n.xinputs[0] : n.inputs[0];
      const std::vector<int>& ids =
          fused ? p.nodes[n.members[0]].ints : n.ints;
      const Node& tbl = p.nodes[table_id];
      int vocab = tbl.shape[0];
      int width = tbl.shape[1];
      for (int id_r : ids) {
        OM_CHECK(id_r >= 0 && id_r < vocab)
            << "Gather id " << id_r << " of " << vocab;
      }
      const float* tv = NodeData(p, table_id);
      ParallelFor(0, static_cast<int64_t>(ids.size()),
                  std::max<int64_t>(1, kElemGrain / width),
                  [&](int64_t r0, int64_t r1) {
                    for (int64_t r = r0; r < r1; ++r) {
                      std::copy(tv + static_cast<size_t>(ids[r]) * width,
                                tv + static_cast<size_t>(ids[r] + 1) * width,
                                out + static_cast<size_t>(r) * width);
                    }
                  });
      break;
    }
    case OpKind::kMeanAxis1: {
      const Node& in = p.nodes[n.inputs[0]];
      int batch = in.shape[0];
      int length = in.shape[1];
      int width = in.shape[2];
      const float* xv = NodeData(p, n.inputs[0]);
      float inv = 1.0f / static_cast<float>(length);
      int64_t per_doc = static_cast<int64_t>(length) * width;
      std::fill(out, out + n.numel, 0.0f);
      ParallelFor(0, batch, std::max<int64_t>(1, kElemGrain / per_doc),
                  [&](int64_t b0, int64_t b1) {
                    for (int64_t b = b0; b < b1; ++b) {
                      float* orow = out + static_cast<size_t>(b) * width;
                      for (int l = 0; l < length; ++l) {
                        const float* row =
                            xv + (static_cast<size_t>(b) * length + l) * width;
                        for (int e = 0; e < width; ++e) orow[e] += row[e];
                      }
                      for (int e = 0; e < width; ++e) orow[e] *= inv;
                    }
                  });
      break;
    }
    case OpKind::kTextConvMaxPool: {
      const Node& in = p.nodes[n.inputs[0]];
      const Node& wn = p.nodes[n.inputs[1]];
      int batch = in.shape[0];
      int length = in.shape[1];
      int embed = in.shape[2];
      int channels = wn.shape[0];
      int filter_len = n.i0 * embed;
      int windows = length - n.i0 + 1;
      const float* x = NodeData(p, n.inputs[0]);
      const float* w = NodeData(p, n.inputs[1]);
      const float* bvec = NodeData(p, n.inputs[2]);
      int* argmax = n.iws0.data();
      // Per-document score slabs live in the arena (the eager op allocates
      // a scores vector per pool chunk instead).
      int64_t slab = static_cast<int64_t>(windows) * channels;
      float* scratch = p.arena.data() + n.scratch_off;
      ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
        for (int64_t b = b0; b < b1; ++b) {
          float* scores = scratch + b * slab;
          std::fill(scores, scores + slab, 0.0f);
          const float* doc = x + static_cast<size_t>(b) * length * embed;
          GemmNTStrided(doc, embed, w, scores, windows, filter_len, channels);
          for (int c = 0; c < channels; ++c) {
            float best = scores[c];
            int best_t = 0;
            for (int t = 1; t < windows; ++t) {
              float v = scores[static_cast<size_t>(t) * channels + c];
              if (v > best) {
                best = v;
                best_t = t;
              }
            }
            best += bvec[c];
            out[static_cast<size_t>(b) * channels + c] =
                best > 0.0f ? best : 0.0f;
            argmax[static_cast<size_t>(b) * channels + c] = best_t;
          }
        }
      });
      break;
    }
    case OpKind::kSoftmaxCrossEntropy: {
      const Node& ln = p.nodes[n.inputs[0]];
      int batch = ln.shape[0];
      int classes = ln.shape[1];
      const std::vector<int>& labels = n.ints;
      for (int y : labels) OM_CHECK(y >= 0 && y < classes) << "label " << y;
      const float* x = NodeData(p, n.inputs[0]);
      float* probs = n.ws0.data();
      float* row_loss = n.ws1.data();
      ParallelFor(0, batch, 64, [&](int64_t b0, int64_t b1) {
        for (int64_t b = b0; b < b1; ++b) {
          const float* row = x + static_cast<size_t>(b) * classes;
          float* prow = probs + static_cast<size_t>(b) * classes;
          float max_v = row[0];
          for (int c = 1; c < classes; ++c) max_v = std::max(max_v, row[c]);
          float sum = 0.0f;
          for (int c = 0; c < classes; ++c) {
            prow[c] = std::exp(row[c] - max_v);
            sum += prow[c];
          }
          float inv = 1.0f / sum;
          for (int c = 0; c < classes; ++c) prow[c] *= inv;
          row_loss[b] = -std::log(std::max(prow[labels[b]], 1e-12f));
        }
      });
      double total = 0.0;
      for (int b = 0; b < batch; ++b) total += row_loss[b];
      out[0] = static_cast<float>(total / batch);
      break;
    }
    case OpKind::kSupConLoss: {
      const Node& fn = p.nodes[n.inputs[0]];
      int batch = fn.shape[0];
      int dim = fn.shape[1];
      const std::vector<int>& labels = n.ints;
      const float* z = NodeData(p, n.inputs[0]);
      float* norm_feats = n.ws0.data();
      float* norms = n.ws1.data();
      float* sims = n.ws2.data();
      float* probs = n.ws3.data();
      float* lse = n.ws4.data();
      double* anchor_loss = n.dws0.data();
      int* pos_count = n.iws1.data();
      ParallelFor(0, batch, 8, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float* row = z + static_cast<size_t>(i) * dim;
          double sq = 0.0;
          for (int d = 0; d < dim; ++d) {
            sq += static_cast<double>(row[d]) * row[d];
          }
          float norm = static_cast<float>(std::sqrt(sq)) + 1e-8f;
          norms[i] = norm;
          float* nrow = norm_feats + static_cast<size_t>(i) * dim;
          for (int d = 0; d < dim; ++d) nrow[d] = row[d] / norm;
        }
      });
      const float inv_tau = 1.0f / n.f0;
      size_t bb = static_cast<size_t>(batch) * batch;
      std::fill(sims, sims + bb, 0.0f);
      GemmNT(norm_feats, norm_feats, sims, batch, dim, batch);
      for (size_t i = 0; i < bb; ++i) sims[i] *= inv_tau;
      // probs was zeroed at compile; the diagonal is only ever multiplied
      // (never written), so it stays exactly 0.0f across steps — the same
      // value the eager op's fresh zero-initialized buffer holds.
      ParallelFor(0, batch, 8, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          float max_v = -1e30f;
          for (int j = 0; j < batch; ++j) {
            if (j != i) {
              max_v =
                  std::max(max_v, sims[static_cast<size_t>(i) * batch + j]);
            }
          }
          double sum = 0.0;
          for (int j = 0; j < batch; ++j) {
            if (j == i) continue;
            double e =
                std::exp(sims[static_cast<size_t>(i) * batch + j] - max_v);
            probs[static_cast<size_t>(i) * batch + j] = static_cast<float>(e);
            sum += e;
          }
          lse[i] = max_v + static_cast<float>(std::log(sum));
          float inv = static_cast<float>(1.0 / sum);
          for (int j = 0; j < batch; ++j) {
            probs[static_cast<size_t>(i) * batch + j] *= inv;
          }
        }
      });
      ParallelFor(0, batch, 8, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          int cnt = 0;
          double pos_sum = 0.0;
          for (int j = 0; j < batch; ++j) {
            if (j != i && labels[j] == labels[i]) {
              ++cnt;
              pos_sum += sims[static_cast<size_t>(i) * batch + j];
            }
          }
          pos_count[i] = cnt;
          if (cnt > 0) anchor_loss[i] = -(pos_sum / cnt - lse[i]);
        }
      });
      int valid_anchors = 0;
      double total = 0.0;
      for (int i = 0; i < batch; ++i) {
        if (pos_count[i] > 0) {
          ++valid_anchors;
          total += anchor_loss[i];
        }
      }
      // The recorded step had positive pairs (degenerate batches abort the
      // recording), and the trainer duplicates the SCL label set, so every
      // replayed batch does too.
      OM_CHECK_GT(valid_anchors, 0)
          << "SupConLoss: replayed batch has no positive pairs";
      n.i1 = valid_anchors;
      out[0] = static_cast<float>(total / valid_anchors);
      break;
    }
    default:
      OM_CHECK(false) << "graph exec: no forward kernel for "
                      << OpKindName(n.kind);
  }
}

/// Runs one backward step: zero this step's first-touched grad buffers,
/// then the node's backward kernel (transcribed from the eager closures).
void ExecBackwardStep(Plan& p, const Plan::BwdStep& step) {
  for (int gid : step.zero_grads) {
    Node& g = p.nodes[gid];
    float* buf = p.arena.data() + g.grad_off;
    std::fill(buf, buf + g.numel, 0.0f);
  }
  int id = step.node;
  Node& n = p.nodes[id];
  switch (n.kind) {
    case OpKind::kAdd: {
      const float* og = NodeGrad(p, id);
      for (int j = 0; j < 2; ++j) {
        if (!n.in_req[j]) continue;
        float* ig = NodeGrad(p, n.inputs[j]);
        ParallelElems(static_cast<size_t>(n.numel),
                      [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) ig[i] += og[i];
                      });
      }
      break;
    }
    case OpKind::kMul: {
      const float* og = NodeGrad(p, id);
      if (n.in_req[0]) {
        float* ag = NodeGrad(p, n.inputs[0]);
        const float* bd = NodeData(p, n.inputs[1]);
        ParallelElems(static_cast<size_t>(n.numel),
                      [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) {
                          ag[i] += og[i] * bd[i];
                        }
                      });
      }
      if (n.in_req[1]) {
        float* bg = NodeGrad(p, n.inputs[1]);
        const float* ad = NodeData(p, n.inputs[0]);
        ParallelElems(static_cast<size_t>(n.numel),
                      [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) {
                          bg[i] += og[i] * ad[i];
                        }
                      });
      }
      break;
    }
    case OpKind::kScale: {
      const float* og = NodeGrad(p, id);
      float* ag = NodeGrad(p, n.inputs[0]);
      float s = n.f0;
      ParallelElems(static_cast<size_t>(n.numel), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) ag[i] += s * og[i];
      });
      break;
    }
    case OpKind::kAddRowBroadcast: {
      int rows = n.shape[0];
      int cols = n.shape[1];
      const float* og = NodeGrad(p, id);
      if (n.in_req[0]) {
        float* mg = NodeGrad(p, n.inputs[0]);
        ParallelElems(static_cast<size_t>(n.numel),
                      [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) mg[i] += og[i];
                      });
      }
      if (n.in_req[1]) {
        float* rg = NodeGrad(p, n.inputs[1]);
        ParallelFor(0, cols, std::max<int64_t>(1, kElemGrain / rows),
                    [&](int64_t c0, int64_t c1) {
                      for (int r = 0; r < rows; ++r) {
                        const float* grow = og + static_cast<size_t>(r) * cols;
                        for (int64_t c = c0; c < c1; ++c) rg[c] += grow[c];
                      }
                    });
      }
      break;
    }
    case OpKind::kRelu: {
      const float* og = NodeGrad(p, id);
      const float* xd = NodeData(p, n.inputs[0]);
      float* xg = NodeGrad(p, n.inputs[0]);
      ParallelElems(static_cast<size_t>(n.numel), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (xd[i] > 0.0f) xg[i] += og[i];
        }
      });
      break;
    }
    case OpKind::kReshape: {
      const float* og = NodeGrad(p, id);
      float* xg = NodeGrad(p, n.inputs[0]);
      for (int64_t i = 0; i < n.numel; ++i) xg[i] += og[i];
      break;
    }
    case OpKind::kGradReverse: {
      const float* og = NodeGrad(p, id);
      float* xg = NodeGrad(p, n.inputs[0]);
      float lambda = n.f0;
      for (int64_t i = 0; i < n.numel; ++i) xg[i] -= lambda * og[i];
      break;
    }
    case OpKind::kDropout: {
      const float* og = NodeGrad(p, id);
      const float* mask = n.ws0.data();
      float* xg = NodeGrad(p, n.inputs[0]);
      ParallelElems(static_cast<size_t>(n.numel), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) xg[i] += og[i] * mask[i];
      });
      break;
    }
    case OpKind::kMatMul: {
      const Node& a = p.nodes[n.inputs[0]];
      const Node& b = p.nodes[n.inputs[1]];
      int m = a.shape[0], k = a.shape[1], cols = b.shape[1];
      const float* og = NodeGrad(p, id);
      if (n.in_req[0]) {
        GemmNT(og, NodeData(p, n.inputs[1]), NodeGrad(p, n.inputs[0]), m,
               cols, k);
      }
      if (n.in_req[1]) {
        GemmTN(NodeData(p, n.inputs[0]), og, NodeGrad(p, n.inputs[1]), k, m,
               cols);
      }
      break;
    }
    case OpKind::kFusedLinear: {
      const Node& x = p.nodes[n.xinputs[0]];
      const Node& w = p.nodes[n.xinputs[1]];
      int m = x.shape[0], k = x.shape[1], cols = w.shape[1];
      float* og = NodeGrad(p, id);
      const float* gsrc = og;
      if (n.fused_relu) {
        // The fused chain elided the pre-activation tensor t; out > 0 iff
        // t > 0 (ReLU keeps positives as-is), so the eager Relu backward's
        // mask is reproducible from the fused output.
        const float* od = NodeData(p, id);
        float* scratch = p.arena.data() + n.scratch_off;
        ParallelElems(static_cast<size_t>(n.numel),
                      [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) {
                          scratch[i] = od[i] > 0.0f ? og[i] : 0.0f;
                        }
                      });
        gsrc = scratch;
      }
      if (n.xin_req[2]) {
        float* bg = NodeGrad(p, n.xinputs[2]);
        ParallelFor(0, cols, std::max<int64_t>(1, kElemGrain / m),
                    [&](int64_t c0, int64_t c1) {
                      for (int r = 0; r < m; ++r) {
                        const float* grow =
                            gsrc + static_cast<size_t>(r) * cols;
                        for (int64_t c = c0; c < c1; ++c) bg[c] += grow[c];
                      }
                    });
      }
      if (n.xin_req[0]) {
        GemmNT(gsrc, NodeData(p, n.xinputs[1]), NodeGrad(p, n.xinputs[0]), m,
               cols, k);
      }
      if (n.xin_req[1]) {
        GemmTN(NodeData(p, n.xinputs[0]), gsrc, NodeGrad(p, n.xinputs[1]), k,
               m, cols);
      }
      break;
    }
    case OpKind::kConcatCols: {
      int rows = n.shape[0];
      int total_cols = n.shape[1];
      const float* og = NodeGrad(p, id);
      int offset = 0;
      for (size_t pi = 0; pi < n.inputs.size(); ++pi) {
        const Node& part = p.nodes[n.inputs[pi]];
        int cols = part.shape[1];
        if (n.in_req[pi]) {
          float* base = NodeGrad(p, n.inputs[pi]);
          for (int r = 0; r < rows; ++r) {
            const float* src =
                og + static_cast<size_t>(r) * total_cols + offset;
            float* dst = base + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) dst[c] += src[c];
          }
        }
        offset += cols;
      }
      break;
    }
    case OpKind::kConcatRows: {
      const float* og = NodeGrad(p, id);
      size_t off = 0;
      for (size_t pi = 0; pi < n.inputs.size(); ++pi) {
        const Node& part = p.nodes[n.inputs[pi]];
        size_t count = static_cast<size_t>(part.numel);
        if (n.in_req[pi]) {
          float* dst = NodeGrad(p, n.inputs[pi]);
          for (size_t i = 0; i < count; ++i) dst[i] += og[off + i];
        }
        off += count;
      }
      break;
    }
    case OpKind::kGather:
    case OpKind::kGatherReshape: {
      bool fused = n.kind == OpKind::kGatherReshape;
      int table_id = fused ? n.xinputs[0] : n.inputs[0];
      const std::vector<int>& ids =
          fused ? p.nodes[n.members[0]].ints : n.ints;
      const Node& tbl = p.nodes[table_id];
      int vocab = tbl.shape[0];
      int width = tbl.shape[1];
      float* tg = NodeGrad(p, table_id);
      const float* og = NodeGrad(p, id);
      // Destination-sharded scatter-add, identical to the eager Gather
      // backward (same shard size, same ascending id rescan per shard).
      int64_t work = static_cast<int64_t>(ids.size()) * width;
      int64_t shard_rows =
          work < kElemGrain
              ? vocab
              : std::max<int64_t>(64, vocab / (GetNumThreads() * 4));
      ParallelFor(0, vocab, shard_rows, [&](int64_t lo, int64_t hi) {
        for (size_t r = 0; r < ids.size(); ++r) {
          int id_r = ids[r];
          if (id_r < lo || id_r >= hi) continue;
          float* dst = tg + static_cast<size_t>(id_r) * width;
          const float* src = og + r * width;
          for (int c = 0; c < width; ++c) dst[c] += src[c];
        }
      });
      break;
    }
    case OpKind::kMeanAxis1: {
      const Node& in = p.nodes[n.inputs[0]];
      int batch = in.shape[0];
      int length = in.shape[1];
      int width = in.shape[2];
      const float* og = NodeGrad(p, id);
      float* xg = NodeGrad(p, n.inputs[0]);
      float inv = 1.0f / static_cast<float>(length);
      int64_t per_doc = static_cast<int64_t>(length) * width;
      ParallelFor(0, batch, std::max<int64_t>(1, kElemGrain / per_doc),
                  [&](int64_t b0, int64_t b1) {
                    for (int64_t b = b0; b < b1; ++b) {
                      const float* grow = og + static_cast<size_t>(b) * width;
                      for (int l = 0; l < length; ++l) {
                        float* row =
                            xg + (static_cast<size_t>(b) * length + l) * width;
                        for (int e = 0; e < width; ++e) {
                          row[e] += inv * grow[e];
                        }
                      }
                    }
                  });
      break;
    }
    case OpKind::kTextConvMaxPool: {
      const Node& in = p.nodes[n.inputs[0]];
      const Node& wn = p.nodes[n.inputs[1]];
      int batch = in.shape[0];
      int length = in.shape[1];
      int embed = in.shape[2];
      int channels = wn.shape[0];
      int filter_len = wn.shape[1];
      bool need_x = n.in_req[0] != 0;
      bool need_w = n.in_req[1] != 0;
      bool need_b = n.in_req[2] != 0;
      const float* od = NodeData(p, id);
      const float* og = NodeGrad(p, id);
      const int* argmax = n.iws0.data();
      if (need_x) {
        float* xg = NodeGrad(p, n.inputs[0]);
        const float* wd = NodeData(p, n.inputs[1]);
        ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
          for (int64_t b = b0; b < b1; ++b) {
            float* ddoc = xg + static_cast<size_t>(b) * length * embed;
            for (int c = 0; c < channels; ++c) {
              size_t oc = static_cast<size_t>(b) * channels + c;
              float g = og[oc];
              if (g == 0.0f || od[oc] <= 0.0f) continue;
              int t = argmax[oc];
              const float* wrow = wd + static_cast<size_t>(c) * filter_len;
              float* dwin = ddoc + static_cast<size_t>(t) * embed;
              for (int j = 0; j < filter_len; ++j) dwin[j] += g * wrow[j];
            }
          }
        });
      }
      if (need_w || need_b) {
        float* wg = need_w ? NodeGrad(p, n.inputs[1]) : nullptr;
        float* bg = need_b ? NodeGrad(p, n.inputs[2]) : nullptr;
        const float* xd = NodeData(p, n.inputs[0]);
        ParallelFor(0, channels, 1, [&](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            float* dwrow =
                need_w ? wg + static_cast<size_t>(c) * filter_len : nullptr;
            for (int b = 0; b < batch; ++b) {
              size_t oc = static_cast<size_t>(b) * channels + c;
              float g = og[oc];
              if (g == 0.0f || od[oc] <= 0.0f) continue;
              if (need_b) bg[c] += g;
              if (need_w) {
                int t = argmax[oc];
                const float* win =
                    xd + (static_cast<size_t>(b) * length + t) * embed;
                for (int j = 0; j < filter_len; ++j) dwrow[j] += g * win[j];
              }
            }
          }
        });
      }
      break;
    }
    case OpKind::kSoftmaxCrossEntropy: {
      const Node& ln = p.nodes[n.inputs[0]];
      int batch = ln.shape[0];
      int classes = ln.shape[1];
      const float* og = NodeGrad(p, id);
      float* lg = NodeGrad(p, n.inputs[0]);
      const float* probs = n.ws0.data();
      float g = og[0] / static_cast<float>(batch);
      for (int b = 0; b < batch; ++b) {
        const float* prow = probs + static_cast<size_t>(b) * classes;
        float* drow = lg + static_cast<size_t>(b) * classes;
        int y = n.ints[b];
        for (int c = 0; c < classes; ++c) {
          drow[c] += g * (prow[c] - (c == y ? 1.0f : 0.0f));
        }
      }
      break;
    }
    case OpKind::kSupConLoss: {
      const Node& fn = p.nodes[n.inputs[0]];
      int batch = fn.shape[0];
      int dim = fn.shape[1];
      const std::vector<int>& labels = n.ints;
      const float* og = NodeGrad(p, id);
      float* dst_base = NodeGrad(p, n.inputs[0]);
      const float* norm_feats = n.ws0.data();
      const float* norms = n.ws1.data();
      const float* probs = n.ws3.data();
      float* gmat = n.ws5.data();
      float* sym = n.ws6.data();
      float* dnorm = n.ws7.data();
      const int* pos_count = n.iws1.data();
      const float inv_tau = 1.0f / n.f0;
      int valid_anchors = n.i1;
      float gscale = og[0] / static_cast<float>(valid_anchors);
      size_t bb = static_cast<size_t>(batch) * batch;
      // Rows with no positives and the diagonal are skipped below, so the
      // whole matrix is re-zeroed first (eager uses a fresh zeroed vector).
      std::fill(gmat, gmat + bb, 0.0f);
      ParallelFor(0, batch, 8, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          int cnt = pos_count[i];
          if (cnt == 0) continue;
          float inv_cnt = 1.0f / static_cast<float>(cnt);
          for (int j = 0; j < batch; ++j) {
            if (j == i) continue;
            float g = probs[static_cast<size_t>(i) * batch + j];
            if (labels[j] == labels[i]) g -= inv_cnt;
            gmat[static_cast<size_t>(i) * batch + j] = g * gscale;
          }
        }
      });
      ParallelFor(0, batch, 8, [&](int64_t k0, int64_t k1) {
        for (int64_t k = k0; k < k1; ++k) {
          for (int j = 0; j < batch; ++j) {
            sym[static_cast<size_t>(k) * batch + j] =
                (gmat[static_cast<size_t>(k) * batch + j] +
                 gmat[static_cast<size_t>(j) * batch + k]) *
                inv_tau;
          }
        }
      });
      std::fill(dnorm, dnorm + static_cast<size_t>(batch) * dim, 0.0f);
      GemmNN(sym, norm_feats, dnorm, batch, batch, dim);
      ParallelFor(0, batch, 8, [&](int64_t k0, int64_t k1) {
        for (int64_t k = k0; k < k1; ++k) {
          const float* zk = norm_feats + static_cast<size_t>(k) * dim;
          const float* dk = dnorm + static_cast<size_t>(k) * dim;
          float* dst = dst_base + static_cast<size_t>(k) * dim;
          float dot = 0.0f;
          for (int d = 0; d < dim; ++d) dot += dk[d] * zk[d];
          float inv_norm = 1.0f / norms[k];
          for (int d = 0; d < dim; ++d) {
            dst[d] += (dk[d] - dot * zk[d]) * inv_norm;
          }
        }
      });
      break;
    }
    default:
      OM_CHECK(false) << "graph exec: no backward kernel for "
                      << OpKindName(n.kind);
  }
}

/// The compiled backward, installed as the root impl's backward_fn. Runs
/// only inside the replay StepScope that owns the plan.
void RunCompiledBackward(Plan* p) {
  Session* s = tls_session;
  OM_CHECK(s != nullptr && s->replaying && s->plan == p)
      << "compiled backward invoked outside its replay step";
  OM_CHECK(!s->bwd_ran) << "compiled backward invoked twice in one step";
  OM_CHECK_EQ(s->cursor, p->call_order.size())
      << "Backward() before the recorded forward finished";
  s->bwd_ran = true;
  for (int id : p->scalar_grad_zero) {
    Node& n = p->nodes[id];
    n.impl->EnsureGrad();
    std::fill(n.impl->grad.begin(), n.impl->grad.end(), 0.0f);
  }
  for (const Plan::BwdStep& step : p->bwd) {
    if (p->nodes[step.node].serial) {
      SerialRegion serial;
      ExecBackwardStep(*p, step);
    } else {
      ExecBackwardStep(*p, step);
    }
  }
}

/// Interns an op input: an already-recorded node keeps its id; anything
/// else (parameter, batch input) becomes a leaf node.
int InternInput(Session* s, const Tensor& t) {
  auto it = s->node_of.find(t.impl().get());
  if (it != s->node_of.end()) return it->second;
  Plan& p = *s->rec;
  Node leaf;
  leaf.call_kind = OpKind::kLeaf;
  leaf.kind = OpKind::kLeaf;
  leaf.shape = t.shape();
  leaf.numel = static_cast<int64_t>(t.data().size());
  leaf.req_grad = t.requires_grad();
  leaf.impl = t.impl();
  int id = static_cast<int>(p.nodes.size());
  p.nodes.push_back(std::move(leaf));
  s->node_of.emplace(t.impl().get(), id);
  return id;
}

/// --- pass pipeline -------------------------------------------------------

/// Dead-node elimination: roots are the backward root, every scalar (the
/// trainer reads loss components), and every RNG-consuming node (a skipped
/// Dropout would shift the stream for later steps). Dead nodes stay in the
/// call order for cursor matching but never execute and get no buffers.
void PassDeadNodes(Plan& p, GraphExecutor::Stats* stats) {
  OM_TRACE_SPAN("graph.compile.dce");
  std::vector<char> live(p.nodes.size(), 0);
  std::vector<int> work;
  auto mark = [&](int id) {
    if (!live[id]) {
      live[id] = 1;
      work.push_back(id);
    }
  };
  mark(p.root);
  for (int id : p.call_order) {
    const Node& n = p.nodes[id];
    if (n.numel == 1 || n.kind == OpKind::kDropout) mark(id);
  }
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    for (int in : p.nodes[id].inputs) mark(in);
  }
  for (int id : p.call_order) {
    if (!live[id]) {
      p.nodes[id].live = false;
      stats->dead_nodes += 1;
    }
  }
}

/// Fusion over strictly call-adjacent chains whose intermediates have a
/// single consumer: MatMul + AddRowBroadcast (+ Relu) -> kFusedLinear, and
/// Gather + Reshape -> kGatherReshape. Members become kNop (still matched
/// against the call stream, never executed, no buffers).
void PassFusion(Plan& p, GraphExecutor::Stats* stats) {
  OM_TRACE_SPAN("graph.compile.fuse");
  std::vector<int> consumers(p.nodes.size(), 0);
  for (int id : p.call_order) {
    const Node& n = p.nodes[id];
    if (!n.live) continue;
    for (int in : n.inputs) ++consumers[in];
  }
  for (size_t i = 0; i + 1 < p.call_order.size(); ++i) {
    int aid = p.call_order[i];
    Node& a = p.nodes[aid];
    if (!a.live || a.numel == 1) continue;
    if (a.kind == OpKind::kMatMul) {
      int bid = p.call_order[i + 1];
      Node& b = p.nodes[bid];
      if (!b.live || b.kind != OpKind::kAddRowBroadcast ||
          b.inputs[0] != aid || consumers[aid] != 1 || b.numel == 1) {
        continue;
      }
      int tail = bid;
      bool relu = false;
      if (i + 2 < p.call_order.size()) {
        int cid = p.call_order[i + 2];
        Node& c = p.nodes[cid];
        if (c.live && c.kind == OpKind::kRelu && c.inputs[0] == bid &&
            consumers[bid] == 1 && c.numel != 1) {
          tail = cid;
          relu = true;
        }
      }
      Node& t = p.nodes[tail];
      t.kind = OpKind::kFusedLinear;
      t.fused_relu = relu;
      t.xinputs = {a.inputs[0], a.inputs[1], b.inputs[1]};
      t.xin_req = {a.in_req[0], a.in_req[1], b.in_req[1]};
      t.members = relu ? std::vector<int>{aid, bid} : std::vector<int>{aid};
      a.kind = OpKind::kNop;
      a.fused_tail = tail;
      if (relu) {
        b.kind = OpKind::kNop;
        b.fused_tail = tail;
      }
      stats->fused_linear += 1;
      i += relu ? 2 : 1;
    } else if (a.kind == OpKind::kGather) {
      int bid = p.call_order[i + 1];
      Node& b = p.nodes[bid];
      if (!b.live || b.kind != OpKind::kReshape || b.inputs[0] != aid ||
          consumers[aid] != 1 || b.numel == 1) {
        continue;
      }
      b.kind = OpKind::kGatherReshape;
      b.xinputs = {a.inputs[0]};
      b.xin_req = {a.in_req[0]};
      b.members = {aid};
      a.kind = OpKind::kNop;
      a.fused_tail = bid;
      stats->fused_gather += 1;
      i += 1;
    }
  }
}

/// Backward schedule: an exact simulation of tensor.cc's TopologicalOrder
/// over the recorded graph (a node's eager `parents` are its call inputs,
/// present iff it requires grad), reversed. Fused members emit no step —
/// their combined backward runs at the tail's position, which is where the
/// eager schedule placed the chain (the members are consecutive among the
/// executing steps).
void PassBackwardSchedule(Plan& p) {
  OM_TRACE_SPAN("graph.compile.schedule");
  std::vector<int> order;
  std::vector<char> visited(p.nodes.size(), 0);
  std::vector<std::pair<int, size_t>> stack;
  stack.emplace_back(p.root, 0);
  visited[p.root] = 1;
  const std::vector<int> kNoParents;
  while (!stack.empty()) {
    auto& [id, idx] = stack.back();
    const Node& n = p.nodes[id];
    const std::vector<int>& parents =
        (n.is_op && n.req_grad) ? n.inputs : kNoParents;
    if (idx < parents.size()) {
      int parent = parents[idx];
      ++idx;
      if (!visited[parent]) {
        visited[parent] = 1;
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(id);
      stack.pop_back();
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int id = *it;
    Node& n = p.nodes[id];
    // Leaves have no backward_fn; kNop members run at their fusion tail.
    if (!n.is_op || !n.req_grad || n.kind == OpKind::kNop) continue;
    n.bwd_pos = static_cast<int>(p.bwd.size());
    p.bwd.push_back({id, {}});
  }
  for (const Plan::BwdStep& step : p.bwd) {
    if (p.nodes[step.node].numel == 1 && step.node != p.root) {
      p.scalar_grad_zero.push_back(step.node);
    }
  }
}

/// The node ids whose grads `n`'s backward step writes.
void GradTargets(const Node& n, std::vector<int>* out) {
  out->clear();
  if (n.kind == OpKind::kFusedLinear || n.kind == OpKind::kGatherReshape) {
    for (size_t j = 0; j < n.xinputs.size(); ++j) {
      if (n.xin_req[j]) out->push_back(n.xinputs[j]);
    }
  } else {
    for (size_t j = 0; j < n.inputs.size(); ++j) {
      if (n.in_req[j]) out->push_back(n.inputs[j]);
    }
  }
}

/// Liveness analysis + first-fit arena assignment for every intermediate
/// data buffer, grad buffer and kernel scratch slab. Positions: forward
/// call i is step i; backward step j is step call_order.size() + j.
void PassArena(Plan& p, GraphExecutor::Stats* stats) {
  OM_TRACE_SPAN("graph.compile.arena");
  int F = static_cast<int>(p.call_order.size());
  struct Placement {
    int node;
    int which;  // 0 = data, 1 = grad, 2 = scratch
  };
  std::vector<Placement> placements;
  std::vector<ArenaRequest> requests;

  // Grad buffers: a schedule node's grad is written by its consumers'
  // (earlier) steps and read at its own step. The first writer zeroes it.
  std::vector<int> first_touch(p.nodes.size(), INT_MAX);
  std::vector<int> targets;
  for (size_t i = 0; i < p.bwd.size(); ++i) {
    GradTargets(p.nodes[p.bwd[i].node], &targets);
    for (int t : targets) {
      first_touch[t] = std::min(first_touch[t], static_cast<int>(i));
    }
  }
  for (size_t i = 0; i < p.bwd.size(); ++i) {
    int gid = p.bwd[i].node;
    Node& g = p.nodes[gid];
    if (g.numel == 1) continue;  // impl-backed, zeroed in the preamble
    int ft = std::min(first_touch[gid], static_cast<int>(i));
    p.bwd[ft].zero_grads.push_back(gid);
    placements.push_back({gid, 1});
    requests.push_back({F + ft, F + static_cast<int>(i), g.numel * 4});
  }

  // Data buffers: live from the producing call to the last read. Forward
  // reads happen at each consumer's call; backward reads depend on the
  // kernel (see ExecBackwardStep).
  std::vector<int> data_end(p.nodes.size(), -1);
  auto read_at = [&](int nid, int pos) {
    data_end[nid] = std::max(data_end[nid], pos);
  };
  for (int id : p.call_order) {
    const Node& n = p.nodes[id];
    if (!n.live || n.kind == OpKind::kNop) continue;
    const std::vector<int>& ins = n.xinputs.empty() ? n.inputs : n.xinputs;
    for (int in : ins) read_at(in, n.fpos);
  }
  for (size_t i = 0; i < p.bwd.size(); ++i) {
    const Node& n = p.nodes[p.bwd[i].node];
    int pos = F + static_cast<int>(i);
    switch (n.kind) {
      case OpKind::kMul:
      case OpKind::kMatMul:
        read_at(n.inputs[0], pos);
        read_at(n.inputs[1], pos);
        break;
      case OpKind::kRelu:
        read_at(n.inputs[0], pos);
        break;
      case OpKind::kTextConvMaxPool:
        read_at(n.inputs[0], pos);
        read_at(n.inputs[1], pos);
        read_at(p.bwd[i].node, pos);  // own output: the pooling/ReLU mask
        break;
      case OpKind::kFusedLinear:
        read_at(n.xinputs[0], pos);
        read_at(n.xinputs[1], pos);
        if (n.fused_relu) read_at(p.bwd[i].node, pos);
        break;
      default:
        break;  // everything else reads only grads / workspaces
    }
  }
  for (int id : p.call_order) {
    const Node& n = p.nodes[id];
    if (!n.live || n.kind == OpKind::kNop || n.numel == 1) continue;
    placements.push_back({id, 0});
    requests.push_back(
        {n.fpos, std::max(data_end[id], n.fpos), n.numel * 4});
  }

  // Kernel scratch: conv score slabs (forward only) and the FusedLinear
  // relu-masked gradient (its own backward step only).
  for (int id : p.call_order) {
    const Node& n = p.nodes[id];
    if (!n.live) continue;
    if (n.kind == OpKind::kTextConvMaxPool) {
      const Node& in = p.nodes[n.inputs[0]];
      const Node& wn = p.nodes[n.inputs[1]];
      int windows = in.shape[1] - n.i0 + 1;
      int64_t slab_total = static_cast<int64_t>(in.shape[0]) * windows *
                           wn.shape[0];
      placements.push_back({id, 2});
      requests.push_back({n.fpos, n.fpos, slab_total * 4});
    } else if (n.kind == OpKind::kFusedLinear && n.fused_relu &&
               n.bwd_pos >= 0) {
      placements.push_back({id, 2});
      requests.push_back({F + n.bwd_pos, F + n.bwd_pos, n.numel * 4});
    }
  }

  int64_t total_bytes = 0;
  std::vector<int64_t> offsets = FirstFitArena(requests, &total_bytes);
  p.arena.assign(static_cast<size_t>(total_bytes / 4), 0.0f);
  p.arena_bytes = total_bytes;
  for (size_t i = 0; i < placements.size(); ++i) {
    Node& n = p.nodes[placements[i].node];
    int64_t off = offsets[i] / 4;
    switch (placements[i].which) {
      case 0: n.data_off = off; break;
      case 1: n.grad_off = off; break;
      default: n.scratch_off = off; break;
    }
  }
  stats->arena_bytes_max = std::max(stats->arena_bytes_max, total_bytes);
}

/// Sizes the per-node op workspaces (reused every step) and releases the
/// recorded impls' heap storage — non-scalar intermediates now live in the
/// arena, so their impls keep only the shape for dim()/ndim() callers.
/// Estimated scalar operations of one node's forward kernel (its backward
/// is the same order of magnitude). Only has to be right about which side
/// of kSerialWorkLimit a node lands on.
int64_t WorkEstimate(const Plan& p, const Node& n) {
  const std::vector<int>& ins = n.xinputs.empty() ? n.inputs : n.xinputs;
  switch (n.kind) {
    case OpKind::kMatMul:
    case OpKind::kFusedLinear: {
      const Node& a = p.nodes[ins[0]];
      return 2 * n.numel * a.shape[1];
    }
    case OpKind::kTextConvMaxPool: {
      const Node& in = p.nodes[ins[0]];
      int64_t windows = in.shape[1] - n.i0 + 1;
      int64_t channels = p.nodes[ins[1]].shape[0];
      return 2 * in.shape[0] * windows * channels * n.i0 * in.shape[2];
    }
    case OpKind::kSupConLoss: {
      const Node& f = p.nodes[ins[0]];
      int64_t rows = f.shape[0];
      return 2 * rows * rows * (f.shape[1] + 4);
    }
    default:
      return n.numel * 4;
  }
}

/// Below this much estimated work a pool dispatch costs more than the
/// parallelism returns (a dispatch is a few microseconds of wakeup and
/// join; kernels retire roughly one scalar op per nanosecond serially).
constexpr int64_t kSerialWorkLimit = 1 << 16;

/// Pre-schedules each live node's chunking: a node whose recorded work is
/// below kSerialWorkLimit replays inside a SerialRegion, turning every
/// ParallelFor its kernels issue into a single inline chunk. The eager
/// path cannot make this call — it learns shapes one op at a time — but
/// the plan knows every shape up front.
void PassChunkSchedule(Plan& p) {
  OM_TRACE_SPAN("graph.compile.chunks");
  for (int id : p.call_order) {
    Node& n = p.nodes[id];
    if (!n.live || n.kind == OpKind::kNop || !n.is_op) continue;
    n.serial = WorkEstimate(p, n) < kSerialWorkLimit;
  }
}

void PassFinalize(Plan& p) {
  OM_TRACE_SPAN("graph.compile.finalize");
  for (int id : p.call_order) {
    Node& n = p.nodes[id];
    if (!n.live) continue;
    switch (n.kind) {
      case OpKind::kDropout:
        n.ws0.assign(static_cast<size_t>(n.numel), 0.0f);
        break;
      case OpKind::kTextConvMaxPool:
        n.iws0.assign(static_cast<size_t>(n.numel), 0);
        break;
      case OpKind::kSoftmaxCrossEntropy: {
        const Node& ln = p.nodes[n.inputs[0]];
        size_t batch = static_cast<size_t>(ln.shape[0]);
        size_t classes = static_cast<size_t>(ln.shape[1]);
        n.ws0.assign(batch * classes, 0.0f);  // probs
        n.ws1.assign(batch, 0.0f);            // row_loss
        break;
      }
      case OpKind::kSupConLoss: {
        const Node& fn = p.nodes[n.inputs[0]];
        size_t batch = static_cast<size_t>(fn.shape[0]);
        size_t dim = static_cast<size_t>(fn.shape[1]);
        n.ws0.assign(batch * dim, 0.0f);    // norm_feats
        n.ws1.assign(batch, 0.0f);          // norms
        n.ws2.assign(batch * batch, 0.0f);  // sims
        n.ws3.assign(batch * batch, 0.0f);  // probs (diagonal stays 0)
        n.ws4.assign(batch, 0.0f);          // lse
        n.ws5.assign(batch * batch, 0.0f);  // gmat
        n.ws6.assign(batch * batch, 0.0f);  // sym
        n.ws7.assign(batch * dim, 0.0f);    // dnorm
        n.dws0.assign(batch, 0.0);          // anchor_loss
        n.iws1.assign(batch, 0);            // pos_count
        break;
      }
      default:
        break;
    }
  }
  for (int id : p.call_order) {
    Node& n = p.nodes[id];
    // The record step's Backward() already dropped the tape edges; clear
    // the rest so dead/fused impls hold no closures either.
    if (id != p.root) {
      n.impl->backward_fn = nullptr;
      n.impl->parents.clear();
    }
    if (n.numel == 1) continue;  // scalars stay impl-backed (ScalarValue)
    n.impl->data.clear();
    n.impl->data.shrink_to_fit();
    n.impl->grad.clear();
    n.impl->grad.shrink_to_fit();
  }
  Node& root = p.nodes[p.root];
  root.impl->parents.clear();
  Plan* plan = &p;
  root.impl->backward_fn = [plan]() { RunCompiledBackward(plan); };
  root.impl->graph_persistent = true;
}

/// Runs the pass pipeline. Returns nullptr on success or a reason string;
/// all failure returns happen before any impl is mutated, so a failed
/// compile leaves the eager state untouched.
const char* CompilePlan(Plan& p, GraphExecutor::Stats* stats) {
  OM_TRACE_SPAN("graph.compile");
  if (p.root < 0) return "no backward pass was recorded";
  if (p.nodes[p.root].numel != 1) return "backward root is not a scalar";
  if (p.call_order.empty()) return "empty step";
  PassDeadNodes(p, stats);
  PassFusion(p, stats);
  PassBackwardSchedule(p);
  PassArena(p, stats);
  PassChunkSchedule(p);
  PassFinalize(p);
  return nullptr;
}

}  // namespace

/// --- hooks ---------------------------------------------------------------

Session* ActiveRecording() {
  Session* s = tls_session;
  return (s != nullptr && s->recording && !s->aborted) ? s : nullptr;
}

Session* ActiveReplay() {
  Session* s = tls_session;
  return (s != nullptr && s->replaying) ? s : nullptr;
}

void AbortRecording(Session* session, const char* reason) {
  if (session == nullptr || !session->recording || session->aborted) return;
  session->aborted = true;
  session->abort_reason = reason;
}

void UnsupportedOp(const char* name) {
  OM_CHECK(ActiveReplay() == nullptr)
      << name << " has no graph lowering, so a recorded plan can never "
      << "contain it; reaching it mid-replay means the step diverged";
  AbortRecording(ActiveRecording(), name);
}

void NotifyBackwardRoot(TensorImpl* root) {
  Session* s = ActiveRecording();
  if (s == nullptr) return;
  auto it = s->node_of.find(root);
  if (it == s->node_of.end()) {
    AbortRecording(s, "backward root was not produced by a recorded op");
    return;
  }
  if (s->root_node >= 0 && s->root_node != it->second) {
    AbortRecording(s, "multiple backward roots in one step");
    return;
  }
  s->root_node = it->second;
}

void Record(Session* session, OpKind kind, const Tensor* const* inputs,
            int num_inputs, const Tensor& out, const OpArgs& args) {
  if (session == nullptr || !session->recording || session->aborted) return;
  Plan& p = *session->rec;
  if (p.call_order.size() >= kMaxRecordedCalls) {
    AbortRecording(session, "step too long to record");
    return;
  }
  Node n;
  n.call_kind = kind;
  n.kind = kind;
  n.is_op = true;
  for (int i = 0; i < num_inputs; ++i) {
    n.inputs.push_back(InternInput(session, *inputs[i]));
    n.in_req.push_back(inputs[i]->requires_grad() ? 1 : 0);
  }
  n.shape = out.shape();
  n.numel = static_cast<int64_t>(out.data().size());
  n.req_grad = out.requires_grad();
  n.impl = out.impl();
  n.f0 = args.f0;
  n.i0 = args.i0;
  n.rng = args.rng;
  if (args.ints != nullptr) n.ints = *args.ints;
  if (args.shape != nullptr) n.shape_attr = *args.shape;
  n.fpos = static_cast<int>(p.call_order.size());
  int id = static_cast<int>(p.nodes.size());
  p.nodes.push_back(std::move(n));
  p.call_order.push_back(id);
  session->node_of[out.impl().get()] = id;
}

Tensor Replay(Session* session, OpKind kind, const Tensor* const* inputs,
              int num_inputs, const OpArgs& args) {
  OM_CHECK(session != nullptr && session->replaying);
  Plan& p = *session->plan;
  OM_CHECK(session->cursor < p.call_order.size())
      << "graph replay: more op calls than recorded (next: "
      << OpKindName(kind) << ")";
  int id = p.call_order[session->cursor];
  Node& n = p.nodes[id];
  OM_CHECK(n.call_kind == kind)
      << "graph replay: call " << session->cursor << " recorded "
      << OpKindName(n.call_kind) << ", got " << OpKindName(kind);
  OM_CHECK_EQ(static_cast<size_t>(num_inputs), n.inputs.size())
      << "graph replay: input count of " << OpKindName(kind);
  for (int i = 0; i < num_inputs; ++i) {
    const Node& in = p.nodes[n.inputs[i]];
    OM_CHECK(in.impl.get() == inputs[i]->impl().get())
        << "graph replay: input " << i << " of " << OpKindName(kind)
        << " at call " << session->cursor
        << " is not the recorded tensor";
    OM_CHECK_EQ(static_cast<int>(n.in_req[i]),
                inputs[i]->requires_grad() ? 1 : 0)
        << "graph replay: requires_grad changed on input " << i << " of "
        << OpKindName(kind);
  }
  OM_CHECK(n.rng == args.rng)
      << "graph replay: RNG stream changed for " << OpKindName(kind);
  OM_CHECK_EQ(n.i0, args.i0)
      << "graph replay: static attribute changed for " << OpKindName(kind);
  if (args.shape != nullptr) {
    OM_CHECK(n.shape_attr == *args.shape)
        << "graph replay: reshape target changed";
  } else {
    OM_CHECK(n.shape_attr.empty());
  }
  // Dynamic attributes: new values each step, same cardinality.
  n.f0 = args.f0;
  if (args.ints != nullptr) {
    OM_CHECK_EQ(args.ints->size(), n.ints.size())
        << "graph replay: id/label count changed for " << OpKindName(kind)
        << " within one batch signature";
    std::copy(args.ints->begin(), args.ints->end(), n.ints.begin());
  } else {
    OM_CHECK(n.ints.empty());
  }
  ++session->cursor;
  if (n.live && n.kind != OpKind::kNop) {
    if (n.serial) {
      SerialRegion serial;
      ExecForward(p, id);
    } else {
      ExecForward(p, id);
    }
  }
  return Tensor(n.impl);
}

/// --- StepScope / GraphExecutor -------------------------------------------

GraphExecutor::GraphExecutor() = default;
GraphExecutor::~GraphExecutor() = default;

StepScope::StepScope(GraphExecutor* executor, int64_t signature) {
  if (executor == nullptr) return;
  OM_CHECK(tls_session == nullptr) << "nested graph StepScopes";
  if (executor->eager_signatures_.count(signature) != 0) return;
  auto session = std::make_unique<Session>();
  session->exec = executor;
  session->signature = signature;
  auto it = executor->plans_.find(signature);
  if (it != executor->plans_.end()) {
    session->replaying = true;
    session->plan = it->second.get();
    executor->stats_.replay_steps += 1;
    ReplayStepsCounter()->Increment();
  } else {
    session->recording = true;
    session->rec = std::make_unique<Plan>();
    session->rec->signature = signature;
    executor->stats_.record_steps += 1;
    RecordStepsCounter()->Increment();
  }
  session_ = std::move(session);
  tls_session = session_.get();
}

StepScope::~StepScope() {
  if (session_ == nullptr) return;
  tls_session = nullptr;
  Session& s = *session_;
  GraphExecutor* executor = s.exec;
  if (s.replaying) {
    OM_CHECK_EQ(s.cursor, s.plan->call_order.size())
        << "graph replay: step ended after " << s.cursor << " of "
        << s.plan->call_order.size() << " recorded op calls";
    OM_CHECK(s.bwd_ran) << "graph replay: step ended without Backward()";
    return;
  }
  const char* error = s.aborted ? s.abort_reason.c_str() : nullptr;
  if (error == nullptr && s.root_node < 0) {
    error = "no backward pass was recorded";
  }
  if (error == nullptr) {
    s.rec->root = s.root_node;
    error = CompilePlan(*s.rec, &executor->stats_);
  }
  if (error != nullptr) {
    executor->eager_signatures_.insert(s.signature);
    executor->stats_.fallback_signatures += 1;
    OM_LOG(Info) << "graph: signature " << s.signature
                 << " stays eager: " << error;
    return;
  }
  executor->stats_.plans += 1;
  ArenaBytesGauge()->Set(
      static_cast<double>(executor->stats_.arena_bytes_max));
  executor->plans_.emplace(s.signature, std::move(s.rec));
}

bool StepScope::recording() const {
  return session_ != nullptr && session_->recording;
}

bool StepScope::replaying() const {
  return session_ != nullptr && session_->replaying;
}

}  // namespace graph
}  // namespace nn
}  // namespace omnimatch
