#ifndef OMNIMATCH_NN_GRAPH_H_
#define OMNIMATCH_NN_GRAPH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {
namespace graph {

/// Recorded-graph step execution (see DESIGN.md "Recorded-graph execution").
///
/// The training step of OmniMatch is structurally static for a fixed batch
/// size: every step issues the same op sequence with the same shapes, only
/// the leaf values (parameters), gather indices and labels change. The
/// define-by-run tape pays for that repetition every step — a TensorImpl, a
/// zero-filled data vector, a std::function backward closure and a
/// shared_ptr parent list per op.
///
/// This layer removes the repetition:
///  * a RECORDER observes one eager step (the op hooks in ops.cc/losses.cc
///    call Record() after each eager kernel) and captures it as an explicit
///    op-node IR — kinds, input edges, shapes, static attributes;
///  * a PASS PIPELINE compiles the IR: dead-node elimination, fusion of
///    matmul+bias(+ReLU) chains and gather+reshape pairs into single fused
///    kernels, an exact mirror of the eager backward schedule, and
///    liveness-based first-fit planning of every intermediate data/grad
///    buffer into ONE pre-sized arena;
///  * a REPLAY executor re-runs subsequent steps against the plan: the
///    model code still executes (it carries the dynamic ids/labels and the
///    control flow), but each op call is cursor-matched against the plan
///    and dispatched straight to its kernel on arena buffers — zero heap
///    allocations in steady state, bit-identical to eager at every thread
///    count.
///
/// Fallback contract: recording is pure observation (the eager step is
/// untouched), so a step that hits an unsupported op simply marks its batch
/// signature as permanently eager. A batch-shape change starts a fresh
/// recording for the new signature. Mid-step structural divergence from the
/// recorded plan is a programming error and OM_CHECK-fatal.

enum class OpKind : uint8_t {
  kLeaf = 0,
  kAdd,
  kMul,
  kScale,
  kAddRowBroadcast,
  kRelu,
  kReshape,
  kDropout,
  kMatMul,
  kConcatCols,
  kConcatRows,
  kGather,
  kMeanAxis1,
  kGradReverse,
  kTextConvMaxPool,
  kSoftmaxCrossEntropy,
  kSupConLoss,
  // Synthesized by the fusion pass; never recorded directly.
  kFusedLinear,    // MatMul + AddRowBroadcast (+ Relu)
  kGatherReshape,  // Gather + Reshape into [B, L, E]
  // A fused-away chain member: matched against the call stream but not
  // executed (its work happens at the fusion tail's call site).
  kNop,
};

const char* OpKindName(OpKind kind);

/// One buffer's demand on the arena: a closed live interval on the unified
/// forward+backward step timeline plus a byte size. Exposed for the
/// arena-planning property tests.
struct ArenaRequest {
  int64_t start = 0;  // first step (inclusive) the buffer must exist
  int64_t end = 0;    // last step (inclusive)
  int64_t bytes = 0;
};

/// Arena offsets are aligned to this many bytes (one cache line).
constexpr int64_t kArenaAlign = 64;

/// First-fit-on-live-ranges arena planner: assigns each request a byte
/// offset such that no two requests with intersecting live intervals
/// overlap in [offset, offset + bytes). Offsets are kArenaAlign-aligned.
/// `*total_bytes` receives the arena size covering every placement.
std::vector<int64_t> FirstFitArena(const std::vector<ArenaRequest>& requests,
                                   int64_t* total_bytes);

struct Plan;    // internal IR + compiled schedule (graph.cc)
class Session;  // one step's record/replay state (graph.cc)

/// Per-signature plan cache plus counters. Owned by the trainer; one
/// executor per training run.
class GraphExecutor {
 public:
  GraphExecutor();
  ~GraphExecutor();
  GraphExecutor(const GraphExecutor&) = delete;
  GraphExecutor& operator=(const GraphExecutor&) = delete;

  struct Stats {
    int64_t plans = 0;           // distinct signatures compiled
    int64_t record_steps = 0;    // steps that ran eager + recorded
    int64_t replay_steps = 0;    // steps served from a compiled plan
    int64_t fallback_signatures = 0;  // signatures marked permanently eager
    int64_t fused_linear = 0;    // matmul+bias(+relu) chains fused
    int64_t fused_gather = 0;    // gather+reshape pairs fused
    int64_t dead_nodes = 0;      // nodes removed by DCE
    int64_t arena_bytes_max = 0;  // largest compiled arena
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class StepScope;
  friend class Session;

  std::unordered_map<int64_t, std::unique_ptr<Plan>> plans_;
  std::unordered_set<int64_t> eager_signatures_;
  Stats stats_;
};

/// RAII scope around one training step's forward + losses + backward
/// region. With a null executor (graph execution disabled) it is a no-op.
/// Otherwise the first scope for a signature records and compiles; later
/// scopes replay. The destructor verifies a replayed step consumed the
/// whole plan (op calls and the backward pass).
class StepScope {
 public:
  /// `signature` keys the plan cache; callers pass whatever determines the
  /// step's shapes (for the trainer: the batch size).
  StepScope(GraphExecutor* executor, int64_t signature);
  ~StepScope();
  StepScope(const StepScope&) = delete;
  StepScope& operator=(const StepScope&) = delete;

  bool recording() const;
  bool replaying() const;

 private:
  std::unique_ptr<Session> session_;
};

/// --- hooks for ops.cc / losses.cc / tensor.cc ---------------------------

/// Static and dynamic attributes of one op call. Float attributes and int
/// lists are DYNAMIC: replay copies them into the node each call, so e.g.
/// gather ids and labels flow from the live batch. kernel_size, the RNG
/// stream identity and the reshape target are STATIC and verified.
struct OpArgs {
  float f0 = 0.0f;   // Scale s / Dropout p / GradReverse lambda / SupCon tau
  int i0 = 0;        // TextConvMaxPool kernel_size
  Rng* rng = nullptr;                        // Dropout stream
  const std::vector<int>* ints = nullptr;    // Gather ids / loss labels
  const std::vector<int>* shape = nullptr;   // Reshape target shape
};

/// Non-null while the current thread is inside a recording StepScope.
Session* ActiveRecording();
/// Non-null while the current thread is inside a replaying StepScope.
Session* ActiveReplay();

/// Appends one node for an op that just executed eagerly. Pure observation:
/// never touches tensor values or RNG streams.
void Record(Session* session, OpKind kind, const Tensor* const* inputs,
            int num_inputs, const Tensor& out, const OpArgs& args);

/// Replays the next recorded op call: cursor-matches (kind, inputs, static
/// attrs), copies dynamic attrs, executes the node's kernel(s) on the plan
/// buffers, and returns the node's persistent output tensor.
Tensor Replay(Session* session, OpKind kind, const Tensor* const* inputs,
              int num_inputs, const OpArgs& args);

/// Marks the current recording as failed (unsupported op or degenerate
/// path); the signature falls back to eager execution permanently. Safe to
/// call with a null session.
void AbortRecording(Session* session, const char* reason);

/// Called at the top of ops with no graph lowering. While recording it
/// aborts the recording (the signature stays eager); during replay it is
/// fatal — a compiled plan can never contain such an op, so reaching one
/// means the step diverged from its recording.
void UnsupportedOp(const char* name);

/// Called by Tensor::Backward() so the recorder learns which node is the
/// backward root (the compiled backward schedule is installed as that
/// node's backward_fn). No-op outside a recording scope.
void NotifyBackwardRoot(TensorImpl* root);

}  // namespace graph
}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_GRAPH_H_
