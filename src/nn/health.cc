#include "nn/health.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <cmath>

#include "common/string_util.h"
#include "common/threadpool.h"

namespace omnimatch {
namespace nn {

namespace {

/// Elements per scan block. Fixed (not derived from the thread count) so the
/// block boundaries — and therefore the sum_sq rounding — never depend on
/// the pool size.
constexpr int64_t kScanBlock = 1 << 14;

BufferHealth ScanRange(const float* data, int64_t begin, int64_t end) {
  BufferHealth h;
  h.count = end - begin;
  for (int64_t i = begin; i < end; ++i) {
    float v = data[i];
    if (std::isnan(v)) {
      ++h.nan_count;
    } else if (std::isinf(v)) {
      ++h.inf_count;
    } else {
      h.min_value = std::min(h.min_value, v);
      h.max_value = std::max(h.max_value, v);
      h.sum_sq += static_cast<double>(v) * v;
    }
  }
  return h;
}

}  // namespace

double BufferHealth::l2() const { return std::sqrt(sum_sq); }

void BufferHealth::Merge(const BufferHealth& other) {
  count += other.count;
  nan_count += other.nan_count;
  inf_count += other.inf_count;
  min_value = std::min(min_value, other.min_value);
  max_value = std::max(max_value, other.max_value);
  sum_sq += other.sum_sq;
}

BufferHealth ScanBuffer(const float* data, int64_t n) {
  if (n <= 0) return BufferHealth{};
  if (n <= kScanBlock) return ScanRange(data, 0, n);
  int64_t blocks = (n + kScanBlock - 1) / kScanBlock;
  std::vector<BufferHealth> partials(static_cast<size_t>(blocks));
  ParallelFor(0, blocks, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      partials[static_cast<size_t>(b)] = ScanRange(
          data, b * kScanBlock, std::min(n, (b + 1) * kScanBlock));
    }
  });
  BufferHealth total;
  for (const BufferHealth& p : partials) total.Merge(p);
  return total;
}

std::string HealthReport::ToString() const {
  auto one = [](const char* label, const BufferHealth& h) {
    if (h.count == 0) return StrFormat("%s empty", label);
    return StrFormat(
        "%s n=%lld l2=%.4g range=[%.4g,%.4g] nonfinite=%lld", label,
        static_cast<long long>(h.count), h.l2(),
        static_cast<double>(h.min_value), static_cast<double>(h.max_value),
        static_cast<long long>(h.nonfinite()));
  };
  return one("params", params) + " | " + one("grads", grads);
}

HealthReport CheckHealth(const std::vector<Tensor>& tensors,
                         bool with_grads) {
  HealthReport report;
  report.param_health.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    report.param_health.push_back(
        ScanBuffer(t.data().data(), static_cast<int64_t>(t.data().size())));
    report.params.Merge(report.param_health.back());
  }
  if (with_grads) {
    report.grad_health.reserve(tensors.size());
    for (const Tensor& t : tensors) {
      // Read impl->grad directly: the grad() accessor would ALLOCATE an
      // unallocated buffer, and a health check must not mutate anything.
      // An empty (unallocated) buffer is trivially healthy.
      const std::vector<float>& g = t.impl()->grad;
      report.grad_health.push_back(
          ScanBuffer(g.data(), static_cast<int64_t>(g.size())));
      report.grads.Merge(report.grad_health.back());
    }
  }
  return report;
}

bool AllFinite(const std::vector<Tensor>& tensors) {
  // Branch-free inner loop (a float is non-finite iff its exponent bits
  // are all ones) with one verdict per block: the per-element early exit
  // an isfinite() loop implies would block vectorization, and the healthy
  // case — where every element is read anyway — is the hot path.
  constexpr int64_t kBlock = 4096;
  for (const Tensor& t : tensors) {
    const std::vector<float>& d = t.data();
    const int64_t n = static_cast<int64_t>(d.size());
    for (int64_t begin = 0; begin < n; begin += kBlock) {
      const int64_t end = std::min(n, begin + kBlock);
      uint32_t bad = 0;
      for (int64_t i = begin; i < end; ++i) {
        const uint32_t bits =
            std::bit_cast<uint32_t>(d[static_cast<size_t>(i)]);
        bad |= static_cast<uint32_t>((bits & 0x7f800000u) == 0x7f800000u);
      }
      if (bad != 0) return false;
    }
  }
  return true;
}

}  // namespace nn
}  // namespace omnimatch
