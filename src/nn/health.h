#ifndef OMNIMATCH_NN_HEALTH_H_
#define OMNIMATCH_NN_HEALTH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Numerical-health summary of one float buffer: non-finite counts plus
/// min/max/L2 over the finite values. Cheap to merge, so per-tensor and
/// aggregate views come from the same scan.
struct BufferHealth {
  int64_t count = 0;
  int64_t nan_count = 0;
  int64_t inf_count = 0;
  /// Extremes and squared L2 over FINITE values only (so the report stays
  /// informative even when a few entries are poisoned).
  float min_value = std::numeric_limits<float>::infinity();
  float max_value = -std::numeric_limits<float>::infinity();
  double sum_sq = 0.0;

  bool finite() const { return nan_count == 0 && inf_count == 0; }
  int64_t nonfinite() const { return nan_count + inf_count; }
  double l2() const;

  /// Folds `other` in; merging in index order keeps sum_sq bit-identical
  /// for any thread count.
  void Merge(const BufferHealth& other);
};

/// Scans `data[0, n)` with the shared thread pool. Fixed-size blocks each
/// produce a partial that is merged serially in index order, so the result
/// is bit-identical whether the pool has 1 thread or 64.
BufferHealth ScanBuffer(const float* data, int64_t n);

/// Per-module health: one BufferHealth per parameter tensor (and per
/// gradient buffer when requested) plus index-order aggregates.
struct HealthReport {
  std::vector<BufferHealth> param_health;
  std::vector<BufferHealth> grad_health;  // empty when grads not scanned
  BufferHealth params;
  BufferHealth grads;

  bool all_finite() const { return params.finite() && grads.finite(); }
  /// One-line summary for logs, e.g.
  /// "params n=1204 l2=3.41 range=[-0.92,0.88] nonfinite=0 | grads ...".
  std::string ToString() const;
};

/// Scans every tensor in `tensors` (and, with `with_grads`, its gradient
/// buffer — unallocated gradients count as empty and healthy).
HealthReport CheckHealth(const std::vector<Tensor>& tensors, bool with_grads);

/// True when every value in every tensor's data buffer is finite.
/// The training guard runs this over all parameters after every step, so
/// it is deliberately lighter than CheckHealth: no statistics, no heap
/// allocations, and it stops at the first non-finite value. Use
/// CheckHealth when a diagnostic report is wanted.
bool AllFinite(const std::vector<Tensor>& tensors);

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_HEALTH_H_
