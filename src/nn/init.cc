#include "nn/init.h"

#include <cmath>

#include "common/check.h"

namespace omnimatch {
namespace nn {

void XavierUniform(Tensor* t, int fan_in, int fan_out, Rng* rng) {
  OM_CHECK(t != nullptr && t->defined());
  OM_CHECK(rng != nullptr);
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : t->data()) v = rng->UniformFloat(-limit, limit);
}

void NormalInit(Tensor* t, float mean, float stddev, Rng* rng) {
  OM_CHECK(t != nullptr && t->defined());
  OM_CHECK(rng != nullptr);
  for (float& v : t->data()) {
    v = static_cast<float>(rng->Normal(mean, stddev));
  }
}

void ConstantInit(Tensor* t, float value) {
  OM_CHECK(t != nullptr && t->defined());
  for (float& v : t->data()) v = value;
}

}  // namespace nn
}  // namespace omnimatch
