#ifndef OMNIMATCH_NN_INIT_H_
#define OMNIMATCH_NN_INIT_H_

#include "common/rng.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Fills `t` uniformly in [-limit, limit] with limit = sqrt(6/(fan_in+fan_out))
/// (Glorot/Xavier uniform). Used for all dense and convolutional weights.
void XavierUniform(Tensor* t, int fan_in, int fan_out, Rng* rng);

/// Fills `t` with N(mean, stddev) draws. Used for embedding tables.
void NormalInit(Tensor* t, float mean, float stddev, Rng* rng);

/// Fills `t` with a constant (biases).
void ConstantInit(Tensor* t, float value);

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_INIT_H_
