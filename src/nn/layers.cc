#include "nn/layers.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"

namespace omnimatch {
namespace nn {

Linear::Linear(int in_features, int out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  OM_CHECK_GT(in_features, 0);
  OM_CHECK_GT(out_features, 0);
  weight_ = Tensor::Zeros({in_features, out_features}, /*requires_grad=*/true);
  bias_ = Tensor::Zeros({out_features}, /*requires_grad=*/true);
  XavierUniform(&weight_, in_features, out_features, rng);
}

Tensor Linear::Forward(const Tensor& x) const {
  OM_CHECK_EQ(x.dim(1), in_features_);
  return AddRowBroadcast(MatMul(x, weight_), bias_);
}

std::vector<Tensor> Linear::Parameters() const { return {weight_, bias_}; }

Mlp::Mlp(const std::vector<int>& dims, float dropout, Rng* rng)
    : dropout_(dropout), rng_(rng->Fork()) {
  OM_CHECK_GE(dims.size(), 2u) << "Mlp needs at least {in, out}";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
  }
}

Tensor Mlp::Forward(const Tensor& x) {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      h = Relu(h);
      h = Dropout(h, dropout_, training_, &rng_);
    }
  }
  return h;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& l : layers_) {
    for (const Tensor& p : l->Parameters()) out.push_back(p);
  }
  return out;
}

EmbeddingTable::EmbeddingTable(int vocab_size, int dim, Rng* rng)
    : vocab_size_(vocab_size), dim_(dim) {
  OM_CHECK_GT(vocab_size, 0);
  OM_CHECK_GT(dim, 0);
  table_ = Tensor::Zeros({vocab_size, dim}, /*requires_grad=*/true);
  NormalInit(&table_, 0.0f, 0.1f, rng);
}

Tensor EmbeddingTable::Forward(const std::vector<int>& ids) const {
  return Gather(table_, ids);
}

std::vector<Tensor> EmbeddingTable::Parameters() const { return {table_}; }

TextCnn::TextCnn(int embed_dim, int channels, std::vector<int> kernel_sizes,
                 Rng* rng)
    : embed_dim_(embed_dim),
      channels_(channels),
      kernel_sizes_(std::move(kernel_sizes)) {
  OM_CHECK(!kernel_sizes_.empty());
  for (int k : kernel_sizes_) {
    OM_CHECK_GT(k, 0);
    int filter_len = k * embed_dim_;
    Tensor w = Tensor::Zeros({channels_, filter_len}, /*requires_grad=*/true);
    XavierUniform(&w, filter_len, channels_, rng);
    weights_.push_back(w);
    biases_.push_back(Tensor::Zeros({channels_}, /*requires_grad=*/true));
  }
}

Tensor TextCnn::Forward(const Tensor& embedded) const {
  OM_CHECK_EQ(embedded.ndim(), 3);
  OM_CHECK_EQ(embedded.dim(2), embed_dim_);
  std::vector<Tensor> pooled;
  pooled.reserve(kernel_sizes_.size());
  for (size_t i = 0; i < kernel_sizes_.size(); ++i) {
    pooled.push_back(TextConvMaxPool(embedded, weights_[i], biases_[i],
                                     kernel_sizes_[i]));
  }
  return pooled.size() == 1 ? pooled[0] : ConcatCols(pooled);
}

std::vector<Tensor> TextCnn::Parameters() const {
  std::vector<Tensor> out;
  for (size_t i = 0; i < weights_.size(); ++i) {
    out.push_back(weights_[i]);
    out.push_back(biases_[i]);
  }
  return out;
}

MiniTransformerEncoder::MiniTransformerEncoder(int embed_dim, int output_dim,
                                               Rng* rng)
    : embed_dim_(embed_dim), output_dim_(output_dim) {
  wq_ = std::make_unique<Linear>(embed_dim, embed_dim, rng);
  wk_ = std::make_unique<Linear>(embed_dim, embed_dim, rng);
  wv_ = std::make_unique<Linear>(embed_dim, embed_dim, rng);
  wo_ = std::make_unique<Linear>(embed_dim, output_dim, rng);
}

Tensor MiniTransformerEncoder::ForwardDoc(const Tensor& doc) const {
  OM_CHECK_EQ(doc.ndim(), 2);
  OM_CHECK_EQ(doc.dim(1), embed_dim_);
  Tensor q = wq_->Forward(doc);
  Tensor k = wk_->Forward(doc);
  Tensor v = wv_->Forward(doc);
  float scale = 1.0f / std::sqrt(static_cast<float>(embed_dim_));
  Tensor attn = Softmax(Scale(MatMulNT(q, k), scale));
  Tensor context = MatMul(attn, v);
  Tensor h = Relu(wo_->Forward(context));
  return MeanRows(h);
}

Tensor MiniTransformerEncoder::Forward(const std::vector<Tensor>& docs) const {
  OM_CHECK(!docs.empty());
  std::vector<Tensor> rows;
  rows.reserve(docs.size());
  for (const Tensor& d : docs) rows.push_back(ForwardDoc(d));
  return rows.size() == 1 ? rows[0] : ConcatRows(rows);
}

std::vector<Tensor> MiniTransformerEncoder::Parameters() const {
  return CollectParameters({wq_.get(), wk_.get(), wv_.get(), wo_.get()});
}

}  // namespace nn
}  // namespace omnimatch
