#ifndef OMNIMATCH_NN_LAYERS_H_
#define OMNIMATCH_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Dense affine layer: y = x W + b, with W [in, out] and b [out].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng);

  /// x is [B, in] -> [B, out].
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;
  Tensor bias_;
};

/// Multi-layer perceptron: Linear -> ReLU -> Dropout, repeated, with no
/// activation or dropout after the final layer. Dropout follows the paper's
/// "applied after each linear layer" (§5.4) for the hidden layers.
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; needs at least {in, out}.
  Mlp(const std::vector<int>& dims, float dropout, Rng* rng);

  Tensor Forward(const Tensor& x);

  std::vector<Tensor> Parameters() const override;

  /// The hidden-layer dropout stream. Part of the resumable training state:
  /// checkpoints capture it so a restored run draws the same masks.
  Rng::State rng_state() const { return rng_.GetState(); }
  void set_rng_state(const Rng::State& state) { rng_.SetState(state); }

  /// Read access to the stacked affine layers — the quantized inference
  /// path (nn/quant.h) mirrors this Mlp layer by layer from the frozen
  /// weights.
  size_t num_layers() const { return layers_.size(); }
  const Linear& layer(size_t i) const { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  float dropout_;
  Rng rng_;
};

/// Trainable token embedding table [vocab_size, dim].
///
/// Stands in for the paper's pretrained 300-d fastText vectors: rows are
/// hash-seeded so initialization is deterministic given (seed, vocab), and
/// training refines them. `set_frozen(true)` emulates a frozen pretrained
/// table.
class EmbeddingTable : public Module {
 public:
  EmbeddingTable(int vocab_size, int dim, Rng* rng);

  /// ids (flattened batch of documents) -> [ids.size(), dim].
  Tensor Forward(const std::vector<int>& ids) const;

  std::vector<Tensor> Parameters() const override;

  void set_frozen(bool frozen) { table_.set_requires_grad(!frozen); }

  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }
  Tensor& table() { return table_; }

 private:
  int vocab_size_;
  int dim_;
  Tensor table_;
};

/// The paper's text CNN (§4.2): parallel convolutions with kernel sizes
/// (3, 4, 5 by default), `channels` filters each, ReLU + max-over-time
/// pooling, concatenated -> [B, channels * kernel_sizes.size()].
class TextCnn : public Module {
 public:
  TextCnn(int embed_dim, int channels, std::vector<int> kernel_sizes,
          Rng* rng);

  /// embedded documents [B, L, E] -> [B, channels * #kernels].
  Tensor Forward(const Tensor& embedded) const;

  std::vector<Tensor> Parameters() const override;

  int output_dim() const {
    return channels_ * static_cast<int>(kernel_sizes_.size());
  }

 private:
  int embed_dim_;
  int channels_;
  std::vector<int> kernel_sizes_;
  std::vector<Tensor> weights_;  // [channels, k * embed] per kernel size
  std::vector<Tensor> biases_;   // [channels] per kernel size
};

/// Single-block single-head self-attention encoder with mean pooling.
///
/// The Table 5 "OmniMatch-BERT" substitute: a heavier contextual extractor
/// that can be swapped for the TextCnn. Per document: Q=XWq, K=XWk, V=XWv,
/// A=softmax(QK^T/sqrt(d)), H=ReLU((AV)Wo), output = mean over tokens.
class MiniTransformerEncoder : public Module {
 public:
  MiniTransformerEncoder(int embed_dim, int output_dim, Rng* rng);

  /// One embedded document [L, E] -> [1, output_dim].
  Tensor ForwardDoc(const Tensor& doc) const;

  /// Batch of embedded documents -> [docs.size(), output_dim].
  Tensor Forward(const std::vector<Tensor>& docs) const;

  std::vector<Tensor> Parameters() const override;

  int output_dim() const { return output_dim_; }

 private:
  int embed_dim_;
  int output_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_LAYERS_H_
