#include "nn/losses.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/threadpool.h"
#include "nn/gemm.h"
#include "nn/graph.h"
#include "obs/metrics.h"

namespace omnimatch {
namespace nn {

namespace {

/// Same counter the eager ops bump in MakeOutput (ops.cc); the losses build
/// their output nodes by hand.
obs::Counter* LossNodeAllocCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("nn.tensor_node_allocs");
  return counter;
}

/// Single-input flavors of the graph hooks in ops.cc (see ReplayOp there).
bool ReplayLoss(graph::OpKind kind, const Tensor& input,
                const graph::OpArgs& args, Tensor* out) {
  graph::Session* session = graph::ActiveReplay();
  if (session == nullptr) return false;
  const Tensor* in = &input;
  *out = graph::Replay(session, kind, &in, 1, args);
  return true;
}

void RecordLoss(graph::OpKind kind, const Tensor& input, const Tensor& out,
                const graph::OpArgs& args) {
  graph::Session* session = graph::ActiveRecording();
  if (session == nullptr) return;
  const Tensor* in = &input;
  graph::Record(session, kind, &in, 1, out, args);
}

}  // namespace

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& labels) {
  graph::OpArgs graph_args;
  graph_args.ints = &labels;
  if (Tensor r; ReplayLoss(graph::OpKind::kSoftmaxCrossEntropy, logits,
                           graph_args, &r)) {
    return r;
  }
  OM_CHECK_EQ(logits.ndim(), 2);
  int batch = logits.dim(0);
  int classes = logits.dim(1);
  OM_CHECK_GT(batch, 0);  // mean over an empty batch is NaN
  OM_CHECK_EQ(static_cast<size_t>(batch), labels.size());
  for (int y : labels) OM_CHECK(y >= 0 && y < classes) << "label " << y;

  LossNodeAllocCounter()->Increment();
  auto out = std::make_shared<TensorImpl>();
  out->shape = {1};
  out->data = {0.0f};
  out->requires_grad = logits.requires_grad();

  // Probabilities are stored for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<size_t>(batch) * classes);
  const float* x = logits.data().data();
  // Row-parallel softmax; per-row losses are combined serially in index
  // order so the scalar is thread-count invariant.
  std::vector<float> row_loss(batch, 0.0f);
  ParallelFor(0, batch, 64, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* row = x + static_cast<size_t>(b) * classes;
      float* prow = probs->data() + static_cast<size_t>(b) * classes;
      float max_v = row[0];
      for (int c = 1; c < classes; ++c) max_v = std::max(max_v, row[c]);
      float sum = 0.0f;
      for (int c = 0; c < classes; ++c) {
        prow[c] = std::exp(row[c] - max_v);
        sum += prow[c];
      }
      float inv = 1.0f / sum;
      for (int c = 0; c < classes; ++c) prow[c] *= inv;
      row_loss[b] = -std::log(std::max(prow[labels[b]], 1e-12f));
    }
  });
  double total = 0.0;
  for (int b = 0; b < batch; ++b) total += row_loss[b];
  out->data[0] = static_cast<float>(total / batch);

  if (out->requires_grad) {
    out->parents = {logits.impl()};
    auto li = logits.impl();
    TensorImpl* o = out.get();
    auto labels_copy = std::make_shared<std::vector<int>>(labels);
    out->backward_fn = [li, o, probs, labels_copy, batch, classes]() {
      o->EnsureGrad();
      li->EnsureGrad();
      float g = o->grad[0] / static_cast<float>(batch);
      for (int b = 0; b < batch; ++b) {
        const float* prow = probs->data() + static_cast<size_t>(b) * classes;
        float* drow = li->grad.data() + static_cast<size_t>(b) * classes;
        int y = (*labels_copy)[b];
        for (int c = 0; c < classes; ++c) {
          drow[c] += g * (prow[c] - (c == y ? 1.0f : 0.0f));
        }
      }
    };
  }
  Tensor result(std::move(out));
  RecordLoss(graph::OpKind::kSoftmaxCrossEntropy, logits, result, graph_args);
  return result;
}

Tensor MseLoss(const Tensor& pred, const std::vector<float>& target) {
  graph::UnsupportedOp("MseLoss");
  OM_CHECK_EQ(static_cast<size_t>(pred.numel()), target.size());
  int n = static_cast<int>(target.size());
  OM_CHECK_GT(n, 0);  // mean over an empty batch is NaN

  LossNodeAllocCounter()->Increment();
  auto out = std::make_shared<TensorImpl>();
  out->shape = {1};
  out->data = {0.0f};
  out->requires_grad = pred.requires_grad();

  const float* p = pred.data().data();
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    double d = static_cast<double>(p[i]) - target[i];
    total += d * d;
  }
  out->data[0] = static_cast<float>(total / n);

  if (out->requires_grad) {
    out->parents = {pred.impl()};
    auto pi = pred.impl();
    TensorImpl* o = out.get();
    auto target_copy = std::make_shared<std::vector<float>>(target);
    out->backward_fn = [pi, o, target_copy, n]() {
      o->EnsureGrad();
      pi->EnsureGrad();
      float g = o->grad[0] * 2.0f / static_cast<float>(n);
      for (int i = 0; i < n; ++i) {
        pi->grad[i] += g * (pi->data[i] - (*target_copy)[i]);
      }
    };
  }
  return Tensor(std::move(out));
}

Tensor SupConLoss(const Tensor& features, const std::vector<int>& labels,
                  float temperature) {
  graph::OpArgs graph_args;
  graph_args.f0 = temperature;
  graph_args.ints = &labels;
  if (Tensor r;
      ReplayLoss(graph::OpKind::kSupConLoss, features, graph_args, &r)) {
    return r;
  }
  OM_CHECK_EQ(features.ndim(), 2);
  int batch = features.dim(0);
  int dim = features.dim(1);
  OM_CHECK_EQ(static_cast<size_t>(batch), labels.size());
  OM_CHECK_GT(temperature, 0.0f);

  if (batch < 2) {
    // A single feature (or none) cannot form a positive pair. Bail out
    // before the softmax-over-A(i) pass: with an empty A(i) its
    // log-sum-exp is log(0) = -inf, a non-finite intermediate that health
    // scans would flag even though the final loss is a constant zero.
    // Structurally degenerate: not representable as a recorded node.
    graph::AbortRecording(graph::ActiveRecording(),
                          "SupConLoss with batch < 2");
    return Tensor::Scalar(0.0f);
  }

  // --- Forward ---
  // 1. L2-normalize rows.
  auto norm_feats = std::make_shared<std::vector<float>>(
      static_cast<size_t>(batch) * dim);
  auto norms = std::make_shared<std::vector<float>>(batch);
  const float* z = features.data().data();
  ParallelFor(0, batch, 8, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* row = z + static_cast<size_t>(i) * dim;
      double sq = 0.0;
      for (int d = 0; d < dim; ++d) sq += static_cast<double>(row[d]) * row[d];
      float norm = static_cast<float>(std::sqrt(sq)) + 1e-8f;
      (*norms)[i] = norm;
      float* nrow = norm_feats->data() + static_cast<size_t>(i) * dim;
      for (int d = 0; d < dim; ++d) nrow[d] = row[d] / norm;
    }
  });

  // 2. Similarities s_ij = <ẑ_i, ẑ_j> / τ and softmax denominators over
  //    A(i) = all j != i. Shifted by the row max for stability. The full
  //    Gram matrix Ẑ Ẑ^T is one GEMM; the diagonal comes along for free and
  //    every later pass skips it.
  const float inv_tau = 1.0f / temperature;
  std::vector<float> sims(static_cast<size_t>(batch) * batch, 0.0f);
  GemmNT(norm_feats->data(), norm_feats->data(), sims.data(), batch, dim,
         batch);
  for (float& s : sims) s *= inv_tau;

  // p_ij = exp(s_ij) / sum_{a != i} exp(s_ia); stored for backward.
  // Each anchor row is owned by one chunk, so probs/lse are deterministic.
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<size_t>(batch) * batch, 0.0f);
  std::vector<float> lse(batch, 0.0f);
  ParallelFor(0, batch, 8, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      float max_v = -1e30f;
      for (int j = 0; j < batch; ++j) {
        if (j != i) {
          max_v = std::max(max_v, sims[static_cast<size_t>(i) * batch + j]);
        }
      }
      double sum = 0.0;
      for (int j = 0; j < batch; ++j) {
        if (j == i) continue;
        double e = std::exp(sims[static_cast<size_t>(i) * batch + j] - max_v);
        (*probs)[static_cast<size_t>(i) * batch + j] = static_cast<float>(e);
        sum += e;
      }
      lse[i] = max_v + static_cast<float>(std::log(sum));
      float inv = static_cast<float>(1.0 / sum);
      for (int j = 0; j < batch; ++j) {
        (*probs)[static_cast<size_t>(i) * batch + j] *= inv;
      }
    }
  });

  // 3. Per-anchor loss over P(i) = {p != i : label_p == label_i}.
  // Per-anchor partials are combined serially in index order so the scalar
  // loss is independent of the thread count.
  auto pos_count = std::make_shared<std::vector<int>>(batch, 0);
  std::vector<double> anchor_loss(batch, 0.0);
  ParallelFor(0, batch, 8, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      int cnt = 0;
      double pos_sum = 0.0;
      for (int j = 0; j < batch; ++j) {
        if (j != i && labels[j] == labels[i]) {
          ++cnt;
          pos_sum += sims[static_cast<size_t>(i) * batch + j];
        }
      }
      (*pos_count)[i] = cnt;
      if (cnt > 0) anchor_loss[i] = -(pos_sum / cnt - lse[i]);
    }
  });
  int valid_anchors = 0;
  double total = 0.0;
  for (int i = 0; i < batch; ++i) {
    if ((*pos_count)[i] > 0) {
      ++valid_anchors;
      total += anchor_loss[i];
    }
  }

  if (valid_anchors == 0) {
    // No positive pairs in the batch; constant zero, no gradient. A replay
    // of this signature could later see positives, so don't compile it.
    graph::AbortRecording(graph::ActiveRecording(),
                          "SupConLoss batch with no positive pairs");
    return Tensor::Scalar(0.0f);
  }

  LossNodeAllocCounter()->Increment();
  auto out = std::make_shared<TensorImpl>();
  out->shape = {1};
  out->data = {static_cast<float>(total / valid_anchors)};
  out->requires_grad = features.requires_grad();

  if (out->requires_grad) {
    out->parents = {features.impl()};
    auto fi = features.impl();
    TensorImpl* o = out.get();
    auto labels_copy = std::make_shared<std::vector<int>>(labels);
    out->backward_fn = [fi, o, norm_feats, norms, probs, pos_count,
                        labels_copy, batch, dim, inv_tau, valid_anchors]() {
      o->EnsureGrad();
      fi->EnsureGrad();
      float gscale = o->grad[0] / static_cast<float>(valid_anchors);
      // g_ij = dL/ds_ij for anchor i (0 on the diagonal and for anchors
      // without positives). Anchor rows are independent.
      std::vector<float> gmat(static_cast<size_t>(batch) * batch, 0.0f);
      ParallelFor(0, batch, 8, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          int cnt = (*pos_count)[i];
          if (cnt == 0) continue;
          float inv_cnt = 1.0f / static_cast<float>(cnt);
          for (int j = 0; j < batch; ++j) {
            if (j == i) continue;
            float g = (*probs)[static_cast<size_t>(i) * batch + j];
            if ((*labels_copy)[j] == (*labels_copy)[i]) g -= inv_cnt;
            gmat[static_cast<size_t>(i) * batch + j] = g * gscale;
          }
        }
      });
      // dL/dẑ = (1/τ) (G + G^T) Ẑ — symmetrize, then one GEMM. The
      // diagonal of G is zero, so no j == k exclusion is needed.
      std::vector<float> sym(static_cast<size_t>(batch) * batch);
      ParallelFor(0, batch, 8, [&](int64_t k0, int64_t k1) {
        for (int64_t k = k0; k < k1; ++k) {
          for (int j = 0; j < batch; ++j) {
            sym[static_cast<size_t>(k) * batch + j] =
                (gmat[static_cast<size_t>(k) * batch + j] +
                 gmat[static_cast<size_t>(j) * batch + k]) *
                inv_tau;
          }
        }
      });
      std::vector<float> dnorm(static_cast<size_t>(batch) * dim, 0.0f);
      GemmNN(sym.data(), norm_feats->data(), dnorm.data(), batch, batch, dim);
      // Chain through the normalization ẑ = z/||z||:
      // dz = (dẑ - (dẑ·ẑ) ẑ) / ||z||. Feature rows are independent.
      ParallelFor(0, batch, 8, [&](int64_t k0, int64_t k1) {
        for (int64_t k = k0; k < k1; ++k) {
          const float* zk = norm_feats->data() + static_cast<size_t>(k) * dim;
          const float* dk = dnorm.data() + static_cast<size_t>(k) * dim;
          float* dst = fi->grad.data() + static_cast<size_t>(k) * dim;
          float dot = 0.0f;
          for (int d = 0; d < dim; ++d) dot += dk[d] * zk[d];
          float inv_norm = 1.0f / (*norms)[k];
          for (int d = 0; d < dim; ++d) {
            dst[d] += (dk[d] - dot * zk[d]) * inv_norm;
          }
        }
      });
    };
  }
  Tensor result(std::move(out));
  RecordLoss(graph::OpKind::kSupConLoss, features, result, graph_args);
  return result;
}

}  // namespace nn
}  // namespace omnimatch
