#ifndef OMNIMATCH_NN_LOSSES_H_
#define OMNIMATCH_NN_LOSSES_H_

#include <vector>

#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Mean softmax cross-entropy over a batch.
///
/// `logits` is [B, C]; `labels[i]` in [0, C). Numerically fused with
/// log-softmax. Used for the rating classifier (Eq. 18-19) and the domain
/// classifier (Eq. 14-17).
Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& labels);

/// Mean squared error between `pred` (B elements, any shape) and `target`.
Tensor MseLoss(const Tensor& pred, const std::vector<float>& target);

/// Supervised contrastive loss (Khosla et al. 2020), Eq. 13 of the paper.
///
/// `features` is [B, D] (the projected user-item pair vectors X̃); positives
/// for anchor i are the other samples with the same `labels[i]` (the rating).
/// Rows are L2-normalized internally before the dot products, matching the
/// reference SupCon implementation. Anchors with no positive in the batch are
/// skipped; if no anchor has a positive the loss is a constant 0 (no
/// gradient).
///
/// Implemented as a single fused node with an analytic gradient
/// (validated against finite differences in tests/nn/losses_test.cc).
Tensor SupConLoss(const Tensor& features, const std::vector<int>& labels,
                  float temperature);

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_LOSSES_H_
