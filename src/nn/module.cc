#include "nn/module.h"

namespace omnimatch {
namespace nn {

std::vector<Tensor> CollectParameters(
    const std::vector<const Module*>& modules) {
  std::vector<Tensor> out;
  for (const Module* m : modules) {
    if (m == nullptr) continue;
    for (const Tensor& p : m->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace nn
}  // namespace omnimatch
