#ifndef OMNIMATCH_NN_MODULE_H_
#define OMNIMATCH_NN_MODULE_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Base class for anything that owns trainable parameters.
///
/// Parameters are persistent `Tensor`s with `requires_grad == true`;
/// optimizers iterate the flat list returned by `Parameters()`. Modules are
/// neither copyable nor movable (parameter identity matters to optimizers
/// holding per-parameter state).
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// Flat list of trainable parameters (including submodules').
  virtual std::vector<Tensor> Parameters() const = 0;

  /// Zeroes every parameter gradient.
  void ZeroGrad() {
    for (Tensor& p : ParametersMutable()) p.ZeroGrad();
  }

  /// Total trainable scalar count.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const Tensor& p : Parameters()) n += p.numel();
    return n;
  }

  /// Switches train/eval behaviour (dropout). Writes only on an actual
  /// change: forward paths re-assert the current mode on every call, and
  /// the equality guard makes that re-assertion a pure read — which is what
  /// lets a frozen inference model (core::OmniMatchModel::SetTrainingMode
  /// pre-sets every submodule) run its forward on several scoring threads
  /// at once without racing on these flags.
  void set_training(bool training) {
    if (training_ != training) training_ = training;
  }
  bool training() const { return training_; }

 protected:
  std::vector<Tensor> ParametersMutable() { return Parameters(); }

  bool training_ = true;
};

/// Concatenates the parameter lists of several modules.
std::vector<Tensor> CollectParameters(
    const std::vector<const Module*>& modules);

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_MODULE_H_
