#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/threadpool.h"
#include "nn/elemwise.h"
#include "nn/gemm.h"
#include "nn/graph.h"
#include "obs/metrics.h"

namespace omnimatch {
namespace nn {

namespace {

using Impl = std::shared_ptr<TensorImpl>;

/// Tape nodes allocated by eager ops. Replayed graph steps allocate none:
/// the ratio of this counter to steps is the zero-alloc evidence surfaced
/// in the metrics snapshot and BENCH_graph.json.
obs::Counter* NodeAllocCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("nn.tensor_node_allocs");
  return counter;
}

/// Creates the output node of an op: shape, requires_grad propagation, and
/// (when grad is needed) the parent edges. The caller attaches backward_fn
/// only when `out->requires_grad` is true.
Tensor MakeOutput(std::vector<int> shape, std::vector<Impl> parents) {
  NodeAllocCounter()->Increment();
  auto out = std::make_shared<TensorImpl>();
  out->shape = std::move(shape);
  out->data.assign(static_cast<size_t>(ShapeNumel(out->shape)), 0.0f);
  bool needs_grad = false;
  for (const Impl& p : parents) needs_grad = needs_grad || p->requires_grad;
  out->requires_grad = needs_grad;
  if (needs_grad) out->parents = std::move(parents);
  return Tensor(std::move(out));
}

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  OM_CHECK(a.shape() == b.shape())
      << op << ": " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

/// Graph-executor entry hook: when the calling thread is replaying a
/// compiled plan, dispatches this op call to the plan (running its kernel
/// on arena buffers) and returns true with the node's output tensor. The
/// eager body is skipped entirely. Runs before the op's own input checks —
/// replayed intermediates keep shapes but not data, so value-based checks
/// happen inside the plan kernels instead.
bool ReplayOp(graph::OpKind kind, std::initializer_list<const Tensor*> inputs,
              const graph::OpArgs& args, Tensor* out) {
  graph::Session* session = graph::ActiveReplay();
  if (session == nullptr) return false;
  *out = graph::Replay(session, kind, inputs.begin(),
                       static_cast<int>(inputs.size()), args);
  return true;
}

/// Graph-executor exit hook: appends the op that just executed eagerly to
/// the recording, if one is active. Pure observation.
void RecordOp(graph::OpKind kind, std::initializer_list<const Tensor*> inputs,
              const Tensor& out, const graph::OpArgs& args) {
  graph::Session* session = graph::ActiveRecording();
  if (session == nullptr) return;
  graph::Record(session, kind, inputs.begin(),
                static_cast<int>(inputs.size()), out, args);
}

/// Concat hooks keep the input-pointer array on the stack so the replay
/// path performs no heap allocation.
constexpr size_t kMaxConcatParts = 16;

bool ReplayConcat(graph::OpKind kind, const std::vector<Tensor>& parts,
                  Tensor* out) {
  graph::Session* session = graph::ActiveReplay();
  if (session == nullptr) return false;
  OM_CHECK_LE(parts.size(), kMaxConcatParts) << "concat too wide to replay";
  const Tensor* ptrs[kMaxConcatParts];
  for (size_t i = 0; i < parts.size(); ++i) ptrs[i] = &parts[i];
  *out = graph::Replay(session, kind, ptrs, static_cast<int>(parts.size()),
                       graph::OpArgs());
  return true;
}

void RecordConcat(graph::OpKind kind, const std::vector<Tensor>& parts,
                  const Tensor& out) {
  graph::Session* session = graph::ActiveRecording();
  if (session == nullptr) return;
  if (parts.size() > kMaxConcatParts) {
    graph::AbortRecording(session, "concat with too many parts");
    return;
  }
  const Tensor* ptrs[kMaxConcatParts];
  for (size_t i = 0; i < parts.size(); ++i) ptrs[i] = &parts[i];
  graph::Record(session, kind, ptrs, static_cast<int>(parts.size()), out,
                graph::OpArgs());
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  if (Tensor r; ReplayOp(graph::OpKind::kAdd, {&a, &b}, {}, &r)) return r;
  CheckSameShape(a, b, "Add");
  Tensor out = MakeOutput(a.shape(), {a.impl(), b.impl()});
  const auto& av = a.data();
  const auto& bv = b.data();
  auto& ov = out.data();
  ParallelElems(ov.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ov[i] = av[i] + bv[i];
  });
  if (out.requires_grad()) {
    Impl ai = a.impl(), bi = b.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [ai, bi, o]() {
      o->EnsureGrad();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) ai->grad[i] += o->grad[i];
        });
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) bi->grad[i] += o->grad[i];
        });
      }
    };
  }
  RecordOp(graph::OpKind::kAdd, {&a, &b}, out, {});
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  graph::UnsupportedOp("Sub");
  CheckSameShape(a, b, "Sub");
  Tensor out = MakeOutput(a.shape(), {a.impl(), b.impl()});
  const auto& av = a.data();
  const auto& bv = b.data();
  auto& ov = out.data();
  ParallelElems(ov.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ov[i] = av[i] - bv[i];
  });
  if (out.requires_grad()) {
    Impl ai = a.impl(), bi = b.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [ai, bi, o]() {
      o->EnsureGrad();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) ai->grad[i] += o->grad[i];
        });
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) bi->grad[i] -= o->grad[i];
        });
      }
    };
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  if (Tensor r; ReplayOp(graph::OpKind::kMul, {&a, &b}, {}, &r)) return r;
  CheckSameShape(a, b, "Mul");
  Tensor out = MakeOutput(a.shape(), {a.impl(), b.impl()});
  const auto& av = a.data();
  const auto& bv = b.data();
  auto& ov = out.data();
  ParallelElems(ov.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ov[i] = av[i] * bv[i];
  });
  if (out.requires_grad()) {
    Impl ai = a.impl(), bi = b.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [ai, bi, o]() {
      o->EnsureGrad();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            ai->grad[i] += o->grad[i] * bi->data[i];
          }
        });
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            bi->grad[i] += o->grad[i] * ai->data[i];
          }
        });
      }
    };
  }
  RecordOp(graph::OpKind::kMul, {&a, &b}, out, {});
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  graph::OpArgs args;
  args.f0 = s;
  if (Tensor r; ReplayOp(graph::OpKind::kScale, {&a}, args, &r)) return r;
  Tensor out = MakeOutput(a.shape(), {a.impl()});
  const auto& av = a.data();
  auto& ov = out.data();
  ParallelElems(ov.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ov[i] = av[i] * s;
  });
  if (out.requires_grad()) {
    Impl ai = a.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [ai, o, s]() {
      o->EnsureGrad();
      ai->EnsureGrad();
      ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) ai->grad[i] += s * o->grad[i];
      });
    };
  }
  RecordOp(graph::OpKind::kScale, {&a}, out, args);
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  graph::UnsupportedOp("AddScalar");
  Tensor out = MakeOutput(a.shape(), {a.impl()});
  const auto& av = a.data();
  auto& ov = out.data();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] + s;
  if (out.requires_grad()) {
    Impl ai = a.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [ai, o]() {
      o->EnsureGrad();
      ai->EnsureGrad();
      for (size_t i = 0; i < o->grad.size(); ++i) ai->grad[i] += o->grad[i];
    };
  }
  return out;
}

Tensor AddRowBroadcast(const Tensor& mat, const Tensor& row) {
  if (Tensor r;
      ReplayOp(graph::OpKind::kAddRowBroadcast, {&mat, &row}, {}, &r)) {
    return r;
  }
  OM_CHECK_EQ(mat.ndim(), 2);
  int rows = mat.dim(0);
  int cols = mat.dim(1);
  OM_CHECK_EQ(static_cast<int>(row.numel()), cols)
      << "bias length must equal column count";
  Tensor out = MakeOutput(mat.shape(), {mat.impl(), row.impl()});
  const auto& mv = mat.data();
  const auto& rv = row.data();
  auto& ov = out.data();
  ParallelFor(0, rows, std::max<int64_t>(1, kElemGrain / cols),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const float* src = mv.data() + static_cast<size_t>(r) * cols;
                  float* dst = ov.data() + static_cast<size_t>(r) * cols;
                  for (int c = 0; c < cols; ++c) dst[c] = src[c] + rv[c];
                }
              });
  if (out.requires_grad()) {
    Impl mi = mat.impl(), ri = row.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [mi, ri, o, rows, cols]() {
      o->EnsureGrad();
      if (mi->requires_grad) {
        mi->EnsureGrad();
        ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) mi->grad[i] += o->grad[i];
        });
      }
      if (ri->requires_grad) {
        ri->EnsureGrad();
        // Column reduction: each column owned by one chunk, rows walked in
        // ascending order — deterministic for any thread count.
        ParallelFor(0, cols, std::max<int64_t>(1, kElemGrain / rows),
                    [&](int64_t c0, int64_t c1) {
                      for (int r = 0; r < rows; ++r) {
                        const float* grow =
                            o->grad.data() + static_cast<size_t>(r) * cols;
                        for (int64_t c = c0; c < c1; ++c) {
                          ri->grad[c] += grow[c];
                        }
                      }
                    });
      }
    };
  }
  RecordOp(graph::OpKind::kAddRowBroadcast, {&mat, &row}, out, {});
  return out;
}

Tensor Relu(const Tensor& x) {
  if (Tensor r; ReplayOp(graph::OpKind::kRelu, {&x}, {}, &r)) return r;
  Tensor out = MakeOutput(x.shape(), {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  ParallelElems(ov.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ov[i] = xv[i] > 0.0f ? xv[i] : 0.0f;
  });
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (xi->data[i] > 0.0f) xi->grad[i] += o->grad[i];
        }
      });
    };
  }
  RecordOp(graph::OpKind::kRelu, {&x}, out, {});
  return out;
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  graph::UnsupportedOp("LeakyRelu");
  Tensor out = MakeOutput(x.shape(), {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  ParallelElems(ov.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ov[i] = xv[i] > 0.0f ? xv[i] : slope * xv[i];
    }
  });
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o, slope]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          xi->grad[i] += o->grad[i] * (xi->data[i] > 0.0f ? 1.0f : slope);
        }
      });
    };
  }
  return out;
}

Tensor Reshape(const Tensor& x, std::vector<int> new_shape) {
  graph::OpArgs args;
  args.shape = &new_shape;
  if (Tensor r; ReplayOp(graph::OpKind::kReshape, {&x}, args, &r)) return r;
  OM_CHECK_EQ(ShapeNumel(new_shape), x.numel())
      << ShapeToString(x.shape()) << " -> " << ShapeToString(new_shape);
  Tensor out = MakeOutput(std::move(new_shape), {x.impl()});
  out.data() = x.data();
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      for (size_t i = 0; i < o->grad.size(); ++i) xi->grad[i] += o->grad[i];
    };
  }
  args.shape = &out.shape();  // new_shape was moved into the output
  RecordOp(graph::OpKind::kReshape, {&x}, out, args);
  return out;
}

Tensor Tanh(const Tensor& x) {
  graph::UnsupportedOp("Tanh");
  Tensor out = MakeOutput(x.shape(), {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  ParallelElems(ov.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ov[i] = std::tanh(xv[i]);
  });
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          float y = o->data[i];
          xi->grad[i] += o->grad[i] * (1.0f - y * y);
        }
      });
    };
  }
  return out;
}

Tensor Sigmoid(const Tensor& x) {
  graph::UnsupportedOp("Sigmoid");
  Tensor out = MakeOutput(x.shape(), {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  ParallelElems(ov.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ov[i] = 1.0f / (1.0f + std::exp(-xv[i]));
    }
  });
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          float y = o->data[i];
          xi->grad[i] += o->grad[i] * y * (1.0f - y);
        }
      });
    };
  }
  return out;
}

Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng) {
  OM_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
  if (!training || p == 0.0f) return x;
  OM_CHECK(rng != nullptr);
  // Hook after the early return: an identity Dropout issues no op call, in
  // recording and replay alike.
  graph::OpArgs args;
  args.f0 = p;
  args.rng = rng;
  if (Tensor r; ReplayOp(graph::OpKind::kDropout, {&x}, args, &r)) return r;
  Tensor out = MakeOutput(x.shape(), {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  float keep_scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(xv.size(), 0.0f);
  // The mask consumes the caller's RNG stream element by element; kept
  // serial so the stream is independent of threading.
  for (size_t i = 0; i < xv.size(); ++i) {
    if (!rng->Bernoulli(p)) (*mask)[i] = keep_scale;
    ov[i] = xv[i] * (*mask)[i];
  }
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o, mask]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      ParallelElems(o->grad.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          xi->grad[i] += o->grad[i] * (*mask)[i];
        }
      });
    };
  }
  RecordOp(graph::OpKind::kDropout, {&x}, out, args);
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (Tensor r; ReplayOp(graph::OpKind::kMatMul, {&a, &b}, {}, &r)) return r;
  OM_CHECK_EQ(a.ndim(), 2);
  OM_CHECK_EQ(b.ndim(), 2);
  int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  OM_CHECK_EQ(k, b.dim(0)) << "MatMul inner dims";
  Tensor out = MakeOutput({m, n}, {a.impl(), b.impl()});
  GemmNN(a.data().data(), b.data().data(), out.data().data(), m, k, n);
  if (out.requires_grad()) {
    Impl ai = a.impl(), bi = b.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [ai, bi, o, m, k, n]() {
      o->EnsureGrad();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        // dA[M,K] += dOut[M,N] * B[K,N]^T
        GemmNT(o->grad.data(), bi->data.data(), ai->grad.data(), m, n, k);
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        // dB[K,N] += A[M,K]^T * dOut[M,N]
        GemmTN(ai->data.data(), o->grad.data(), bi->grad.data(), k, m, n);
      }
    };
  }
  RecordOp(graph::OpKind::kMatMul, {&a, &b}, out, {});
  return out;
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  graph::UnsupportedOp("MatMulNT");
  OM_CHECK_EQ(a.ndim(), 2);
  OM_CHECK_EQ(b.ndim(), 2);
  int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  OM_CHECK_EQ(k, b.dim(1)) << "MatMulNT inner dims";
  Tensor out = MakeOutput({m, n}, {a.impl(), b.impl()});
  GemmNT(a.data().data(), b.data().data(), out.data().data(), m, k, n);
  if (out.requires_grad()) {
    Impl ai = a.impl(), bi = b.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [ai, bi, o, m, k, n]() {
      o->EnsureGrad();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        // dA[M,K] += dOut[M,N] * B[N,K]
        GemmNN(o->grad.data(), bi->data.data(), ai->grad.data(), m, n, k);
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        // dB[N,K] += dOut[M,N]^T * A[M,K]
        GemmTN(o->grad.data(), ai->data.data(), bi->grad.data(), n, m, k);
      }
    };
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  OM_CHECK(!parts.empty());
  if (Tensor r; ReplayConcat(graph::OpKind::kConcatCols, parts, &r)) {
    return r;
  }
  int rows = parts[0].dim(0);
  int total_cols = 0;
  std::vector<Impl> parents;
  for (const Tensor& p : parts) {
    OM_CHECK_EQ(p.ndim(), 2);
    OM_CHECK_EQ(p.dim(0), rows) << "ConcatCols row mismatch";
    total_cols += p.dim(1);
    parents.push_back(p.impl());
  }
  Tensor out = MakeOutput({rows, total_cols}, parents);
  auto& ov = out.data();
  int col_offset = 0;
  for (const Tensor& p : parts) {
    int cols = p.dim(1);
    const auto& pv = p.data();
    for (int r = 0; r < rows; ++r) {
      std::copy(pv.begin() + static_cast<size_t>(r) * cols,
                pv.begin() + static_cast<size_t>(r + 1) * cols,
                ov.begin() + static_cast<size_t>(r) * total_cols + col_offset);
    }
    col_offset += cols;
  }
  if (out.requires_grad()) {
    std::vector<Impl> impls;
    std::vector<int> widths;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl());
      widths.push_back(p.dim(1));
    }
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [impls, widths, o, rows, total_cols]() {
      o->EnsureGrad();
      int offset = 0;
      for (size_t i = 0; i < impls.size(); ++i) {
        int cols = widths[i];
        if (impls[i]->requires_grad) {
          impls[i]->EnsureGrad();
          for (int r = 0; r < rows; ++r) {
            const float* src =
                o->grad.data() + static_cast<size_t>(r) * total_cols + offset;
            float* dst =
                impls[i]->grad.data() + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) dst[c] += src[c];
          }
        }
        offset += cols;
      }
    };
  }
  RecordConcat(graph::OpKind::kConcatCols, parts, out);
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  OM_CHECK(!parts.empty());
  if (Tensor r; ReplayConcat(graph::OpKind::kConcatRows, parts, &r)) {
    return r;
  }
  int cols = parts[0].dim(1);
  int total_rows = 0;
  std::vector<Impl> parents;
  for (const Tensor& p : parts) {
    OM_CHECK_EQ(p.ndim(), 2);
    OM_CHECK_EQ(p.dim(1), cols) << "ConcatRows column mismatch";
    total_rows += p.dim(0);
    parents.push_back(p.impl());
  }
  Tensor out = MakeOutput({total_rows, cols}, parents);
  auto& ov = out.data();
  size_t offset = 0;
  for (const Tensor& p : parts) {
    const auto& pv = p.data();
    std::copy(pv.begin(), pv.end(), ov.begin() + offset);
    offset += pv.size();
  }
  if (out.requires_grad()) {
    std::vector<Impl> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [impls, o]() {
      o->EnsureGrad();
      size_t off = 0;
      for (const Impl& pi : impls) {
        size_t n = pi->data.size();
        if (pi->requires_grad) {
          pi->EnsureGrad();
          for (size_t i = 0; i < n; ++i) pi->grad[i] += o->grad[off + i];
        }
        off += n;
      }
    };
  }
  RecordConcat(graph::OpKind::kConcatRows, parts, out);
  return out;
}

Tensor Gather(const Tensor& table, const std::vector<int>& ids) {
  graph::OpArgs args;
  args.ints = &ids;
  if (Tensor r; ReplayOp(graph::OpKind::kGather, {&table}, args, &r)) {
    return r;
  }
  OM_CHECK_EQ(table.ndim(), 2);
  int vocab = table.dim(0);
  int width = table.dim(1);
  OM_CHECK(!ids.empty());
  for (int id : ids) {
    OM_CHECK(id >= 0 && id < vocab) << "Gather id " << id << " of " << vocab;
  }
  Tensor out =
      MakeOutput({static_cast<int>(ids.size()), width}, {table.impl()});
  const auto& tv = table.data();
  auto& ov = out.data();
  ParallelFor(0, static_cast<int64_t>(ids.size()),
              std::max<int64_t>(1, kElemGrain / width),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  std::copy(
                      tv.begin() + static_cast<size_t>(ids[r]) * width,
                      tv.begin() + static_cast<size_t>(ids[r] + 1) * width,
                      ov.begin() + static_cast<size_t>(r) * width);
                }
              });
  if (out.requires_grad()) {
    Impl ti = table.impl();
    TensorImpl* o = out.impl().get();
    auto ids_copy = std::make_shared<std::vector<int>>(ids);
    out.impl()->backward_fn = [ti, o, ids_copy, vocab, width]() {
      o->EnsureGrad();
      ti->EnsureGrad();
      // Scatter-add sharded by destination row: a chunk owns the table rows
      // in [lo, hi) and walks the id list in order, accumulating only the
      // ids it owns. Every table row is updated by exactly one chunk with a
      // fixed accumulation order, so the result is race-free and
      // bit-identical for any thread count. Each chunk rescans the id list,
      // which is cheap next to the touched gradient rows; the scan also
      // keeps the naturally sparse structure (only referenced rows are
      // written) without a sort or per-thread buffers.
      int64_t work =
          static_cast<int64_t>(ids_copy->size()) * width;
      int64_t shard_rows =
          work < kElemGrain
              ? vocab  // single shard: plain serial scatter
              : std::max<int64_t>(64, vocab / (GetNumThreads() * 4));
      ParallelFor(0, vocab, shard_rows, [&](int64_t lo, int64_t hi) {
        for (size_t r = 0; r < ids_copy->size(); ++r) {
          int id = (*ids_copy)[r];
          if (id < lo || id >= hi) continue;
          float* dst = ti->grad.data() + static_cast<size_t>(id) * width;
          const float* src = o->grad.data() + r * width;
          for (int c = 0; c < width; ++c) dst[c] += src[c];
        }
      });
    };
  }
  RecordOp(graph::OpKind::kGather, {&table}, out, args);
  return out;
}

Tensor MeanRows(const Tensor& x) {
  graph::UnsupportedOp("MeanRows");
  OM_CHECK_EQ(x.ndim(), 2);
  int rows = x.dim(0);
  int cols = x.dim(1);
  Tensor out = MakeOutput({1, cols}, {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      ov[c] += xv[static_cast<size_t>(r) * cols + c];
    }
  }
  float inv = 1.0f / static_cast<float>(rows);
  for (int c = 0; c < cols; ++c) ov[c] *= inv;
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o, rows, cols, inv]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          xi->grad[static_cast<size_t>(r) * cols + c] += inv * o->grad[c];
        }
      }
    };
  }
  return out;
}

Tensor RowSum(const Tensor& x) {
  graph::UnsupportedOp("RowSum");
  OM_CHECK_EQ(x.ndim(), 2);
  int rows = x.dim(0);
  int cols = x.dim(1);
  Tensor out = MakeOutput({rows, 1}, {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  for (int r = 0; r < rows; ++r) {
    float acc = 0.0f;
    const float* row = xv.data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) acc += row[c];
    ov[static_cast<size_t>(r)] = acc;
  }
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o, rows, cols]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      for (int r = 0; r < rows; ++r) {
        float g = o->grad[static_cast<size_t>(r)];
        float* row = xi->grad.data() + static_cast<size_t>(r) * cols;
        for (int c = 0; c < cols; ++c) row[c] += g;
      }
    };
  }
  return out;
}

Tensor MeanAxis1(const Tensor& x) {
  if (Tensor r; ReplayOp(graph::OpKind::kMeanAxis1, {&x}, {}, &r)) return r;
  OM_CHECK_EQ(x.ndim(), 3);
  int batch = x.dim(0);
  int length = x.dim(1);
  int width = x.dim(2);
  Tensor out = MakeOutput({batch, width}, {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  float inv = 1.0f / static_cast<float>(length);
  int64_t per_doc = static_cast<int64_t>(length) * width;
  ParallelFor(0, batch, std::max<int64_t>(1, kElemGrain / per_doc),
              [&](int64_t b0, int64_t b1) {
                for (int64_t b = b0; b < b1; ++b) {
                  float* orow = ov.data() + static_cast<size_t>(b) * width;
                  for (int l = 0; l < length; ++l) {
                    const float* row =
                        xv.data() +
                        (static_cast<size_t>(b) * length + l) * width;
                    for (int e = 0; e < width; ++e) orow[e] += row[e];
                  }
                  for (int e = 0; e < width; ++e) orow[e] *= inv;
                }
              });
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o, batch, length, width, inv,
                               per_doc]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      ParallelFor(0, batch, std::max<int64_t>(1, kElemGrain / per_doc),
                  [&](int64_t b0, int64_t b1) {
                    for (int64_t b = b0; b < b1; ++b) {
                      const float* grow =
                          o->grad.data() + static_cast<size_t>(b) * width;
                      for (int l = 0; l < length; ++l) {
                        float* row =
                            xi->grad.data() +
                            (static_cast<size_t>(b) * length + l) * width;
                        for (int e = 0; e < width; ++e) {
                          row[e] += inv * grow[e];
                        }
                      }
                    }
                  });
    };
  }
  RecordOp(graph::OpKind::kMeanAxis1, {&x}, out, {});
  return out;
}

Tensor Softmax(const Tensor& x) {
  graph::UnsupportedOp("Softmax");
  OM_CHECK_EQ(x.ndim(), 2);
  int rows = x.dim(0);
  int cols = x.dim(1);
  Tensor out = MakeOutput(x.shape(), {x.impl()});
  const auto& xv = x.data();
  auto& ov = out.data();
  ParallelFor(0, rows, std::max<int64_t>(1, kElemGrain / cols),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const float* xr = xv.data() + static_cast<size_t>(r) * cols;
                  float* orow = ov.data() + static_cast<size_t>(r) * cols;
                  float max_v = xr[0];
                  for (int c = 1; c < cols; ++c) {
                    max_v = std::max(max_v, xr[c]);
                  }
                  float sum = 0.0f;
                  for (int c = 0; c < cols; ++c) {
                    orow[c] = std::exp(xr[c] - max_v);
                    sum += orow[c];
                  }
                  float inv = 1.0f / sum;
                  for (int c = 0; c < cols; ++c) orow[c] *= inv;
                }
              });
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o, rows, cols]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      ParallelFor(0, rows, std::max<int64_t>(1, kElemGrain / cols),
                  [&](int64_t r0, int64_t r1) {
                    for (int64_t r = r0; r < r1; ++r) {
                      const float* y =
                          o->data.data() + static_cast<size_t>(r) * cols;
                      const float* dy =
                          o->grad.data() + static_cast<size_t>(r) * cols;
                      float* dx =
                          xi->grad.data() + static_cast<size_t>(r) * cols;
                      float dot = 0.0f;
                      for (int c = 0; c < cols; ++c) dot += y[c] * dy[c];
                      for (int c = 0; c < cols; ++c) {
                        dx[c] += y[c] * (dy[c] - dot);
                      }
                    }
                  });
    };
  }
  return out;
}

Tensor SumAll(const Tensor& x) {
  graph::UnsupportedOp("SumAll");
  Tensor out = MakeOutput({1}, {x.impl()});
  const auto& xv = x.data();
  // Serial double accumulation: the canonical fixed-order reduction.
  double acc = 0.0;
  for (float v : xv) acc += v;
  out.data()[0] = static_cast<float>(acc);
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      float g = o->grad[0];
      for (float& v : xi->grad) v += g;
    };
  }
  return out;
}

Tensor MeanAll(const Tensor& x) {
  float inv = 1.0f / static_cast<float>(x.numel());
  return Scale(SumAll(x), inv);
}

Tensor GradReverse(const Tensor& x, float lambda) {
  graph::OpArgs args;
  args.f0 = lambda;
  if (Tensor r; ReplayOp(graph::OpKind::kGradReverse, {&x}, args, &r)) {
    return r;
  }
  Tensor out = MakeOutput(x.shape(), {x.impl()});
  out.data() = x.data();
  if (out.requires_grad()) {
    Impl xi = x.impl();
    TensorImpl* o = out.impl().get();
    out.impl()->backward_fn = [xi, o, lambda]() {
      o->EnsureGrad();
      xi->EnsureGrad();
      for (size_t i = 0; i < o->grad.size(); ++i) {
        xi->grad[i] -= lambda * o->grad[i];
      }
    };
  }
  RecordOp(graph::OpKind::kGradReverse, {&x}, out, args);
  return out;
}

Tensor TextConvMaxPool(const Tensor& input, const Tensor& weight,
                       const Tensor& bias, int kernel_size) {
  graph::OpArgs args;
  args.i0 = kernel_size;
  if (Tensor r; ReplayOp(graph::OpKind::kTextConvMaxPool,
                         {&input, &weight, &bias}, args, &r)) {
    return r;
  }
  OM_CHECK_EQ(input.ndim(), 3);
  OM_CHECK_EQ(weight.ndim(), 2);
  int batch = input.dim(0);
  int length = input.dim(1);
  int embed = input.dim(2);
  int channels = weight.dim(0);
  OM_CHECK_EQ(weight.dim(1), kernel_size * embed)
      << "filter width must be kernel_size * embed";
  OM_CHECK_EQ(static_cast<int>(bias.numel()), channels);
  OM_CHECK_GE(length, kernel_size) << "document shorter than kernel";
  int windows = length - kernel_size + 1;

  Tensor out =
      MakeOutput({batch, channels}, {input.impl(), weight.impl(), bias.impl()});
  const float* x = input.data().data();
  const float* w = weight.data().data();
  const float* bvec = bias.data().data();
  float* o = out.data().data();
  // argmax window index per (batch, channel), needed for backward.
  auto argmax = std::make_shared<std::vector<int>>(
      static_cast<size_t>(batch) * channels, 0);

  int filter_len = kernel_size * embed;
  // Batch-parallel: each document's scores GEMM + max-pool is independent.
  ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
    std::vector<float> scores(static_cast<size_t>(windows) * channels);
    for (int64_t b = b0; b < b1; ++b) {
      std::fill(scores.begin(), scores.end(), 0.0f);
      const float* doc = x + static_cast<size_t>(b) * length * embed;
      // scores[t, c] = <doc window t, filter c>; windows overlap via
      // lda=embed.
      GemmNTStrided(doc, embed, w, scores.data(), windows, filter_len,
                    channels);
      for (int c = 0; c < channels; ++c) {
        float best = scores[c];
        int best_t = 0;
        for (int t = 1; t < windows; ++t) {
          float v = scores[static_cast<size_t>(t) * channels + c];
          if (v > best) {
            best = v;
            best_t = t;
          }
        }
        best += bvec[c];
        // max-over-time then ReLU == ReLU then max (ReLU is monotone).
        o[static_cast<size_t>(b) * channels + c] = best > 0.0f ? best : 0.0f;
        (*argmax)[static_cast<size_t>(b) * channels + c] = best_t;
      }
    }
  });

  if (out.requires_grad()) {
    Impl xi = input.impl(), wi = weight.impl(), bi = bias.impl();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward_fn = [xi, wi, bi, oi, argmax, batch, length, embed,
                               channels, filter_len]() {
      oi->EnsureGrad();
      bool need_x = xi->requires_grad;
      bool need_w = wi->requires_grad;
      bool need_b = bi->requires_grad;
      if (need_x) xi->EnsureGrad();
      if (need_w) wi->EnsureGrad();
      if (need_b) bi->EnsureGrad();
      // Two sharded passes instead of one serial loop: documents own their
      // input-gradient rows (windows of different channels may overlap
      // inside one document, but never across documents), and channels own
      // their filter/bias gradient rows. Both passes walk the other axis in
      // ascending order, so gradients are bit-identical for any thread
      // count.
      if (need_x) {
        ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
          for (int64_t b = b0; b < b1; ++b) {
            float* ddoc =
                xi->grad.data() + static_cast<size_t>(b) * length * embed;
            for (int c = 0; c < channels; ++c) {
              size_t oc = static_cast<size_t>(b) * channels + c;
              float g = oi->grad[oc];
              if (g == 0.0f || oi->data[oc] <= 0.0f) continue;
              int t = (*argmax)[oc];
              const float* wrow =
                  wi->data.data() + static_cast<size_t>(c) * filter_len;
              float* dwin = ddoc + static_cast<size_t>(t) * embed;
              for (int j = 0; j < filter_len; ++j) dwin[j] += g * wrow[j];
            }
          }
        });
      }
      if (need_w || need_b) {
        ParallelFor(0, channels, 1, [&](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            float* dwrow =
                need_w ? wi->grad.data() + static_cast<size_t>(c) * filter_len
                       : nullptr;
            for (int b = 0; b < batch; ++b) {
              size_t oc = static_cast<size_t>(b) * channels + c;
              float g = oi->grad[oc];
              if (g == 0.0f || oi->data[oc] <= 0.0f) continue;
              if (need_b) bi->grad[c] += g;
              if (need_w) {
                int t = (*argmax)[oc];
                const float* win =
                    xi->data.data() +
                    (static_cast<size_t>(b) * length + t) * embed;
                for (int j = 0; j < filter_len; ++j) dwrow[j] += g * win[j];
              }
            }
          }
        });
      }
    };
  }
  RecordOp(graph::OpKind::kTextConvMaxPool, {&input, &weight, &bias}, out,
           args);
  return out;
}

}  // namespace nn
}  // namespace omnimatch
