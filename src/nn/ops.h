#ifndef OMNIMATCH_NN_OPS_H_
#define OMNIMATCH_NN_OPS_H_

#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Differentiable functional ops. Each builds one node of the define-by-run
/// autograd graph. Shapes are validated with OM_CHECK (shape errors are
/// programmer errors, not runtime conditions).

/// Elementwise a + b. Shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b. Shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (Hadamard). Shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * scalar.
Tensor Scale(const Tensor& a, float s);

/// a + scalar (broadcast).
Tensor AddScalar(const Tensor& a, float s);

/// mat [B, N] + row [1, N] or [N], broadcast over rows (bias add).
Tensor AddRowBroadcast(const Tensor& mat, const Tensor& row);

/// max(0, x).
Tensor Relu(const Tensor& x);

/// x if x > 0 else slope * x (NGCF's activation).
Tensor LeakyRelu(const Tensor& x, float slope = 0.2f);

/// Same data viewed under a new shape (element count must match).
/// Copies on forward; gradient flows through element-wise.
Tensor Reshape(const Tensor& x, std::vector<int> new_shape);

/// tanh(x).
Tensor Tanh(const Tensor& x);

/// 1 / (1 + exp(-x)).
Tensor Sigmoid(const Tensor& x);

/// Inverted dropout: zeroes each element with probability `p` and rescales
/// survivors by 1/(1-p). Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng);

/// Matrix product A[M,K] x B[K,N] -> [M,N].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// A[M,K] x B[N,K]^T -> [M,N]. Used for similarity matrices and attention.
Tensor MatMulNT(const Tensor& a, const Tensor& b);

/// Concatenates 2-D tensors with equal row counts along columns.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates 2-D tensors with equal column counts along rows.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Row gather: table [V, E], ids in [0, V) -> [ids.size(), E].
/// Backward scatter-adds into the table (embedding lookup).
Tensor Gather(const Tensor& table, const std::vector<int>& ids);

/// Mean over rows: [R, C] -> [1, C].
Tensor MeanRows(const Tensor& x);

/// Row-wise sum: [R, C] -> [R, 1]. (Dot products via RowSum(Mul(a, b)).)
Tensor RowSum(const Tensor& x);

/// Mean over the middle axis of a 3-D tensor: [B, L, E] -> [B, E].
/// The bag-of-words mean of embedded documents.
Tensor MeanAxis1(const Tensor& x);

/// Row-wise softmax over the last axis of a 2-D tensor.
Tensor Softmax(const Tensor& x);

/// Sum of all elements -> scalar [1].
Tensor SumAll(const Tensor& x);

/// Mean of all elements -> scalar [1].
Tensor MeanAll(const Tensor& x);

/// Gradient Reversal Layer (Ganin & Lempitsky): identity in the forward
/// pass; multiplies the incoming gradient by -lambda in the backward pass.
/// The adversarial mechanism of the Domain Adversarial Training Module.
Tensor GradReverse(const Tensor& x, float lambda);

/// Fused text convolution + max-over-time pooling + ReLU.
///
/// `input` has shape [B, L, E] (a batch of token-embedded documents),
/// `weight` [C, h*E] holds C filters spanning h consecutive tokens, and
/// `bias` [C]. For each document the op computes
///   s[c, t] = bias[c] + <weight[c], input[t : t+h]>,
///   out[b, c] = ReLU(max_t s[c, t]),
/// which equals max-over-time of ReLU(conv) since ReLU is monotone.
/// Requires L >= h.
Tensor TextConvMaxPool(const Tensor& input, const Tensor& weight,
                       const Tensor& bias, int kernel_size);

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_OPS_H_
