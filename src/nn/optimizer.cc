#include "nn/optimizer.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "nn/health.h"

namespace omnimatch {
namespace nn {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    OM_CHECK(p.defined());
    OM_CHECK(p.requires_grad()) << "optimizer parameter without grad";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

GradClipResult Optimizer::ClipGradNorm(float max_norm) {
  OM_CHECK_GT(max_norm, 0.0f);
  // One deterministic parallel scan yields both the norm and the non-finite
  // detection; per-tensor partials merge in index order, so the norm (and
  // therefore the scaled gradients) is bit-identical for any thread count.
  BufferHealth health;
  for (Tensor& p : params_) {
    health.Merge(
        ScanBuffer(p.grad().data(), static_cast<int64_t>(p.grad().size())));
  }
  GradClipResult result;
  result.norm = health.l2();
  // sum_sq accumulates only finite values, but squaring huge-but-finite
  // gradients can itself overflow to Inf — treat that as poisoned too.
  if (!health.finite() || !std::isfinite(result.norm)) {
    result.finite = false;
    return result;  // do NOT scale: max_norm / NaN poisons every parameter
  }
  if (result.norm <= max_norm) return result;  // includes the zero gradient
  result.clipped = true;
  float scale = static_cast<float>(max_norm / (result.norm + 1e-12));
  for (Tensor& p : params_) {
    float* g = p.grad().data();
    ParallelFor(0, static_cast<int64_t>(p.grad().size()), 1 << 14,
                [g, scale](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) g[i] *= scale;
                });
  }
  return result;
}

Status Optimizer::ImportState(const OptimizerState& state) {
  if (!state.counters.empty() || !state.slots.empty()) {
    return Status::InvalidArgument(
        "optimizer state carries buffers but this optimizer is stateless");
  }
  return Status::OK();
}

Status Optimizer::RestoreSlots(const std::vector<std::vector<float>>& slots,
                               std::vector<std::vector<float>*> dst) {
  if (slots.size() != dst.size()) {
    return Status::InvalidArgument(StrFormat(
        "optimizer state has %zu slots, expected %zu", slots.size(),
        dst.size()));
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (slots[i].size() != dst[i]->size()) {
      return Status::InvalidArgument(StrFormat(
          "optimizer slot %zu has %zu values, expected %zu", i,
          slots[i].size(), dst[i]->size()));
    }
  }
  for (size_t i = 0; i < dst.size(); ++i) *dst[i] = slots[i];
  return Status::OK();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ != 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j] + weight_decay_ * data[j];
      if (momentum_ != 0.0f) {
        velocity_[i][j] = momentum_ * velocity_[i][j] + g;
        g = velocity_[i][j];
      }
      data[j] -= lr_ * g;
    }
  }
}

OptimizerState Sgd::ExportState() const {
  OptimizerState state;
  ExportStateInto(&state);
  return state;
}

void Sgd::ExportStateInto(OptimizerState* out) const {
  out->counters.clear();
  out->slots.resize(velocity_.size());
  for (size_t i = 0; i < velocity_.size(); ++i) out->slots[i] = velocity_[i];
}

Status Sgd::ImportState(const OptimizerState& state) {
  if (!state.counters.empty()) {
    return Status::InvalidArgument("SGD state has no counters");
  }
  std::vector<std::vector<float>*> dst;
  for (auto& v : velocity_) dst.push_back(&v);
  return RestoreSlots(state.slots, std::move(dst));
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    v_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j] + weight_decay_ * data[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      float mhat = m_[i][j] / bc1;
      float vhat = v_[i][j] / bc2;
      data[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

OptimizerState Adam::ExportState() const {
  OptimizerState state;
  ExportStateInto(&state);
  return state;
}

void Adam::ExportStateInto(OptimizerState* out) const {
  out->counters.assign(1, t_);
  out->slots.resize(m_.size() + v_.size());
  for (size_t i = 0; i < m_.size(); ++i) out->slots[i] = m_[i];
  for (size_t i = 0; i < v_.size(); ++i) out->slots[m_.size() + i] = v_[i];
}

Status Adam::ImportState(const OptimizerState& state) {
  if (state.counters.size() != 1) {
    return Status::InvalidArgument("Adam state needs exactly one counter");
  }
  std::vector<std::vector<float>*> dst;
  for (auto& m : m_) dst.push_back(&m);
  for (auto& v : v_) dst.push_back(&v);
  OM_RETURN_IF_ERROR(RestoreSlots(state.slots, std::move(dst)));
  t_ = state.counters[0];
  return Status::OK();
}

Adadelta::Adadelta(std::vector<Tensor> params, float lr, float rho, float eps)
    : Optimizer(std::move(params)), lr_(lr), rho_(rho), eps_(eps) {
  accum_grad_.resize(params_.size());
  accum_update_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    accum_grad_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    accum_update_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
  }
}

void Adadelta::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    auto& eg = accum_grad_[i];
    auto& eu = accum_update_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j];
      eg[j] = rho_ * eg[j] + (1.0f - rho_) * g * g;
      float update =
          std::sqrt((eu[j] + eps_) / (eg[j] + eps_)) * g;
      eu[j] = rho_ * eu[j] + (1.0f - rho_) * update * update;
      data[j] -= lr_ * update;
    }
  }
}

OptimizerState Adadelta::ExportState() const {
  OptimizerState state;
  ExportStateInto(&state);
  return state;
}

void Adadelta::ExportStateInto(OptimizerState* out) const {
  out->counters.clear();
  out->slots.resize(accum_grad_.size() + accum_update_.size());
  for (size_t i = 0; i < accum_grad_.size(); ++i) {
    out->slots[i] = accum_grad_[i];
  }
  for (size_t i = 0; i < accum_update_.size(); ++i) {
    out->slots[accum_grad_.size() + i] = accum_update_[i];
  }
}

Status Adadelta::ImportState(const OptimizerState& state) {
  if (!state.counters.empty()) {
    return Status::InvalidArgument("Adadelta state has no counters");
  }
  std::vector<std::vector<float>*> dst;
  for (auto& g : accum_grad_) dst.push_back(&g);
  for (auto& u : accum_update_) dst.push_back(&u);
  return RestoreSlots(state.slots, std::move(dst));
}

}  // namespace nn
}  // namespace omnimatch
