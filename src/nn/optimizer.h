#ifndef OMNIMATCH_NN_OPTIMIZER_H_
#define OMNIMATCH_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Base optimizer over a fixed parameter list.
///
/// Usage per training step: ZeroGrad() -> forward -> loss.Backward() ->
/// Step(). Per-parameter state (momentum buffers etc.) is keyed by position,
/// so the parameter list must not change after construction.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Clips gradients to a maximum global L2 norm. Call before Step().
  /// No-op if the current norm is below `max_norm`.
  void ClipGradNorm(float max_norm);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Stochastic gradient descent with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Adadelta (Zeiler 2012) — the optimizer the paper trains with
/// (lr = 0.02, rho = 0.95, §5.4).
class Adadelta : public Optimizer {
 public:
  Adadelta(std::vector<Tensor> params, float lr = 0.02f, float rho = 0.95f,
           float eps = 1e-6f);

  void Step() override;

 private:
  float lr_;
  float rho_;
  float eps_;
  std::vector<std::vector<float>> accum_grad_;
  std::vector<std::vector<float>> accum_update_;
};

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_OPTIMIZER_H_
