#ifndef OMNIMATCH_NN_OPTIMIZER_H_
#define OMNIMATCH_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {

/// Serializable optimizer state for checkpointing.
///
/// `slots` holds the per-parameter accumulator buffers in an
/// optimizer-defined order (e.g. Adam stores all first moments, then all
/// second moments); `counters` holds scalar step counts (e.g. Adam's t).
/// An optimizer with no state exports empty vectors.
struct OptimizerState {
  std::vector<int64_t> counters;
  std::vector<std::vector<float>> slots;
};

/// Outcome of a ClipGradNorm call, consumed by the training guard.
///
/// `norm` is the global L2 norm over the FINITE gradient values; `finite`
/// is false when any gradient is NaN/Inf (or the squared sum overflowed),
/// in which case no scaling was applied — clipping a poisoned gradient
/// would otherwise turn every parameter into NaN in one step.
struct GradClipResult {
  double norm = 0.0;
  bool finite = true;
  bool clipped = false;
};

/// Base optimizer over a fixed parameter list.
///
/// Usage per training step: ZeroGrad() -> forward -> loss.Backward() ->
/// Step(). Per-parameter state (momentum buffers etc.) is keyed by position,
/// so the parameter list must not change after construction.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Clips gradients to a maximum global L2 norm. Call before Step().
  /// No-op if the current norm is below `max_norm` — including the zero
  /// gradient — or when any gradient is non-finite (see GradClipResult:
  /// scaling by a NaN norm would silently poison every parameter). The
  /// caller decides what to do with an unhealthy result; Step() must be
  /// skipped for the detection to be worth anything.
  GradClipResult ClipGradNorm(float max_norm);

  /// Current learning rate / scale applied at Step().
  virtual float lr() const = 0;

  /// Overrides the learning rate; the guard's divergence backoff uses this.
  virtual void set_lr(float lr) = 0;

  /// Exports the accumulator buffers and step counters needed to resume
  /// optimization bit-for-bit. Stateless optimizers return empty state.
  virtual OptimizerState ExportState() const { return OptimizerState(); }

  /// Same as ExportState, but writes into `out`, reusing its buffers when
  /// the shapes already match. The guard captures a rollback snapshot every
  /// training step; this keeps that capture allocation-free after the
  /// first step.
  virtual void ExportStateInto(OptimizerState* out) const {
    out->counters.clear();
    out->slots.clear();
  }

  /// Restores state captured by ExportState on an optimizer constructed
  /// over the same parameter list. InvalidArgument when the slot/counter
  /// counts or any buffer size disagree with this optimizer's layout.
  virtual Status ImportState(const OptimizerState& state);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  /// Shared ImportState validation: `slots` must match `dst` buffer-for-
  /// buffer in count and per-buffer size.
  static Status RestoreSlots(const std::vector<std::vector<float>>& slots,
                             std::vector<std::vector<float>*> dst);

  std::vector<Tensor> params_;
};

/// Stochastic gradient descent with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

  /// State layout: one velocity slot per parameter (none when momentum is
  /// off — plain SGD is stateless). No counters.
  OptimizerState ExportState() const override;
  void ExportStateInto(OptimizerState* out) const override;
  Status ImportState(const OptimizerState& state) override;

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  /// State layout: all first moments, then all second moments (2P slots);
  /// counters = {t}.
  OptimizerState ExportState() const override;
  void ExportStateInto(OptimizerState* out) const override;
  Status ImportState(const OptimizerState& state) override;

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Adadelta (Zeiler 2012) — the optimizer the paper trains with
/// (lr = 0.02, rho = 0.95, §5.4).
class Adadelta : public Optimizer {
 public:
  Adadelta(std::vector<Tensor> params, float lr = 0.02f, float rho = 0.95f,
           float eps = 1e-6f);

  void Step() override;

  /// State layout: all gradient accumulators, then all update accumulators
  /// (2P slots). No counters.
  OptimizerState ExportState() const override;
  void ExportStateInto(OptimizerState* out) const override;
  Status ImportState(const OptimizerState& state) override;

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

 private:
  float lr_;
  float rho_;
  float eps_;
  std::vector<std::vector<float>> accum_grad_;
  std::vector<std::vector<float>> accum_update_;
};

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_OPTIMIZER_H_
