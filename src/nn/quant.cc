#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

#include "common/check.h"
#include "common/threadpool.h"
#include "nn/elemwise.h"

namespace omnimatch {
namespace nn {
namespace quant {

namespace {

obs::Counter* QuantGemmCalls() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("quant.gemm_calls");
  return c;
}
obs::Counter* QuantGemmOps() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("quant.gemm_ops");
  return c;
}

/// clamp, then round-to-nearest-even — symmetric, so -128 is never produced
/// and negation commutes with quantization. Clamping BEFORE rounding is
/// equivalent (rounding is monotone and the bounds are integers). Rounding
/// uses the 1.5·2^23 magic-constant trick: for |c| <= 127 the sum lands in
/// [2^23, 2^24) where float ulp is exactly 1, so the IEEE add rounds c to
/// the nearest integer (ties to even, same as nearbyintf) and the subtract
/// is exact. Branch-free, no libm call (nearbyintf/lrintf stay PLT calls
/// under default -fmath-errno), and auto-vectorizable — this runs once per
/// activation element on the serving hot path. Lives here (one TU, portable
/// flags) so rounding is identical no matter which GEMM flavor dispatch
/// picked.
inline int8_t QuantizeOne(float x, float inv_scale) {
  constexpr float kRound = 12582912.0f;  // 1.5 * 2^23
  const float c = std::min(127.0f, std::max(-127.0f, x * inv_scale));
  return static_cast<int8_t>((c + kRound) - kRound);
}

}  // namespace

QuantizedWeights QuantizeWeightsPerChannel(const Tensor& weight) {
  OM_CHECK_EQ(weight.ndim(), 2);
  const int in = weight.dim(0);
  const int out = weight.dim(1);
  const std::vector<float>& w = weight.data();
  QuantizedWeights q;
  q.in = in;
  q.out = out;
  q.packed.resize(static_cast<size_t>(in) * out);
  q.scales.resize(static_cast<size_t>(out));
  for (int n = 0; n < out; ++n) {
    float max_abs = 0.0f;
    for (int k = 0; k < in; ++k) {
      max_abs = std::max(max_abs,
                         std::fabs(w[static_cast<size_t>(k) * out + n]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
    q.scales[static_cast<size_t>(n)] = scale;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    int8_t* row = q.packed.data() + static_cast<size_t>(n) * in;
    for (int k = 0; k < in; ++k) {
      row[k] = QuantizeOne(w[static_cast<size_t>(k) * out + n], inv);
    }
  }
  return q;
}

void QuantizeActivations(const float* x, size_t n, float scale, int8_t* q) {
  if (scale <= 0.0f) {
    std::fill(q, q + n, static_cast<int8_t>(0));
    return;
  }
  const float inv = 1.0f / scale;
  size_t i = 0;
#if defined(__SSE2__)
  // SSE2 is part of the x86-64 baseline, so this is NOT a dispatched path —
  // it runs identically under every OMNIMATCH_ISA level, which is what the
  // bit-identity contract needs. cvtps2dq rounds to nearest-even under the
  // default MXCSR mode, exactly the scalar magic-constant rounding, and the
  // pack saturations are no-ops because the values are already clamped to
  // [-127, 127]. Branchless min/max also makes throughput independent of
  // how many inputs saturate (the scalar clamp's branches mispredict badly
  // on saturating data).
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128 vlo = _mm_set1_ps(-127.0f);
  const __m128 vhi = _mm_set1_ps(127.0f);
  for (; i + 16 <= n; i += 16) {
    __m128i d[4];
    for (int j = 0; j < 4; ++j) {
      __m128 v = _mm_mul_ps(_mm_loadu_ps(x + i + 4 * j), vinv);
      v = _mm_min_ps(vhi, _mm_max_ps(vlo, v));
      d[j] = _mm_cvtps_epi32(v);
    }
    const __m128i w0 = _mm_packs_epi32(d[0], d[1]);
    const __m128i w1 = _mm_packs_epi32(d[2], d[3]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                     _mm_packs_epi16(w0, w1));
  }
#elif defined(__ARM_NEON)
  // NEON is the aarch64 baseline; vcvtnq rounds to nearest-even like the
  // scalar path, so the same reasoning applies.
  const float32x4_t vinv = vdupq_n_f32(inv);
  const float32x4_t vlo = vdupq_n_f32(-127.0f);
  const float32x4_t vhi = vdupq_n_f32(127.0f);
  for (; i + 16 <= n; i += 16) {
    int32x4_t d[4];
    for (int j = 0; j < 4; ++j) {
      float32x4_t v = vmulq_f32(vld1q_f32(x + i + 4 * j), vinv);
      v = vminq_f32(vhi, vmaxq_f32(vlo, v));
      d[j] = vcvtnq_s32_f32(v);
    }
    const int16x8_t w0 = vcombine_s16(vmovn_s32(d[0]), vmovn_s32(d[1]));
    const int16x8_t w1 = vcombine_s16(vmovn_s32(d[2]), vmovn_s32(d[3]));
    vst1q_s8(q + i, vcombine_s8(vmovn_s16(w0), vmovn_s16(w1)));
  }
#endif
  for (; i < n; ++i) q[i] = QuantizeOne(x[i], inv);
}

ActivationCalibrator::ActivationCalibrator()
    : hist_(std::make_unique<obs::Histogram>(AbsBounds())) {}

std::vector<double> ActivationCalibrator::AbsBounds() {
  // Geometric 1e-6 .. 1e6, 16 buckets per decade: activations span a few
  // decades at most, and ~15% bucket resolution is plenty for a clip point
  // that gets clamped to the exact max anyway.
  std::vector<double> bounds;
  bounds.reserve(12 * 16 + 1);
  const double ratio = std::pow(10.0, 1.0 / 16.0);
  double b = 1e-6;
  for (int i = 0; i <= 12 * 16; ++i) {
    bounds.push_back(b);
    b *= ratio;
  }
  return bounds;
}

void ActivationCalibrator::Observe(const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    hist_->Observe(static_cast<double>(a));
    if (a > max_abs_) max_abs_ = a;
  }
}

float ActivationCalibrator::ComputeScale(double quantile) const {
  if (hist_->Count() == 0 || max_abs_ <= 0.0f) return 0.0f;
  // The histogram bucket bound can overshoot the true quantile by one
  // bucket ratio; the exact running max caps it. With quantile == 1.0 this
  // reduces to max_abs exactly.
  const double clip = std::min(static_cast<double>(max_abs_),
                               obs::HistogramQuantile(*hist_, quantile));
  if (clip <= 0.0) return 0.0f;
  return static_cast<float>(clip / 127.0);
}

bool ShouldQuantizeNode(const QuantOptions& options, int k, int n,
                        std::string* reason) {
  if (k < options.min_k) {
    if (reason != nullptr) {
      *reason = "K=" + std::to_string(k) + " below min_k=" +
                std::to_string(options.min_k);
    }
    return false;
  }
  if (n < options.min_n) {
    if (reason != nullptr) {
      *reason = "N=" + std::to_string(n) + " below min_n=" +
                std::to_string(options.min_n);
    }
    return false;
  }
  if (reason != nullptr) *reason = "int8 profitable";
  return true;
}

int QuantPlan::Int8Nodes() const {
  int count = 0;
  for (const QuantNode& node : nodes) {
    if (node.int8) ++count;
  }
  return count;
}

std::string QuantPlan::ToString() const {
  std::ostringstream os;
  os << "QuantPlan{isa=" << IsaName(isa) << ", nodes=[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) os << ", ";
    os << nodes[i].name << "(K=" << nodes[i].k << ",N=" << nodes[i].n
       << "," << (nodes[i].int8 ? "int8" : "float32") << ": "
       << nodes[i].reason << ")";
  }
  os << "]}";
  return os.str();
}

QuantizedLinear::QuantizedLinear(const Tensor& weight, const Tensor& bias,
                                 float input_scale, bool relu)
    : weights_(QuantizeWeightsPerChannel(weight)),
      bias_(bias.data()),
      input_scale_(input_scale),
      relu_(relu) {
  OM_CHECK_EQ(static_cast<int>(bias_.size()), weights_.out);
  OM_CHECK_LE(weights_.in, int8gemm::kMaxK);
  dequant_.resize(weights_.scales.size());
  for (size_t n = 0; n < dequant_.size(); ++n) {
    dequant_[n] = input_scale_ * weights_.scales[n];
  }
}

void QuantizedLinear::Forward(const float* x, int rows, float* y) const {
  ForwardWithKernel(x, rows, y, int8gemm::ActiveKernel());
}

void QuantizedLinear::ForwardWithKernel(
    const float* x, int rows, float* y,
    int8gemm::Int8GemmNTFn kernel) const {
  if (rows <= 0) return;
  const int k_dim = weights_.in;
  const int n_dim = weights_.out;
  QuantGemmCalls()->Increment();
  QuantGemmOps()->Add(2LL * rows * k_dim * n_dim);
  // Row sharding: quantize → integer GEMM → dequant epilogue, all on this
  // task's own rows. Each output element is produced by exactly one task
  // from exactly one (deterministic) int32 accumulator, so results are
  // bit-identical for every thread count AND every kernel flavor.
  const int64_t grain =
      std::max<int64_t>(1, kElemGrain / std::max(1, k_dim * n_dim));
  ParallelFor(0, rows, grain, [&](int64_t r0, int64_t r1) {
    static thread_local std::vector<int8_t> xq;
    static thread_local std::vector<int32_t> acc;
    const int chunk = static_cast<int>(r1 - r0);
    xq.resize(static_cast<size_t>(chunk) * k_dim);
    acc.resize(static_cast<size_t>(chunk) * n_dim);
    QuantizeActivations(x + r0 * k_dim, static_cast<size_t>(chunk) * k_dim,
                        input_scale_, xq.data());
    kernel(xq.data(), weights_.packed.data(), acc.data(), chunk, k_dim,
           n_dim);
    for (int r = 0; r < chunk; ++r) {
      const int32_t* arow = acc.data() + static_cast<size_t>(r) * n_dim;
      float* yrow = y + (r0 + r) * n_dim;
      for (int n = 0; n < n_dim; ++n) {
        // Same epilogue expression as the float FusedLinearForward,
        // including the -0.0f -> +0.0f ReLU mapping.
        const float v =
            static_cast<float>(arow[n]) * dequant_[n] + bias_[n];
        yrow[n] = relu_ ? (v > 0.0f ? v : 0.0f) : v;
      }
    }
  });
}

}  // namespace quant
}  // namespace nn
}  // namespace omnimatch
