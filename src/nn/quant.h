#ifndef OMNIMATCH_NN_QUANT_H_
#define OMNIMATCH_NN_QUANT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "nn/gemm/int8_gemm.h"
#include "nn/tensor.h"
#include "obs/metrics.h"

namespace omnimatch {
namespace nn {
namespace quant {

/// Per-channel symmetric int8 quantization for the inference-only runtime
/// (ROADMAP item 3).
///
/// Scheme — symmetric, zero-point-free (the npu_compiler quantization_params
/// plumbing reduced to the symmetric case):
///   * Weights: per OUTPUT CHANNEL. Column n of a Linear weight W[in, out]
///     gets scale_w[n] = max|W[:, n]| / 127 and is stored as a contiguous
///     int8 row in NT layout (one row per output channel), the exact layout
///     the int8 GEMM kernels consume.
///   * Activations: per tensor, with a scale CALIBRATED OFFLINE from
///     activation histograms (ActivationCalibrator below, built on the obs
///     histogram machinery) recorded during a float calibration pass.
///   * Accumulation: exact int32 (nn/gemm/int8_gemm.h), dequantized in the
///     epilogue by scale_x * scale_w[n], plus the float bias.
///
/// Determinism contract: requantization, the epilogue and every other float
/// instruction live in THIS translation unit, compiled once with portable
/// flags; the per-ISA kernels are integer-only and bit-identical. So the
/// quantized path's results do not depend on the dispatched ISA, and the
/// per-ISA equivalence test can assert full-output bit-identity.

/// Tuning knobs for calibration and per-node planning.
struct QuantOptions {
  /// Quantile of the |activation| histogram used as the clip point
  /// (clamped to the exact observed max — the histogram's bucket upper
  /// bound can overshoot it by one bucket ratio). 1.0 = use the max.
  double calibration_quantile = 0.9995;
  /// Rows of calibration input sampled per layer (snapshot load caps this
  /// at what the frozen world offers).
  int calibration_rows = 256;
  /// Per-node planning floors: a Linear with K < min_k or N < min_n stays
  /// float32 — the quantize/dequantize round trip would cost more than the
  /// integer GEMM saves.
  int min_k = 16;
  int min_n = 4;
};

/// A Linear weight quantized per output channel into the kernels' NT
/// layout.
struct QuantizedWeights {
  std::vector<int8_t> packed;  // [out][in], row n = output channel n
  std::vector<float> scales;   // [out]
  int in = 0;
  int out = 0;
};

/// Quantizes W[in, out] per output channel. An all-zero channel gets
/// scale 0 (its products are all zero regardless).
QuantizedWeights QuantizeWeightsPerChannel(const Tensor& weight);

/// Symmetric activation quantization: q = clamp(nearbyint(x / scale),
/// -127, 127). scale <= 0 quantizes everything to 0 (degenerate layer).
void QuantizeActivations(const float* x, size_t n, float scale, int8_t* q);

/// Round trip for tests: dequantize q back to float.
inline float Dequantize(int8_t q, float scale) {
  return static_cast<float>(q) * scale;
}

/// Records the |activation| distribution of one layer input during the
/// float calibration pass: an obs::Histogram (geometric buckets, private
/// instance so repeated snapshot loads never pollute each other) plus the
/// exact running max.
class ActivationCalibrator {
 public:
  ActivationCalibrator();

  void Observe(const float* x, size_t n);

  /// The symmetric int8 scale: clip / 127, where clip is the histogram's
  /// `quantile` of |x| clamped to the exact observed max. Returns 0 when
  /// nothing (or only zeros) was observed.
  float ComputeScale(double quantile) const;

  float max_abs() const { return max_abs_; }
  int64_t observed() const { return hist_->Count(); }
  const obs::Histogram& histogram() const { return *hist_; }

  /// Geometric |activation| bounds, 1e-6 .. 1e6, 16 buckets per decade.
  static std::vector<double> AbsBounds();

 private:
  std::unique_ptr<obs::Histogram> hist_;
  float max_abs_ = 0.0f;
};

/// One planner decision: a named GEMM node either runs int8 or stays
/// float32, decided from its compile-time shape (the same per-node shape
/// knowledge the recorded-graph planner carries).
struct QuantNode {
  std::string name;
  int k = 0;  // reduction width (layer input features)
  int n = 0;  // output channels
  bool int8 = false;
  std::string reason;  // why the decision fell the way it did
};

/// The plan for a quantized module: the ISA every int8 node will dispatch
/// to (decided once, from cpuid + OMNIMATCH_ISA) and the per-node
/// precision decisions.
struct QuantPlan {
  IsaLevel isa = IsaLevel::kScalar;
  std::vector<QuantNode> nodes;

  int Int8Nodes() const;
  std::string ToString() const;
};

/// The planning rule, exposed for tests: int8 iff k >= min_k && n >= min_n.
bool ShouldQuantizeNode(const QuantOptions& options, int k, int n,
                        std::string* reason);

/// A frozen affine layer y = x·Wq + b (optional fused ReLU) running on the
/// int8 kernels: quantize rows of x with the calibrated input scale, one
/// s8×s8→s32 GEMM, dequantize + bias (+ReLU) epilogue. Rows are sharded
/// over the thread pool (row-independent, so thread count never changes a
/// bit). Thread-safe after construction (all state is immutable).
class QuantizedLinear {
 public:
  /// `weight` [in, out] and `bias` [out] are copied/quantized; the float
  /// originals are not retained. `input_scale` comes from an
  /// ActivationCalibrator over this layer's input.
  QuantizedLinear(const Tensor& weight, const Tensor& bias, float input_scale,
                  bool relu);

  /// x: [rows, in()] row-major float. Writes [rows, out()] into y.
  void Forward(const float* x, int rows, float* y) const;

  /// Same, forcing a specific kernel flavor (per-ISA equivalence tests).
  void ForwardWithKernel(const float* x, int rows, float* y,
                         int8gemm::Int8GemmNTFn kernel) const;

  int in() const { return weights_.in; }
  int out() const { return weights_.out; }
  float input_scale() const { return input_scale_; }
  const QuantizedWeights& weights() const { return weights_; }

 private:
  QuantizedWeights weights_;
  std::vector<float> bias_;
  std::vector<float> dequant_;  // input_scale * weight scale, per channel
  float input_scale_ = 0.0f;
  bool relu_ = false;
};

}  // namespace quant
}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_QUANT_H_
