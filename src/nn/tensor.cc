#include "nn/tensor.h"

#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "nn/graph.h"

namespace omnimatch {
namespace nn {

int64_t ShapeNumel(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) {
    OM_CHECK_GT(d, 0) << "shape " << ShapeToString(shape);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const std::vector<int>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  int64_t n = ShapeNumel(shape);
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(n), 0.0f);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Full(std::vector<int> shape, float value, bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  for (float& v : t.data()) v = value;
  return t;
}

Tensor Tensor::FromData(std::vector<int> shape, std::vector<float> data,
                        bool requires_grad) {
  int64_t n = ShapeNumel(shape);
  OM_CHECK_EQ(static_cast<size_t>(n), data.size())
      << "shape " << ShapeToString(shape);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

const std::vector<int>& Tensor::shape() const {
  OM_CHECK(defined());
  return impl_->shape;
}

int Tensor::dim(int i) const {
  OM_CHECK(defined());
  int n = static_cast<int>(impl_->shape.size());
  if (i < 0) i += n;
  OM_CHECK(i >= 0 && i < n) << "axis " << i << " of " << n;
  return impl_->shape[static_cast<size_t>(i)];
}

int Tensor::ndim() const {
  OM_CHECK(defined());
  return static_cast<int>(impl_->shape.size());
}

int64_t Tensor::numel() const {
  OM_CHECK(defined());
  return static_cast<int64_t>(impl_->data.size());
}

std::vector<float>& Tensor::data() {
  OM_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::data() const {
  OM_CHECK(defined());
  return impl_->data;
}

std::vector<float>& Tensor::grad() {
  OM_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

const std::vector<float>& Tensor::grad() const {
  OM_CHECK(defined());
  const_cast<TensorImpl*>(impl_.get())->EnsureGrad();
  return impl_->grad;
}

bool Tensor::requires_grad() const {
  OM_CHECK(defined());
  return impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  OM_CHECK(defined());
  impl_->requires_grad = value;
  return *this;
}

float Tensor::ScalarValue() const {
  OM_CHECK(defined());
  OM_CHECK_EQ(impl_->data.size(), 1u);
  return impl_->data[0];
}

float Tensor::At(int row, int col) const {
  OM_CHECK(defined());
  OM_CHECK_EQ(impl_->shape.size(), 2u);
  int rows = impl_->shape[0];
  int cols = impl_->shape[1];
  OM_CHECK(row >= 0 && row < rows);
  OM_CHECK(col >= 0 && col < cols);
  return impl_->data[static_cast<size_t>(row) * cols + col];
}

namespace {

// Post-order DFS producing a topological order of the autograd graph.
// Iterative to survive deep chains (e.g. many-layer compositions).
void TopologicalOrder(TensorImpl* root,
                      std::vector<TensorImpl*>* order) {
  std::unordered_set<TensorImpl*> visited;
  // Stack of (node, next-parent-index).
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      TensorImpl* parent = node->parents[idx].get();
      ++idx;
      if (visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward() {
  OM_CHECK(defined());
  OM_CHECK_EQ(impl_->data.size(), 1u)
      << "Backward() requires a scalar output";
  graph::NotifyBackwardRoot(impl_.get());
  std::vector<TensorImpl*> order;
  TopologicalOrder(impl_.get(), &order);
  // Seed d(out)/d(out) = 1, then walk in reverse topological order.
  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) node->backward_fn();
  }
  // The tape is single-use: release every visited node's closure and parent
  // edges now so the step graph dies here instead of living until the next
  // step's handles drop. Compiled-graph roots keep their installed
  // backward_fn (it is reused every replayed step).
  for (TensorImpl* node : order) {
    if (node->graph_persistent) continue;
    node->backward_fn = nullptr;
    node->parents.clear();
  }
}

void Tensor::ZeroGrad() {
  OM_CHECK(defined());
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::DetachCopy() const {
  OM_CHECK(defined());
  return FromData(impl_->shape, impl_->data, /*requires_grad=*/false);
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor" << ShapeToString(impl_->shape) << " {";
  size_t n = std::min<size_t>(impl_->data.size(), 8);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << impl_->data[i];
  }
  if (impl_->data.size() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace nn
}  // namespace omnimatch
