#ifndef OMNIMATCH_NN_TENSOR_H_
#define OMNIMATCH_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace omnimatch {
namespace nn {

class Tensor;

/// Reference-counted tensor storage plus autograd bookkeeping.
///
/// Users interact with `Tensor`; `TensorImpl` is an implementation detail
/// exposed only because op implementations (ops.cc) need direct access.
class TensorImpl {
 public:
  std::vector<int> shape;
  std::vector<float> data;
  /// Gradient buffer; empty until EnsureGrad() is called during backward.
  std::vector<float> grad;
  bool requires_grad = false;
  /// Set on a compiled-graph root (nn/graph.cc): its backward_fn is the
  /// compiled backward schedule and must survive Backward()'s tape release.
  bool graph_persistent = false;
  /// Accumulates gradients from this node into its parents. Set by ops.
  std::function<void()> backward_fn;
  /// Parents in the computation graph (inputs of the op that produced this).
  std::vector<std::shared_ptr<TensorImpl>> parents;

  /// Allocates (zero-filled) the gradient buffer if absent.
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// A dense row-major float tensor with reverse-mode automatic
/// differentiation.
///
/// `Tensor` is a cheap handle (shared_ptr) to `TensorImpl`. Ops in ops.h
/// build a define-by-run graph; calling `Backward()` on a scalar output
/// propagates gradients to every reachable tensor with
/// `requires_grad == true`. The graph is freed when the output handles go
/// out of scope.
///
/// This is the paper's "PyTorch on an A100" substitute: same computational
/// graph semantics, CPU float32 execution.
class Tensor {
 public:
  /// Null handle; most APIs OM_CHECK against using one.
  Tensor() = default;

  /// Wraps an existing impl (used by ops).
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// Zero-filled tensor of the given shape.
  static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);

  /// Constant-filled tensor.
  static Tensor Full(std::vector<int> shape, float value,
                     bool requires_grad = false);

  /// Tensor from explicit data; data.size() must equal the shape's volume.
  static Tensor FromData(std::vector<int> shape, std::vector<float> data,
                         bool requires_grad = false);

  /// 1x1 scalar tensor.
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  const std::vector<int>& shape() const;
  /// Size along axis `i` (supports negative axes Python-style).
  int dim(int i) const;
  /// Number of axes.
  int ndim() const;
  /// Total number of elements.
  int64_t numel() const;

  std::vector<float>& data();
  const std::vector<float>& data() const;
  std::vector<float>& grad();
  const std::vector<float>& grad() const;

  bool requires_grad() const;
  Tensor& set_requires_grad(bool value);

  /// Value of a single-element tensor.
  float ScalarValue() const;

  /// Element access for 2-D tensors (row, col).
  float At(int row, int col) const;

  /// Runs reverse-mode autodiff from this tensor, which must be scalar.
  /// Gradients accumulate (+=) into every reachable requires_grad tensor.
  void Backward();

  /// Zeroes this tensor's gradient buffer (if allocated).
  void ZeroGrad();

  /// A new leaf tensor sharing no graph history, copying the data.
  Tensor DetachCopy() const;

  /// Debug string: shape and the first few values.
  std::string ToString() const;

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Volume of a shape vector; OM_CHECKs that every dim is positive.
int64_t ShapeNumel(const std::vector<int>& shape);

/// "[2, 3]"-style rendering for diagnostics.
std::string ShapeToString(const std::vector<int>& shape);

}  // namespace nn
}  // namespace omnimatch

#endif  // OMNIMATCH_NN_TENSOR_H_
