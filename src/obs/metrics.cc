#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace omnimatch {
namespace obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};

/// snprintf a double without trailing-zero noise; %g keeps the JSONL short
/// and round-trips fine for the magnitudes we record.
std::string NumberToJson(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

void EnableMetrics(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

namespace internal {

int AssignShard() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
}

}  // namespace internal

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      shards_(std::make_unique<Shard[]>(internal::kMetricShards)) {
  std::sort(bounds_.begin(), bounds_.end());
  size_t buckets = bounds_.size() + 1;
  for (int s = 0; s < internal::kMetricShards; ++s) {
    shards_[s].buckets = std::make_unique<std::atomic<int64_t>[]>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  Shard& s = shards_[internal::ThisShard()];
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  s.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  double cur = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(cur, cur + value,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bounds_.size() + 1, 0);
  for (int s = 0; s < internal::kMetricShards; ++s) {
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += shards_[s].buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (int s = 0; s < internal::kMetricShards; ++s) {
    total += shards_[s].count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (int s = 0; s < internal::kMetricShards; ++s) {
    total += shards_[s].sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (int s = 0; s < internal::kMetricShards; ++s) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
    shards_[s].count.store(0, std::memory_order_relaxed);
    shards_[s].sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::DefaultDurationBoundsNs() {
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
}

std::vector<double> Histogram::LatencyBoundsNs() {
  // Geometric 1e3 .. 1e10 ns, 24 buckets per decade: 7 decades * 24 + 1
  // edges. Ratio 10^(1/24) ~= 1.1007, so quantile interpolation error is
  // bounded at ~10% of the value.
  std::vector<double> bounds;
  bounds.reserve(7 * 24 + 1);
  const double ratio = std::pow(10.0, 1.0 / 24.0);
  double b = 1e3;
  for (int i = 0; i <= 7 * 24; ++i) {
    bounds.push_back(b);
    b *= ratio;
  }
  return bounds;
}

double HistogramQuantileChecked(const Histogram& h, double q,
                                bool* tail_overflow) {
  *tail_overflow = false;
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<int64_t> counts = h.BucketCounts();
  const std::vector<double>& bounds = h.bounds();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target observation (1-based), then walk the buckets.
  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const int64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= rank) {
      if (b >= bounds.size()) {
        // +inf bucket: no finite upper bound to interpolate towards. The
        // clamp keeps the return finite for display, but it is a LOWER
        // bound — flag it so gates can refuse to trust it.
        *tail_overflow = true;
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double HistogramQuantile(const Histogram& h, double q) {
  bool tail_overflow = false;
  return HistogramQuantileChecked(h, q, &tail_overflow);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultDurationBoundsNs());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::RenderJsonLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "{\"type\":\"counter\",\"name\":\"" + name + "\",\"value\":" +
           std::to_string(c->Value()) + "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "{\"type\":\"gauge\",\"name\":\"" + name + "\",\"value\":" +
           NumberToJson(g->Value()) + "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "{\"type\":\"histogram\",\"name\":\"" + name + "\",\"count\":" +
           std::to_string(h->Count()) + ",\"sum\":" + NumberToJson(h->Sum()) +
           ",\"buckets\":[";
    std::vector<int64_t> counts = h->BucketCounts();
    const std::vector<double>& bounds = h->bounds();
    for (size_t b = 0; b < counts.size(); ++b) {
      if (b > 0) out += ",";
      out += "{\"le\":";
      out += b < bounds.size() ? NumberToJson(bounds[b]) : "\"inf\"";
      out += ",\"count\":" + std::to_string(counts[b]) + "}";
    }
    out += "]}\n";
  }
  return out;
}

bool MetricsRegistry::WriteJsonLines(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << RenderJsonLines();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace omnimatch
