#ifndef OMNIMATCH_OBS_METRICS_H_
#define OMNIMATCH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace omnimatch {
namespace obs {

/// Thread-safe, lock-free-on-the-hot-path metrics primitives.
///
/// Design contract (see DESIGN.md "Observability"):
///  * An increment is one relaxed atomic fetch_add into a per-thread shard —
///    no locks, no false sharing (shards are cache-line padded), so counters
///    can sit inside kernels and the thread-pool dispatch path.
///  * Instruments are registered once in the global MetricsRegistry and live
///    forever; hot paths cache the returned pointer in a function-local
///    static.
///  * Counters and gauges are always live (their cost IS the near-zero
///    budget). Anything that needs a clock read to feed a histogram gates on
///    MetricsEnabled(), which is false until a sink (--metrics_out, a
///    benchmark, a test) attaches.
///  * Nothing here ever touches an RNG stream, so instrumented and
///    uninstrumented runs are bit-identical.

/// Turns clock-based collection (phase histograms, pool busy time) on/off.
/// Plain counter/gauge traffic is unaffected. Relaxed atomic; safe to flip
/// from any thread.
void EnableMetrics(bool on);
bool MetricsEnabled();

namespace internal {

/// Shards a counter/histogram across kMetricShards cache lines; each thread
/// is pinned to one shard (round-robin at first use) so concurrent
/// increments from the pool workers never contend on one line.
inline constexpr int kMetricShards = 16;

int AssignShard();

inline int ThisShard() {
  thread_local int shard = AssignShard();
  return shard;
}

}  // namespace internal

/// Monotonic counter. Add() is a relaxed fetch_add; Value() sums the shards
/// (exact — relaxed atomicity never loses increments, only orders them).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    shards_[internal::ThisShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[internal::kMetricShards];
};

/// Last-write-wins instantaneous value (pool size, live LR, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds;
/// an implicit +inf bucket catches the tail. Observe() is shard-local:
/// one relaxed fetch_add per bucket/count plus a CAS loop on the shard's
/// sum (uncontended in practice — each thread owns its shard).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, size bounds().size() + 1.
  std::vector<int64_t> BucketCounts() const;
  int64_t Count() const;
  double Sum() const;
  void Reset();

  /// Default duration buckets in nanoseconds: 1us .. 10s, decades.
  static std::vector<double> DefaultDurationBoundsNs();

  /// Fine-grained latency buckets in nanoseconds: geometric from 1us to
  /// 10s at 24 buckets per decade (~10% relative resolution). Use these
  /// for request-latency histograms where p99/p999 quantiles are read back
  /// via HistogramQuantile — the decade-only defaults are too coarse.
  static std::vector<double> LatencyBoundsNs();

 private:
  struct Shard {
    std::unique_ptr<std::atomic<int64_t>[]> buckets;  // bounds + inf
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    char pad[64 - 2 * sizeof(std::atomic<int64_t>)];
  };

  std::vector<double> bounds_;
  std::unique_ptr<Shard[]> shards_;
};

/// Quantile estimate from a histogram's bucket counts: finds the bucket the
/// q-th observation (q in [0, 1]) falls in and interpolates linearly inside
/// it. The first bucket interpolates from 0; the +inf tail bucket returns
/// its lower bound (the largest finite upper bound). Returns 0 for an empty
/// histogram. Accuracy is bounded by bucket width — pair with
/// Histogram::LatencyBoundsNs() for ~10% relative error.
///
/// CAVEAT: when the quantile lands in the +inf tail bucket, the returned
/// value is only a LOWER BOUND — the real quantile is somewhere above the
/// last finite edge, unboundedly far. A gate that compares the clamped
/// value against a budget can silently pass while the true tail is orders
/// of magnitude over it. Gates must use HistogramQuantileChecked and treat
/// tail_overflow as a failure in its own right.
double HistogramQuantile(const Histogram& h, double q);

/// HistogramQuantile plus tail-overflow detection: `*tail_overflow` is set
/// to true when the q-th observation falls in the +inf bucket (the return
/// value is then the clamped lower bound, not an estimate), false
/// otherwise. `tail_overflow` must be non-null.
double HistogramQuantileChecked(const Histogram& h, double q,
                                bool* tail_overflow);

/// Process-global name -> instrument registry. Get* registers on first use
/// and returns a stable pointer (instruments are never destroyed); cache it
/// in a function-local static on hot paths. Names are namespaced by type,
/// so a counter and a gauge may share a name (don't).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Default (duration-ns) buckets.
  Histogram* GetHistogram(const std::string& name);
  /// Custom buckets; ignored if `name` is already registered.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Zeroes every instrument (keeps registrations). For tests and the
  /// benchmark's interleaved on/off pairs; racy-but-safe against concurrent
  /// increments (they land in the zeroed shards).
  void ResetAll();

  /// One JSON object per line:
  ///   {"type":"counter","name":...,"value":N}
  ///   {"type":"gauge","name":...,"value":X}
  ///   {"type":"histogram","name":...,"count":N,"sum":X,
  ///    "buckets":[{"le":B,"count":N},...,{"le":"inf","count":N}]}
  /// Deterministic order (sorted by type, then name).
  std::string RenderJsonLines() const;
  /// Writes RenderJsonLines() to `path`; false on I/O failure.
  bool WriteJsonLines(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace omnimatch

#endif  // OMNIMATCH_OBS_METRICS_H_
