#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>

namespace omnimatch {
namespace obs {

namespace {

std::atomic<bool> g_tracing{false};

/// Spans kept per thread before the ring wraps. 64k spans x 24 bytes is
/// ~1.5 MB, allocated lazily on the first record of each thread.
constexpr size_t kRingCapacity = size_t{1} << 16;

struct SpanEvent {
  const char* name;
  int64_t start_ns;
  int64_t end_ns;
};

/// One thread's span storage. The owning thread writes; the exporter reads.
/// The mutex is uncontended on the hot path (the exporter only runs at
/// snapshot points), so lock/unlock is two uncontended atomic ops.
struct TraceBuffer {
  std::mutex mu;
  std::vector<SpanEvent> ring;
  size_t next = 0;
  size_t size = 0;
  uint64_t dropped = 0;
  int tid = 0;
};

struct TraceRegistry {
  std::mutex mu;
  // shared_ptr so buffers outlive their (possibly exited) threads.
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  int next_tid = 1;
};

TraceRegistry& GlobalTraceRegistry() {
  static TraceRegistry* registry = new TraceRegistry();  // leaked
  return *registry;
}

TraceBuffer* LocalBuffer() {
  thread_local std::shared_ptr<TraceBuffer> buffer = [] {
    auto b = std::make_shared<TraceBuffer>();
    TraceRegistry& reg = GlobalTraceRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return buffer.get();
}

}  // namespace

void EnableTracing(bool on) {
  g_tracing.store(on, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing.load(std::memory_order_relaxed);
}

namespace internal {

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RecordSpan(const char* name, int64_t start_ns, int64_t end_ns) {
  TraceBuffer* b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->ring.empty()) b->ring.resize(kRingCapacity);
  b->ring[b->next] = {name, start_ns, end_ns};
  b->next = (b->next + 1) % kRingCapacity;
  if (b->size < kRingCapacity) {
    ++b->size;
  } else {
    ++b->dropped;
  }
}

}  // namespace internal

std::vector<ExportedSpan> ExportSpans() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    TraceRegistry& reg = GlobalTraceRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  std::vector<ExportedSpan> out;
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    // Oldest-first: when the ring wrapped, the oldest surviving span sits
    // at `next`.
    size_t start = b->size < kRingCapacity ? 0 : b->next;
    for (size_t i = 0; i < b->size; ++i) {
      const SpanEvent& e = b->ring[(start + i) % kRingCapacity];
      out.push_back({e.name, e.start_ns, e.end_ns, b->tid});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ExportedSpan& a, const ExportedSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

uint64_t DroppedSpans() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    TraceRegistry& reg = GlobalTraceRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  uint64_t dropped = 0;
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    dropped += b->dropped;
  }
  return dropped;
}

void ClearTrace() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    TraceRegistry& reg = GlobalTraceRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->next = 0;
    b->size = 0;
    b->dropped = 0;
  }
}

std::string RenderChromeTrace() {
  std::vector<ExportedSpan> spans = ExportSpans();
  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  for (size_t i = 0; i < spans.size(); ++i) {
    const ExportedSpan& s = spans[i];
    // Complete ("X") events; ts/dur in microseconds as chrome://tracing
    // expects. The steady-clock epoch is arbitrary but shared by all spans.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"omnimatch\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}%s\n",
                  s.name, static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.end_ns - s.start_ns) / 1e3, s.tid,
                  i + 1 < spans.size() ? "," : "");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"otherData\":{\"dropped_spans\":%llu}}\n",
                static_cast<unsigned long long>(DroppedSpans()));
  out += buf;
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << RenderChromeTrace();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace omnimatch
