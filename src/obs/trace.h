#ifndef OMNIMATCH_OBS_TRACE_H_
#define OMNIMATCH_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace omnimatch {
namespace obs {

/// Scoped trace spans recorded into per-thread ring buffers and exported as
/// Chrome trace_event JSON (load the file in chrome://tracing or Perfetto).
///
/// Cost model:
///  * Tracing disabled (the default): constructing a span is one relaxed
///    atomic load — no clock read, no allocation, no lock.
///  * Tracing enabled: two steady_clock reads plus one ring-buffer write
///    under the buffer's own (uncontended) mutex; the buffer is only shared
///    with the exporter.
/// Span names must be string literals (or otherwise outlive the export):
/// the ring buffer stores the pointer, not a copy.

/// Flips the global trace switch. Spans opened while the switch is off are
/// never recorded (the decision is taken at construction).
void EnableTracing(bool on);
bool TracingEnabled();

/// One exported span, in steady-clock nanoseconds.
struct ExportedSpan {
  const char* name;
  int64_t start_ns;
  int64_t end_ns;
  int tid;  // stable per-thread id assigned at first record
};

/// Snapshot of every thread's ring buffer, sorted by start time. Safe to
/// call while other threads are still recording (each buffer is copied
/// under its lock).
std::vector<ExportedSpan> ExportSpans();

/// Number of spans overwritten by ring wrap-around since the last Clear.
uint64_t DroppedSpans();

/// Drops all recorded spans (buffers stay registered).
void ClearTrace();

/// Chrome trace_event JSON: {"traceEvents":[{"name","cat","ph":"X","ts",
/// "dur","pid","tid"},...],"otherData":{...}} with ts/dur in microseconds.
std::string RenderChromeTrace();
/// Writes RenderChromeTrace() to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path);

namespace internal {
/// Appends one finished span to the calling thread's ring buffer.
void RecordSpan(const char* name, int64_t start_ns, int64_t end_ns);
/// Steady-clock nanoseconds (shared epoch with the exporters).
int64_t TraceNowNs();
}  // namespace internal

/// RAII span. Records into the trace when tracing is enabled, and/or
/// observes its duration (ns) into `hist` when metrics are enabled. When
/// neither sink is attached the constructor returns after one atomic load
/// and the destructor after one branch.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* hist = nullptr)
      : name_(name) {
    bool tracing = TracingEnabled();
    hist_ = (hist != nullptr && MetricsEnabled()) ? hist : nullptr;
    if (!tracing && hist_ == nullptr) return;
    tracing_ = tracing;
    start_ns_ = internal::TraceNowNs();
  }

  ~TraceSpan() {
    if (!tracing_ && hist_ == nullptr) return;
    int64_t end_ns = internal::TraceNowNs();
    if (tracing_) internal::RecordSpan(name_, start_ns_, end_ns);
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<double>(end_ns - start_ns_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Histogram* hist_ = nullptr;
  int64_t start_ns_ = 0;
  bool tracing_ = false;
};

}  // namespace obs
}  // namespace omnimatch

#define OM_TRACE_CONCAT_INNER_(a, b) a##b
#define OM_TRACE_CONCAT_(a, b) OM_TRACE_CONCAT_INNER_(a, b)

/// Scoped span covering the rest of the enclosing block:
///   OM_TRACE_SPAN("backward");
/// `name` must be a string literal.
#define OM_TRACE_SPAN(name) \
  ::omnimatch::obs::TraceSpan OM_TRACE_CONCAT_(om_trace_span_, __LINE__)(name)

/// Same, additionally observing the duration (ns) into `hist` (a
/// obs::Histogram*) when metrics collection is enabled.
#define OM_TRACE_SPAN_TIMED(name, hist)                                \
  ::omnimatch::obs::TraceSpan OM_TRACE_CONCAT_(om_trace_span_,         \
                                               __LINE__)(name, (hist))

#endif  // OMNIMATCH_OBS_TRACE_H_
