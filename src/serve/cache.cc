#include "serve/cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace omnimatch {
namespace serve {

namespace {
obs::Counter* HitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.cache_hits");
  return c;
}
obs::Counter* MissCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.cache_misses");
  return c;
}
obs::Counter* EvictionCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.cache_evictions");
  return c;
}
obs::Counter* StaleEvictionCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.stale_evictions");
  return c;
}
}  // namespace

UserEmbeddingCache::UserEmbeddingCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::shared_ptr<const UserEntry> UserEmbeddingCache::Get(
    uint64_t snapshot_version, int user_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key{snapshot_version, user_id});
  if (it == index_.end()) {
    ++misses_;
    MissCounter()->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  HitCounter()->Increment();
  return it->second->entry;
}

void UserEmbeddingCache::Put(uint64_t snapshot_version, int user_id,
                             std::shared_ptr<const UserEntry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{snapshot_version, user_id};
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, std::move(entry)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    EvictionCounter()->Increment();
  }
}

size_t UserEmbeddingCache::EvictStaleVersions(uint64_t keep_version) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.version == keep_version) {
      ++it;
      continue;
    }
    index_.erase(it->key);
    it = lru_.erase(it);
    ++evicted;
  }
  if (evicted > 0) {
    stale_evictions_ += static_cast<int64_t>(evicted);
    StaleEvictionCounter()->Add(static_cast<int64_t>(evicted));
  }
  return evicted;
}

size_t UserEmbeddingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

int64_t UserEmbeddingCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t UserEmbeddingCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t UserEmbeddingCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

int64_t UserEmbeddingCache::stale_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_evictions_;
}

}  // namespace serve
}  // namespace omnimatch
