#ifndef OMNIMATCH_SERVE_CACHE_H_
#define OMNIMATCH_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace omnimatch {
namespace serve {

/// A user's precomputed target-side representations — the expensive part of
/// a request (the TextCNN forward over the user document dominates; the
/// per-item tail is two small GEMMs). One row per ensemble pass; row k is
/// the [2f] user representation from the k-th auxiliary document. For
/// hybrid inference, hybrid_rows[k] is [source-invariant ⊕ k-th target
/// specific]. `fallback` entries carry no rows: the user had no usable
/// documents at all and is served the global mean rating.
struct UserEntry {
  std::vector<std::vector<float>> rep_rows;
  std::vector<std::vector<float>> hybrid_rows;  // empty unless hybrid
  bool fallback = false;
  /// True when the documents were generated online at admission (user
  /// unknown to the snapshot) rather than frozen in it.
  bool cold_admitted = false;
  int passes() const {
    return fallback ? 0 : static_cast<int>(rep_rows.size());
  }
};

/// LRU cache of UserEntry keyed by (snapshot version, user id). Keying on
/// the version means a cache surviving a snapshot swap can never serve
/// stale representations: old entries simply miss and age out.
///
/// Thread-safe (one mutex): every executor in the server's pool consults it
/// concurrently, and a snapshot swap evicts stale versions from yet another
/// thread. Lookups are one hash probe + a list splice, so the critical
/// section stays tiny next to the model forwards around it. Entries are
/// shared_ptr<const ...>: a looked-up entry stays valid even if evicted
/// mid-use.
class UserEmbeddingCache {
 public:
  /// `capacity` = max resident entries; at least 1.
  explicit UserEmbeddingCache(size_t capacity);

  /// Returns the entry and refreshes its recency, or nullptr on miss.
  std::shared_ptr<const UserEntry> Get(uint64_t snapshot_version, int user_id);

  /// Inserts (or replaces) an entry as most-recent, evicting the least
  /// recently used entry when over capacity.
  void Put(uint64_t snapshot_version, int user_id,
           std::shared_ptr<const UserEntry> entry);

  /// Evicts every entry whose version differs from `keep_version`, in one
  /// pass. Called on a snapshot hot-swap: version-keying already guarantees
  /// stale entries can never be SERVED, but without this they would occupy
  /// capacity until LRU pressure aged them out — on a large cache that is
  /// most of the working set going dead at once. Counted separately from
  /// capacity evictions (stale_evictions / serve.cache.stale_evictions).
  /// Returns the number of entries evicted.
  size_t EvictStaleVersions(uint64_t keep_version);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  int64_t stale_evictions() const;

 private:
  struct Key {
    uint64_t version;
    int user;
    bool operator==(const Key& o) const {
      return version == o.version && user == o.user;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.version ^ (static_cast<uint64_t>(
                                    static_cast<uint32_t>(k.user)) *
                                0x9E3779B97F4A7C15ULL);
      h ^= h >> 29;
      return static_cast<size_t>(h);
    }
  };
  struct Node {
    Key key;
    std::shared_ptr<const UserEntry> entry;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Node>::iterator, KeyHash> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t stale_evictions_ = 0;
};

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_CACHE_H_
