#include "serve/quant_head.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "nn/gemm.h"

namespace omnimatch {
namespace serve {

using nn::quant::ActivationCalibrator;
using nn::quant::QuantNode;
using nn::quant::QuantOptions;
using nn::quant::QuantizedLinear;
using nn::quant::ShouldQuantizeNode;

std::unique_ptr<QuantizedRatingHead> QuantizedRatingHead::Build(
    const core::OmniMatchModel& model, const nn::quant::QuantOptions& options,
    const CalibrationSample& calibration) {
  if (calibration.rows <= 0) return nullptr;

  const int f = model.config().feature_dim;
  const nn::Linear* inter = model.interaction_proj();
  const nn::Mlp& mlp = model.rating_classifier();
  const size_t n_layers = mlp.num_layers();
  OM_CHECK(n_layers > 0);

  auto head = std::unique_ptr<QuantizedRatingHead>(new QuantizedRatingHead());
  head->use_interaction_ = inter != nullptr;
  head->user_width_ = 2 * f;
  head->item_width_ = f;
  head->num_classes_ =
      mlp.layer(n_layers - 1).out_features();

  const int rows = calibration.rows;
  const int feat_width =
      head->user_width_ + head->item_width_ + (inter ? head->item_width_ : 0);
  OM_CHECK_EQ(mlp.layer(0).in_features(), feat_width);
  OM_CHECK_EQ(calibration.user_rows.size(),
              static_cast<size_t>(rows) * head->user_width_);
  OM_CHECK_EQ(calibration.item_rows.size(),
              static_cast<size_t>(rows) * head->item_width_);

  // --- Float calibration pass -------------------------------------------
  // Replays the eval-mode RatingLogits math (model.cc) with the exact float
  // kernels while an ActivationCalibrator watches every GEMM node's input.
  // Eval mode means dropout is identity, so this IS the serving float path.
  ActivationCalibrator inter_calib;
  std::vector<ActivationCalibrator> mlp_calibs(n_layers);

  const float* user = calibration.user_rows.data();
  const float* item = calibration.item_rows.data();
  std::vector<float> inter_out;
  if (inter) {
    inter_calib.Observe(user, calibration.user_rows.size());
    inter_out.assign(static_cast<size_t>(rows) * f, 0.0f);
    nn::FusedLinearForward(user, inter->weight().data().data(),
                           inter->bias().data().data(), inter_out.data(), rows,
                           head->user_width_, f, /*relu=*/false);
  }

  std::vector<float> cur(static_cast<size_t>(rows) * feat_width);
  for (int r = 0; r < rows; ++r) {
    float* dst = cur.data() + static_cast<size_t>(r) * feat_width;
    const float* u = user + static_cast<size_t>(r) * head->user_width_;
    const float* it = item + static_cast<size_t>(r) * f;
    std::memcpy(dst, u, sizeof(float) * head->user_width_);
    std::memcpy(dst + head->user_width_, it, sizeof(float) * f);
    if (inter) {
      const float* io = inter_out.data() + static_cast<size_t>(r) * f;
      float* mul = dst + head->user_width_ + f;
      for (int c = 0; c < f; ++c) mul[c] = io[c] * it[c];
    }
  }

  std::vector<float> next;
  for (size_t i = 0; i < n_layers; ++i) {
    const nn::Linear& layer = mlp.layer(i);
    OM_CHECK_EQ(layer.in_features(),
                static_cast<int>(cur.size()) / rows);
    mlp_calibs[i].Observe(cur.data(), cur.size());
    next.assign(static_cast<size_t>(rows) * layer.out_features(), 0.0f);
    nn::FusedLinearForward(cur.data(), layer.weight().data().data(),
                           layer.bias().data().data(), next.data(), rows,
                           layer.in_features(), layer.out_features(),
                           /*relu=*/i + 1 < n_layers);
    cur.swap(next);
  }

  // --- Plan + quantize ---------------------------------------------------
  head->plan_.isa = std::min(ActiveIsa(), nn::int8gemm::BestCompiledIsa());
  if (inter) {
    BuildNode(*inter, "interaction_proj", /*relu=*/false, options, inter_calib,
              &head->interaction_, &head->plan_.nodes);
  }
  head->mlp_.resize(n_layers);
  for (size_t i = 0; i < n_layers; ++i) {
    BuildNode(mlp.layer(i), "rating_mlp." + std::to_string(i),
              /*relu=*/i + 1 < n_layers, options, mlp_calibs[i],
              &head->mlp_[i], &head->plan_.nodes);
  }
  return head;
}

void QuantizedRatingHead::BuildNode(
    const nn::Linear& linear, const std::string& name, bool relu,
    const QuantOptions& options, const ActivationCalibrator& calibrator,
    Node* node, std::vector<QuantNode>* plan_nodes) {
  QuantNode record;
  record.name = name;
  record.k = linear.in_features();
  record.n = linear.out_features();
  record.int8 =
      ShouldQuantizeNode(options, record.k, record.n, &record.reason);

  node->in = record.k;
  node->out = record.n;
  node->relu = relu;
  if (record.int8) {
    node->int8 = std::make_unique<QuantizedLinear>(
        linear.weight(), linear.bias(),
        calibrator.ComputeScale(options.calibration_quantile), relu);
  } else {
    node->weight = linear.weight().data();
    node->bias = linear.bias().data();
  }
  plan_nodes->push_back(std::move(record));
}

void QuantizedRatingHead::Node::Forward(const float* x, int rows,
                                        float* y) const {
  if (int8) {
    int8->Forward(x, rows, y);
    return;
  }
  nn::FusedLinearForward(x, weight.data(), bias.data(), y, rows, in, out,
                         relu);
}

void QuantizedRatingHead::RatingLogits(const float* user, const float* item,
                                       int rows,
                                       std::vector<float>* logits) const {
  OM_CHECK(rows >= 0);
  logits->resize(static_cast<size_t>(rows) * num_classes_);
  if (rows == 0) return;

  // Thread-local scratch: these are ~hundreds of KB per call at serving
  // chunk sizes, and a fresh allocation that large goes straight to mmap —
  // page faults on every request batch. Reusing the buffers keeps the head
  // allocation-free in steady state (executors are pool threads). Every
  // element is overwritten before it is read, so stale capacity is safe.
  static thread_local std::vector<float> inter_out;
  static thread_local std::vector<float> cur;
  static thread_local std::vector<float> next;

  const int feat_width = mlp_.front().in;
  if (use_interaction_) {
    inter_out.resize(static_cast<size_t>(rows) * item_width_);
    interaction_.Forward(user, rows, inter_out.data());
  }

  cur.resize(static_cast<size_t>(rows) * feat_width);
  for (int r = 0; r < rows; ++r) {
    float* dst = cur.data() + static_cast<size_t>(r) * feat_width;
    const float* u = user + static_cast<size_t>(r) * user_width_;
    const float* it = item + static_cast<size_t>(r) * item_width_;
    std::memcpy(dst, u, sizeof(float) * user_width_);
    std::memcpy(dst + user_width_, it, sizeof(float) * item_width_);
    if (use_interaction_) {
      const float* io = inter_out.data() + static_cast<size_t>(r) * item_width_;
      float* mul = dst + user_width_ + item_width_;
      for (int c = 0; c < item_width_; ++c) mul[c] = io[c] * it[c];
    }
  }

  for (size_t i = 0; i < mlp_.size(); ++i) {
    const Node& node = mlp_[i];
    if (i + 1 == mlp_.size()) {
      node.Forward(cur.data(), rows, logits->data());
    } else {
      next.resize(static_cast<size_t>(rows) * node.out);
      node.Forward(cur.data(), rows, next.data());
      cur.swap(next);
    }
  }
}

}  // namespace serve
}  // namespace omnimatch
