#ifndef OMNIMATCH_SERVE_QUANT_HEAD_H_
#define OMNIMATCH_SERVE_QUANT_HEAD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "nn/quant.h"

namespace omnimatch {
namespace serve {

/// Int8 mirror of the per-request rating head — the two-GEMM path Scorer
/// drives for every (user, item) pair (OmniMatchModel::RatingLogits in
/// eval mode): optional interaction projection, the ⊙ feature, and the
/// three-layer rating classifier MLP.
///
/// Built once at snapshot load (--quant): a float calibration pass over
/// sampled frozen representations records per-layer activation histograms
/// (nn::quant::ActivationCalibrator), scales are fixed from them, weights
/// are quantized per output channel, and each GEMM node gets a planner
/// decision (int8 vs float32, from its compile-time shape) plus the ISA
/// picked once by cpuid dispatch. Nodes planned float32 run through the
/// exact float kernels (FusedLinearForward), so a layer the planner
/// rejects costs nothing in accuracy.
///
/// Thread-safety: immutable after Build; any number of executor threads
/// may call RatingLogits concurrently. Results are bit-identical across
/// thread counts and dispatched ISAs (see nn/quant.h), though NOT to the
/// float32 path — that is the quantization error the RMSE gate bounds.
class QuantizedRatingHead {
 public:
  /// Representative eval-path inputs for calibration: flattened row-major
  /// user representation rows [rows, user_width] (invariant ⊕ specific,
  /// plus hybrid rows when hybrid inference is on — same width) and item
  /// representation rows [rows, feature_dim], pre-paired positionally.
  struct CalibrationSample {
    std::vector<float> user_rows;
    std::vector<float> item_rows;
    int rows = 0;
  };

  /// Quantizes the model's rating path. `model` is only read (frozen
  /// weights + a float calibration forward). Returns null when the sample
  /// is empty — there is nothing to calibrate against, so serving stays
  /// float32.
  static std::unique_ptr<QuantizedRatingHead> Build(
      const core::OmniMatchModel& model,
      const nn::quant::QuantOptions& options,
      const CalibrationSample& calibration);

  /// Logits [rows, num_classes] for user rows [rows, user_width] and item
  /// rows [rows, feature_dim], row-aligned. Appends nothing; `logits` is
  /// resized and overwritten.
  void RatingLogits(const float* user, const float* item, int rows,
                    std::vector<float>* logits) const;

  int user_width() const { return user_width_; }
  int item_width() const { return item_width_; }
  int num_classes() const { return num_classes_; }
  const nn::quant::QuantPlan& plan() const { return plan_; }

 private:
  QuantizedRatingHead() = default;

  /// One GEMM node: the int8 kernel when planned, the float kernel (with
  /// retained float weights) otherwise.
  struct Node {
    std::unique_ptr<nn::quant::QuantizedLinear> int8;
    // Float fallback (planner said no): weight kept [in, out] + bias.
    std::vector<float> weight;
    std::vector<float> bias;
    int in = 0;
    int out = 0;
    bool relu = false;

    void Forward(const float* x, int rows, float* y) const;
  };

  /// Fills `node` from a frozen Linear — quantized when the planner says
  /// so, a retained-float copy otherwise — and appends its plan record.
  static void BuildNode(const nn::Linear& linear, const std::string& name,
                        bool relu, const nn::quant::QuantOptions& options,
                        const nn::quant::ActivationCalibrator& calibrator,
                        Node* node, std::vector<nn::quant::QuantNode>* nodes);

  bool use_interaction_ = false;
  int user_width_ = 0;
  int item_width_ = 0;
  int num_classes_ = 0;
  Node interaction_;
  std::vector<Node> mlp_;
  nn::quant::QuantPlan plan_;
};

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_QUANT_HEAD_H_
