#include "serve/scorer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace omnimatch {
namespace serve {

using core::OmniMatchModel;
using nn::Tensor;

namespace {

/// Admission/extraction chunk sizes. Every forward here is row-independent
/// (blocked GEMM accumulates each output element over K in a fixed order,
/// conv/pooling are per-row, dropout is a no-op in eval), so chunking
/// changes wall-clock shape but never a single output bit.
constexpr int kExtractChunkRows = 256;
constexpr int kHeadChunkRows = 1024;

obs::Counter* ColdAdmissions() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.cold_admissions");
  return c;
}
obs::Counter* Admissions() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.admissions");
  return c;
}
obs::Counter* FallbackScores() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.fallback_scores");
  return c;
}
obs::Counter* DegradedCached() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.degraded.cached");
  return c;
}
obs::Counter* DegradedFallback() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.degraded.fallback");
  return c;
}
obs::Histogram* ScoreBatchHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.score_batch_ns", obs::Histogram::LatencyBoundsNs());
  return h;
}
obs::Histogram* AdmitHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.admit_ns", obs::Histogram::LatencyBoundsNs());
  return h;
}

/// Copies row `row` of a [B, width] tensor into `dst` (appending).
void AppendRow(const Tensor& t, int row, std::vector<float>* dst) {
  const std::vector<float>& data = t.data();
  const int width = t.dim(1);
  const float* src = data.data() + static_cast<size_t>(row) * width;
  dst->insert(dst->end(), src, src + width);
}

}  // namespace

Scorer::Scorer(std::shared_ptr<const ModelSnapshot> snapshot,
               size_t cache_capacity)
    : snapshot_(std::move(snapshot)), cache_(cache_capacity) {
  OM_CHECK(snapshot_ != nullptr);
}

std::shared_ptr<const ModelSnapshot> Scorer::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void Scorer::SetSnapshot(std::shared_ptr<const ModelSnapshot> snapshot) {
  OM_CHECK(snapshot != nullptr);
  const uint64_t keep = snapshot->version();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
  }
  // After the store: an executor that grabbed the OLD snapshot may still
  // Put() old-version entries for a moment; they can never be served to a
  // new-version lookup (version-keying) and the next swap sweeps them too.
  cache_.EvictStaleVersions(keep);
}

std::vector<std::shared_ptr<const UserEntry>> Scorer::GetOrAdmit(
    const ModelSnapshot& snap, const std::vector<int>& users,
    bool admit_missing) {
  const uint64_t version = snap.version();
  std::vector<std::shared_ptr<const UserEntry>> out(users.size());

  /// Users missing from the cache, with their per-pass target documents.
  struct Pending {
    size_t slot = 0;  // index into `users` / `out`
    std::vector<const std::vector<int>*> docs;
    std::vector<std::vector<int>> owned_docs;  // online-generated storage
    bool cold = false;
  };
  std::vector<Pending> pending;
  for (size_t i = 0; i < users.size(); ++i) {
    out[i] = cache_.Get(version, users[i]);
    if (out[i] != nullptr) continue;
    if (!admit_missing) continue;  // degraded: leave nullptr, cache untouched
    Pending p;
    p.slot = i;
    const auto& target_docs = snap.user_target_docs();
    auto it = target_docs.find(users[i]);
    if (it != target_docs.end()) {
      // Frozen documents: the trainer's primary document plus its ensemble
      // variants, exactly the rows PredictBatch would gather.
      p.docs.push_back(&it->second);
      const auto& variants = snap.cold_aux_doc_variants();
      auto vit = variants.find(users[i]);
      if (vit != variants.end()) {
        for (const std::vector<int>& doc : vit->second) p.docs.push_back(&doc);
      }
    } else {
      // Unknown user: Algorithm 1 online, at admission time.
      p.owned_docs = snap.BuildColdUserDocs(users[i]);
      if (p.owned_docs.empty()) {
        auto entry = std::make_shared<UserEntry>();
        entry->fallback = true;
        cache_.Put(version, users[i], entry);
        out[i] = std::move(entry);
        continue;
      }
      p.cold = true;
      for (const std::vector<int>& doc : p.owned_docs) p.docs.push_back(&doc);
    }
    pending.push_back(std::move(p));
  }
  if (pending.empty()) return out;

  obs::TraceSpan span("serve.admit", AdmitHist());
  const core::OmniMatchConfig& config = snap.config();
  OmniMatchModel* model = snap.model();
  const int doc_len = config.doc_len;

  // Flatten every (user, pass) document into one row list, then extract in
  // chunks — row independence makes the chunked batch bit-identical to any
  // other batching of the same rows.
  std::vector<std::pair<size_t, int>> row_owner;  // (pending idx, pass)
  for (size_t p = 0; p < pending.size(); ++p) {
    for (size_t k = 0; k < pending[p].docs.size(); ++k) {
      row_owner.emplace_back(p, static_cast<int>(k));
    }
  }
  std::vector<std::shared_ptr<UserEntry>> entries(pending.size());
  for (size_t p = 0; p < pending.size(); ++p) {
    entries[p] = std::make_shared<UserEntry>();
    entries[p]->cold_admitted = pending[p].cold;
    entries[p]->rep_rows.resize(pending[p].docs.size());
    if (config.use_hybrid_inference) {
      entries[p]->hybrid_rows.resize(pending[p].docs.size());
    }
  }

  std::vector<std::vector<float>> specific_rows(row_owner.size());
  for (size_t begin = 0; begin < row_owner.size();
       begin += kExtractChunkRows) {
    const size_t end =
        std::min(row_owner.size(), begin + kExtractChunkRows);
    std::vector<int> flat;
    flat.reserve((end - begin) * static_cast<size_t>(doc_len));
    for (size_t r = begin; r < end; ++r) {
      const std::vector<int>& doc =
          *pending[row_owner[r].first].docs[static_cast<size_t>(
              row_owner[r].second)];
      OM_CHECK_EQ(doc.size(), static_cast<size_t>(doc_len));
      flat.insert(flat.end(), doc.begin(), doc.end());
    }
    OmniMatchModel::UserFeatures feat = model->ExtractUser(
        data::DomainSide::kTarget, flat, static_cast<int>(end - begin));
    for (size_t r = begin; r < end; ++r) {
      const int local = static_cast<int>(r - begin);
      std::vector<float>& rep =
          entries[row_owner[r].first]
              ->rep_rows[static_cast<size_t>(row_owner[r].second)];
      // r = invariant ⊕ specific (UserRepresentation / Eq. 10) — plain
      // concatenation, so assembling it from the feature rows is exact.
      AppendRow(feat.invariant, local, &rep);
      AppendRow(feat.specific, local, &rep);
      if (config.use_hybrid_inference) {
        AppendRow(feat.specific, local, &specific_rows[r]);
      }
    }
  }

  if (config.use_hybrid_inference) {
    // One source-side row per pending user; unknown users gather the pad
    // document (the trainer's GatherDocs fallback).
    for (size_t begin = 0; begin < pending.size();
         begin += kExtractChunkRows) {
      const size_t end =
          std::min(pending.size(), begin + kExtractChunkRows);
      std::vector<int> flat;
      flat.reserve((end - begin) * static_cast<size_t>(doc_len));
      for (size_t p = begin; p < end; ++p) {
        const auto& source_docs = snap.user_source_docs();
        auto it = source_docs.find(users[pending[p].slot]);
        const std::vector<int>& doc =
            it != source_docs.end() ? it->second : snap.pad_user_doc();
        flat.insert(flat.end(), doc.begin(), doc.end());
      }
      OmniMatchModel::UserFeatures src = model->ExtractUser(
          data::DomainSide::kSource, flat, static_cast<int>(end - begin));
      for (size_t p = begin; p < end; ++p) {
        std::vector<float> inv_row;
        AppendRow(src.invariant, static_cast<int>(p - begin), &inv_row);
        for (size_t k = 0; k < entries[p]->hybrid_rows.size(); ++k) {
          entries[p]->hybrid_rows[k] = inv_row;
        }
      }
    }
    // hybrid = source-invariant ⊕ target-specific (the trainer's hybrid
    // readout input).
    for (size_t r = 0; r < row_owner.size(); ++r) {
      std::vector<float>& row =
          entries[row_owner[r].first]
              ->hybrid_rows[static_cast<size_t>(row_owner[r].second)];
      row.insert(row.end(), specific_rows[r].begin(), specific_rows[r].end());
    }
  }

  for (size_t p = 0; p < pending.size(); ++p) {
    Admissions()->Increment();
    if (pending[p].cold) ColdAdmissions()->Increment();
    cache_.Put(version, users[pending[p].slot], entries[p]);
    out[pending[p].slot] = std::move(entries[p]);
  }
  return out;
}

std::vector<ScoredValue> Scorer::ScoreBatchWith(
    const std::shared_ptr<const ModelSnapshot>& snap,
    const std::vector<ScoreRequest>& requests, ScoreMode mode) {
  OM_CHECK(snap != nullptr);
  if (requests.empty()) return {};
  const float global_mean = snap->global_mean_rating();

  // Tier 2: shed all model work. No cache traffic either — the point is to
  // bound the executor's time per batch by a memset-scale loop.
  if (mode == ScoreMode::kGlobalMean) {
    DegradedFallback()->Add(static_cast<int64_t>(requests.size()));
    return std::vector<ScoredValue>(
        requests.size(),
        ScoredValue{global_mean, RequestStatus::kDegradedFallback});
  }

  obs::TraceSpan span("serve.score_batch", ScoreBatchHist());
  const core::OmniMatchConfig& config = snap->config();
  OmniMatchModel* model = snap->model();
  // Eval mode was pre-set recursively at snapshot load (SetTrainingMode):
  // asserting it here is a pure read, safe under concurrent executors.
  OM_CHECK(!model->training());

  const bool admit = mode == ScoreMode::kFull;

  // Distinct users (order-preserving), one cache lookup / admission each.
  std::vector<int> users;
  std::unordered_map<int, size_t> user_slot;
  for (const ScoreRequest& r : requests) {
    if (user_slot.emplace(r.user, users.size()).second) {
      users.push_back(r.user);
    }
  }
  std::vector<std::shared_ptr<const UserEntry>> entries =
      GetOrAdmit(*snap, users, admit);

  std::vector<ScoredValue> out(requests.size());
  // Resolves every request with no usable representation rows; the rest
  // get their tier stamped and are scored below.
  auto resolve_terminal = [&](size_t i,
                              const UserEntry* entry) -> bool {
    if (entry == nullptr) {
      // Cached-only miss: admission skipped, best effort is the mean.
      out[i] = {global_mean, RequestStatus::kDegradedFallback};
      DegradedFallback()->Increment();
      return true;
    }
    if (entry->fallback) {
      // The user has no records at all: the global mean IS the exact
      // full-fidelity answer (the trainer's own fallback), whatever tier
      // we are serving at.
      out[i] = {global_mean,
                admit ? RequestStatus::kOk : RequestStatus::kDegradedCached};
      FallbackScores()->Increment();
      if (!admit) DegradedCached()->Increment();
      return true;
    }
    return false;
  };

  // Item representations, one extractor row per DISTINCT item among the
  // requests that will reach the rating head (row independence again: the
  // shared row is bit-identical to the per-request row the trainer would
  // compute).
  std::vector<int> items;
  std::unordered_map<int, size_t> item_slot;
  for (size_t i = 0; i < requests.size(); ++i) {
    const UserEntry* entry = entries[user_slot[requests[i].user]].get();
    if (entry == nullptr || entry->fallback) continue;
    if (item_slot.emplace(requests[i].item, items.size()).second) {
      items.push_back(requests[i].item);
    }
  }
  std::vector<std::vector<float>> item_rows(items.size());
  for (size_t begin = 0; begin < items.size(); begin += kExtractChunkRows) {
    const size_t end = std::min(items.size(), begin + kExtractChunkRows);
    std::vector<int> flat;
    flat.reserve((end - begin) * static_cast<size_t>(config.item_doc_len));
    for (size_t i = begin; i < end; ++i) {
      const auto& docs = snap->item_docs();
      auto it = docs.find(items[i]);
      const std::vector<int>& doc =
          it != docs.end() ? it->second : snap->pad_item_doc();
      flat.insert(flat.end(), doc.begin(), doc.end());
    }
    Tensor rep = model->ExtractItem(flat, static_cast<int>(end - begin));
    for (size_t i = begin; i < end; ++i) {
      AppendRow(rep, static_cast<int>(i - begin), &item_rows[i]);
    }
  }

  // Assemble the rating-head rows: per request, pass 0..N in order, plain
  // readout then (when enabled) the hybrid readout — the exact accumulation
  // order of PredictBatch on a batch of one.
  const int readouts = config.use_hybrid_inference ? 2 : 1;
  const int classes = config.num_rating_classes;
  std::vector<const std::vector<float>*> head_user_rows;
  std::vector<const std::vector<float>*> head_item_rows;
  std::vector<size_t> head_request;
  std::vector<float> weight(requests.size(), 0.0f);
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::shared_ptr<const UserEntry>& entry =
        entries[user_slot[requests[i].user]];
    if (resolve_terminal(i, entry.get())) continue;
    out[i].status =
        admit ? RequestStatus::kOk : RequestStatus::kDegradedCached;
    if (!admit) DegradedCached()->Increment();
    const std::vector<float>& item_row =
        item_rows[item_slot[requests[i].item]];
    const int passes = entry->passes();
    weight[i] = 1.0f / static_cast<float>(passes * readouts);
    for (int k = 0; k < passes; ++k) {
      head_user_rows.push_back(&entry->rep_rows[static_cast<size_t>(k)]);
      head_item_rows.push_back(&item_row);
      head_request.push_back(i);
      if (config.use_hybrid_inference) {
        head_user_rows.push_back(&entry->hybrid_rows[static_cast<size_t>(k)]);
        head_item_rows.push_back(&item_row);
        head_request.push_back(i);
      }
    }
  }
  if (head_user_rows.empty()) return out;

  const int user_width = static_cast<int>(head_user_rows[0]->size());
  const int item_width = static_cast<int>(head_item_rows[0]->size());
  // The --quant serving mode swaps ONLY this rating-head GEMM stack for the
  // int8 one; everything above (admission, extractors, cache, softmax
  // readout below) is shared, and the float branch is untouched.
  const QuantizedRatingHead* quant_head = snap->quant_head();
  for (size_t begin = 0; begin < head_user_rows.size();
       begin += kHeadChunkRows) {
    const size_t end =
        std::min(head_user_rows.size(), begin + kHeadChunkRows);
    const int rows = static_cast<int>(end - begin);
    std::vector<float> user_data, item_data;
    user_data.reserve(static_cast<size_t>(rows) * user_width);
    item_data.reserve(static_cast<size_t>(rows) * item_width);
    for (size_t r = begin; r < end; ++r) {
      user_data.insert(user_data.end(), head_user_rows[r]->begin(),
                       head_user_rows[r]->end());
      item_data.insert(item_data.end(), head_item_rows[r]->begin(),
                       head_item_rows[r]->end());
    }
    std::vector<float> quant_logits;
    Tensor logits;
    const float* logit_rows = nullptr;
    if (quant_head != nullptr) {
      quant_head->RatingLogits(user_data.data(), item_data.data(), rows,
                               &quant_logits);
      logit_rows = quant_logits.data();
    } else {
      logits = model->RatingLogits(
          Tensor::FromData({rows, user_width}, std::move(user_data)),
          Tensor::FromData({rows, item_width}, std::move(item_data)));
      logit_rows = logits.data().data();
    }
    // Softmax-expected rating per row, accumulated exactly like the
    // trainer: max-subtracted exp in double, final product in float.
    for (int r = 0; r < rows; ++r) {
      const float* row = logit_rows + static_cast<size_t>(r) * classes;
      float max_v = row[0];
      for (int c = 1; c < classes; ++c) {
        max_v = std::max(max_v, row[c]);
      }
      double sum = 0.0, weighted = 0.0;
      for (int c = 0; c < classes; ++c) {
        double e = std::exp(static_cast<double>(row[c]) - max_v);
        sum += e;
        weighted += e * (c + 1);
      }
      const size_t req = head_request[begin + static_cast<size_t>(r)];
      out[req].score += weight[req] * static_cast<float>(weighted / sum);
    }
  }
  return out;
}

std::vector<float> Scorer::ScoreBatch(
    const std::vector<ScoreRequest>& requests) {
  std::vector<ScoredValue> scored =
      ScoreBatchWith(CurrentSnapshot(), requests, ScoreMode::kFull);
  std::vector<float> preds(scored.size());
  for (size_t i = 0; i < scored.size(); ++i) preds[i] = scored[i].score;
  return preds;
}

float Scorer::Score(int user, int item) {
  ScoreRequest r;
  r.user = user;
  r.item = item;
  return ScoreBatch({r})[0];
}

}  // namespace serve
}  // namespace omnimatch
