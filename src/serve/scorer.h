#ifndef OMNIMATCH_SERVE_SCORER_H_
#define OMNIMATCH_SERVE_SCORER_H_

#include <memory>
#include <vector>

#include "serve/cache.h"
#include "serve/snapshot.h"

namespace omnimatch {
namespace serve {

/// One (user, item) scoring request.
struct ScoreRequest {
  int user = -1;
  int item = -1;
};

/// Evaluates (user, item) requests against a ModelSnapshot, mirroring the
/// trainer's evaluation math bit-for-bit (see DESIGN.md "Serving"):
/// expected rating = mean over the auxiliary-document ensemble of
/// softmax-expected ratings, computed per row in double exactly like
/// OmniMatchTrainer::PredictBatch.
///
/// The per-user target representations — the TextCNN forward that dominates
/// request cost — are computed once at admission and held in an LRU cache
/// keyed by (snapshot version, user id); per request only the item
/// extractor (amortized over distinct items in the batch) and the small
/// rating-head GEMMs run. Users unknown to the snapshot are admitted by
/// running Algorithm 1 online against the dataset indices; users with no
/// source records at all are served the global mean rating (the trainer's
/// PredictRating fallback).
///
/// NOT thread-safe: the model forward is stateful, so ScoreBatch must be
/// called from one thread at a time (the InferenceServer's executor).
/// Kernel-level parallelism comes from the compute thread pool.
class Scorer {
 public:
  Scorer(std::shared_ptr<const ModelSnapshot> snapshot, size_t cache_capacity);

  /// Scores every request; results are positionally aligned with
  /// `requests`. Batching is purely a throughput optimization: each result
  /// is bit-identical to Score() on the same pair, which in turn matches
  /// the trainer's PredictRating for users the snapshot holds frozen
  /// documents for.
  std::vector<float> ScoreBatch(const std::vector<ScoreRequest>& requests);

  /// Convenience single-request scoring.
  float Score(int user, int item);

  const ModelSnapshot& snapshot() const { return *snapshot_; }
  const UserEmbeddingCache& cache() const { return cache_; }
  UserEmbeddingCache& mutable_cache() { return cache_; }

 private:
  /// Looks up each user's entry, computing and admitting the missing ones
  /// in one batched extractor pass. Returns entries aligned with `users`.
  std::vector<std::shared_ptr<const UserEntry>> GetOrAdmit(
      const std::vector<int>& users);

  std::shared_ptr<const ModelSnapshot> snapshot_;
  UserEmbeddingCache cache_;
};

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_SCORER_H_
