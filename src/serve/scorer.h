#ifndef OMNIMATCH_SERVE_SCORER_H_
#define OMNIMATCH_SERVE_SCORER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "serve/cache.h"
#include "serve/snapshot.h"
#include "serve/types.h"

namespace omnimatch {
namespace serve {

/// One (user, item) scoring request.
struct ScoreRequest {
  int user = -1;
  int item = -1;
};

/// One scored request: the value plus the degradation tier it was served at
/// (kOk / kDegradedCached / kDegradedFallback — see serve/types.h).
struct ScoredValue {
  float score = 0.0f;
  RequestStatus status = RequestStatus::kOk;
};

/// Evaluates (user, item) requests against a ModelSnapshot, mirroring the
/// trainer's evaluation math bit-for-bit (see DESIGN.md "Serving"):
/// expected rating = mean over the auxiliary-document ensemble of
/// softmax-expected ratings, computed per row in double exactly like
/// OmniMatchTrainer::PredictBatch.
///
/// The per-user target representations — the TextCNN forward that dominates
/// request cost — are computed once at admission and held in an LRU cache
/// keyed by (snapshot version, user id); per request only the item
/// extractor (amortized over distinct items in the batch) and the small
/// rating-head GEMMs run. Users unknown to the snapshot are admitted by
/// running Algorithm 1 online against the dataset indices; users with no
/// source records at all are served the global mean rating (the trainer's
/// PredictRating fallback).
///
/// Thread-safety: fully thread-safe. The snapshot's eval forward writes no
/// shared state (see ModelSnapshot), the cache has its own lock, and the
/// snapshot pointer itself is swapped under a mutex — so any number of
/// executor threads may call ScoreBatch*/Score concurrently, and
/// SetSnapshot may run while they do. Scores are bit-identical regardless
/// of batch composition or thread count (row independence), so the
/// multi-executor results equal the single-threaded ones per request.
///
/// Degradation (the server's graceful-degradation ladder): ScoreBatchWith
/// takes a ScoreMode. kFull is the normal path. kCachedOnly skips ALL
/// admission work — cache hits are scored through the rating head
/// (bit-identical for those users, status kDegradedCached), misses get the
/// global mean (kDegradedFallback) and are NOT inserted into the cache.
/// kGlobalMean never touches the model. The snapshot is passed explicitly
/// so the caller can pin one snapshot across a batch and report its version
/// even while a hot swap lands mid-flight.
class Scorer {
 public:
  Scorer(std::shared_ptr<const ModelSnapshot> snapshot, size_t cache_capacity);

  /// Scores every request against `snap` at the given degradation tier;
  /// results are positionally aligned with `requests`.
  std::vector<ScoredValue> ScoreBatchWith(
      const std::shared_ptr<const ModelSnapshot>& snap,
      const std::vector<ScoreRequest>& requests, ScoreMode mode);

  /// Full-fidelity batch against the current snapshot. Batching is purely a
  /// throughput optimization: each result is bit-identical to Score() on
  /// the same pair, which in turn matches the trainer's PredictRating for
  /// users the snapshot holds frozen documents for.
  std::vector<float> ScoreBatch(const std::vector<ScoreRequest>& requests);

  /// Convenience single-request full-fidelity scoring.
  float Score(int user, int item);

  /// The snapshot new batches will score against (in-flight batches keep
  /// the copy they grabbed at dispatch).
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const;

  /// Atomically replaces the snapshot for subsequent batches and eagerly
  /// evicts every cache entry of any other version (the entries could never
  /// be served again — version-keying — but would otherwise hold capacity
  /// until LRU pressure cleared them). Safe to call while executors score.
  void SetSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The current snapshot, by reference. Only meaningful when no concurrent
  /// SetSnapshot can run (tests, single-owner setups); prefer
  /// CurrentSnapshot() otherwise.
  const ModelSnapshot& snapshot() const { return *CurrentSnapshot(); }

  const UserEmbeddingCache& cache() const { return cache_; }
  UserEmbeddingCache& mutable_cache() { return cache_; }

 private:
  /// Looks up each user's entry. With `admit_missing`, computes and caches
  /// the missing ones in one batched extractor pass; otherwise missing
  /// users stay nullptr (and nothing is written to the cache). Returns
  /// entries aligned with `users`.
  std::vector<std::shared_ptr<const UserEntry>> GetOrAdmit(
      const ModelSnapshot& snap, const std::vector<int>& users,
      bool admit_missing);

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  UserEmbeddingCache cache_;
};

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_SCORER_H_
