#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace omnimatch {
namespace serve {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Counter* RequestCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  return c;
}
obs::Counter* BatchCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.batches");
  return c;
}
obs::Counter* DeadlineCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.deadline_exceeded");
  return c;
}
obs::Counter* OverloadedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.rejected.overloaded");
  return c;
}
obs::Counter* ShutdownCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.rejected.shutdown");
  return c;
}
obs::Counter* SwapCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.snapshot_swaps");
  return c;
}
obs::Histogram* QueueWaitHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.queue_wait_ns", obs::Histogram::LatencyBoundsNs());
  return h;
}
obs::Histogram* BatchSizeHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch_size",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256});
  return h;
}
/// End-to-end request latency, one histogram per degradation tier so an
/// overloaded server's cheap fallback answers don't mask the full tier's
/// tail (and vice versa).
obs::Histogram* RequestHistFull() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.request_ns.full", obs::Histogram::LatencyBoundsNs());
  return h;
}
obs::Histogram* RequestHistCached() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.request_ns.degraded_cached", obs::Histogram::LatencyBoundsNs());
  return h;
}
obs::Histogram* RequestHistFallback() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.request_ns.degraded_fallback", obs::Histogram::LatencyBoundsNs());
  return h;
}

obs::Histogram* TierHist(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return RequestHistFull();
    case RequestStatus::kDegradedCached:
      return RequestHistCached();
    default:
      return RequestHistFallback();
  }
}

}  // namespace

InferenceServer::InferenceServer(
    std::shared_ptr<const ModelSnapshot> snapshot, const Options& options)
    : options_(options),
      scorer_(std::make_unique<Scorer>(std::move(snapshot),
                                       options.cache_capacity)) {
  OM_CHECK_GE(options_.max_batch, 1);
  OM_CHECK_GE(options_.linger_us, 0);
  OM_CHECK_GE(options_.executors, 1);
  OM_CHECK_GE(options_.deadline_ms, 0);
  OM_CHECK_GT(options_.degrade_cached_fill, 0.0);
  OM_CHECK_GE(options_.degrade_fallback_fill, options_.degrade_cached_fill);
  executors_.reserve(static_cast<size_t>(options_.executors));
  for (int i = 0; i < options_.executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<ScoreResult> InferenceServer::ScoreAsync(int user, int item) {
  Pending p;
  p.user = user;
  p.item = item;
  p.enqueue_ns = NowNs();
  if (options_.deadline_ms > 0) {
    p.deadline_ns = p.enqueue_ns + options_.deadline_ms * 1000000;
  }
  std::future<ScoreResult> result = p.result.get_future();

  // Rejections resolve the future immediately — a caller that submitted is
  // ALWAYS answered, the answer just says why no score is coming.
  RequestStatus reject = RequestStatus::kOk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject = RequestStatus::kShuttingDown;
      ++stats_.rejected_shutdown;
    } else if ((options_.max_queue > 0 &&
                queue_.size() >= options_.max_queue) ||
               FaultInjector::Global().ShouldFire("queue_admit")) {
      reject = RequestStatus::kOverloaded;
      ++stats_.rejected_overloaded;
    } else {
      queue_.push_back(std::move(p));
    }
  }
  if (reject != RequestStatus::kOk) {
    if (obs::MetricsEnabled()) {
      (reject == RequestStatus::kShuttingDown ? ShutdownCounter()
                                              : OverloadedCounter())
          ->Increment();
    }
    ScoreResult r;
    r.status = reject;
    p.result.set_value(r);
    return result;
  }
  cv_.notify_all();
  return result;
}

float InferenceServer::Score(int user, int item) {
  ScoreResult r = ScoreAsync(user, item).get();
  OM_CHECK(r.has_score()) << "Score() request ended " <<
      RequestStatusName(r.status) << "; use ScoreAsync to handle rejection";
  return r.score;
}

void InferenceServer::SwapSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  scorer_->SetSnapshot(std::move(snapshot));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.snapshot_swaps;
  }
  if (obs::MetricsEnabled()) SwapCounter()->Increment();
}

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Never joined under the lock: executors need it to drain and exit.
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
}

ScoreMode InferenceServer::PickMode(size_t queued) const {
  if (options_.max_queue > 0) {
    const double fill = static_cast<double>(queued) /
                        static_cast<double>(options_.max_queue);
    if (fill >= options_.degrade_fallback_fill) return ScoreMode::kGlobalMean;
    if (fill >= options_.degrade_cached_fill) return ScoreMode::kCachedOnly;
  }
  return ScoreMode::kFull;
}

void InferenceServer::ExecutorLoop() {
  std::vector<Pending> batch;
  std::vector<Pending> expired;
  while (true) {
    ScoreMode mode = ScoreMode::kFull;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty() && stopping_) return;
      if (static_cast<int>(queue_.size()) < options_.max_batch &&
          !stopping_ && options_.linger_us > 0) {
        // Linger is measured from the OLDEST request's arrival, not from
        // when the executor noticed it: a request never waits more than
        // linger_us for co-batchees regardless of executor scheduling.
        const int64_t remaining_ns = options_.linger_us * 1000 -
                                     (NowNs() - queue_.front().enqueue_ns);
        if (remaining_ns > 0) {
          cv_.wait_for(lock, std::chrono::nanoseconds(remaining_ns), [this] {
            return stopping_ ||
                   static_cast<int>(queue_.size()) >= options_.max_batch;
          });
        }
      }
      // Tier from the PRE-POP fill level: the pressure that queued these
      // requests is what degradation should react to. (Another executor may
      // have raced us to the front — a now-empty queue just loops around.)
      mode = PickMode(queue_.size());
      const int64_t now_ns = NowNs();
      batch.clear();
      expired.clear();
      while (static_cast<int>(batch.size()) < options_.max_batch &&
             !queue_.empty()) {
        Pending p = std::move(queue_.front());
        queue_.pop_front();
        // A request already past its deadline is answered here, unscored:
        // the caller has given up, model time on it is pure waste.
        if (p.deadline_ns > 0 && now_ns > p.deadline_ns) {
          ++stats_.deadline_exceeded;
          expired.push_back(std::move(p));
          continue;
        }
        batch.push_back(std::move(p));
      }
    }
    for (Pending& p : expired) {
      if (obs::MetricsEnabled()) DeadlineCounter()->Increment();
      ScoreResult r;
      r.status = RequestStatus::kDeadlineExceeded;
      p.result.set_value(r);
    }
    if (batch.empty()) continue;

    // Injected faults: a deliberately slow batch, or a forced degraded
    // tier — both exercised by tests and the bench's fault phases.
    FaultHit hit;
    if (FaultInjector::Global().ShouldFire("serve_slow", &hit)) {
      const int64_t ms =
          hit.magnitude > 0 ? static_cast<int64_t>(hit.magnitude) : 10;
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
    if (FaultInjector::Global().ShouldFire("executor_score", &hit)) {
      mode = hit.magnitude >= 2.0 ? ScoreMode::kGlobalMean
                                  : ScoreMode::kCachedOnly;
    }

    // Pin the snapshot for the whole batch: a swap landing mid-batch takes
    // effect from the NEXT dispatch, and every response reports the version
    // that actually produced it.
    RunBatch(scorer_->CurrentSnapshot(), &batch, mode);
  }
}

void InferenceServer::RunBatch(
    const std::shared_ptr<const ModelSnapshot>& snap,
    std::vector<Pending>* batch, ScoreMode mode) {
  const int64_t start_ns = NowNs();
  const bool metrics = obs::MetricsEnabled();
  if (metrics) {
    BatchCounter()->Increment();
    BatchSizeHist()->Observe(static_cast<double>(batch->size()));
    for (const Pending& p : *batch) {
      QueueWaitHist()->Observe(static_cast<double>(start_ns - p.enqueue_ns));
    }
  }

  std::vector<ScoreRequest> requests(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    requests[i].user = (*batch)[i].user;
    requests[i].item = (*batch)[i].item;
  }
  std::vector<ScoredValue> scored =
      scorer_->ScoreBatchWith(snap, requests, mode);
  OM_CHECK_EQ(scored.size(), batch->size());

  const int64_t end_ns = NowNs();
  std::vector<ScoreResult> results(batch->size());
  Stats delta;
  for (size_t i = 0; i < batch->size(); ++i) {
    ScoreResult& r = results[i];
    r.score = scored[i].score;
    r.status = scored[i].status;
    r.snapshot_version = snap->version();
    switch (r.status) {
      case RequestStatus::kOk:
        ++delta.served_full;
        break;
      case RequestStatus::kDegradedCached:
        ++delta.served_degraded_cached;
        break;
      default:
        ++delta.served_degraded_fallback;
        break;
    }
    if (metrics) {
      RequestCounter()->Increment();
      TierHist(r.status)->Observe(
          static_cast<double>(end_ns - (*batch)[i].enqueue_ns));
    }
  }
  // Stats land BEFORE the promises: a caller that has observed its response
  // never reads a stats() snapshot that hasn't accounted for it yet.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests_served += static_cast<int64_t>(batch->size());
    ++stats_.batches_dispatched;
    stats_.served_full += delta.served_full;
    stats_.served_degraded_cached += delta.served_degraded_cached;
    stats_.served_degraded_fallback += delta.served_degraded_fallback;
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    (*batch)[i].result.set_value(results[i]);
  }
}

InferenceServer::Stats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t InferenceServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.requests_served;
}

int64_t InferenceServer::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.batches_dispatched;
}

}  // namespace serve
}  // namespace omnimatch
