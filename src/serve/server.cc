#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace omnimatch {
namespace serve {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Counter* RequestCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  return c;
}
obs::Counter* BatchCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.batches");
  return c;
}
obs::Histogram* RequestHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.request_ns", obs::Histogram::LatencyBoundsNs());
  return h;
}
obs::Histogram* QueueWaitHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.queue_wait_ns", obs::Histogram::LatencyBoundsNs());
  return h;
}
obs::Histogram* BatchSizeHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch_size",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256});
  return h;
}

}  // namespace

InferenceServer::InferenceServer(
    std::shared_ptr<const ModelSnapshot> snapshot, const Options& options)
    : options_(options),
      scorer_(std::make_unique<Scorer>(std::move(snapshot),
                                       options.cache_capacity)) {
  OM_CHECK_GE(options_.max_batch, 1);
  OM_CHECK_GE(options_.linger_us, 0);
  executor_ = std::thread([this] { ExecutorLoop(); });
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<float> InferenceServer::ScoreAsync(int user, int item) {
  Pending p;
  p.user = user;
  p.item = item;
  p.enqueue_ns = NowNs();
  std::future<float> result = p.result.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    OM_CHECK(!stopping_) << "ScoreAsync after Shutdown";
    queue_.push_back(std::move(p));
  }
  cv_.notify_all();
  return result;
}

float InferenceServer::Score(int user, int item) {
  return ScoreAsync(user, item).get();
}

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Never joined under the lock: the executor needs it to drain and exit.
  if (executor_.joinable()) executor_.join();
}

void InferenceServer::ExecutorLoop() {
  std::vector<Pending> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty() && stopping_) return;
      if (static_cast<int>(queue_.size()) < options_.max_batch &&
          !stopping_ && options_.linger_us > 0) {
        // Linger is measured from the OLDEST request's arrival, not from
        // when the executor noticed it: a request never waits more than
        // linger_us for co-batchees regardless of executor scheduling.
        const int64_t remaining_ns = options_.linger_us * 1000 -
                                     (NowNs() - queue_.front().enqueue_ns);
        if (remaining_ns > 0) {
          cv_.wait_for(lock, std::chrono::nanoseconds(remaining_ns), [this] {
            return stopping_ ||
                   static_cast<int>(queue_.size()) >= options_.max_batch;
          });
        }
      }
      const int take = std::min<int>(options_.max_batch,
                                     static_cast<int>(queue_.size()));
      batch.clear();
      batch.reserve(static_cast<size_t>(take));
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!batch.empty()) RunBatch(&batch);
  }
}

void InferenceServer::RunBatch(std::vector<Pending>* batch) {
  const int64_t start_ns = NowNs();
  const bool metrics = obs::MetricsEnabled();
  if (metrics) {
    BatchCounter()->Increment();
    BatchSizeHist()->Observe(static_cast<double>(batch->size()));
    for (const Pending& p : *batch) {
      QueueWaitHist()->Observe(static_cast<double>(start_ns - p.enqueue_ns));
    }
  }

  std::vector<ScoreRequest> requests(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    requests[i].user = (*batch)[i].user;
    requests[i].item = (*batch)[i].item;
  }
  std::vector<float> preds = scorer_->ScoreBatch(requests);
  OM_CHECK_EQ(preds.size(), batch->size());

  const int64_t end_ns = NowNs();
  for (size_t i = 0; i < batch->size(); ++i) {
    if (metrics) {
      RequestCounter()->Increment();
      RequestHist()->Observe(
          static_cast<double>(end_ns - (*batch)[i].enqueue_ns));
    }
    (*batch)[i].result.set_value(preds[i]);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    requests_served_ += static_cast<int64_t>(batch->size());
    ++batches_dispatched_;
  }
}

int64_t InferenceServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_served_;
}

int64_t InferenceServer::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_dispatched_;
}

}  // namespace serve
}  // namespace omnimatch
