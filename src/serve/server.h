#ifndef OMNIMATCH_SERVE_SERVER_H_
#define OMNIMATCH_SERVE_SERVER_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/scorer.h"
#include "serve/snapshot.h"

namespace omnimatch {
namespace serve {

/// The online inference runtime: concurrent request threads submit
/// (user, item) pairs; a single executor thread coalesces them into
/// GEMM-friendly micro-batches and drives the Scorer.
///
/// Batching semantics (see DESIGN.md "Serving"): an arriving request is
/// appended to the queue. The executor dispatches a batch as soon as
/// max_batch requests are waiting, or when the OLDEST waiting request has
/// lingered linger_us microseconds — whichever comes first. An idle
/// executor picks up a lone request after at most one linger, so the
/// worst-case added latency is bounded while bursts still coalesce.
///
/// Results are bit-identical to unbatched scoring: every kernel on the
/// scoring path is row-independent, so batch composition never changes a
/// result (this is also what makes the user-embedding cache sound).
///
/// Thread-safety: Score/ScoreAsync may be called from any number of
/// threads. The scorer and model are touched only by the executor thread.
class InferenceServer {
 public:
  struct Options {
    /// Max requests per dispatched batch.
    int max_batch = 32;
    /// Max time the oldest queued request waits before dispatch, in
    /// microseconds. 0 = dispatch whatever is queued immediately.
    int64_t linger_us = 200;
    /// User-embedding cache capacity (entries).
    size_t cache_capacity = 4096;
  };

  InferenceServer(std::shared_ptr<const ModelSnapshot> snapshot,
                  const Options& options);
  /// Drains the queue and joins the executor.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Blocking request: enqueues and waits for the batch it lands in.
  float Score(int user, int item);

  /// Non-blocking request; the future resolves when the request's batch
  /// completes. Invalid after Shutdown().
  std::future<float> ScoreAsync(int user, int item);

  /// Stops accepting requests, scores everything still queued, and joins
  /// the executor. Idempotent (the destructor runs it too) but not safe to
  /// call from two threads concurrently.
  void Shutdown();

  const Scorer& scorer() const { return *scorer_; }
  Scorer& mutable_scorer() { return *scorer_; }
  const Options& options() const { return options_; }

  /// Requests scored and batches dispatched since construction.
  int64_t requests_served() const;
  int64_t batches_dispatched() const;

 private:
  struct Pending {
    int user = -1;
    int item = -1;
    std::promise<float> result;
    int64_t enqueue_ns = 0;
  };

  void ExecutorLoop();
  /// Scores one dispatched batch and fulfills its promises.
  void RunBatch(std::vector<Pending>* batch);

  const Options options_;
  std::unique_ptr<Scorer> scorer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  int64_t requests_served_ = 0;
  int64_t batches_dispatched_ = 0;

  std::thread executor_;
};

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_SERVER_H_
