#ifndef OMNIMATCH_SERVE_SERVER_H_
#define OMNIMATCH_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/scorer.h"
#include "serve/snapshot.h"
#include "serve/types.h"

namespace omnimatch {
namespace serve {

/// The online inference runtime: concurrent request threads submit
/// (user, item) pairs; a pool of executor threads coalesces them into
/// GEMM-friendly micro-batches and drives the Scorer.
///
/// Batching semantics (see DESIGN.md "Serving"): an arriving request is
/// appended to the queue. An executor dispatches a batch as soon as
/// max_batch requests are waiting, or when the OLDEST waiting request has
/// lingered linger_us microseconds — whichever comes first. An idle
/// executor picks up a lone request after at most one linger, so the
/// worst-case added latency is bounded while bursts still coalesce.
///
/// Results are bit-identical to unbatched single-threaded scoring: every
/// kernel on the scoring path is row-independent and the eval forward
/// writes no shared state, so neither batch composition nor the number of
/// executor threads changes a result (this is also what makes the
/// user-embedding cache sound).
///
/// Fault tolerance (DESIGN.md "Serving failure model"):
///  * Bounded admission — the queue is capped at max_queue; requests
///    arriving at a full queue are rejected immediately with kOverloaded
///    instead of growing latency without bound.
///  * Deadlines — a request older than deadline_ms at dispatch time is
///    answered kDeadlineExceeded without scoring; the executor never burns
///    model time on an answer the caller has given up on.
///  * Graceful degradation — the scoring tier for each batch is chosen
///    from the queue fill level at dispatch: below degrade_cached_fill the
///    full path runs; above it admission work is shed (cache hits only,
///    kDegradedCached / kDegradedFallback); above degrade_fallback_fill the
///    model is bypassed entirely (global-mean, kDegradedFallback). Every
///    response states its tier, so callers never mistake a degraded answer
///    for a full-fidelity one.
///  * Hot swap — SwapSnapshot atomically replaces the model between
///    batches; in-flight batches finish on the snapshot they started with,
///    and each response carries the snapshot version that produced it.
///  * Shutdown — requests already queued when Shutdown() begins are drained
///    and scored; requests submitted after it starts are rejected with
///    kShuttingDown (never silently dropped).
///
/// Fault-injection points consulted here (see common/fault.h):
/// "queue_admit" (reject an admission as overloaded), "executor_score"
/// (force a batch onto a degraded tier: mag>=2 global-mean, else
/// cached-only), "serve_slow" (sleep mag milliseconds before scoring a
/// batch — a deliberately slow request for deadline/overload tests).
///
/// Thread-safety: Score/ScoreAsync/SwapSnapshot/stats may be called from
/// any number of threads.
class InferenceServer {
 public:
  struct Options {
    /// Max requests per dispatched batch.
    int max_batch = 32;
    /// Max time the oldest queued request waits before dispatch, in
    /// microseconds. 0 = dispatch whatever is queued immediately.
    int64_t linger_us = 200;
    /// User-embedding cache capacity (entries).
    size_t cache_capacity = 4096;
    /// Executor threads draining the queue concurrently. Results are
    /// bit-identical for any value; more threads buy throughput when
    /// batches are model-bound.
    int executors = 1;
    /// Queue capacity; admissions beyond it are rejected kOverloaded.
    /// 0 = unbounded (also disables fill-based degradation).
    size_t max_queue = 1024;
    /// Per-request deadline, measured from enqueue; a request older than
    /// this at dispatch is answered kDeadlineExceeded unscored. 0 = none.
    int64_t deadline_ms = 0;
    /// Queue-fill fractions (of max_queue) at which dispatch degrades to
    /// cached-only and to global-mean scoring. Ignored when max_queue = 0.
    double degrade_cached_fill = 0.60;
    double degrade_fallback_fill = 0.85;
  };

  /// Monotonic counters since construction. `served_*` partition completed
  /// (scored or fallback-answered) requests by tier; `rejected_*` and
  /// `deadline_exceeded` count requests answered without scoring.
  struct Stats {
    int64_t requests_served = 0;  // completed with a score (any tier)
    int64_t batches_dispatched = 0;
    int64_t served_full = 0;
    int64_t served_degraded_cached = 0;
    int64_t served_degraded_fallback = 0;
    int64_t deadline_exceeded = 0;
    int64_t rejected_overloaded = 0;
    int64_t rejected_shutdown = 0;
    int64_t snapshot_swaps = 0;
  };

  InferenceServer(std::shared_ptr<const ModelSnapshot> snapshot,
                  const Options& options);
  /// Drains the queue and joins the executors.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Blocking request; requires the response to carry a score (i.e. the
  /// server is not overloaded past the fallback tier into rejection).
  /// Prefer ScoreAsync when statuses matter.
  float Score(int user, int item);

  /// Non-blocking request; the future resolves when the request's batch
  /// completes (or immediately on rejection). Always yields a ScoreResult —
  /// never throws, never drops: after Shutdown() begins the status is
  /// kShuttingDown, at a full queue kOverloaded.
  std::future<ScoreResult> ScoreAsync(int user, int item);

  /// Atomically swaps the model snapshot for batches dispatched from now
  /// on; in-flight batches complete on the snapshot they captured. Safe
  /// under full traffic. Callers wanting validation + rollback should go
  /// through SnapshotManager instead of calling this directly.
  void SwapSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Stops accepting requests (subsequent submissions get kShuttingDown),
  /// scores everything already queued, and joins the executors. Idempotent
  /// (the destructor runs it too) but not safe to call from two threads
  /// concurrently.
  void Shutdown();

  const Scorer& scorer() const { return *scorer_; }
  Scorer& mutable_scorer() { return *scorer_; }
  const Options& options() const { return options_; }

  Stats stats() const;
  /// Legacy accessors (pre-Stats callers).
  int64_t requests_served() const;
  int64_t batches_dispatched() const;

 private:
  struct Pending {
    int user = -1;
    int item = -1;
    std::promise<ScoreResult> result;
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;  // 0 = none
  };

  void ExecutorLoop();
  /// Scores one dispatched batch at the given tier against `snap` and
  /// fulfills its promises.
  void RunBatch(const std::shared_ptr<const ModelSnapshot>& snap,
                std::vector<Pending>* batch, ScoreMode mode);
  /// Tier for a batch dispatched while the queue held `queued` requests.
  ScoreMode PickMode(size_t queued) const;

  const Options options_;
  std::unique_ptr<Scorer> scorer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  Stats stats_;

  std::vector<std::thread> executors_;
};

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_SERVER_H_
