#include "serve/snapshot.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "nn/tensor.h"
#include "text/document.h"
#include "text/tokenizer.h"

namespace omnimatch {
namespace serve {

namespace {

/// Snapshot identity: the config fingerprint already pins architecture,
/// seed and data-shaping switches; folding in the checkpoint's progress
/// counters distinguishes successive checkpoints of the same run.
uint64_t SnapshotVersion(uint64_t fingerprint, int32_t epochs, int64_t steps,
                         bool used_best_params) {
  uint64_t v = SplitMix64(fingerprint);
  v = SplitMix64(v ^ static_cast<uint64_t>(epochs));
  v = SplitMix64(v ^ static_cast<uint64_t>(steps));
  v = SplitMix64(v ^ (used_best_params ? 0x5eedULL : 0));
  return v;
}

/// Copies row `row` of a [B, width] tensor into `dst` (appending).
void AppendTensorRow(const nn::Tensor& t, int row, std::vector<float>* dst) {
  const std::vector<float>& data = t.data();
  const int width = t.dim(1);
  const float* src = data.data() + static_cast<size_t>(row) * width;
  dst->insert(dst->end(), src, src + width);
}

/// Representative (user representation, item representation) pairs for
/// quantization calibration, computed with the float path over the frozen
/// evaluation documents in sorted-id order (deterministic: the sample — and
/// therefore every calibrated scale — is a pure function of the snapshot).
/// When hybrid inference is on, each user also contributes its hybrid row
/// (source-invariant ⊕ target-specific): the quantized head serves those
/// rows too, so calibration must see their distribution.
QuantizedRatingHead::CalibrationSample BuildCalibrationSample(
    const ModelSnapshot& snap, int max_rows) {
  QuantizedRatingHead::CalibrationSample sample;
  if (max_rows <= 0) return sample;

  std::vector<int> user_ids, item_ids;
  user_ids.reserve(snap.user_target_docs().size());
  for (const auto& kv : snap.user_target_docs()) user_ids.push_back(kv.first);
  item_ids.reserve(snap.item_docs().size());
  for (const auto& kv : snap.item_docs()) item_ids.push_back(kv.first);
  if (user_ids.empty() || item_ids.empty()) return sample;
  std::sort(user_ids.begin(), user_ids.end());
  std::sort(item_ids.begin(), item_ids.end());

  const core::OmniMatchConfig& config = snap.config();
  core::OmniMatchModel* model = snap.model();
  const int pairs = std::min<int>(
      max_rows,
      static_cast<int>(std::max(user_ids.size(), item_ids.size())));
  constexpr int kChunkRows = 256;

  // Target-side user representations (invariant ⊕ specific), and the pieces
  // hybrid rows are assembled from.
  std::vector<float> target_rows, specific_rows;
  for (int begin = 0; begin < pairs; begin += kChunkRows) {
    const int end = std::min(pairs, begin + kChunkRows);
    std::vector<int> flat;
    flat.reserve(static_cast<size_t>(end - begin) * config.doc_len);
    for (int r = begin; r < end; ++r) {
      const int user = user_ids[static_cast<size_t>(r) % user_ids.size()];
      const std::vector<int>& doc = snap.user_target_docs().at(user);
      flat.insert(flat.end(), doc.begin(), doc.end());
    }
    core::OmniMatchModel::UserFeatures feat =
        model->ExtractUser(data::DomainSide::kTarget, flat, end - begin);
    for (int r = begin; r < end; ++r) {
      AppendTensorRow(feat.invariant, r - begin, &target_rows);
      AppendTensorRow(feat.specific, r - begin, &target_rows);
      if (config.use_hybrid_inference) {
        AppendTensorRow(feat.specific, r - begin, &specific_rows);
      }
    }
  }

  // Item representations, paired positionally.
  std::vector<float> item_rows;
  for (int begin = 0; begin < pairs; begin += kChunkRows) {
    const int end = std::min(pairs, begin + kChunkRows);
    std::vector<int> flat;
    flat.reserve(static_cast<size_t>(end - begin) * config.item_doc_len);
    for (int r = begin; r < end; ++r) {
      const int item = item_ids[static_cast<size_t>(r) % item_ids.size()];
      const std::vector<int>& doc = snap.item_docs().at(item);
      flat.insert(flat.end(), doc.begin(), doc.end());
    }
    nn::Tensor rep = model->ExtractItem(flat, end - begin);
    for (int r = begin; r < end; ++r) {
      AppendTensorRow(rep, r - begin, &item_rows);
    }
  }

  sample.user_rows = std::move(target_rows);
  sample.item_rows = item_rows;
  sample.rows = pairs;

  if (config.use_hybrid_inference) {
    // Hybrid rows: source-invariant ⊕ target-specific for the same users
    // (pad document when the user has no source reviews — the serving
    // fallback), against the same item rows.
    const int f = config.feature_dim;
    for (int begin = 0; begin < pairs; begin += kChunkRows) {
      const int end = std::min(pairs, begin + kChunkRows);
      std::vector<int> flat;
      flat.reserve(static_cast<size_t>(end - begin) * config.doc_len);
      for (int r = begin; r < end; ++r) {
        const int user = user_ids[static_cast<size_t>(r) % user_ids.size()];
        auto it = snap.user_source_docs().find(user);
        const std::vector<int>& doc = it != snap.user_source_docs().end()
                                          ? it->second
                                          : snap.pad_user_doc();
        flat.insert(flat.end(), doc.begin(), doc.end());
      }
      core::OmniMatchModel::UserFeatures src =
          model->ExtractUser(data::DomainSide::kSource, flat, end - begin);
      for (int r = begin; r < end; ++r) {
        AppendTensorRow(src.invariant, r - begin, &sample.user_rows);
        const float* spec =
            specific_rows.data() + static_cast<size_t>(r) * f;
        sample.user_rows.insert(sample.user_rows.end(), spec, spec + f);
      }
    }
    sample.item_rows.insert(sample.item_rows.end(), item_rows.begin(),
                            item_rows.end());
    sample.rows = 2 * pairs;
  }
  return sample;
}

}  // namespace

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Load(
    const core::OmniMatchConfig& config, const data::CrossDomainDataset* cross,
    data::ColdStartSplit split, const std::string& checkpoint_path,
    const Options& options) {
  OM_CHECK(cross != nullptr);

  // Rebuild the training run's derived state (vocabulary, fixed documents,
  // model architecture) by Prepare()-ing a throwaway trainer: the document
  // pipeline consumes the trainer's seeded RNG, so running the identical
  // code path is the only way to get bit-identical documents.
  core::OmniMatchTrainer trainer(config, cross, std::move(split));
  OM_RETURN_IF_ERROR(trainer.Prepare());

  Result<core::CheckpointState> loaded =
      core::LoadCheckpointFile(checkpoint_path);
  if (!loaded.ok()) return loaded.status();
  core::CheckpointState state = std::move(loaded).value();

  if (state.config_fingerprint != config.Fingerprint()) {
    return Status::InvalidArgument(
        checkpoint_path +
        ": checkpoint was written under a different config (fingerprint "
        "mismatch)");
  }
  const bool use_best = options.prefer_best_params && !state.best_params.empty();
  std::vector<std::vector<float>>& chosen =
      use_best ? state.best_params : state.params;

  auto snapshot = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snapshot->config_ = config;
  snapshot->cross_ = cross;
  snapshot->global_mean_rating_ = cross->target().GlobalMeanRating();
  snapshot->vocab_ = trainer.vocabulary();
  snapshot->aux_generator_ = std::make_unique<core::AuxReviewGenerator>(
      cross, trainer.split().train_users, config.text_field);
  snapshot->user_source_docs_ = trainer.user_source_docs();
  snapshot->user_target_docs_ = trainer.user_target_docs();
  snapshot->item_docs_ = trainer.item_docs();
  snapshot->cold_aux_doc_variants_ = trainer.cold_aux_doc_variants();
  snapshot->pad_user_doc_.assign(static_cast<size_t>(config.doc_len),
                                 text::Vocabulary::kPadId);
  snapshot->pad_item_doc_.assign(static_cast<size_t>(config.item_doc_len),
                                 text::Vocabulary::kPadId);

  // A fresh model of the same architecture; its random initialization is
  // immediately overwritten by the checkpoint's parameters.
  Rng init_rng(config.seed);
  snapshot->model_ = std::make_unique<core::OmniMatchModel>(
      config, snapshot->vocab_.size(), &init_rng);
  std::vector<nn::Tensor> params = snapshot->model_->Parameters();
  if (chosen.size() != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: checkpoint holds %zu parameter tensors, model has %zu",
        checkpoint_path.c_str(), chosen.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (chosen[i].size() != params[i].data().size()) {
      return Status::InvalidArgument(StrFormat(
          "%s: parameter %zu has %zu values, model expects %zu",
          checkpoint_path.c_str(), i, chosen[i].size(),
          params[i].data().size()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = std::move(chosen[i]);
    // Inference never backpropagates; dropping requires_grad keeps the
    // forward pass from recording an autograd tape. The math is untouched.
    params[i].set_requires_grad(false);
  }
  // Recursive: pre-sets every submodule's flag so the forward pass never
  // writes shared state again — the precondition for running this model on
  // several executor threads concurrently (see OmniMatchModel docs).
  snapshot->model_->SetTrainingMode(false);

  snapshot->version_ = SnapshotVersion(state.config_fingerprint,
                                       state.epochs_completed, state.steps,
                                       use_best);

  if (options.quantize) {
    // Calibrate and quantize the rating head against the float model just
    // installed. Runs the float eval path, so it must come after the
    // parameters and eval mode are in place. Null (float serving) when the
    // frozen world is empty — nothing to calibrate against.
    QuantizedRatingHead::CalibrationSample sample = BuildCalibrationSample(
        *snapshot, options.quant.calibration_rows);
    snapshot->quant_head_ =
        QuantizedRatingHead::Build(*snapshot->model_, options.quant, sample);
  }
  return std::shared_ptr<const ModelSnapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Load(
    const core::OmniMatchConfig& config, const data::CrossDomainDataset* cross,
    data::ColdStartSplit split, const std::string& checkpoint_path) {
  return Load(config, cross, std::move(split), checkpoint_path, Options());
}

std::vector<std::vector<int>> ModelSnapshot::BuildColdUserDocs(
    int user_id) const {
  const data::DomainDataset& source = cross_->source();
  const data::IdSpan records = source.RecordsOfUser(user_id);
  if (records.empty()) return {};

  auto source_texts = [&]() {
    std::vector<std::string> texts;
    for (int idx : records) {
      size_t i = static_cast<size_t>(idx);
      texts.emplace_back(config_.text_field == core::TextField::kSummary
                             ? source.ReviewSummary(i)
                             : source.ReviewFullText(i));
    }
    return texts;
  };

  // Seeded from (snapshot version, user id): admission is deterministic per
  // snapshot, independent of request order and of which replica serves it —
  // the same contract the offline parallel GenerateAll uses.
  Rng rng(core::AuxReviewGenerator::PerUserSeed(version_, user_id));
  int samples = std::max(1, config_.aux_eval_samples);
  if (!config_.use_aux_reviews) samples = 1;

  std::vector<std::vector<int>> docs;
  docs.reserve(static_cast<size_t>(samples));
  for (int k = 0; k < samples; ++k) {
    std::vector<std::string> reviews =
        config_.use_aux_reviews ? aux_generator_->GenerateForUser(user_id, &rng)
                                : source_texts();
    if (reviews.empty()) reviews = source_texts();
    docs.push_back(text::BuildDocumentIds(reviews, vocab_, config_.doc_len));
  }
  return docs;
}

}  // namespace serve
}  // namespace omnimatch
