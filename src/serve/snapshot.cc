#include "serve/snapshot.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "nn/tensor.h"
#include "text/document.h"
#include "text/tokenizer.h"

namespace omnimatch {
namespace serve {

namespace {

/// Snapshot identity: the config fingerprint already pins architecture,
/// seed and data-shaping switches; folding in the checkpoint's progress
/// counters distinguishes successive checkpoints of the same run.
uint64_t SnapshotVersion(uint64_t fingerprint, int32_t epochs, int64_t steps,
                         bool used_best_params) {
  uint64_t v = SplitMix64(fingerprint);
  v = SplitMix64(v ^ static_cast<uint64_t>(epochs));
  v = SplitMix64(v ^ static_cast<uint64_t>(steps));
  v = SplitMix64(v ^ (used_best_params ? 0x5eedULL : 0));
  return v;
}

}  // namespace

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Load(
    const core::OmniMatchConfig& config, const data::CrossDomainDataset* cross,
    data::ColdStartSplit split, const std::string& checkpoint_path,
    const Options& options) {
  OM_CHECK(cross != nullptr);

  // Rebuild the training run's derived state (vocabulary, fixed documents,
  // model architecture) by Prepare()-ing a throwaway trainer: the document
  // pipeline consumes the trainer's seeded RNG, so running the identical
  // code path is the only way to get bit-identical documents.
  core::OmniMatchTrainer trainer(config, cross, std::move(split));
  OM_RETURN_IF_ERROR(trainer.Prepare());

  Result<core::CheckpointState> loaded =
      core::LoadCheckpointFile(checkpoint_path);
  if (!loaded.ok()) return loaded.status();
  core::CheckpointState state = std::move(loaded).value();

  if (state.config_fingerprint != config.Fingerprint()) {
    return Status::InvalidArgument(
        checkpoint_path +
        ": checkpoint was written under a different config (fingerprint "
        "mismatch)");
  }
  const bool use_best = options.prefer_best_params && !state.best_params.empty();
  std::vector<std::vector<float>>& chosen =
      use_best ? state.best_params : state.params;

  auto snapshot = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snapshot->config_ = config;
  snapshot->cross_ = cross;
  snapshot->global_mean_rating_ = cross->target().GlobalMeanRating();
  snapshot->vocab_ = trainer.vocabulary();
  snapshot->aux_generator_ = std::make_unique<core::AuxReviewGenerator>(
      cross, trainer.split().train_users, config.text_field);
  snapshot->user_source_docs_ = trainer.user_source_docs();
  snapshot->user_target_docs_ = trainer.user_target_docs();
  snapshot->item_docs_ = trainer.item_docs();
  snapshot->cold_aux_doc_variants_ = trainer.cold_aux_doc_variants();
  snapshot->pad_user_doc_.assign(static_cast<size_t>(config.doc_len),
                                 text::Vocabulary::kPadId);
  snapshot->pad_item_doc_.assign(static_cast<size_t>(config.item_doc_len),
                                 text::Vocabulary::kPadId);

  // A fresh model of the same architecture; its random initialization is
  // immediately overwritten by the checkpoint's parameters.
  Rng init_rng(config.seed);
  snapshot->model_ = std::make_unique<core::OmniMatchModel>(
      config, snapshot->vocab_.size(), &init_rng);
  std::vector<nn::Tensor> params = snapshot->model_->Parameters();
  if (chosen.size() != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: checkpoint holds %zu parameter tensors, model has %zu",
        checkpoint_path.c_str(), chosen.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (chosen[i].size() != params[i].data().size()) {
      return Status::InvalidArgument(StrFormat(
          "%s: parameter %zu has %zu values, model expects %zu",
          checkpoint_path.c_str(), i, chosen[i].size(),
          params[i].data().size()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = std::move(chosen[i]);
    // Inference never backpropagates; dropping requires_grad keeps the
    // forward pass from recording an autograd tape. The math is untouched.
    params[i].set_requires_grad(false);
  }
  // Recursive: pre-sets every submodule's flag so the forward pass never
  // writes shared state again — the precondition for running this model on
  // several executor threads concurrently (see OmniMatchModel docs).
  snapshot->model_->SetTrainingMode(false);

  snapshot->version_ = SnapshotVersion(state.config_fingerprint,
                                       state.epochs_completed, state.steps,
                                       use_best);
  return std::shared_ptr<const ModelSnapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Load(
    const core::OmniMatchConfig& config, const data::CrossDomainDataset* cross,
    data::ColdStartSplit split, const std::string& checkpoint_path) {
  return Load(config, cross, std::move(split), checkpoint_path, Options());
}

std::vector<std::vector<int>> ModelSnapshot::BuildColdUserDocs(
    int user_id) const {
  const data::DomainDataset& source = cross_->source();
  const data::IdSpan records = source.RecordsOfUser(user_id);
  if (records.empty()) return {};

  auto source_texts = [&]() {
    std::vector<std::string> texts;
    for (int idx : records) {
      size_t i = static_cast<size_t>(idx);
      texts.emplace_back(config_.text_field == core::TextField::kSummary
                             ? source.ReviewSummary(i)
                             : source.ReviewFullText(i));
    }
    return texts;
  };

  // Seeded from (snapshot version, user id): admission is deterministic per
  // snapshot, independent of request order and of which replica serves it —
  // the same contract the offline parallel GenerateAll uses.
  Rng rng(core::AuxReviewGenerator::PerUserSeed(version_, user_id));
  int samples = std::max(1, config_.aux_eval_samples);
  if (!config_.use_aux_reviews) samples = 1;

  std::vector<std::vector<int>> docs;
  docs.reserve(static_cast<size_t>(samples));
  for (int k = 0; k < samples; ++k) {
    std::vector<std::string> reviews =
        config_.use_aux_reviews ? aux_generator_->GenerateForUser(user_id, &rng)
                                : source_texts();
    if (reviews.empty()) reviews = source_texts();
    docs.push_back(text::BuildDocumentIds(reviews, vocab_, config_.doc_len));
  }
  return docs;
}

}  // namespace serve
}  // namespace omnimatch
