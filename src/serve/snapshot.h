#ifndef OMNIMATCH_SERVE_SNAPSHOT_H_
#define OMNIMATCH_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/aux_review.h"
#include "core/config.h"
#include "core/model.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "nn/quant.h"
#include "serve/quant_head.h"
#include "text/vocabulary.h"

namespace omnimatch {
namespace serve {

/// Read-only inference state loaded from an OMCK checkpoint: model
/// parameters (the best-epoch snapshot when present), the vocabulary, and
/// the fixed evaluation-time documents — nothing trainable, no optimizer
/// accumulators, no RNG streams (eval never draws).
///
/// Immutability contract (see DESIGN.md "Serving"): after Load() returns,
/// no member of a ModelSnapshot is ever written again, so const references
/// may be shared freely across threads. That includes the model's forward
/// pass: parameters are frozen with requires_grad dropped (no autograd
/// tape), dropout is an eval no-op (no RNG draws), Load() pre-sets every
/// submodule's train/eval flag via SetTrainingMode (so the lazy per-forward
/// mode re-assertions are equality-guarded reads), and every activation is
/// a fresh local tensor. Any number of executor threads may therefore score
/// against one snapshot concurrently — each forward is independent, and the
/// kernel thread pool serializes its dispatch internally.
///
/// Versioning: version() is a stable digest of the config fingerprint and
/// the checkpoint's epoch/step counters. The user-embedding cache keys on
/// it, so entries from an older snapshot can never serve a newer one after
/// a swap.
class ModelSnapshot {
 public:
  struct Options {
    /// Use the checkpoint's best-epoch parameters when it carries them
    /// (select_best_epoch runs); fall back to the live parameters
    /// otherwise.
    bool prefer_best_params = true;
    /// Build the int8 quantized rating head at load (--quant serving mode):
    /// a float calibration pass over sampled frozen representations fixes
    /// the activation scales, then the per-request two-GEMM rating head
    /// runs on the runtime-dispatched int8 kernels. Admission, extractors
    /// and the cache stay float32. OFF by default — the default serving
    /// path is bit-identical to the trainer's PredictBatch.
    bool quantize = false;
    /// Calibration / planning knobs for the quantized head.
    nn::quant::QuantOptions quant;
  };

  /// Loads a snapshot for serving the given scenario. `cross` must outlive
  /// the snapshot (the dataset indices back online Algorithm 1 admission).
  /// Rebuilds vocabulary and documents exactly as the training run did
  /// (same config, same split, same seed => bit-identical documents), then
  /// installs the checkpoint's parameters. Fails with InvalidArgument on a
  /// fingerprint or shape mismatch, propagates I/O and corruption errors
  /// from the checkpoint reader.
  static Result<std::shared_ptr<const ModelSnapshot>> Load(
      const core::OmniMatchConfig& config,
      const data::CrossDomainDataset* cross, data::ColdStartSplit split,
      const std::string& checkpoint_path, const Options& options);
  /// Load with default Options (an overload because a nested struct's
  /// default member initializers cannot back a default argument inside the
  /// enclosing class).
  static Result<std::shared_ptr<const ModelSnapshot>> Load(
      const core::OmniMatchConfig& config,
      const data::CrossDomainDataset* cross, data::ColdStartSplit split,
      const std::string& checkpoint_path);

  /// Stable identity of (config, checkpoint progress); cache key component.
  uint64_t version() const { return version_; }

  const core::OmniMatchConfig& config() const { return config_; }
  const data::CrossDomainDataset* cross() const { return cross_; }
  const text::Vocabulary& vocabulary() const { return vocab_; }
  const core::AuxReviewGenerator& aux_generator() const {
    return *aux_generator_;
  }

  /// The target domain's global mean rating — the scoring fallback for
  /// users the model has no usable representation for.
  float global_mean_rating() const { return global_mean_rating_; }

  /// Frozen evaluation documents (bit-identical to the trainer's).
  const std::unordered_map<int, std::vector<int>>& user_source_docs() const {
    return user_source_docs_;
  }
  const std::unordered_map<int, std::vector<int>>& user_target_docs() const {
    return user_target_docs_;
  }
  const std::unordered_map<int, std::vector<int>>& item_docs() const {
    return item_docs_;
  }
  const std::unordered_map<int, std::vector<std::vector<int>>>&
  cold_aux_doc_variants() const {
    return cold_aux_doc_variants_;
  }

  /// All-pad documents for unknown users/items (the trainer's GatherDocs
  /// fallback).
  const std::vector<int>& pad_user_doc() const { return pad_user_doc_; }
  const std::vector<int>& pad_item_doc() const { return pad_item_doc_; }

  /// Runs Algorithm 1 online for a user the snapshot has no frozen target
  /// documents for, against the pre-built dataset indices. Deterministic:
  /// the RNG is seeded from (version, user_id), so the same user admitted
  /// twice — or on two replicas serving the same snapshot — gets the same
  /// documents. Returns aux_eval_samples documents (first = primary,
  /// rest = ensemble variants); each falls back to the user's raw source
  /// reviews when Algorithm 1 finds no like-minded match (the trainer's
  /// fallback). Empty result when the user has no source records at all.
  std::vector<std::vector<int>> BuildColdUserDocs(int user_id) const;

  /// The loaded model. Logically const — parameters are frozen, and the
  /// eval forward writes no shared state (see class comment), so it may be
  /// driven from any number of scoring threads concurrently.
  core::OmniMatchModel* model() const { return model_.get(); }

  /// The int8 rating head, or null when Options::quantize was off (or the
  /// frozen world offered no calibration rows). Immutable after Load, like
  /// everything else here — safe to drive from every executor thread.
  const QuantizedRatingHead* quant_head() const { return quant_head_.get(); }

 private:
  ModelSnapshot() = default;

  core::OmniMatchConfig config_;
  const data::CrossDomainDataset* cross_ = nullptr;
  uint64_t version_ = 0;
  float global_mean_rating_ = 0.0f;

  text::Vocabulary vocab_;
  std::unique_ptr<core::AuxReviewGenerator> aux_generator_;
  std::unique_ptr<core::OmniMatchModel> model_;
  std::unique_ptr<QuantizedRatingHead> quant_head_;

  std::unordered_map<int, std::vector<int>> user_source_docs_;
  std::unordered_map<int, std::vector<int>> user_target_docs_;
  std::unordered_map<int, std::vector<int>> item_docs_;
  std::unordered_map<int, std::vector<std::vector<int>>>
      cold_aux_doc_variants_;
  std::vector<int> pad_user_doc_;
  std::vector<int> pad_item_doc_;
};

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_SNAPSHOT_H_
