#include "serve/snapshot_manager.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "obs/metrics.h"

namespace omnimatch {
namespace serve {

namespace {

obs::Counter* SwapSuccessCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.swap.success");
  return c;
}
obs::Counter* SwapRollbackCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.swap.rollback");
  return c;
}

/// The `n` smallest keys of `map` in ascending order — a probe set that is
/// a pure function of the snapshot contents.
template <typename Map>
std::vector<int> SmallestKeys(const Map& map, int n) {
  std::vector<int> keys;
  keys.reserve(map.size());
  for (const auto& kv : map) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  if (static_cast<int>(keys.size()) > n) keys.resize(static_cast<size_t>(n));
  return keys;
}

}  // namespace

SnapshotManager::SnapshotManager(InferenceServer* server,
                                 const Options& options)
    : server_(server), options_(options) {
  OM_CHECK(server_ != nullptr);
  OM_CHECK_GE(options_.probe_users, 0);
  OM_CHECK_GE(options_.probe_items, 0);
}

SnapshotManager::SnapshotManager(InferenceServer* server)
    : SnapshotManager(server, Options()) {}

Status SnapshotManager::SwapFromCheckpoint(
    const core::OmniMatchConfig& config, const data::CrossDomainDataset* cross,
    data::ColdStartSplit split, const std::string& checkpoint_path) {
  // Off the hot path from here to the final SwapSnapshot: the server keeps
  // serving the incumbent while we read, check, and probe the candidate.
  Result<std::shared_ptr<const ModelSnapshot>> loaded = ModelSnapshot::Load(
      config, cross, split, checkpoint_path, options_.snapshot_options);
  if (!loaded.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rollbacks_;
    if (obs::MetricsEnabled()) SwapRollbackCounter()->Increment();
    return loaded.status();
  }
  return SwapTo(std::move(loaded).value());
}

Status SnapshotManager::SwapTo(
    std::shared_ptr<const ModelSnapshot> candidate) {
  OM_CHECK(candidate != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Status status = Status::OK();
  FaultHit hit;
  if (FaultInjector::Global().ShouldFire("snapshot_load", &hit)) {
    status = Status::Internal("injected snapshot_load fault");
  } else {
    status = ValidateProbes(candidate);
  }
  if (!status.ok()) {
    // Rollback = never installing the candidate; the incumbent never
    // stopped serving, so there is nothing to restore.
    ++rollbacks_;
    if (obs::MetricsEnabled()) SwapRollbackCounter()->Increment();
    return status;
  }
  server_->SwapSnapshot(std::move(candidate));
  ++swaps_;
  if (obs::MetricsEnabled()) SwapSuccessCounter()->Increment();
  return Status::OK();
}

Status SnapshotManager::ValidateProbes(
    const std::shared_ptr<const ModelSnapshot>& candidate) {
  const std::vector<int> users =
      SmallestKeys(candidate->user_target_docs(), options_.probe_users);
  const std::vector<int> items =
      SmallestKeys(candidate->item_docs(), options_.probe_items);
  if (users.empty() || items.empty()) return Status::OK();

  std::vector<ScoreRequest> probes;
  probes.reserve(users.size() * items.size());
  for (int user : users) {
    for (int item : items) {
      ScoreRequest r;
      r.user = user;
      r.item = item;
      probes.push_back(r);
    }
  }

  // Two INDEPENDENT scorers: the second pass recomputes the admissions
  // from scratch instead of replaying the first pass's cache, so the
  // agreement check exercises the full forward twice.
  Scorer first(candidate, probes.size());
  Scorer second(candidate, probes.size());
  const std::vector<ScoredValue> a =
      first.ScoreBatchWith(candidate, probes, ScoreMode::kFull);
  const std::vector<ScoredValue> b =
      second.ScoreBatchWith(candidate, probes, ScoreMode::kFull);
  OM_CHECK_EQ(a.size(), probes.size());
  OM_CHECK_EQ(b.size(), probes.size());

  const float lo = 1.0f;
  const float hi =
      static_cast<float>(candidate->config().num_rating_classes);
  for (size_t i = 0; i < probes.size(); ++i) {
    if (!std::isfinite(a[i].score)) {
      return Status::FailedPrecondition(
          "golden probe (user=" + std::to_string(probes[i].user) +
          ", item=" + std::to_string(probes[i].item) +
          ") scored non-finite: candidate parameters are corrupt");
    }
    if (a[i].score < lo || a[i].score > hi) {
      return Status::FailedPrecondition(
          "golden probe (user=" + std::to_string(probes[i].user) +
          ", item=" + std::to_string(probes[i].item) + ") scored " +
          std::to_string(a[i].score) + ", outside [1, " +
          std::to_string(candidate->config().num_rating_classes) + "]");
    }
    if (a[i].score != b[i].score) {
      return Status::FailedPrecondition(
          "golden probe (user=" + std::to_string(probes[i].user) +
          ", item=" + std::to_string(probes[i].item) +
          ") is not reproducible: candidate forward is nondeterministic");
    }
  }
  return Status::OK();
}

int64_t SnapshotManager::swaps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swaps_;
}

int64_t SnapshotManager::rollbacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rollbacks_;
}

uint64_t SnapshotManager::active_version() const {
  return server_->scorer().CurrentSnapshot()->version();
}

}  // namespace serve
}  // namespace omnimatch
