#ifndef OMNIMATCH_SERVE_SNAPSHOT_MANAGER_H_
#define OMNIMATCH_SERVE_SNAPSHOT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/config.h"
#include "data/splits.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace omnimatch {
namespace serve {

/// Zero-downtime snapshot rollout for a running InferenceServer.
///
/// SwapFromCheckpoint stages the ENTIRE load + validation off the hot path:
/// the candidate OMCK is read (its CRC framing is verified by the
/// checkpoint reader), its config fingerprint is checked against the
/// serving scenario, and a deterministic golden-probe set is scored against
/// the candidate — all while the server keeps serving the incumbent
/// snapshot at full rate. Only a candidate that passes every check is
/// installed, atomically, between batches (InferenceServer::SwapSnapshot);
/// in-flight batches finish on the incumbent.
///
/// Rollback is therefore trivial and implicit: on ANY failure — unreadable
/// or corrupt file, fingerprint mismatch, non-finite or out-of-range probe
/// scores, or an injected "snapshot_load" fault (common/fault.h) — the
/// candidate is discarded, the incumbent keeps serving, and the attempt is
/// counted in rollbacks() / serve.swap.rollback. There is no window in
/// which requests could observe a bad model.
///
/// Golden-probe validation: the probe set is derived from the candidate
/// itself (the lowest probe_users user ids with frozen target documents ×
/// the lowest probe_items item ids), scored twice at full fidelity.
/// Every score must be finite and inside [1, num_rating_classes], and the
/// two runs must agree bit-for-bit — a cheap end-to-end exercise of the
/// embedding, extractor, and head parameters that catches the classic
/// corruption modes (NaN/Inf poisoning, truncated tensors) without needing
/// stored reference values.
///
/// Thread-safe; swaps serialize against each other, never against scoring.
class SnapshotManager {
 public:
  struct Options {
    /// Golden-probe grid: probe_users × probe_items requests (capped by
    /// what the snapshot holds). 0 disables probe validation.
    int probe_users = 4;
    int probe_items = 4;
    ModelSnapshot::Options snapshot_options;
  };

  /// `server` must outlive the manager.
  SnapshotManager(InferenceServer* server, const Options& options);
  explicit SnapshotManager(InferenceServer* server);

  /// Loads, validates, and — on success — atomically installs the
  /// checkpoint at `checkpoint_path` for the serving scenario
  /// (config/cross/split as in ModelSnapshot::Load; `cross` must outlive
  /// the server). On failure returns why, and the server is untouched.
  Status SwapFromCheckpoint(const core::OmniMatchConfig& config,
                            const data::CrossDomainDataset* cross,
                            data::ColdStartSplit split,
                            const std::string& checkpoint_path);

  /// Validates an already-loaded candidate and installs it (same contract).
  Status SwapTo(std::shared_ptr<const ModelSnapshot> candidate);

  /// Successful installs / discarded candidates since construction.
  int64_t swaps() const;
  int64_t rollbacks() const;
  /// Version currently serving (the incumbent's until a swap succeeds).
  uint64_t active_version() const;

 private:
  /// The golden-probe check described in the class comment.
  Status ValidateProbes(const std::shared_ptr<const ModelSnapshot>& candidate);

  InferenceServer* const server_;
  const Options options_;

  mutable std::mutex mu_;
  int64_t swaps_ = 0;
  int64_t rollbacks_ = 0;
};

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_SNAPSHOT_MANAGER_H_
