#include "serve/types.h"

namespace omnimatch {
namespace serve {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "Ok";
    case RequestStatus::kDegradedCached:
      return "DegradedCached";
    case RequestStatus::kDegradedFallback:
      return "DegradedFallback";
    case RequestStatus::kDeadlineExceeded:
      return "DeadlineExceeded";
    case RequestStatus::kOverloaded:
      return "Overloaded";
    case RequestStatus::kShuttingDown:
      return "ShuttingDown";
  }
  return "Unknown";
}

const char* ScoreModeName(ScoreMode mode) {
  switch (mode) {
    case ScoreMode::kFull:
      return "full";
    case ScoreMode::kCachedOnly:
      return "cached_only";
    case ScoreMode::kGlobalMean:
      return "global_mean";
  }
  return "unknown";
}

}  // namespace serve
}  // namespace omnimatch
