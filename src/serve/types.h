#ifndef OMNIMATCH_SERVE_TYPES_H_
#define OMNIMATCH_SERVE_TYPES_H_

#include <cstdint>

namespace omnimatch {
namespace serve {

/// Terminal state of one scoring request. The first three carry a score;
/// the rest are rejections that never touched the model.
///
/// The fidelity contract (see DESIGN.md "Serving failure model"): a kOk
/// response is bit-identical to single-threaded full-forward scoring. A
/// kDegradedCached response was produced under pressure from the user's
/// cached representation rows — still bit-identical for that user, but the
/// server skipped admission work for the batch. A kDegradedFallback
/// response is the target domain's global mean. Every other status is an
/// explicit refusal, so a client can always tell exact answers from
/// best-effort ones.
enum class RequestStatus : uint8_t {
  /// Full-fidelity score (tier 0 of the degradation ladder).
  kOk = 0,
  /// Served from the user-embedding cache without admitting new users
  /// (tier 1). The score equals the full-forward score for this user.
  kDegradedCached = 1,
  /// Global-mean fallback; the model was not consulted (tier 2).
  kDegradedFallback = 2,
  /// The request's deadline passed before an executor dispatched it.
  kDeadlineExceeded = 3,
  /// Rejected at admission: the queue was at max_queue (or an armed
  /// `queue_admit` fault forced the rejection).
  kOverloaded = 4,
  /// Rejected because Shutdown() had already begun.
  kShuttingDown = 5,
};

/// Stable human-readable name ("Ok", "DegradedCached", ...).
const char* RequestStatusName(RequestStatus status);

/// True when the response carries a usable score (possibly degraded).
inline bool HasScore(RequestStatus status) {
  return status == RequestStatus::kOk ||
         status == RequestStatus::kDegradedCached ||
         status == RequestStatus::kDegradedFallback;
}

/// One scoring response. `snapshot_version` is the version() of the
/// ModelSnapshot that produced (or would have produced) the score — under a
/// hot swap, in-flight batches finish on the snapshot they started with, and
/// this field tells the client exactly which one that was.
struct ScoreResult {
  float score = 0.0f;
  RequestStatus status = RequestStatus::kOk;
  uint64_t snapshot_version = 0;

  bool ok() const { return status == RequestStatus::kOk; }
  bool has_score() const { return HasScore(status); }
};

/// Executor-side scoring mode — the degradation ladder's tiers.
enum class ScoreMode : uint8_t {
  /// Tier 0: full forward, admitting unknown users (Algorithm 1 online).
  kFull = 0,
  /// Tier 1: serve cache hits through the rating head only; cache misses
  /// fall back to the global mean. No admission work.
  kCachedOnly = 1,
  /// Tier 2: every request gets the global mean; the model is not run.
  kGlobalMean = 2,
};

/// Stable human-readable name ("full", "cached_only", "global_mean").
const char* ScoreModeName(ScoreMode mode);

}  // namespace serve
}  // namespace omnimatch

#endif  // OMNIMATCH_SERVE_TYPES_H_
