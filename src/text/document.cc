#include "text/document.h"

#include "common/check.h"
#include "text/tokenizer.h"

namespace omnimatch {
namespace text {

std::vector<std::string> ConcatAndTokenize(
    const std::vector<std::string>& reviews) {
  std::vector<std::string> tokens;
  for (const std::string& review : reviews) {
    std::vector<std::string> t = Tokenize(review);
    tokens.insert(tokens.end(), t.begin(), t.end());
  }
  return tokens;
}

std::vector<int> BuildDocumentIds(const std::vector<std::string>& reviews,
                                  const Vocabulary& vocab, int max_len) {
  OM_CHECK_GT(max_len, 0);
  std::vector<std::string> tokens = ConcatAndTokenize(reviews);
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(max_len));
  for (const std::string& tok : tokens) {
    if (static_cast<int>(ids.size()) >= max_len) break;
    ids.push_back(vocab.IdOf(tok));
  }
  while (static_cast<int>(ids.size()) < max_len) {
    ids.push_back(Vocabulary::kPadId);
  }
  return ids;
}

}  // namespace text
}  // namespace omnimatch
