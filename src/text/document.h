#ifndef OMNIMATCH_TEXT_DOCUMENT_H_
#define OMNIMATCH_TEXT_DOCUMENT_H_

#include <string>
#include <vector>

#include "text/vocabulary.h"

namespace omnimatch {
namespace text {

/// Builds the user/item review document of §4.2: concatenates review texts
/// (Eq. 1), tokenizes (Eq. 2), encodes against `vocab`, then truncates or
/// pads with `<pad>` to exactly `max_len` ids.
///
/// The paper joins auxiliary reviews with an `<sp>` marker (§5.10); callers
/// who want that pass the reviews through unchanged — the tokenizer strips
/// the angle brackets, leaving an "sp" token which acts as the separator if
/// present in the vocabulary.
std::vector<int> BuildDocumentIds(const std::vector<std::string>& reviews,
                                  const Vocabulary& vocab, int max_len);

/// Tokenized (not encoded) concatenation of the reviews, unbounded length.
std::vector<std::string> ConcatAndTokenize(
    const std::vector<std::string>& reviews);

}  // namespace text
}  // namespace omnimatch

#endif  // OMNIMATCH_TEXT_DOCUMENT_H_
