#ifndef OMNIMATCH_TEXT_TOKENIZER_H_
#define OMNIMATCH_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace omnimatch {
namespace text {

/// Tokenizes review text following §5.2 of the paper: lowercase, strip all
/// punctuation, split on whitespace. Digits and letters are kept; every
/// other character becomes a separator.
std::vector<std::string> Tokenize(std::string_view text);

}  // namespace text
}  // namespace omnimatch

#endif  // OMNIMATCH_TEXT_TOKENIZER_H_
