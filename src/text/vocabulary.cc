#include "text/vocabulary.h"

#include <fstream>

#include "common/check.h"

namespace omnimatch {
namespace text {

Vocabulary::Vocabulary() {
  AddToken("<pad>");
  AddToken("<unk>");
}

int Vocabulary::AddToken(const std::string& token) {
  auto [it, inserted] =
      token_to_id_.emplace(token, static_cast<int>(id_to_token_.size()));
  if (inserted) id_to_token_.push_back(token);
  return it->second;
}

void Vocabulary::BuildFromDocuments(
    const std::vector<std::vector<std::string>>& docs, int min_count) {
  OM_CHECK_GE(min_count, 1);
  std::unordered_map<std::string, int> counts;
  for (const auto& doc : docs) {
    for (const auto& tok : doc) ++counts[tok];
  }
  // Deterministic insertion order: walk documents again in order.
  for (const auto& doc : docs) {
    for (const auto& tok : doc) {
      if (counts[tok] >= min_count) AddToken(tok);
    }
  }
}

int Vocabulary::IdOf(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnkId : it->second;
}

const std::string& Vocabulary::TokenOf(int id) const {
  OM_CHECK(id >= 0 && id < size()) << "vocab id " << id;
  return id_to_token_[static_cast<size_t>(id)];
}

bool Vocabulary::Contains(const std::string& token) const {
  return token_to_id_.count(token) > 0;
}

std::vector<int> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int> ids;
  ids.reserve(tokens.size());
  for (const auto& tok : tokens) ids.push_back(IdOf(tok));
  return ids;
}

Status Vocabulary::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& tok : id_to_token_) out << tok << "\n";
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Vocabulary> Vocabulary::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  Vocabulary vocab;
  std::string line;
  int index = 0;
  while (std::getline(in, line)) {
    if (index >= 2) {  // skip the reserved tokens written by Save()
      vocab.AddToken(line);
    } else {
      // Sanity: the file must start with the reserved tokens.
      if ((index == 0 && line != "<pad>") || (index == 1 && line != "<unk>")) {
        return Status::InvalidArgument(path +
                                       " is not a Vocabulary::Save file");
      }
    }
    ++index;
  }
  return vocab;
}

}  // namespace text
}  // namespace omnimatch
