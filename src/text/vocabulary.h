#ifndef OMNIMATCH_TEXT_VOCABULARY_H_
#define OMNIMATCH_TEXT_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace omnimatch {
namespace text {

/// Token <-> id mapping with reserved ids.
///
/// Id 0 is `<pad>` (document padding), id 1 is `<unk>` (out-of-vocabulary
/// tokens at encode time). Build the vocabulary once from the training
/// corpus, then `Encode` any document.
class Vocabulary {
 public:
  static constexpr int kPadId = 0;
  static constexpr int kUnkId = 1;

  Vocabulary();

  /// Adds a token (no-op if present); returns its id.
  int AddToken(const std::string& token);

  /// Counts occurrences across `documents` and adds every token appearing
  /// at least `min_count` times.
  void BuildFromDocuments(const std::vector<std::vector<std::string>>& docs,
                          int min_count = 1);

  /// Token id, or kUnkId when absent.
  int IdOf(const std::string& token) const;

  /// Token string for an id. OM_CHECKs the id is in range.
  const std::string& TokenOf(int id) const;

  bool Contains(const std::string& token) const;

  /// Encodes tokens to ids (unknown -> kUnkId).
  std::vector<int> Encode(const std::vector<std::string>& tokens) const;

  /// Number of entries including the reserved ids.
  int size() const { return static_cast<int>(id_to_token_.size()); }

  /// Persists one token per line (reserved ids included).
  Status Save(const std::string& path) const;

  /// Loads a vocabulary saved with Save().
  static Result<Vocabulary> Load(const std::string& path);

 private:
  std::unordered_map<std::string, int> token_to_id_;
  std::vector<std::string> id_to_token_;
};

}  // namespace text
}  // namespace omnimatch

#endif  // OMNIMATCH_TEXT_VOCABULARY_H_
