#include <memory>

#include <gtest/gtest.h>

#include "baselines/cmf.h"
#include "baselines/emcdr.h"
#include "baselines/herograph.h"
#include "baselines/lightgcn.h"
#include "baselines/ngcf.h"
#include "baselines/ptupcdr.h"
#include "baselines/recommender.h"
#include "data/splits.h"
#include "data/synthetic.h"

namespace omnimatch {
namespace baselines {
namespace {

struct Fixture {
  Fixture() {
    data::SyntheticConfig config;
    config.num_users = 90;
    config.items_per_domain = 40;
    config.mean_reviews_per_user = 5;
    config.seed = 77;
    world = std::make_unique<data::SyntheticWorld>(config);
    cross = std::make_unique<data::CrossDomainDataset>(
        world->MakePair("Books", "Movies"));
    Rng rng(3);
    split = data::MakeColdStartSplit(*cross, &rng);
  }
  std::unique_ptr<data::SyntheticWorld> world;
  std::unique_ptr<data::CrossDomainDataset> cross;
  data::ColdStartSplit split;
};

std::unique_ptr<Recommender> MakeByName(const std::string& name) {
  if (name == "CMF") return std::make_unique<Cmf>();
  if (name == "EMCDR") {
    Emcdr::Config c;
    c.mapping_epochs = 40;
    return std::make_unique<Emcdr>(c);
  }
  if (name == "PTUPCDR") {
    Ptupcdr::Config c;
    c.warmup_epochs = 40;
    c.task_epochs = 3;
    return std::make_unique<Ptupcdr>(c);
  }
  GnnConfig gnn;
  gnn.epochs = 10;
  if (name == "NGCF") return std::make_unique<Ngcf>(gnn);
  if (name == "LIGHTGCN") return std::make_unique<LightGcn>(gnn);
  if (name == "HeroGraph") return std::make_unique<HeroGraph>(gnn);
  return nullptr;
}

class BaselineContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineContractTest, FitsAndPredictsInScale) {
  Fixture f;
  auto model = MakeByName(GetParam());
  ASSERT_NE(model, nullptr);
  ASSERT_TRUE(model->Fit(*f.cross, f.split).ok());
  for (int u : f.split.test_users) {
    for (int idx : f.cross->target().RecordsOfUser(u)) {
      float pred =
          model->PredictRating(u, f.cross->target().reviews()[idx].item_id);
      EXPECT_GE(pred, 1.0f);
      EXPECT_LE(pred, 5.0f);
    }
  }
}

TEST_P(BaselineContractTest, BeatsWorstCaseRmse) {
  Fixture f;
  auto model = MakeByName(GetParam());
  ASSERT_TRUE(model->Fit(*f.cross, f.split).ok());
  eval::Metrics m = EvaluateRecommender(*model, *f.cross,
                                        f.split.test_users);
  EXPECT_GT(m.count, 0);
  // Any reasonable model beats the "always predict 1" strawman by far.
  EXPECT_LT(m.rmse, 2.0);
}

TEST_P(BaselineContractTest, HandlesUnknownUserAndItem) {
  Fixture f;
  auto model = MakeByName(GetParam());
  ASSERT_TRUE(model->Fit(*f.cross, f.split).ok());
  float pred = model->PredictRating(123456, 654321);
  EXPECT_GE(pred, 1.0f);
  EXPECT_LE(pred, 5.0f);
}

TEST_P(BaselineContractTest, NameMatchesPaperSpelling) {
  auto model = MakeByName(GetParam());
  EXPECT_EQ(model->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineContractTest,
                         ::testing::Values("CMF", "EMCDR", "PTUPCDR", "NGCF",
                                           "LIGHTGCN", "HeroGraph"));

TEST(BaselineProtocolTest, VisibleRatingsHideColdTargetRecords) {
  Fixture f;
  std::vector<RatingTriple> visible =
      VisibleRatings(*f.cross, f.split, /*source=*/true, /*target=*/true);
  std::set<int> cold(f.split.test_users.begin(), f.split.test_users.end());
  cold.insert(f.split.validation_users.begin(),
              f.split.validation_users.end());
  std::set<int> target_items(f.cross->target().items().begin(),
                             f.cross->target().items().end());
  for (const RatingTriple& r : visible) {
    if (cold.count(r.user) > 0) {
      // A cold user's visible ratings must all be source-domain.
      EXPECT_EQ(target_items.count(r.item), 0u)
          << "leaked target rating of cold user " << r.user;
    }
  }
}

TEST(BaselineProtocolTest, SourceOnlySelection) {
  Fixture f;
  std::vector<RatingTriple> source_only =
      VisibleRatings(*f.cross, f.split, true, false);
  EXPECT_EQ(source_only.size(), f.cross->source().num_reviews());
}

TEST(SingleDomainColdStartTest, LightGcnPredictionIgnoresColdUserIdentity) {
  // Single-domain models never see cold users: predictions for two distinct
  // cold users on the same item must be identical (mu + item bias).
  Fixture f;
  GnnConfig gnn;
  gnn.epochs = 5;
  LightGcn model(gnn);
  ASSERT_TRUE(model.Fit(*f.cross, f.split).ok());
  ASSERT_GE(f.split.test_users.size(), 2u);
  int item = f.cross->target().items()[0];
  EXPECT_FLOAT_EQ(model.PredictRating(f.split.test_users[0], item),
                  model.PredictRating(f.split.test_users[1], item));
}

TEST(CrossDomainColdStartTest, HeroGraphPersonalizesColdUsers) {
  // The joint graph gives cold users source-side embeddings, so two cold
  // users should (generically) get different predictions on some item.
  Fixture f;
  GnnConfig gnn;
  gnn.epochs = 10;
  HeroGraph model(gnn);
  ASSERT_TRUE(model.Fit(*f.cross, f.split).ok());
  bool differs = false;
  int item = f.cross->target().items()[0];
  for (size_t i = 1; i < f.split.test_users.size() && !differs; ++i) {
    if (model.PredictRating(f.split.test_users[0], item) !=
        model.PredictRating(f.split.test_users[i], item)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(CrossDomainColdStartTest, EmcdrMapsColdUsers) {
  Fixture f;
  Emcdr::Config config;
  config.mapping_epochs = 40;
  Emcdr model(config);
  ASSERT_TRUE(model.Fit(*f.cross, f.split).ok());
  bool differs = false;
  int item = f.cross->target().items()[0];
  for (size_t i = 1; i < f.split.test_users.size() && !differs; ++i) {
    if (model.PredictRating(f.split.test_users[0], item) !=
        model.PredictRating(f.split.test_users[i], item)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace baselines
}  // namespace omnimatch
