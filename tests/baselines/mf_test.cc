#include "baselines/mf.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace baselines {
namespace {

std::vector<RatingTriple> BlockRatings() {
  // Two user groups x two item groups with clearly different ratings.
  std::vector<RatingTriple> out;
  for (int u = 0; u < 10; ++u) {
    for (int i = 0; i < 10; ++i) {
      bool same_block = (u < 5) == (i < 5);
      out.push_back({u, 100 + i, same_block ? 5.0f : 1.0f});
    }
  }
  return out;
}

TEST(MfTest, LearnsBlockStructure) {
  MfConfig config;
  config.epochs = 120;
  MatrixFactorization mf(config);
  mf.Fit(BlockRatings());
  EXPECT_GT(mf.Predict(0, 100), 3.8f);  // same block
  EXPECT_LT(mf.Predict(0, 109), 2.2f);  // cross block
}

TEST(MfTest, PredictsGlobalMeanForUnknownPair) {
  MatrixFactorization mf(MfConfig{});
  mf.Fit({{0, 1, 4.0f}, {1, 1, 2.0f}});
  EXPECT_FLOAT_EQ(mf.Predict(999, 999), 3.0f);
}

TEST(MfTest, PredictionsClampedToScale) {
  MatrixFactorization mf(MfConfig{});
  mf.Fit(BlockRatings());
  for (int u = 0; u < 10; ++u) {
    for (int i = 100; i < 110; ++i) {
      float p = mf.Predict(u, i);
      EXPECT_GE(p, 1.0f);
      EXPECT_LE(p, 5.0f);
    }
  }
}

TEST(MfTest, FactorsHaveConfiguredDim) {
  MfConfig config;
  config.dim = 7;
  MatrixFactorization mf(config);
  mf.Fit({{0, 1, 4.0f}, {1, 2, 2.0f}});
  EXPECT_EQ(mf.UserFactor(0).size(), 7u);
  EXPECT_EQ(mf.ItemFactor(2).size(), 7u);
  EXPECT_TRUE(mf.HasUser(1));
  EXPECT_FALSE(mf.HasUser(5));
}

TEST(MfTest, BiaslessModeKeepsBiasesZero) {
  MfConfig config;
  config.use_biases = false;
  MatrixFactorization mf(config);
  mf.Fit(BlockRatings());
  EXPECT_FLOAT_EQ(mf.UserBias(0), 0.0f);
  EXPECT_FLOAT_EQ(mf.ItemBias(100), 0.0f);
  // It still learns the structure through factors alone.
  EXPECT_GT(mf.Predict(0, 100), mf.Predict(0, 109));
}

TEST(MfTest, DeterministicGivenSeed) {
  MfConfig config;
  MatrixFactorization a(config), b(config);
  auto ratings = BlockRatings();
  a.Fit(ratings);
  b.Fit(ratings);
  EXPECT_EQ(a.UserFactor(3), b.UserFactor(3));
}

TEST(MfTest, UserBiasCapturesGenerosity) {
  // User 0 rates everything one star higher than user 1.
  std::vector<RatingTriple> ratings;
  for (int i = 0; i < 20; ++i) {
    ratings.push_back({0, i, 4.0f});
    ratings.push_back({1, i, 3.0f});
  }
  MfConfig config;
  config.epochs = 80;
  MatrixFactorization mf(config);
  mf.Fit(ratings);
  EXPECT_GT(mf.UserBias(0), mf.UserBias(1));
}

}  // namespace
}  // namespace baselines
}  // namespace omnimatch
