#include "common/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

TEST(Crc32Test, EmptyInputIsZero) {
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  EXPECT_EQ(Crc32(std::string_view{}), 0u);
}

TEST(Crc32Test, KnownVectors) {
  // The canonical CRC-32 check value (ITU-T V.42 / zlib / PNG).
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(std::string_view("abc")), 0x352441C2u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32(std::string_view(data));
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t crc = Crc32(data.data(), cut);
    crc = Crc32(data.data() + cut, data.size() - cut, crc);
    EXPECT_EQ(crc, one_shot) << "split at " << cut;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  uint32_t clean = Crc32(std::string_view(data));
  for (size_t byte : {size_t{0}, data.size() / 2, data.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = data;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_NE(Crc32(std::string_view(corrupt)), clean)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32Test, DetectsTruncation) {
  std::string data = "checkpoint payload bytes";
  uint32_t clean = Crc32(std::string_view(data));
  EXPECT_NE(Crc32(data.data(), data.size() - 1), clean);
}

}  // namespace
}  // namespace omnimatch
