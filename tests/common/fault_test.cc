#include "common/fault.h"

#include <cmath>

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

/// Every test runs against a fresh local injector; the Global() singleton
/// is only touched where the singleton behaviour itself is under test.
class FaultTest : public ::testing::Test {
 protected:
  FaultInjector injector_;
};

TEST_F(FaultTest, UnarmedNeverFires) {
  EXPECT_FALSE(injector_.armed());
  EXPECT_FALSE(injector_.ShouldFire("grad", int64_t{0}));
  EXPECT_FALSE(injector_.ShouldFire("loss", 123));
  EXPECT_EQ(injector_.fired(), 0);
}

TEST_F(FaultTest, FiresAtArmedStepOnly) {
  FaultSpec spec;
  spec.point = "grad";
  spec.step = 5;
  injector_.Arm(spec);
  EXPECT_TRUE(injector_.armed());

  EXPECT_FALSE(injector_.ShouldFire("grad", 4));
  FaultHit hit;
  EXPECT_TRUE(injector_.ShouldFire("grad", 5, &hit));
  EXPECT_EQ(hit.magnitude, 0.0);  // site default
  // Re-consulting the same step (a rollback retry) must NOT re-fire.
  EXPECT_FALSE(injector_.ShouldFire("grad", 5));
  // count=1: spent for later steps too.
  EXPECT_FALSE(injector_.ShouldFire("grad", 6));
  EXPECT_EQ(injector_.fired(), 1);
}

TEST_F(FaultTest, PointNamesAreIndependent) {
  FaultSpec spec;
  spec.point = "loss";
  spec.step = 2;
  injector_.Arm(spec);
  EXPECT_FALSE(injector_.ShouldFire("grad", 2));
  EXPECT_TRUE(injector_.ShouldFire("loss", 2));
}

TEST_F(FaultTest, CountFiresOnDistinctSteps) {
  FaultSpec spec;
  spec.point = "grad";
  spec.step = 3;
  spec.count = 2;
  injector_.Arm(spec);

  EXPECT_TRUE(injector_.ShouldFire("grad", 3));
  EXPECT_FALSE(injector_.ShouldFire("grad", 3));  // same step: spent
  EXPECT_TRUE(injector_.ShouldFire("grad", 4));   // next distinct step
  EXPECT_FALSE(injector_.ShouldFire("grad", 5));  // budget exhausted
  EXPECT_EQ(injector_.fired(), 2);
}

TEST_F(FaultTest, SteplessOverloadCountsConsultations) {
  FaultSpec spec;
  spec.point = "checkpoint_write";
  spec.step = 1;  // fire on the SECOND consultation (counter starts at 0)
  injector_.Arm(spec);

  EXPECT_FALSE(injector_.ShouldFire("checkpoint_write"));
  EXPECT_TRUE(injector_.ShouldFire("checkpoint_write"));
  EXPECT_FALSE(injector_.ShouldFire("checkpoint_write"));
}

TEST_F(FaultTest, DisarmResetsEverything) {
  FaultSpec spec;
  spec.point = "grad";
  spec.step = 0;
  injector_.Arm(spec);
  EXPECT_TRUE(injector_.ShouldFire("grad", int64_t{0}));
  injector_.Disarm();
  EXPECT_FALSE(injector_.armed());
  EXPECT_EQ(injector_.fired(), 0);
  // Re-arming after Disarm starts from a clean slate.
  injector_.Arm(spec);
  EXPECT_TRUE(injector_.ShouldFire("grad", int64_t{0}));
}

TEST_F(FaultTest, ParsesBareSpec) {
  ASSERT_TRUE(injector_.ArmFromString("grad@5").ok());
  FaultHit hit;
  EXPECT_TRUE(injector_.ShouldFire("grad", 5, &hit));
  EXPECT_EQ(hit.magnitude, 0.0);
  EXPECT_EQ(hit.seed, 0u);
}

TEST_F(FaultTest, ParsesAllKeys) {
  ASSERT_TRUE(
      injector_.ArmFromString("loss@3:mag=12.5,count=2,seed=42").ok());
  FaultHit hit;
  EXPECT_TRUE(injector_.ShouldFire("loss", 3, &hit));
  EXPECT_DOUBLE_EQ(hit.magnitude, 12.5);
  EXPECT_EQ(hit.seed, 42u);
  EXPECT_TRUE(injector_.ShouldFire("loss", 4, &hit));
  EXPECT_FALSE(injector_.ShouldFire("loss", 5, &hit));
}

TEST_F(FaultTest, ParsesNanAndInfMagnitudes) {
  ASSERT_TRUE(
      injector_.ArmFromString("grad@1:mag=nan;param@2:mag=inf").ok());
  FaultHit hit;
  EXPECT_TRUE(injector_.ShouldFire("grad", 1, &hit));
  EXPECT_TRUE(std::isnan(hit.magnitude));
  EXPECT_TRUE(injector_.ShouldFire("param", 2, &hit));
  EXPECT_TRUE(std::isinf(hit.magnitude));
  EXPECT_GT(hit.magnitude, 0.0);
}

TEST_F(FaultTest, ParsesMultipleSpecsAndWhitespace) {
  ASSERT_TRUE(injector_.ArmFromString(" grad@1 ; loss@2:mag=10 ").ok());
  EXPECT_TRUE(injector_.ShouldFire("grad", 1));
  EXPECT_TRUE(injector_.ShouldFire("loss", 2));
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(injector_.ArmFromString("grad").ok());          // no step
  EXPECT_FALSE(injector_.ArmFromString("@5").ok());            // no point
  EXPECT_FALSE(injector_.ArmFromString("grad@x").ok());        // bad step
  EXPECT_FALSE(injector_.ArmFromString("grad@5:mag=oops").ok());
  EXPECT_FALSE(injector_.ArmFromString("grad@5:bogus=1").ok());
}

TEST_F(FaultTest, DeterministicAcrossRuns) {
  // Two injectors armed identically make identical decisions for an
  // identical consultation sequence — the property same-seed reproduction
  // rests on.
  FaultInjector a, b;
  ASSERT_TRUE(a.ArmFromString("grad@2:count=3;loss@4:mag=7").ok());
  ASSERT_TRUE(b.ArmFromString("grad@2:count=3;loss@4:mag=7").ok());
  for (int64_t step = 0; step < 10; ++step) {
    FaultHit ha, hb;
    bool fa = a.ShouldFire("grad", step, &ha);
    bool fb = b.ShouldFire("grad", step, &hb);
    EXPECT_EQ(fa, fb) << "step " << step;
    fa = a.ShouldFire("loss", step, &ha);
    fb = b.ShouldFire("loss", step, &hb);
    EXPECT_EQ(fa, fb) << "step " << step;
    if (fa) {
      EXPECT_EQ(ha.magnitude, hb.magnitude);
      EXPECT_EQ(ha.seed, hb.seed);
    }
  }
  EXPECT_EQ(a.fired(), b.fired());
}

TEST_F(FaultTest, GlobalSingletonArmAndDisarm) {
  FaultInjector& global = FaultInjector::Global();
  global.Disarm();
  ASSERT_TRUE(global.ArmFromString("grad@0").ok());
  EXPECT_TRUE(global.ShouldFire("grad", int64_t{0}));
  global.Disarm();
  EXPECT_FALSE(global.armed());
}

}  // namespace
}  // namespace omnimatch
