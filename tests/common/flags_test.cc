#include "common/flags.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(FlagParserTest, EqualsSyntax) {
  std::vector<std::string> args = {"prog", "--seed=42", "--name=amazon"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(p.GetInt("seed", 0), 42);
  EXPECT_EQ(p.GetString("name", ""), "amazon");
}

TEST(FlagParserTest, SpaceSyntax) {
  std::vector<std::string> args = {"prog", "--epochs", "7"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(p.GetInt("epochs", 0), 7);
}

TEST(FlagParserTest, BareFlagIsTrue) {
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_TRUE(p.Has("verbose"));
  EXPECT_FALSE(p.Has("quiet"));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(p.GetInt("seed", 17), 17);
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.2), 0.2);
  EXPECT_FALSE(p.GetBool("verbose", false));
}

TEST(FlagParserTest, PositionalArguments) {
  std::vector<std::string> args = {"prog", "input.csv", "--seed=1", "out.csv"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.csv");
  EXPECT_EQ(p.positional()[1], "out.csv");
}

TEST(FlagParserTest, DoubleValues) {
  std::vector<std::string> args = {"prog", "--alpha=0.35"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_NEAR(p.GetDouble("alpha", 0.0), 0.35, 1e-12);
}

TEST(FlagParserTest, BareDoubleDashRejected) {
  std::vector<std::string> args = {"prog", "--"};
  auto argv = MakeArgv(args);
  FlagParser p;
  EXPECT_FALSE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, NegativeAndScientificNumbersParse) {
  std::vector<std::string> args = {"prog", "--offset=-3", "--lr=2e-3"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(p.GetInt("offset", 0), -3);
  EXPECT_NEAR(p.GetDouble("lr", 0.0), 2e-3, 1e-15);
}

// Malformed numeric flags must fail loudly, naming the flag — the old atoi
// path silently returned 0, so --threads=abc trained on a zero-thread pool.
class FlagParserDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The process may have running threads (the compute pool); fork+exec
    // style death tests stay safe under TSan.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }

  FlagParser ParseOne(const std::string& flag) {
    storage_ = {"prog", flag};
    auto argv = MakeArgv(storage_);
    FlagParser p;
    EXPECT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
    return p;
  }

 private:
  std::vector<std::string> storage_;
};

TEST_F(FlagParserDeathTest, MalformedIntExitsNamingTheFlag) {
  FlagParser p = ParseOne("--threads=abc");
  EXPECT_EXIT(p.GetInt("threads", 0), ::testing::ExitedWithCode(2),
              "invalid value \"abc\" for flag --threads");
}

TEST_F(FlagParserDeathTest, TrailingGarbageIntExits) {
  FlagParser p = ParseOne("--epochs=12abc");
  EXPECT_EXIT(p.GetInt("epochs", 0), ::testing::ExitedWithCode(2),
              "invalid value \"12abc\" for flag --epochs");
}

TEST_F(FlagParserDeathTest, OverflowingIntExits) {
  FlagParser p = ParseOne("--seed=99999999999999999999");
  EXPECT_EXIT(p.GetInt("seed", 0), ::testing::ExitedWithCode(2),
              "flag --seed");
}

TEST_F(FlagParserDeathTest, MalformedDoubleExitsNamingTheFlag) {
  FlagParser p = ParseOne("--alpha=0.2x");
  EXPECT_EXIT(p.GetDouble("alpha", 0.0), ::testing::ExitedWithCode(2),
              "invalid value \"0.2x\" for flag --alpha");
}

TEST_F(FlagParserDeathTest, EmptyNumericValueExits) {
  FlagParser p = ParseOne("--batch=");
  EXPECT_EXIT(p.GetInt("batch", 0), ::testing::ExitedWithCode(2),
              "flag --batch");
}

}  // namespace
}  // namespace omnimatch
