#include "common/flags.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(FlagParserTest, EqualsSyntax) {
  std::vector<std::string> args = {"prog", "--seed=42", "--name=amazon"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(p.GetInt("seed", 0), 42);
  EXPECT_EQ(p.GetString("name", ""), "amazon");
}

TEST(FlagParserTest, SpaceSyntax) {
  std::vector<std::string> args = {"prog", "--epochs", "7"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(p.GetInt("epochs", 0), 7);
}

TEST(FlagParserTest, BareFlagIsTrue) {
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_TRUE(p.Has("verbose"));
  EXPECT_FALSE(p.Has("quiet"));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(p.GetInt("seed", 17), 17);
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.2), 0.2);
  EXPECT_FALSE(p.GetBool("verbose", false));
}

TEST(FlagParserTest, PositionalArguments) {
  std::vector<std::string> args = {"prog", "input.csv", "--seed=1", "out.csv"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.csv");
  EXPECT_EQ(p.positional()[1], "out.csv");
}

TEST(FlagParserTest, DoubleValues) {
  std::vector<std::string> args = {"prog", "--alpha=0.35"};
  auto argv = MakeArgv(args);
  FlagParser p;
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_NEAR(p.GetDouble("alpha", 0.0), 0.35, 1e-12);
}

TEST(FlagParserTest, BareDoubleDashRejected) {
  std::vector<std::string> args = {"prog", "--"};
  auto argv = MakeArgv(args);
  FlagParser p;
  EXPECT_FALSE(p.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

}  // namespace
}  // namespace omnimatch
