#include "common/io.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(IoTest, WriteAtomicThenReadRoundTrips) {
  std::string path = TempPath("io_roundtrip.bin");
  std::string payload = "binary\0payload\nwith newlines";
  payload.push_back('\0');
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  Result<std::string> back = ReadFileToString(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), payload);
  std::remove(path.c_str());
}

TEST(IoTest, WriteAtomicLeavesNoTmpFile) {
  std::string path = TempPath("io_notmp.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(IoTest, WriteAtomicReplacesExistingFile) {
  std::string path = TempPath("io_replace.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "new");
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileIsIoError) {
  Result<std::string> r = ReadFileToString("/nonexistent/dir/file.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, WriteToMissingDirectoryIsIoError) {
  Status s = WriteFileAtomic("/nonexistent/dir/file.bin", "x");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(IoTest, EnsureDirectoryIsIdempotent) {
  std::string dir = TempPath("io_dir");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  ASSERT_TRUE(EnsureDirectory(dir).ok());  // already exists -> still OK
  ASSERT_TRUE(WriteFileAtomic(dir + "/f.bin", "x").ok());
  std::remove((dir + "/f.bin").c_str());
}

TEST(ByteCodecTest, ScalarsRoundTrip) {
  ByteWriter w;
  w.Write<uint32_t>(0xDEADBEEFu);
  w.Write<int64_t>(-42);
  w.Write<double>(3.5);
  w.Write<uint8_t>(7);
  ByteReader r(w.buffer());
  uint32_t a = 0;
  int64_t b = 0;
  double c = 0;
  uint8_t d = 0;
  ASSERT_TRUE(r.Read(&a));
  ASSERT_TRUE(r.Read(&b));
  ASSERT_TRUE(r.Read(&c));
  ASSERT_TRUE(r.Read(&d));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, -42);
  EXPECT_DOUBLE_EQ(c, 3.5);
  EXPECT_EQ(d, 7);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodecTest, StringsAndVectorsRoundTrip) {
  ByteWriter w;
  w.WriteString("hello\0world");
  w.WriteVector(std::vector<float>{1.5f, -2.25f, 0.0f});
  w.WriteVector(std::vector<int32_t>{});
  ByteReader r(w.buffer());
  std::string s;
  std::vector<float> f;
  std::vector<int32_t> i;
  ASSERT_TRUE(r.ReadString(&s));
  ASSERT_TRUE(r.ReadVector(&f));
  ASSERT_TRUE(r.ReadVector(&i));
  EXPECT_EQ(s, std::string("hello\0world", 5));  // string_view stops at \0
  EXPECT_EQ(f, (std::vector<float>{1.5f, -2.25f, 0.0f}));
  EXPECT_TRUE(i.empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodecTest, TruncatedScalarReadFails) {
  ByteWriter w;
  w.Write<uint32_t>(1);
  std::string_view buf(w.buffer());
  ByteReader r(buf.substr(0, 2));
  uint32_t v = 0;
  EXPECT_FALSE(r.Read(&v));
}

TEST(ByteCodecTest, TruncatedStringBodyFails) {
  ByteWriter w;
  w.WriteString("abcdef");
  std::string_view buf(w.buffer());
  ByteReader r(buf.substr(0, buf.size() - 2));
  std::string s;
  EXPECT_FALSE(r.ReadString(&s));
}

TEST(ByteCodecTest, OversizedLengthPrefixFails) {
  // A corrupt length prefix far larger than the buffer must fail cleanly
  // instead of allocating or reading out of bounds.
  ByteWriter w;
  w.Write<uint64_t>(uint64_t{1} << 60);
  ByteReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s));
}

TEST(ByteCodecTest, VectorSizeNotMultipleOfElementFails) {
  ByteWriter w;
  w.Write<uint64_t>(7);  // 7 bytes is not a whole number of floats
  for (int i = 0; i < 7; ++i) w.Write<uint8_t>(0);
  ByteReader r(w.buffer());
  std::vector<float> f;
  EXPECT_FALSE(r.ReadVector(&f));
}

}  // namespace
}  // namespace omnimatch
