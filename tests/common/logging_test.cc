#include "common/logging.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

int CountingOperand(int* evaluations) {
  ++*evaluations;
  return 42;
}

TEST_F(LoggingTest, SuppressedMessageNeverEvaluatesOperands) {
  // The whole point of the ternary-based OM_LOG: below the threshold,
  // neither the LogMessage nor any streamed expression is constructed.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  OM_LOG(Debug) << "value " << CountingOperand(&evaluations);
  OM_LOG(Info) << CountingOperand(&evaluations);
  OM_LOG(Warning) << CountingOperand(&evaluations)
                  << CountingOperand(&evaluations);
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, EmittedMessageEvaluatesOperandsOnce) {
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  OM_LOG(Error) << "value " << CountingOperand(&evaluations);
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, ThresholdIsInclusive) {
  SetLogLevel(LogLevel::kWarning);
  int evaluations = 0;
  OM_LOG(Warning) << CountingOperand(&evaluations);  // at threshold: emitted
  OM_LOG(Info) << CountingOperand(&evaluations);     // below: suppressed
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, MacroIsSafeInUnbracedIfElse) {
  // An expression-shaped macro must not swallow the else branch.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  bool took_else = false;
  if (evaluations == 0)
    OM_LOG(Info) << CountingOperand(&evaluations);
  else
    took_else = true;
  EXPECT_EQ(evaluations, 0);
  EXPECT_FALSE(took_else);
}

}  // namespace
}  // namespace omnimatch
