#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU32() != b.NextU32()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<uint32_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.NextU32());
  a.Seed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU32(), first[i]);
}

TEST(RngTest, UniformU32InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU32(17), 17u);
  }
}

TEST(RngTest, UniformU32CoversAllResidues) {
  Rng rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.UniformU32(8)];
  for (int c : counts) EXPECT_GT(c, 700);  // expected ~1000 each
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(21);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithMeanStddev) {
  Rng rng(22);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.SampleDiscrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.35);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(99);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.NextU32() == child.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace omnimatch
