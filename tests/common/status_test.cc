#include "common/status.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailingStep() { return Status::NotFound("missing user"); }

Status Wrapper() {
  OM_RETURN_IF_ERROR(FailingStep());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Wrapper();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IoError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveValueOut) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace omnimatch
