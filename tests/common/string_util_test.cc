#include "common/string_util.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace {

TEST(SplitTest, BasicCsv) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  auto parts = SplitWhitespace("  hello   world\t\nfoo ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
  EXPECT_EQ(parts[2], "foo");
}

TEST(SplitWhitespaceTest, AllWhitespaceIsEmpty) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  mid dle \t"), "mid dle");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("HeLLo 123!"), "hello 123!");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d/%s/%.2f", 3, "x", 1.5), "3/x/1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(ParseInt32Test, AcceptsWholeIntegers) {
  int v = 0;
  EXPECT_TRUE(ParseInt32("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt32("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt32("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt32Test, RejectsGarbageWhitespaceAndOverflow) {
  int v = 0;
  EXPECT_FALSE(ParseInt32("3x", &v));      // trailing garbage
  EXPECT_FALSE(ParseInt32("x3", &v));
  EXPECT_FALSE(ParseInt32(" 1", &v));      // leading whitespace
  EXPECT_FALSE(ParseInt32("1 ", &v));
  EXPECT_FALSE(ParseInt32("", &v));
  EXPECT_FALSE(ParseInt32("1.5", &v));
  EXPECT_FALSE(ParseInt32("99999999999", &v));  // > INT32_MAX
}

TEST(ParseFloatTest, AcceptsWholeFloats) {
  float v = 0;
  EXPECT_TRUE(ParseFloat("3.5", &v));
  EXPECT_FLOAT_EQ(v, 3.5f);
  EXPECT_TRUE(ParseFloat("-0.25", &v));
  EXPECT_FLOAT_EQ(v, -0.25f);
  EXPECT_TRUE(ParseFloat("4", &v));
  EXPECT_FLOAT_EQ(v, 4.0f);
}

TEST(ParseFloatTest, RejectsGarbage) {
  float v = 0;
  EXPECT_FALSE(ParseFloat("3.5x", &v));
  EXPECT_FALSE(ParseFloat("", &v));
  EXPECT_FALSE(ParseFloat(" 3.5", &v));
  EXPECT_FALSE(ParseFloat("3,5", &v));
}

}  // namespace
}  // namespace omnimatch
