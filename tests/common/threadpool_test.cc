#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace omnimatch {
namespace {

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(10, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SmallRangeRunsInlineAsOneChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  // range <= grain: must run as a single [begin, end) call on the caller.
  pool.ParallelFor(3, 7, 16, [&](int64_t b, int64_t e) {
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 3);
  EXPECT_EQ(chunks[0].second, 7);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int64_t> seen;
  pool.ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Inner call must not deadlock on the single shared job slot.
      pool.ParallelFor(0, 10, 1, [&](int64_t ib, int64_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 64 * 10);
}

TEST(ThreadPoolTest, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ChunkedSumIsThreadCountInvariant) {
  // The library-wide reduction recipe: per-item results into a buffer, then
  // a serial fixed-order combine. Identical for every pool size.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<float> parts(513, 0.0f);
    pool.ParallelFor(0, 513, 7, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        parts[static_cast<size_t>(i)] = 1.0f / (1.0f + static_cast<float>(i));
      }
    });
    float total = 0.0f;
    for (float p : parts) total += p;
    return total;
  };
  float t1 = run(1);
  EXPECT_EQ(t1, run(2));
  EXPECT_EQ(t1, run(4));
  EXPECT_EQ(t1, run(7));
}

TEST(ThreadPoolTest, ResizeTakesEffect) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  pool.Resize(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
    sum.fetch_add(e - b);
  });
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPoolTest, GlobalSetAndGet) {
  int before = GetNumThreads();
  SetNumThreads(2);
  EXPECT_EQ(GetNumThreads(), 2);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 50, 1, [&](int64_t b, int64_t e) { sum.fetch_add(e - b); });
  EXPECT_EQ(sum.load(), 50);
  SetNumThreads(before);
}

TEST(ThreadPoolTest, GrainIsRespectedAsMinimumChunk) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<int64_t> sizes;
  pool.ParallelFor(0, 1024, 100, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(e - b);
  });
  int64_t total = 0;
  for (int64_t s : sizes) total += s;
  EXPECT_EQ(total, 1024);
  // All chunks but possibly the last must be >= grain.
  int undersized = 0;
  for (int64_t s : sizes) {
    if (s < 100) ++undersized;
  }
  EXPECT_LE(undersized, 1);
}

}  // namespace
}  // namespace omnimatch
