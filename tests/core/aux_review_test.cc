#include "core/aux_review.h"

#include <set>

#include <gtest/gtest.h>

#include "common/threadpool.h"
#include "data/splits.h"
#include "data/synthetic.h"

namespace omnimatch {
namespace core {
namespace {

data::Review MakeReview(int user, int item, float rating,
                        const std::string& summary) {
  data::Review r;
  r.user_id = user;
  r.item_id = item;
  r.rating = rating;
  r.summary = summary;
  r.full_text = "full " + summary;
  return r;
}

// A hand-built scenario mirroring the §5.10 case study:
// cold user 0 rated source item 1 with 5.0; users 1 and 2 did too (like-
// minded); user 3 rated it 2.0 (not like-minded). Users 1-3 have target
// reviews; user 4 is overlapping but never co-rated with user 0.
data::CrossDomainDataset CaseStudyCross() {
  data::DomainDataset source("Books");
  source.AddReview(MakeReview(0, 1, 5, "vampire romance"));
  source.AddReview(MakeReview(0, 2, 3, "boring history"));
  source.AddReview(MakeReview(1, 1, 5, "fangtastic"));
  source.AddReview(MakeReview(2, 1, 5, "loved it"));
  source.AddReview(MakeReview(3, 1, 2, "awful"));
  source.AddReview(MakeReview(4, 2, 3, "mediocre"));
  data::DomainDataset target("Movies");
  target.AddReview(MakeReview(1, 101, 5, "great vampire movie"));
  target.AddReview(MakeReview(1, 102, 4, "spooky fun"));
  target.AddReview(MakeReview(2, 103, 5, "crouching tiger"));
  target.AddReview(MakeReview(3, 104, 1, "terrible"));
  target.AddReview(MakeReview(4, 105, 3, "fine"));
  return data::CrossDomainDataset(std::move(source), std::move(target));
}

TEST(AuxReviewTest, BorrowsOnlyFromLikeMindedEligibleUsers) {
  data::CrossDomainDataset cross = CaseStudyCross();
  AuxReviewGenerator generator(&cross, /*eligible=*/{1, 2, 3, 4});
  Rng rng(1);
  AuxReviewTrace trace;
  auto reviews = generator.GenerateForUser(0, &rng, &trace);

  ASSERT_EQ(trace.choices.size(), 2u);  // one per source record of user 0
  // Record for item 1 (rating 5): like-minded = {1, 2} only.
  const AuxReviewChoice& c0 = trace.choices[0];
  EXPECT_EQ(c0.source_item, 1);
  EXPECT_EQ(c0.num_like_minded, 2);
  EXPECT_TRUE(c0.like_minded_user == 1 || c0.like_minded_user == 2);
  EXPECT_FALSE(c0.aux_review.empty());
  // The borrowed review must be one the like-minded user wrote in the
  // TARGET domain.
  std::set<std::string> valid_targets = {
      "great vampire movie", "spooky fun", "crouching tiger"};
  EXPECT_EQ(valid_targets.count(c0.aux_review), 1u);

  // Record for item 2 (rating 3): user 4 also rated item 2 but with 3.0 ->
  // like-minded; user 4 has target reviews.
  const AuxReviewChoice& c1 = trace.choices[1];
  EXPECT_EQ(c1.source_item, 2);
  EXPECT_EQ(c1.num_like_minded, 1);
  EXPECT_EQ(c1.like_minded_user, 4);
  EXPECT_EQ(c1.aux_review, "fine");

  EXPECT_EQ(reviews.size(), 2u);
}

TEST(AuxReviewTest, ExcludesSelfFromLikeMindedPool) {
  data::CrossDomainDataset cross = CaseStudyCross();
  // User 1 is eligible; generating FOR user 1 must not pick user 1.
  AuxReviewGenerator generator(&cross, {1, 2, 3, 4});
  Rng rng(2);
  AuxReviewTrace trace;
  generator.GenerateForUser(1, &rng, &trace);
  for (const auto& choice : trace.choices) {
    EXPECT_NE(choice.like_minded_user, 1);
  }
}

TEST(AuxReviewTest, IneligibleUsersNeverBorrowedFrom) {
  data::CrossDomainDataset cross = CaseStudyCross();
  // Only user 2 eligible: all borrowed reviews must be user 2's.
  AuxReviewGenerator generator(&cross, {2});
  Rng rng(3);
  AuxReviewTrace trace;
  auto reviews = generator.GenerateForUser(0, &rng, &trace);
  for (const auto& r : reviews) EXPECT_EQ(r, "crouching tiger");
  EXPECT_EQ(trace.choices[1].num_like_minded, 0);  // user 4 not eligible
}

TEST(AuxReviewTest, NoLikeMindedYieldsEmpty) {
  data::CrossDomainDataset cross = CaseStudyCross();
  AuxReviewGenerator generator(&cross, {3});  // user 3 rated item1 with 2.0
  Rng rng(4);
  auto reviews = generator.GenerateForUser(0, &rng);
  EXPECT_TRUE(reviews.empty());
}

TEST(AuxReviewTest, ZeroLikeMindedTraceRecordsEveryRecord) {
  // Algorithm 1 edge case: a cold user whose co-raters never overlap with
  // the eligible pool. The trace must still log one choice per source
  // record, each marked as having no like-minded user.
  data::CrossDomainDataset cross = CaseStudyCross();
  AuxReviewGenerator generator(&cross, {3});
  Rng rng(4);
  AuxReviewTrace trace;
  auto reviews = generator.GenerateForUser(0, &rng, &trace);
  EXPECT_TRUE(reviews.empty());
  ASSERT_EQ(trace.choices.size(), 2u);  // user 0 has 2 source records
  for (const AuxReviewChoice& c : trace.choices) {
    EXPECT_EQ(c.num_like_minded, 0);
    EXPECT_EQ(c.like_minded_user, -1);
    EXPECT_TRUE(c.aux_review.empty());
    EXPECT_EQ(c.target_item, -1);
  }
}

TEST(AuxReviewTest, LikeMindedUserWithoutTargetRecordsEmitsNoReview) {
  // Algorithm 1 edge case: the selected like-minded user exists in the
  // source domain but wrote nothing in the target domain. The trace records
  // the selection; no auxiliary review is produced.
  data::DomainDataset source("Books");
  source.AddReview(MakeReview(0, 1, 5, "cold user loved it"));
  source.AddReview(MakeReview(9, 1, 5, "silent user loved it too"));
  data::DomainDataset target("Movies");
  // User 9 has NO target reviews; some other user keeps the domain
  // non-empty.
  target.AddReview(MakeReview(8, 101, 3, "unrelated"));
  data::CrossDomainDataset cross(std::move(source), std::move(target));

  AuxReviewGenerator generator(&cross, {9});
  Rng rng(6);
  AuxReviewTrace trace;
  auto reviews = generator.GenerateForUser(0, &rng, &trace);
  EXPECT_TRUE(reviews.empty());
  ASSERT_EQ(trace.choices.size(), 1u);
  EXPECT_EQ(trace.choices[0].num_like_minded, 1);
  EXPECT_EQ(trace.choices[0].like_minded_user, 9);
  EXPECT_TRUE(trace.choices[0].aux_review.empty());
  EXPECT_EQ(trace.choices[0].target_item, -1);
}

TEST(AuxReviewTest, TraceDeterministicGivenRngSeed) {
  // Same seed -> same like-minded picks and same borrowed reviews, record
  // by record (stronger than comparing only the returned texts).
  data::SyntheticConfig config;
  config.num_users = 80;
  config.items_per_domain = 40;
  config.seed = 9;
  data::SyntheticWorld world(config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(1);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  AuxReviewGenerator generator(&cross, split.train_users);
  for (int user : {split.test_users[0], split.test_users[1]}) {
    Rng rng_a(123), rng_b(123);
    AuxReviewTrace trace_a, trace_b;
    auto reviews_a = generator.GenerateForUser(user, &rng_a, &trace_a);
    auto reviews_b = generator.GenerateForUser(user, &rng_b, &trace_b);
    EXPECT_EQ(reviews_a, reviews_b);
    ASSERT_EQ(trace_a.choices.size(), trace_b.choices.size());
    for (size_t i = 0; i < trace_a.choices.size(); ++i) {
      EXPECT_EQ(trace_a.choices[i].like_minded_user,
                trace_b.choices[i].like_minded_user);
      EXPECT_EQ(trace_a.choices[i].target_item,
                trace_b.choices[i].target_item);
      EXPECT_EQ(trace_a.choices[i].aux_review,
                trace_b.choices[i].aux_review);
    }
  }
}

TEST(AuxReviewTest, RespectsTextFieldSelection) {
  data::CrossDomainDataset cross = CaseStudyCross();
  AuxReviewGenerator generator(&cross, {2}, TextField::kFullText);
  Rng rng(5);
  auto reviews = generator.GenerateForUser(0, &rng);
  ASSERT_FALSE(reviews.empty());
  EXPECT_EQ(reviews[0].rfind("full ", 0), 0u);
}

TEST(AuxReviewTest, DeterministicGivenRngSeed) {
  data::SyntheticConfig config;
  config.num_users = 80;
  config.items_per_domain = 40;
  config.seed = 9;
  data::SyntheticWorld world(config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(1);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  AuxReviewGenerator generator(&cross, split.train_users);
  Rng rng_a(7), rng_b(7);
  EXPECT_EQ(generator.GenerateForUser(split.test_users[0], &rng_a),
            generator.GenerateForUser(split.test_users[0], &rng_b));
}

TEST(AuxReviewTest, GenerateAllCoversEveryUser) {
  data::SyntheticConfig config;
  config.num_users = 80;
  config.items_per_domain = 40;
  config.seed = 9;
  data::SyntheticWorld world(config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(1);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  AuxReviewGenerator generator(&cross, split.train_users);
  Rng rng(11);
  auto all = generator.GenerateAll(split.test_users, &rng);
  ASSERT_EQ(all.size(), split.test_users.size());
  // On a dense synthetic corpus nearly every cold user should get at least
  // one auxiliary review.
  size_t nonempty = 0;
  for (const auto& docs : all) {
    if (!docs.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, all.size() * 3 / 4);
}

TEST(AuxReviewTest, OneReviewPerUsableSourceRecord) {
  data::SyntheticConfig config;
  config.num_users = 100;
  config.items_per_domain = 30;  // dense -> like-minded users plentiful
  config.seed = 13;
  data::SyntheticWorld world(config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(2);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  AuxReviewGenerator generator(&cross, split.train_users);
  Rng rng(17);
  int user = split.test_users[0];
  AuxReviewTrace trace;
  auto reviews = generator.GenerateForUser(user, &rng, &trace);
  EXPECT_EQ(trace.choices.size(),
            cross.source().RecordsOfUser(user).size());
  EXPECT_LE(reviews.size(), trace.choices.size());
}

/// The pre-CSR implementation of Algorithm 1's inner loop, kept here as the
/// executable specification: scan the raw (item, rating) bucket, filter by
/// eligibility and self per record, draw from the materialized list. The
/// production CSR path must consume the identical RNG stream and produce
/// the identical trace.
std::vector<std::string> ReferenceScanGenerate(
    const data::CrossDomainDataset& cross,
    const std::vector<int>& eligible_sorted, TextField field, int user_id,
    Rng* rng, AuxReviewTrace* trace) {
  const data::DomainDataset& source = cross.source();
  const data::DomainDataset& target = cross.target();
  std::set<int> eligible(eligible_sorted.begin(), eligible_sorted.end());
  auto text_of = [&](const data::DomainDataset& d, int idx) {
    size_t i = static_cast<size_t>(idx);
    return std::string(field == TextField::kSummary ? d.ReviewSummary(i)
                                                    : d.ReviewFullText(i));
  };
  if (trace != nullptr) {
    trace->user_id = user_id;
    trace->choices.clear();
  }
  std::vector<std::string> out;
  for (int rec_idx : source.RecordsOfUser(user_id)) {
    size_t ri = static_cast<size_t>(rec_idx);
    AuxReviewChoice choice;
    choice.source_item = source.ReviewItem(ri);
    choice.rating = source.ReviewRating(ri);
    choice.source_review = text_of(source, rec_idx);
    std::vector<int> like_minded;
    for (int v : source.UsersWhoRated(choice.source_item, choice.rating)) {
      if (v != user_id && eligible.count(v) > 0) like_minded.push_back(v);
    }
    choice.num_like_minded = static_cast<int>(like_minded.size());
    if (!like_minded.empty()) {
      int aux_user = like_minded[rng->UniformU32(
          static_cast<uint32_t>(like_minded.size()))];
      choice.like_minded_user = aux_user;
      data::IdSpan aux_records = target.RecordsOfUser(aux_user);
      if (!aux_records.empty()) {
        int aux_idx = aux_records[rng->UniformU32(
            static_cast<uint32_t>(aux_records.size()))];
        choice.target_item = target.ReviewItem(static_cast<size_t>(aux_idx));
        choice.aux_review = text_of(target, aux_idx);
        out.push_back(choice.aux_review);
      }
    }
    if (trace != nullptr) trace->choices.push_back(std::move(choice));
  }
  return out;
}

void ExpectTracesEqual(const AuxReviewTrace& a, const AuxReviewTrace& b) {
  EXPECT_EQ(a.user_id, b.user_id);
  ASSERT_EQ(a.choices.size(), b.choices.size());
  for (size_t i = 0; i < a.choices.size(); ++i) {
    EXPECT_EQ(a.choices[i].source_item, b.choices[i].source_item) << i;
    EXPECT_EQ(a.choices[i].rating, b.choices[i].rating) << i;
    EXPECT_EQ(a.choices[i].source_review, b.choices[i].source_review) << i;
    EXPECT_EQ(a.choices[i].num_like_minded, b.choices[i].num_like_minded)
        << i;
    EXPECT_EQ(a.choices[i].like_minded_user, b.choices[i].like_minded_user)
        << i;
    EXPECT_EQ(a.choices[i].target_item, b.choices[i].target_item) << i;
    EXPECT_EQ(a.choices[i].aux_review, b.choices[i].aux_review) << i;
  }
}

TEST(AuxReviewTest, CsrPathBitIdenticalToReferenceScanOnTable2Config) {
  // The Table-2 pin: on the AmazonLike world, every cold user's trace —
  // choices, picked users, borrowed texts — must match the reference scan
  // implementation exactly, RNG draw for RNG draw.
  data::SyntheticWorld world(data::SyntheticConfig::AmazonLike());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(1);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  AuxReviewGenerator generator(&cross, split.train_users);

  Rng rng_csr(2024), rng_ref(2024);
  for (int user : split.test_users) {
    AuxReviewTrace trace_csr, trace_ref;
    auto reviews_csr = generator.GenerateForUser(user, &rng_csr, &trace_csr);
    auto reviews_ref =
        ReferenceScanGenerate(cross, split.train_users, TextField::kSummary,
                              user, &rng_ref, &trace_ref);
    EXPECT_EQ(reviews_csr, reviews_ref) << "user " << user;
    ExpectTracesEqual(trace_csr, trace_ref);
  }
  // Both paths consumed the same number of draws: the streams stay aligned.
  EXPECT_EQ(rng_csr.NextU32(), rng_ref.NextU32());
}

TEST(AuxReviewTest, SelfExclusionBitIdenticalWhenColdUserIsEligible) {
  // The index-remapping edge case: the generated-for user sits inside the
  // eligible bucket (self-simulation during training). Cover self at the
  // bucket's front, middle and back.
  data::CrossDomainDataset cross = CaseStudyCross();
  std::vector<int> eligible = {0, 1, 2, 3, 4};
  AuxReviewGenerator generator(&cross, eligible);
  for (int user : {0, 1, 2}) {
    for (uint64_t seed = 0; seed < 40; ++seed) {
      Rng rng_csr(seed), rng_ref(seed);
      AuxReviewTrace trace_csr, trace_ref;
      auto reviews_csr =
          generator.GenerateForUser(user, &rng_csr, &trace_csr);
      auto reviews_ref = ReferenceScanGenerate(
          cross, eligible, TextField::kSummary, user, &rng_ref, &trace_ref);
      EXPECT_EQ(reviews_csr, reviews_ref) << "user " << user << " seed "
                                          << seed;
      ExpectTracesEqual(trace_csr, trace_ref);
    }
  }
}

TEST(AuxReviewTest, ParallelGenerateAllMatchesPerUserSeeds) {
  data::SyntheticConfig config;
  config.num_users = 80;
  config.items_per_domain = 40;
  config.seed = 9;
  data::SyntheticWorld world(config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(1);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  AuxReviewGenerator generator(&cross, split.train_users);

  const uint64_t base_seed = 0xfeedULL;
  auto parallel = generator.GenerateAll(split.test_users, base_seed);
  ASSERT_EQ(parallel.size(), split.test_users.size());
  for (size_t i = 0; i < split.test_users.size(); ++i) {
    int u = split.test_users[i];
    Rng rng(AuxReviewGenerator::PerUserSeed(base_seed, u));
    EXPECT_EQ(parallel[i], generator.GenerateForUser(u, &rng)) << "user " << u;
  }
}

TEST(AuxReviewTest, ParallelGenerateAllIsThreadCountInvariant) {
  data::SyntheticConfig config;
  config.num_users = 100;
  config.items_per_domain = 30;
  config.seed = 13;
  data::SyntheticWorld world(config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(2);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);
  AuxReviewGenerator generator(&cross, split.train_users);

  SetNumThreads(1);
  auto serial = generator.GenerateAll(split.test_users, 42u);
  SetNumThreads(4);
  auto parallel = generator.GenerateAll(split.test_users, 42u);
  SetNumThreads(0);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
