#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"

namespace omnimatch {
namespace core {
namespace {

data::SyntheticConfig TinyWorld() {
  data::SyntheticConfig c;
  c.num_users = 60;
  c.items_per_domain = 30;
  c.mean_reviews_per_user = 5;
  c.seed = 21;
  return c;
}

OmniMatchConfig TinyModel() {
  OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 4;
  config.seed = 31;
  return config;
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CheckpointState SampleState() {
  CheckpointState s;
  s.config_fingerprint = 0x1234567890ABCDEFull;
  s.epochs_completed = 3;
  s.steps = 77;
  s.params = {{1.0f, -2.5f, 0.0f}, {4.0f}};
  s.optimizer.counters = {9};
  s.optimizer.slots = {{0.5f, 0.25f, 0.125f, 1.0f}};
  s.trainer_rng.state = 0xAAAAAAAAAAAAAAAAull;
  s.trainer_rng.inc = 0x5555555555555555ull;
  s.trainer_rng.has_cached_normal = 1;
  s.trainer_rng.cached_normal = -0.75;
  s.model_rngs.resize(2);
  s.model_rngs[0].state = 42;
  s.model_rngs[0].inc = 43;
  s.model_rngs[1].state = 44;
  s.model_rngs[1].inc = 45;
  s.model_rngs[1].has_cached_normal = 1;
  s.model_rngs[1].cached_normal = 0.5;
  s.total_loss = {2.0, 1.5, 1.2};
  s.rating_loss = {1.8, 1.4, 1.1};
  s.scl_loss = {0.1, 0.05, 0.04};
  s.domain_loss = {0.1, 0.05, 0.06};
  s.validation_rmse = {1.3, 1.25, 1.26};
  s.best_epoch = 1;
  s.best_rmse = 1.25;
  s.best_params = {{9.0f, 8.0f, 7.0f}, {6.0f}};
  s.sample_order = {2, 0, 1, 3};
  return s;
}

TEST(CheckpointFileTest, SaveLoadRoundTripsEveryField) {
  std::string path = testing::TempDir() + "/ckpt_roundtrip.omck";
  CheckpointState s = SampleState();
  ASSERT_TRUE(SaveCheckpointFile(path, s).ok());
  Result<CheckpointState> r = LoadCheckpointFile(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CheckpointState& b = r.value();
  EXPECT_EQ(b.config_fingerprint, s.config_fingerprint);
  EXPECT_EQ(b.epochs_completed, s.epochs_completed);
  EXPECT_EQ(b.steps, s.steps);
  EXPECT_EQ(b.params, s.params);
  EXPECT_EQ(b.optimizer.counters, s.optimizer.counters);
  EXPECT_EQ(b.optimizer.slots, s.optimizer.slots);
  EXPECT_EQ(b.trainer_rng.state, s.trainer_rng.state);
  EXPECT_EQ(b.trainer_rng.inc, s.trainer_rng.inc);
  EXPECT_EQ(b.trainer_rng.has_cached_normal, s.trainer_rng.has_cached_normal);
  EXPECT_DOUBLE_EQ(b.trainer_rng.cached_normal, s.trainer_rng.cached_normal);
  ASSERT_EQ(b.model_rngs.size(), s.model_rngs.size());
  for (size_t i = 0; i < s.model_rngs.size(); ++i) {
    EXPECT_EQ(b.model_rngs[i].state, s.model_rngs[i].state);
    EXPECT_EQ(b.model_rngs[i].inc, s.model_rngs[i].inc);
    EXPECT_EQ(b.model_rngs[i].has_cached_normal,
              s.model_rngs[i].has_cached_normal);
    EXPECT_DOUBLE_EQ(b.model_rngs[i].cached_normal,
                     s.model_rngs[i].cached_normal);
  }
  EXPECT_EQ(b.total_loss, s.total_loss);
  EXPECT_EQ(b.rating_loss, s.rating_loss);
  EXPECT_EQ(b.scl_loss, s.scl_loss);
  EXPECT_EQ(b.domain_loss, s.domain_loss);
  EXPECT_EQ(b.validation_rmse, s.validation_rmse);
  EXPECT_EQ(b.best_epoch, s.best_epoch);
  EXPECT_DOUBLE_EQ(b.best_rmse, s.best_rmse);
  EXPECT_EQ(b.best_params, s.best_params);
  EXPECT_EQ(b.sample_order, s.sample_order);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, MissingFileIsIoError) {
  Result<CheckpointState> r =
      LoadCheckpointFile("/nonexistent/dir/ckpt.omck");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CheckpointFileTest, TruncationAtEveryBoundaryRejectedCleanly) {
  std::string path = testing::TempDir() + "/ckpt_trunc_src.omck";
  ASSERT_TRUE(SaveCheckpointFile(path, SampleState()).ok());
  std::string bytes = ReadFileToString(path).value();
  ASSERT_GT(bytes.size(), 24u);
  // Cut inside the header, at the header/payload boundary, inside the
  // payload, and one byte short of complete.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{12}, size_t{20},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::string trunc_path = testing::TempDir() + "/ckpt_trunc.omck";
    std::ofstream(trunc_path, std::ios::binary) << bytes.substr(0, cut);
    Result<CheckpointState> r = LoadCheckpointFile(trunc_path);
    ASSERT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << "cut at " << cut << ": " << r.status().ToString();
    std::remove(trunc_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, BitFlipAnywhereRejected) {
  std::string path = testing::TempDir() + "/ckpt_flip_src.omck";
  ASSERT_TRUE(SaveCheckpointFile(path, SampleState()).ok());
  std::string bytes = ReadFileToString(path).value();
  // Magic, version, payload size, CRC field, first payload byte, middle,
  // last byte: a single flipped bit anywhere must be caught.
  for (size_t at : {size_t{0}, size_t{4}, size_t{8}, size_t{16}, size_t{20},
                    bytes.size() / 2, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x01);
    std::string flip_path = testing::TempDir() + "/ckpt_flip.omck";
    std::ofstream(flip_path, std::ios::binary) << corrupt;
    Result<CheckpointState> r = LoadCheckpointFile(flip_path);
    ASSERT_FALSE(r.ok()) << "flip at " << at;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << "flip at " << at << ": " << r.status().ToString();
    std::remove(flip_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, TrailingGarbageRejected) {
  std::string path = testing::TempDir() + "/ckpt_trail.omck";
  ASSERT_TRUE(SaveCheckpointFile(path, SampleState()).ok());
  std::string bytes = ReadFileToString(path).value();
  bytes.push_back('\0');
  std::ofstream(path, std::ios::binary) << bytes;
  Result<CheckpointState> r = LoadCheckpointFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, UnknownVersionRejected) {
  std::string path = testing::TempDir() + "/ckpt_version.omck";
  ASSERT_TRUE(SaveCheckpointFile(path, SampleState()).ok());
  std::string bytes = ReadFileToString(path).value();
  bytes[4] = 99;  // version lives at bytes 4-7
  std::ofstream(path, std::ios::binary) << bytes;
  Result<CheckpointState> r = LoadCheckpointFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointFindTest, FindsHighestEpochAndIgnoresOtherFiles) {
  std::string dir = FreshDir("ckpt_find");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  CheckpointState s = SampleState();
  ASSERT_TRUE(SaveCheckpointFile(dir + "/checkpoint_epoch2.omck", s).ok());
  ASSERT_TRUE(SaveCheckpointFile(dir + "/checkpoint_epoch10.omck", s).ok());
  ASSERT_TRUE(SaveCheckpointFile(dir + "/checkpoint_epoch4.omck", s).ok());
  std::ofstream(dir + "/notes.txt") << "not a checkpoint";
  Result<std::string> latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value(), dir + "/checkpoint_epoch10.omck");
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFindTest, EmptyDirIsNotFound) {
  std::string dir = FreshDir("ckpt_find_empty");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  Result<std::string> latest = FindLatestCheckpoint(dir);
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

// The ISSUE's core acceptance test: train 4 epochs straight through; train
// the same run but "kill" it after 2 epochs (by configuring epochs=2 with
// periodic checkpointing), restart a FRESH trainer from the checkpoint and
// finish. Final weights and metrics must be bit-identical.
TEST(CheckpointResumeTest, KillAndResumeIsBitIdentical) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  std::string dir = FreshDir("ckpt_resume");

  // Uninterrupted reference run: 4 epochs, no checkpointing.
  OmniMatchTrainer uninterrupted(TinyModel(), &cross, split);
  ASSERT_TRUE(uninterrupted.Prepare().ok());
  TrainStats ref_stats = uninterrupted.Train();

  // "Killed" run: same config, stops after epoch 2, checkpointing every
  // epoch (epochs and checkpoint knobs are outside the fingerprint).
  OmniMatchConfig killed_config = TinyModel();
  killed_config.epochs = 2;
  killed_config.checkpoint_every = 1;
  killed_config.checkpoint_dir = dir;
  OmniMatchTrainer killed(killed_config, &cross, split);
  ASSERT_TRUE(killed.Prepare().ok());
  killed.Train();

  // Restart: fresh process/trainer, full epoch budget, resume from the
  // newest checkpoint.
  OmniMatchTrainer resumed(TinyModel(), &cross, split);
  ASSERT_TRUE(resumed.Prepare().ok());
  Result<std::string> latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value(), dir + "/checkpoint_epoch2.omck");
  ASSERT_TRUE(resumed.LoadCheckpoint(latest.value()).ok());
  EXPECT_EQ(resumed.epochs_completed(), 2);
  TrainStats resumed_stats = resumed.Train();

  // Same step count and full loss trace across the splice point.
  EXPECT_EQ(resumed_stats.steps, ref_stats.steps);
  ASSERT_EQ(resumed_stats.total_loss.size(), ref_stats.total_loss.size());
  for (size_t i = 0; i < ref_stats.total_loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed_stats.total_loss[i], ref_stats.total_loss[i])
        << "epoch " << i;
  }
  EXPECT_EQ(resumed_stats.validation_rmse, ref_stats.validation_rmse);
  EXPECT_EQ(resumed_stats.best_epoch, ref_stats.best_epoch);

  // Bit-identical final weights.
  std::vector<nn::Tensor> a = uninterrupted.model()->Parameters();
  std::vector<nn::Tensor> b = resumed.model()->Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].data(), b[i].data()) << "parameter " << i;
  }

  // And identical evaluation metrics.
  eval::Metrics ma = uninterrupted.Evaluate(split.test_users);
  eval::Metrics mb = resumed.Evaluate(split.test_users);
  EXPECT_DOUBLE_EQ(ma.rmse, mb.rmse);
  EXPECT_DOUBLE_EQ(ma.mae, mb.mae);
  EXPECT_EQ(ma.count, mb.count);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, FingerprintMismatchRejectedAndTrainerStaysUsable) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  std::string dir = FreshDir("ckpt_mismatch");

  OmniMatchConfig writer_config = TinyModel();
  writer_config.epochs = 1;
  OmniMatchTrainer writer(writer_config, &cross, split);
  ASSERT_TRUE(writer.Prepare().ok());
  writer.Train();
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  std::string path = dir + "/checkpoint_epoch1.omck";
  ASSERT_TRUE(writer.SaveCheckpoint(path).ok());

  // Different trajectory-shaping hyperparameter -> different fingerprint.
  OmniMatchConfig other_config = TinyModel();
  other_config.alpha = 0.3f;
  OmniMatchTrainer other(other_config, &cross, split);
  ASSERT_TRUE(other.Prepare().ok());
  Status status = other.LoadCheckpoint(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos);

  // A rejected load leaves the trainer fully usable from scratch.
  EXPECT_EQ(other.epochs_completed(), 0);
  TrainStats stats = other.Train();
  EXPECT_GT(stats.steps, 0);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, CorruptedCheckpointRejectedByTrainer) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);

  OmniMatchConfig config = TinyModel();
  config.epochs = 1;
  OmniMatchTrainer trainer(config, &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  trainer.Train();
  std::string path = testing::TempDir() + "/ckpt_corrupt.omck";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  std::string bytes = ReadFileToString(path).value();
  bytes[bytes.size() / 3] ^= 0x40;
  std::ofstream(path, std::ios::binary) << bytes;
  Status status = trainer.LoadCheckpoint(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
