#include "core/config.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace core {
namespace {

TEST(ConfigTest, DefaultsAreValid) {
  OmniMatchConfig config;
  EXPECT_TRUE(config.Validate().ok()) << config.Validate().ToString();
}

TEST(ConfigTest, RejectsBadEmbedDim) {
  OmniMatchConfig config;
  config.embed_dim = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsKernelLargerThanDoc) {
  OmniMatchConfig config;
  config.doc_len = 4;
  config.kernel_sizes = {5};
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsEmptyKernels) {
  OmniMatchConfig config;
  config.kernel_sizes.clear();
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsDropoutOutOfRange) {
  OmniMatchConfig config;
  config.dropout = 1.0f;
  EXPECT_FALSE(config.Validate().ok());
  config.dropout = -0.1f;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBatchOfOne) {
  OmniMatchConfig config;
  config.batch_size = 1;  // SupCon needs pairs
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsNegativeLossWeights) {
  OmniMatchConfig config;
  config.alpha = -0.1f;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsNonPositiveTemperature) {
  OmniMatchConfig config;
  config.temperature = 0.0f;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadRho) {
  OmniMatchConfig config;
  config.adadelta_rho = 1.0f;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, ZeroEpochsAllowed) {
  OmniMatchConfig config;
  config.epochs = 0;  // prepare-only usage is legal
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
