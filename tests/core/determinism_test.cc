// Thread-count determinism of full training: the pool size must change
// wall-clock only, never a single bit of the losses, parameters, or
// evaluation metrics.

#include <gtest/gtest.h>

#include "common/threadpool.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"

namespace omnimatch {
namespace core {
namespace {

data::SyntheticConfig SmallWorldConfig() {
  data::SyntheticConfig c;
  c.num_users = 60;
  c.items_per_domain = 30;
  c.mean_reviews_per_user = 5;
  c.seed = 21;
  return c;
}

OmniMatchConfig SmallTrainConfig(int num_threads) {
  OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 2;
  config.aux_eval_samples = 2;
  config.seed = 31;
  config.num_threads = num_threads;
  return config;
}

struct RunResult {
  std::vector<double> losses;
  std::vector<std::vector<float>> params;
  double rmse = 0.0;
};

RunResult TrainWithThreads(const data::CrossDomainDataset& cross,
                           const data::ColdStartSplit& split,
                           int num_threads) {
  OmniMatchTrainer trainer(SmallTrainConfig(num_threads), &cross, split);
  EXPECT_TRUE(trainer.Prepare().ok());
  TrainStats stats = trainer.Train();
  RunResult result;
  result.losses = stats.total_loss;
  for (const nn::Tensor& p : trainer.model()->Parameters()) {
    result.params.push_back(p.data());
  }
  result.rmse = trainer.Evaluate(trainer.split().test_users).rmse;
  return result;
}

TEST(DeterminismTest, TrainingIsBitIdenticalAcrossThreadCounts) {
  data::SyntheticWorld world(SmallWorldConfig());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);

  RunResult serial = TrainWithThreads(cross, split, 1);
  RunResult threaded = TrainWithThreads(cross, split, 4);

  ASSERT_FALSE(serial.losses.empty());
  ASSERT_EQ(serial.losses.size(), threaded.losses.size());
  for (size_t e = 0; e < serial.losses.size(); ++e) {
    EXPECT_EQ(serial.losses[e], threaded.losses[e]) << "epoch " << e;
  }

  ASSERT_EQ(serial.params.size(), threaded.params.size());
  for (size_t p = 0; p < serial.params.size(); ++p) {
    EXPECT_EQ(serial.params[p], threaded.params[p]) << "parameter " << p;
  }

  EXPECT_EQ(serial.rmse, threaded.rmse);
  SetNumThreads(0);
}

TEST(DeterminismTest, RepeatedThreadedRunsAreBitIdentical) {
  data::SyntheticWorld world(SmallWorldConfig());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);

  RunResult first = TrainWithThreads(cross, split, 3);
  RunResult second = TrainWithThreads(cross, split, 3);
  ASSERT_EQ(first.losses.size(), second.losses.size());
  for (size_t e = 0; e < first.losses.size(); ++e) {
    EXPECT_EQ(first.losses[e], second.losses[e]) << "epoch " << e;
  }
  EXPECT_EQ(first.rmse, second.rmse);
  SetNumThreads(0);
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
