// End-to-end tests of the self-healing training loop: deterministic faults
// armed against the global injector, detected by the TrainingGuard, and
// repaired by rollback + learning-rate backoff.

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/io.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "nn/health.h"

namespace omnimatch {
namespace core {
namespace {

data::SyntheticConfig TinyWorld() {
  data::SyntheticConfig c;
  c.num_users = 60;
  c.items_per_domain = 30;
  c.mean_reviews_per_user = 5;
  c.seed = 21;
  return c;
}

OmniMatchConfig TinyModel() {
  OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 2;
  config.seed = 31;
  config.select_best_epoch = false;
  return config;
}

struct Fixture {
  Fixture() : world(TinyWorld()), cross(world.MakePair("Books", "Movies")) {
    Rng rng(5);
    split = data::MakeColdStartSplit(cross, &rng);
  }
  data::SyntheticWorld world;
  data::CrossDomainDataset cross;
  data::ColdStartSplit split;
};

/// Arms the GLOBAL injector (the one the trainer consults) and guarantees a
/// clean slate before and after each test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Disarm(); }
  void TearDown() override { FaultInjector::Global().Disarm(); }

  void Arm(const std::string& spec) {
    ASSERT_TRUE(FaultInjector::Global().ArmFromString(spec).ok());
  }
};

/// Runs a full Prepare+Train under the currently armed faults.
TrainStats RunTraining(const Fixture& f, const OmniMatchConfig& config,
                       std::vector<std::vector<float>>* final_params =
                           nullptr) {
  OmniMatchTrainer trainer(config, &f.cross, f.split);
  EXPECT_TRUE(trainer.Prepare().ok());
  TrainStats stats = trainer.Train();
  if (final_params != nullptr) {
    final_params->clear();
    for (const nn::Tensor& p : trainer.model()->Parameters()) {
      final_params->push_back(p.data());
    }
  }
  return stats;
}

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

TEST_F(FaultInjectionTest, NanGradientDetectedWithinOneStepAndRecovered) {
  Fixture f;
  Arm("grad@2");
  std::vector<std::vector<float>> params;
  TrainStats stats = RunTraining(f, TinyModel(), &params);

  // Detected at exactly the faulted step, recovered, and training finished.
  ASSERT_EQ(stats.recoveries, 1);
  ASSERT_EQ(stats.recovery_events.size(), 1u);
  const RecoveryEvent& e = stats.recovery_events[0];
  EXPECT_EQ(e.step, 2);
  EXPECT_EQ(e.reason, FaultReason::kNonFiniteGrad);
  EXPECT_LT(e.lr_after, e.lr_before);
  EXPECT_FALSE(stats.guard_gave_up);
  EXPECT_EQ(FaultInjector::Global().fired(), 1);

  // The run completed every epoch with finite losses and finite weights.
  EXPECT_EQ(stats.total_loss.size(), 2u);
  EXPECT_TRUE(AllFinite(stats.total_loss));
  for (const auto& p : params) {
    for (float v : p) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_F(FaultInjectionTest, RecoveryIsBitIdenticalAcrossRuns) {
  Fixture f;
  OmniMatchConfig config = TinyModel();

  Arm("grad@3:seed=9");
  std::vector<std::vector<float>> params_a;
  TrainStats a = RunTraining(f, config, &params_a);

  FaultInjector::Global().Disarm();
  Arm("grad@3:seed=9");
  std::vector<std::vector<float>> params_b;
  TrainStats b = RunTraining(f, config, &params_b);

  // Same seed, same fault: the recovered trajectories are IDENTICAL, down
  // to the last bit of every weight.
  ASSERT_EQ(a.recoveries, 1);
  ASSERT_EQ(b.recoveries, 1);
  ASSERT_EQ(a.total_loss.size(), b.total_loss.size());
  for (size_t i = 0; i < a.total_loss.size(); ++i) {
    EXPECT_EQ(a.total_loss[i], b.total_loss[i]) << "epoch " << i;
  }
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    ASSERT_EQ(params_a[i], params_b[i]) << "tensor " << i;
  }
}

TEST_F(FaultInjectionTest, LossSpikeDetectedAndRolledBack) {
  Fixture f;
  OmniMatchConfig config = TinyModel();
  config.guard_warmup_steps = 3;  // arm the EMA quickly
  Arm("loss@5:mag=10");
  TrainStats stats = RunTraining(f, config);

  ASSERT_EQ(stats.recoveries, 1);
  const RecoveryEvent& e = stats.recovery_events[0];
  EXPECT_EQ(e.step, 5);
  EXPECT_EQ(e.reason, FaultReason::kLossSpike);
  // The 10x-spiked loss was observed above the spike threshold.
  EXPECT_GT(e.observed, e.threshold);
  EXPECT_GT(e.threshold, 0.0);
  EXPECT_FALSE(stats.guard_gave_up);
  // The spike never entered the loss trace: every epoch mean stays sane.
  EXPECT_TRUE(AllFinite(stats.total_loss));
  EXPECT_LT(stats.total_loss[0], e.observed);
}

TEST_F(FaultInjectionTest, CorruptedParameterDetectedAndRestored) {
  Fixture f;
  Arm("param@2:mag=inf");
  std::vector<std::vector<float>> params;
  TrainStats stats = RunTraining(f, TinyModel(), &params);

  ASSERT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.recovery_events[0].reason, FaultReason::kNonFiniteParam);
  EXPECT_EQ(stats.recovery_events[0].step, 2);
  for (const auto& p : params) {
    for (float v : p) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_F(FaultInjectionTest, RetryBudgetExhaustionStopsOnLastGoodState) {
  Fixture f;
  OmniMatchConfig config = TinyModel();
  config.max_recoveries = 2;
  // Fires on EVERY step from 1 on: recovery cannot outrun it.
  Arm("grad@1:count=1000000");
  std::vector<std::vector<float>> params;
  TrainStats stats = RunTraining(f, config, &params);

  EXPECT_TRUE(stats.guard_gave_up);
  EXPECT_EQ(stats.recoveries, 2);
  EXPECT_EQ(stats.recovery_events.size(), 2u);
  // Despite the unrecoverable fault storm, the final state is the last
  // GOOD one: every weight finite.
  for (const auto& p : params) {
    for (float v : p) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_F(FaultInjectionTest, CheckpointWriteFaultDoesNotKillTraining) {
  Fixture f;
  OmniMatchConfig config = TinyModel();
  config.checkpoint_every = 1;
  config.checkpoint_dir = testing::TempDir() + "/ckpt_write_fault";
  std::filesystem::remove_all(config.checkpoint_dir);
  Arm("checkpoint_write@0");  // first save fails

  TrainStats stats = RunTraining(f, config);
  EXPECT_EQ(stats.total_loss.size(), 2u);  // training ran to completion
  // Epoch 1's save was the injected failure; epoch 2's save succeeded.
  EXPECT_FALSE(std::filesystem::exists(config.checkpoint_dir +
                                       "/checkpoint_epoch1.omck"));
  EXPECT_TRUE(std::filesystem::exists(config.checkpoint_dir +
                                      "/checkpoint_epoch2.omck"));
  std::filesystem::remove_all(config.checkpoint_dir);
}

TEST_F(FaultInjectionTest, GuardedRunMatchesUnguardedRunWithoutFaults) {
  Fixture f;
  OmniMatchConfig guarded_config = TinyModel();
  guarded_config.guard_enabled = true;
  OmniMatchConfig unguarded_config = TinyModel();
  unguarded_config.guard_enabled = false;

  std::vector<std::vector<float>> guarded, unguarded;
  TrainStats a = RunTraining(f, guarded_config, &guarded);
  TrainStats b = RunTraining(f, unguarded_config, &unguarded);

  // The guard only observes on a healthy run: trajectories are bit-equal.
  EXPECT_EQ(a.recoveries, 0);
  ASSERT_EQ(a.total_loss.size(), b.total_loss.size());
  for (size_t i = 0; i < a.total_loss.size(); ++i) {
    EXPECT_EQ(a.total_loss[i], b.total_loss[i]) << "epoch " << i;
  }
  ASSERT_EQ(guarded.size(), unguarded.size());
  for (size_t i = 0; i < guarded.size(); ++i) {
    ASSERT_EQ(guarded[i], unguarded[i]) << "tensor " << i;
  }
}

TEST_F(FaultInjectionTest, GuardStateSurvivesCheckpointResume) {
  Fixture f;
  OmniMatchConfig config = TinyModel();
  config.checkpoint_every = 1;
  config.checkpoint_dir = testing::TempDir() + "/ckpt_guard_resume";
  std::filesystem::remove_all(config.checkpoint_dir);

  // Full run: a NaN gradient at step 2 (epoch 1) forces a recovery with LR
  // backoff, then checkpoints at every epoch.
  Arm("grad@2");
  std::vector<std::vector<float>> full_params;
  TrainStats full = RunTraining(f, config, &full_params);
  ASSERT_EQ(full.recoveries, 1);
  ASSERT_EQ(full.total_loss.size(), 2u);

  // Resume from the epoch-1 checkpoint (written AFTER the recovery) with no
  // fault armed, and run the remaining epoch.
  FaultInjector::Global().Disarm();
  OmniMatchTrainer resumed(config, &f.cross, f.split);
  ASSERT_TRUE(resumed.Prepare().ok());
  ASSERT_TRUE(resumed
                  .LoadCheckpoint(config.checkpoint_dir +
                                  "/checkpoint_epoch1.omck")
                  .ok());
  TrainStats stats = resumed.Train();

  // The recovery trace traveled inside the checkpoint...
  ASSERT_EQ(stats.recoveries, 1);
  ASSERT_EQ(stats.recovery_events.size(), 1u);
  EXPECT_EQ(stats.recovery_events[0].step, full.recovery_events[0].step);
  EXPECT_EQ(stats.recovery_events[0].lr_after,
            full.recovery_events[0].lr_after);
  // ...and so did the backed-off LR and guard EMA: the resumed epoch is
  // bit-identical to the uninterrupted run's second epoch.
  ASSERT_EQ(stats.total_loss.size(), 2u);
  EXPECT_EQ(stats.total_loss[1], full.total_loss[1]);
  std::vector<std::vector<float>> resumed_params;
  for (const nn::Tensor& p : resumed.model()->Parameters()) {
    resumed_params.push_back(p.data());
  }
  ASSERT_EQ(resumed_params.size(), full_params.size());
  for (size_t i = 0; i < resumed_params.size(); ++i) {
    ASSERT_EQ(resumed_params[i], full_params[i]) << "tensor " << i;
  }
  std::filesystem::remove_all(config.checkpoint_dir);
}

TEST_F(FaultInjectionTest, EnvVarSpecGrammarMatchesFlagGrammar) {
  // The OMNIMATCH_FAULTS env var goes through the same parser as --faults;
  // spot-check the documented examples against a local injector.
  FaultInjector local;
  EXPECT_TRUE(local.ArmFromString("grad@5").ok());
  EXPECT_TRUE(local.ArmFromString("loss@3:mag=10").ok());
  EXPECT_TRUE(local.ArmFromString("loss@3:mag=100,count=10").ok());
  EXPECT_TRUE(local.ArmFromString("param@7:mag=inf,seed=42").ok());
  EXPECT_TRUE(local.ArmFromString("checkpoint_write@0").ok());
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
