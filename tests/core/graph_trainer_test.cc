// End-to-end contract of --graph_exec: recorded-graph training must be
// bit-identical to eager training — every epoch loss, every parameter,
// every evaluation metric — at every thread count, with the health guard
// on, and across a kill-and-resume splice.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"

namespace omnimatch {
namespace core {
namespace {

data::SyntheticConfig SmallWorldConfig() {
  data::SyntheticConfig c;
  c.num_users = 60;
  c.items_per_domain = 30;
  c.mean_reviews_per_user = 5;
  c.seed = 21;
  return c;
}

OmniMatchConfig SmallTrainConfig(int num_threads, bool graph_exec) {
  OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 2;
  config.aux_eval_samples = 2;
  config.seed = 31;
  config.num_threads = num_threads;
  config.graph_exec = graph_exec;
  return config;
}

struct RunResult {
  std::vector<double> losses;
  std::vector<std::vector<float>> params;
  double rmse = 0.0;
  nn::graph::GraphExecutor::Stats stats;
};

RunResult TrainOnce(const data::CrossDomainDataset& cross,
                    const data::ColdStartSplit& split, int num_threads,
                    bool graph_exec) {
  OmniMatchTrainer trainer(SmallTrainConfig(num_threads, graph_exec), &cross,
                           split);
  EXPECT_TRUE(trainer.Prepare().ok());
  TrainStats stats = trainer.Train();
  RunResult result;
  result.losses = stats.total_loss;
  for (const nn::Tensor& p : trainer.model()->Parameters()) {
    result.params.push_back(p.data());
  }
  result.rmse = trainer.Evaluate(trainer.split().test_users).rmse;
  if (trainer.graph_executor() != nullptr) {
    result.stats = trainer.graph_executor()->stats();
  }
  return result;
}

void ExpectBitIdentical(const RunResult& eager, const RunResult& graph) {
  ASSERT_FALSE(eager.losses.empty());
  ASSERT_EQ(eager.losses.size(), graph.losses.size());
  for (size_t e = 0; e < eager.losses.size(); ++e) {
    EXPECT_EQ(eager.losses[e], graph.losses[e]) << "epoch " << e;
  }
  ASSERT_EQ(eager.params.size(), graph.params.size());
  for (size_t p = 0; p < eager.params.size(); ++p) {
    EXPECT_EQ(eager.params[p], graph.params[p]) << "parameter " << p;
  }
  EXPECT_EQ(eager.rmse, graph.rmse);
}

TEST(GraphTrainerTest, RecordedTrainingBitIdenticalToEagerAcrossThreads) {
  data::SyntheticWorld world(SmallWorldConfig());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);

  RunResult eager = TrainOnce(cross, split, 1, /*graph_exec=*/false);
  for (int threads : {1, 2, 4}) {
    RunResult graph = TrainOnce(cross, split, threads, /*graph_exec=*/true);
    ExpectBitIdentical(eager, graph);

    // The Table 2 config trains on full batches plus one partial tail
    // batch per epoch: one compiled plan per distinct batch size, every
    // step after the two recordings served from a plan.
    EXPECT_GE(graph.stats.plans, 1) << threads << " threads";
    EXPECT_LE(graph.stats.plans, 2) << threads << " threads";
    EXPECT_EQ(graph.stats.record_steps, graph.stats.plans);
    EXPECT_GT(graph.stats.replay_steps, 0) << threads << " threads";
    EXPECT_EQ(graph.stats.fallback_signatures, 0) << threads << " threads";
    EXPECT_GT(graph.stats.arena_bytes_max, 0);
  }
  SetNumThreads(0);
}

// Kill-and-resume under graph execution: a recorded-mode run killed after
// epoch 1 and resumed from its checkpoint (plans recompile from scratch in
// the fresh process) must match the uninterrupted EAGER run bit-for-bit.
// This also proves checkpoints cross modes: the resumed trainer replays
// compiled plans while the reference never left eager.
TEST(GraphTrainerTest, RecordedKillAndResumeMatchesEagerBitForBit) {
  data::SyntheticWorld world(SmallWorldConfig());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  std::string dir = testing::TempDir() + "/graph_resume";
  std::filesystem::remove_all(dir);

  OmniMatchTrainer eager(SmallTrainConfig(1, /*graph_exec=*/false), &cross,
                         split);
  ASSERT_TRUE(eager.Prepare().ok());
  TrainStats eager_stats = eager.Train();

  OmniMatchConfig killed_config = SmallTrainConfig(1, /*graph_exec=*/true);
  killed_config.epochs = 1;
  killed_config.checkpoint_every = 1;
  killed_config.checkpoint_dir = dir;
  OmniMatchTrainer killed(killed_config, &cross, split);
  ASSERT_TRUE(killed.Prepare().ok());
  killed.Train();

  OmniMatchTrainer resumed(SmallTrainConfig(1, /*graph_exec=*/true), &cross,
                           split);
  ASSERT_TRUE(resumed.Prepare().ok());
  Result<std::string> latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  ASSERT_TRUE(resumed.LoadCheckpoint(latest.value()).ok());
  EXPECT_EQ(resumed.epochs_completed(), 1);
  TrainStats resumed_stats = resumed.Train();

  EXPECT_EQ(resumed_stats.steps, eager_stats.steps);
  ASSERT_EQ(resumed_stats.total_loss.size(), eager_stats.total_loss.size());
  for (size_t e = 0; e < eager_stats.total_loss.size(); ++e) {
    EXPECT_EQ(resumed_stats.total_loss[e], eager_stats.total_loss[e])
        << "epoch " << e;
  }
  EXPECT_EQ(resumed_stats.validation_rmse, eager_stats.validation_rmse);

  std::vector<nn::Tensor> a = eager.model()->Parameters();
  std::vector<nn::Tensor> b = resumed.model()->Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].data(), b[i].data()) << "parameter " << i;
  }
  EXPECT_EQ(eager.Evaluate(split.test_users).rmse,
            resumed.Evaluate(split.test_users).rmse);

  std::filesystem::remove_all(dir);
  SetNumThreads(0);
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
