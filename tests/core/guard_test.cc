#include "core/guard.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace omnimatch {
namespace core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TrainingGuard::Options FastOptions() {
  TrainingGuard::Options options;
  options.spike_factor = 4.0;
  options.ema_decay = 0.5;
  options.warmup_steps = 3;
  return options;
}

TEST(TrainingGuardTest, HealthyStepsPass) {
  TrainingGuard guard(FastOptions());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(guard.Check(1.0, true, true), FaultReason::kNone);
  }
  EXPECT_EQ(guard.healthy_steps(), 20);
  EXPECT_NEAR(guard.ema(), 1.0, 1e-12);
}

TEST(TrainingGuardTest, NonFiniteLossDetectedImmediately) {
  TrainingGuard guard(FastOptions());
  // No warmup needed for non-finite faults: step 0 already detects.
  EXPECT_EQ(guard.Check(kNaN, true, true), FaultReason::kNonFiniteLoss);
  EXPECT_EQ(guard.Check(std::numeric_limits<double>::infinity(), true, true),
            FaultReason::kNonFiniteLoss);
  EXPECT_EQ(guard.healthy_steps(), 0);
}

TEST(TrainingGuardTest, NonFiniteGradAndParamDetected) {
  TrainingGuard guard(FastOptions());
  EXPECT_EQ(guard.Check(1.0, false, true), FaultReason::kNonFiniteGrad);
  EXPECT_EQ(guard.Check(1.0, true, false), FaultReason::kNonFiniteParam);
  // A non-finite loss outranks the others (it is checked first).
  EXPECT_EQ(guard.Check(kNaN, false, false), FaultReason::kNonFiniteLoss);
}

TEST(TrainingGuardTest, SpikeDetectedOnlyAfterWarmup) {
  TrainingGuard guard(FastOptions());
  // During warmup a huge loss passes (EMA not armed yet)...
  EXPECT_EQ(guard.Check(1.0, true, true), FaultReason::kNone);
  EXPECT_EQ(guard.Check(100.0, true, true), FaultReason::kNone);
  EXPECT_EQ(guard.Check(1.0, true, true), FaultReason::kNone);
  EXPECT_EQ(guard.Check(1.0, true, true), FaultReason::kNone);
  // ...after warmup_steps=3 healthy steps, a 4x-EMA loss is a fault.
  double threshold = 0.0;
  EXPECT_EQ(guard.Check(1000.0, true, true, &threshold),
            FaultReason::kLossSpike);
  EXPECT_GT(threshold, 0.0);
  EXPECT_LT(threshold, 1000.0);
}

TEST(TrainingGuardTest, FaultyLossDoesNotMoveTheEma) {
  TrainingGuard guard(FastOptions());
  for (int i = 0; i < 5; ++i) guard.Check(1.0, true, true);
  double ema_before = guard.ema();
  int64_t healthy_before = guard.healthy_steps();
  // A spiked loss must not drag the baseline up, or repeated spikes would
  // normalize themselves into acceptance.
  EXPECT_EQ(guard.Check(50.0, true, true), FaultReason::kLossSpike);
  EXPECT_EQ(guard.ema(), ema_before);
  EXPECT_EQ(guard.healthy_steps(), healthy_before);
  // And the SAME spike is still rejected afterwards.
  EXPECT_EQ(guard.Check(50.0, true, true), FaultReason::kLossSpike);
}

TEST(TrainingGuardTest, GradualLossGrowthIsAccepted) {
  TrainingGuard guard(FastOptions());
  double loss = 1.0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(guard.Check(loss, true, true), FaultReason::kNone) << i;
    loss *= 1.3;  // below the 4x spike factor; EMA tracks it
  }
}

TEST(TrainingGuardTest, RestoreRoundTripsCheckpointedState) {
  TrainingGuard a(FastOptions());
  for (int i = 0; i < 7; ++i) a.Check(2.0, true, true);

  TrainingGuard b(FastOptions());
  b.Restore(a.ema(), a.healthy_steps());
  EXPECT_EQ(b.ema(), a.ema());
  EXPECT_EQ(b.healthy_steps(), a.healthy_steps());
  // The restored guard is armed: a spike is detected right away.
  EXPECT_EQ(b.Check(1000.0, true, true), FaultReason::kLossSpike);
}

TEST(TrainingGuardTest, ReasonNamesAreDistinct) {
  EXPECT_STRNE(FaultReasonName(FaultReason::kNone),
               FaultReasonName(FaultReason::kNonFiniteLoss));
  EXPECT_STRNE(FaultReasonName(FaultReason::kLossSpike),
               FaultReasonName(FaultReason::kNonFiniteGrad));
  EXPECT_NE(std::string(FaultReasonName(FaultReason::kNonFiniteParam)), "");
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
