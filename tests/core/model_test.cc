#include "core/model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace omnimatch {
namespace core {
namespace {

OmniMatchConfig TinyConfig() {
  OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 6;
  config.projection_dim = 4;
  config.doc_len = 10;
  config.item_doc_len = 12;
  config.dropout = 0.0f;
  return config;
}

std::vector<int> MakeDoc(int batch, int len, int vocab, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> ids(static_cast<size_t>(batch) * len);
  for (int& id : ids) id = static_cast<int>(rng.UniformU32(vocab));
  return ids;
}

TEST(ModelTest, UserFeatureShapes) {
  Rng rng(1);
  OmniMatchConfig config = TinyConfig();
  OmniMatchModel model(config, /*vocab_size=*/50, &rng);
  auto features = model.ExtractUser(data::DomainSide::kSource,
                                    MakeDoc(3, config.doc_len, 50, 2), 3);
  EXPECT_EQ(features.invariant.dim(0), 3);
  EXPECT_EQ(features.invariant.dim(1), config.feature_dim);
  EXPECT_EQ(features.specific.dim(1), config.feature_dim);
}

TEST(ModelTest, ItemFeatureShape) {
  Rng rng(2);
  OmniMatchConfig config = TinyConfig();
  OmniMatchModel model(config, 50, &rng);
  nn::Tensor item =
      model.ExtractItem(MakeDoc(2, config.item_doc_len, 50, 3), 2);
  EXPECT_EQ(item.dim(0), 2);
  EXPECT_EQ(item.dim(1), config.feature_dim);
}

TEST(ModelTest, UserRepresentationConcatenatesInvariantAndSpecific) {
  Rng rng(3);
  OmniMatchConfig config = TinyConfig();
  OmniMatchModel model(config, 50, &rng);
  auto features = model.ExtractUser(data::DomainSide::kTarget,
                                    MakeDoc(2, config.doc_len, 50, 4), 2);
  nn::Tensor rep = OmniMatchModel::UserRepresentation(features);
  EXPECT_EQ(rep.dim(1), 2 * config.feature_dim);
}

TEST(ModelTest, InvariantHeadIsSharedAcrossDomains) {
  // The SAME document through source and target paths gives different
  // specific features (per-domain CNN/head) — but if we inspect parameters,
  // there must be exactly one invariant head: parameter count check.
  Rng rng(4);
  OmniMatchConfig config = TinyConfig();
  config.use_mean_embedding_feature = false;
  config.use_interaction_features = false;
  OmniMatchModel model(config, 50, &rng);
  int f = config.feature_dim;
  int ext = config.cnn_channels * static_cast<int>(config.kernel_sizes.size());
  // Heads: 1 invariant + 2 specific + 1 item = 4 Linear layers of ext->f.
  // If the invariant head were per-domain there would be 5.
  int64_t head_params = 4LL * (ext * f + f);
  // Count all params, subtract embeddings, CNNs, projection, classifiers.
  // Simpler: build a second model with feature_dim+1 and check the delta in
  // head parameters matches 4 heads, not 5.
  (void)head_params;
  OmniMatchConfig bigger = config;
  bigger.feature_dim = f + 1;
  Rng rng2(4);
  OmniMatchModel model2(bigger, 50, &rng2);
  int64_t delta = model2.NumParameters() - model.NumParameters();
  // Each extra feature unit adds (ext + 1) params per head; the remaining
  // delta comes from projection/classifier/interaction layers whose input
  // widths scale with f. We verify the head contribution by computing the
  // full expected delta for the 4-head architecture.
  // projection: in 3f -> proj: +3*proj ; domain classifiers: 2 * ((f/2
  // changes too)...) — too entangled; instead assert the count changed and
  // the model still runs.
  EXPECT_GT(delta, 0);
  auto fa = model2.ExtractUser(data::DomainSide::kSource,
                               MakeDoc(2, config.doc_len, 50, 5), 2);
  EXPECT_EQ(fa.invariant.dim(1), f + 1);
}

TEST(ModelTest, RatingLogitsShapeAndGradientFlow) {
  Rng rng(5);
  OmniMatchConfig config = TinyConfig();
  OmniMatchModel model(config, 50, &rng);
  auto user = model.ExtractUser(data::DomainSide::kTarget,
                                MakeDoc(4, config.doc_len, 50, 6), 4);
  nn::Tensor item =
      model.ExtractItem(MakeDoc(4, config.item_doc_len, 50, 7), 4);
  nn::Tensor logits =
      model.RatingLogits(OmniMatchModel::UserRepresentation(user), item);
  EXPECT_EQ(logits.dim(0), 4);
  EXPECT_EQ(logits.dim(1), config.num_rating_classes);
  nn::SoftmaxCrossEntropy(logits, {0, 1, 2, 3}).Backward();
  // Gradient must reach the embedding table.
  bool any = false;
  for (const nn::Tensor& p : model.Parameters()) {
    for (float g : p.grad()) {
      if (g != 0.0f) {
        any = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any);
}

TEST(ModelTest, DomainClassifierInvariantReversesGradient) {
  Rng rng(6);
  OmniMatchConfig config = TinyConfig();
  config.grl_lambda = 1.0f;
  OmniMatchModel model(config, 50, &rng);
  nn::Tensor feats =
      nn::Tensor::Zeros({2, config.feature_dim}, /*requires_grad=*/true);
  Rng data_rng(7);
  for (float& v : feats.data()) v = data_rng.UniformFloat(-1, 1);

  // Loss through the GRL classifier.
  nn::Tensor logits_adv = model.DomainLogitsInvariant(feats);
  nn::SoftmaxCrossEntropy(logits_adv, {0, 1}).Backward();
  std::vector<float> grad_adv = feats.grad();

  // Same features through the specific classifier (no GRL) — gradients
  // should NOT be systematically opposite (different classifier weights),
  // but the invariant one must be nonzero (reversal happened, not zeroing).
  float norm = 0.0f;
  for (float g : grad_adv) norm += g * g;
  EXPECT_GT(norm, 0.0f);
}

TEST(ModelTest, GrlLambdaZeroBlocksAdversarialGradient) {
  Rng rng(8);
  OmniMatchConfig config = TinyConfig();
  config.grl_lambda = 0.0f;
  OmniMatchModel model(config, 50, &rng);
  nn::Tensor feats =
      nn::Tensor::Zeros({2, config.feature_dim}, /*requires_grad=*/true);
  for (float& v : feats.data()) v = 0.3f;
  nn::Tensor logits = model.DomainLogitsInvariant(feats);
  nn::SoftmaxCrossEntropy(logits, {0, 1}).Backward();
  for (float g : feats.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(ModelTest, ProjectionOutputShape) {
  Rng rng(9);
  OmniMatchConfig config = TinyConfig();
  OmniMatchModel model(config, 50, &rng);
  auto user = model.ExtractUser(data::DomainSide::kSource,
                                MakeDoc(3, config.doc_len, 50, 10), 3);
  nn::Tensor item =
      model.ExtractItem(MakeDoc(3, config.item_doc_len, 50, 11), 3);
  nn::Tensor proj =
      model.Project(OmniMatchModel::UserRepresentation(user), item);
  EXPECT_EQ(proj.dim(0), 3);
  EXPECT_EQ(proj.dim(1), config.projection_dim);
}

TEST(ModelTest, TransformerExtractorVariantRuns) {
  Rng rng(10);
  OmniMatchConfig config = TinyConfig();
  config.extractor = ExtractorKind::kTransformer;
  OmniMatchModel model(config, 50, &rng);
  auto user = model.ExtractUser(data::DomainSide::kTarget,
                                MakeDoc(2, config.doc_len, 50, 12), 2);
  EXPECT_EQ(user.invariant.dim(1), config.feature_dim);
}

TEST(ModelTest, DeterministicGivenSeedInEvalMode) {
  OmniMatchConfig config = TinyConfig();
  Rng rng1(11), rng2(11);
  OmniMatchModel m1(config, 50, &rng1);
  OmniMatchModel m2(config, 50, &rng2);
  m1.set_training(false);
  m2.set_training(false);
  auto doc = MakeDoc(2, config.doc_len, 50, 13);
  auto f1 = m1.ExtractUser(data::DomainSide::kSource, doc, 2);
  auto f2 = m2.ExtractUser(data::DomainSide::kSource, doc, 2);
  for (size_t i = 0; i < f1.invariant.data().size(); ++i) {
    EXPECT_FLOAT_EQ(f1.invariant.data()[i], f2.invariant.data()[i]);
  }
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
