#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"

namespace omnimatch {
namespace core {
namespace {

data::SyntheticConfig TinyWorld() {
  data::SyntheticConfig c;
  c.num_users = 60;
  c.items_per_domain = 30;
  c.mean_reviews_per_user = 5;
  c.seed = 21;
  return c;
}

OmniMatchConfig TinyModel() {
  OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 2;
  config.seed = 31;
  return config;
}

TEST(SerializationTest, SaveLoadRoundTripReproducesPredictions) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);

  OmniMatchTrainer trained(TinyModel(), &cross, split);
  ASSERT_TRUE(trained.Prepare().ok());
  trained.Train();
  std::string path = testing::TempDir() + "/omnimatch_weights.bin";
  ASSERT_TRUE(trained.SaveWeights(path).ok());

  OmniMatchTrainer fresh(TinyModel(), &cross, split);
  ASSERT_TRUE(fresh.Prepare().ok());
  ASSERT_TRUE(fresh.LoadWeights(path).ok());

  eval::Metrics a = trained.Evaluate(split.test_users);
  eval::Metrics b = fresh.Evaluate(split.test_users);
  EXPECT_DOUBLE_EQ(a.rmse, b.rmse);
  EXPECT_DOUBLE_EQ(a.mae, b.mae);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsDifferentArchitecture) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);

  OmniMatchTrainer trained(TinyModel(), &cross, split);
  ASSERT_TRUE(trained.Prepare().ok());
  std::string path = testing::TempDir() + "/omnimatch_weights2.bin";
  ASSERT_TRUE(trained.SaveWeights(path).ok());

  OmniMatchConfig bigger = TinyModel();
  bigger.feature_dim = 12;
  OmniMatchTrainer other(bigger, &cross, split);
  ASSERT_TRUE(other.Prepare().ok());
  Status status = other.LoadWeights(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadMissingFileFails) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  OmniMatchTrainer trainer(TinyModel(), &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  Status status = trainer.LoadWeights("/nonexistent/weights.bin");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(SerializationTest, LoadTruncatedFileFails) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  OmniMatchTrainer trainer(TinyModel(), &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  std::string path = testing::TempDir() + "/omnimatch_trunc.bin";
  ASSERT_TRUE(trainer.SaveWeights(path).ok());
  // Truncate the file to half.
  FILE* f = fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  fseek(f, 0, SEEK_END);
  long size = ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size / 2), 0);
  fclose(f);
  Status status = trainer.LoadWeights(path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

// Regression: the old bare-ofstream format loaded silently after a bit
// flip anywhere in the payload. The OMWT CRC must reject it — and a failed
// load must leave the model's weights untouched.
TEST(SerializationTest, LoadCorruptedPayloadFailsAndPreservesWeights) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  OmniMatchTrainer trainer(TinyModel(), &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  std::string path = testing::TempDir() + "/omnimatch_corrupt.bin";
  ASSERT_TRUE(trainer.SaveWeights(path).ok());

  Result<std::string> raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string bytes = raw.value();
  bytes[bytes.size() / 2] ^= 0x40;  // one bit flip deep in the payload
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  eval::Metrics before = trainer.Evaluate(split.test_users);
  Status status = trainer.LoadWeights(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The rejected load must not have half-written anything.
  eval::Metrics after = trainer.Evaluate(split.test_users);
  EXPECT_DOUBLE_EQ(before.rmse, after.rmse);
  std::remove(path.c_str());
}

// Regression: trailing bytes after the payload (a concatenated or
// double-written file) used to pass unnoticed — the old reader simply never
// looked past the last parameter.
TEST(SerializationTest, LoadRejectsTrailingGarbage) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  OmniMatchTrainer trainer(TinyModel(), &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  std::string path = testing::TempDir() + "/omnimatch_trailing.bin";
  ASSERT_TRUE(trainer.SaveWeights(path).ok());

  std::ofstream(path, std::ios::binary | std::ios::app) << "garbage";
  Status status = trainer.LoadWeights(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsForeignMagic) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  OmniMatchTrainer trainer(TinyModel(), &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  std::string path = testing::TempDir() + "/omnimatch_notweights.bin";
  std::ofstream(path, std::ios::binary)
      << "this is not a weight file, but it is long enough to have a header";
  Status status = trainer.LoadWeights(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// SaveWeights must stage through a tmp file: after a successful save the
// destination directory holds exactly the final file, no leftover staging
// artifacts, and an existing file is replaced atomically (never truncated
// in place).
TEST(SerializationTest, SaveOverwritesAtomically) {
  data::SyntheticWorld world(TinyWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  OmniMatchTrainer trainer(TinyModel(), &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  std::string path = testing::TempDir() + "/omnimatch_overwrite.bin";
  ASSERT_TRUE(trainer.SaveWeights(path).ok());
  ASSERT_TRUE(trainer.SaveWeights(path).ok());  // overwrite in place
  ASSERT_TRUE(trainer.LoadWeights(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
