#include "core/trainer.h"

#include <gtest/gtest.h>

#include "data/splits.h"
#include "data/synthetic.h"

namespace omnimatch {
namespace core {
namespace {

data::SyntheticConfig TinyWorldConfig() {
  data::SyntheticConfig c;
  c.num_users = 60;
  c.items_per_domain = 30;
  c.mean_reviews_per_user = 5;
  c.seed = 21;
  return c;
}

OmniMatchConfig TinyTrainConfig() {
  OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 2;
  config.aux_eval_samples = 2;
  config.seed = 31;
  return config;
}

struct Fixture {
  Fixture()
      : world(TinyWorldConfig()),
        cross(world.MakePair("Books", "Movies")) {
    Rng rng(5);
    split = data::MakeColdStartSplit(cross, &rng);
  }
  data::SyntheticWorld world;
  data::CrossDomainDataset cross;
  data::ColdStartSplit split;
};

TEST(TrainerTest, PrepareBuildsVocabulary) {
  Fixture f;
  OmniMatchTrainer trainer(TinyTrainConfig(), &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  EXPECT_GT(trainer.vocabulary().size(), 50);
  EXPECT_NE(trainer.aux_generator(), nullptr);
}

TEST(TrainerTest, PrepareRejectsInvalidConfig) {
  Fixture f;
  OmniMatchConfig config = TinyTrainConfig();
  config.dropout = 1.5f;
  OmniMatchTrainer trainer(config, &f.cross, f.split);
  Status status = trainer.Prepare();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, PrepareRejectsEmptyTrainSet) {
  Fixture f;
  data::ColdStartSplit empty = f.split;
  empty.train_users.clear();
  OmniMatchTrainer trainer(TinyTrainConfig(), &f.cross, empty);
  Status status = trainer.Prepare();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(TrainerTest, TrainProducesPerEpochLosses) {
  Fixture f;
  OmniMatchTrainer trainer(TinyTrainConfig(), &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  TrainStats stats = trainer.Train();
  ASSERT_EQ(stats.total_loss.size(), 2u);
  EXPECT_GT(stats.steps, 0);
  EXPECT_GT(stats.train_seconds, 0.0);
  EXPECT_EQ(stats.validation_rmse.size(), 2u);
  EXPECT_GE(stats.best_epoch, 0);
  for (double l : stats.total_loss) EXPECT_GT(l, 0.0);
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  Fixture f;
  OmniMatchConfig config = TinyTrainConfig();
  config.epochs = 6;
  config.select_best_epoch = false;
  OmniMatchTrainer trainer(config, &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  TrainStats stats = trainer.Train();
  EXPECT_LT(stats.total_loss.back(), stats.total_loss.front());
}

TEST(TrainerTest, EvaluateReturnsSaneMetrics) {
  Fixture f;
  OmniMatchTrainer trainer(TinyTrainConfig(), &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  trainer.Train();
  eval::Metrics m = trainer.Evaluate(f.split.test_users);
  EXPECT_GT(m.count, 0);
  EXPECT_GT(m.rmse, 0.0);
  EXPECT_LT(m.rmse, 4.0);  // worst possible error on a 1..5 scale
  EXPECT_LE(m.mae, m.rmse);
}

TEST(TrainerTest, PredictionsWithinRatingScale) {
  Fixture f;
  OmniMatchTrainer trainer(TinyTrainConfig(), &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  trainer.Train();
  for (int u : f.split.test_users) {
    for (int idx : f.cross.target().RecordsOfUser(u)) {
      float pred =
          trainer.PredictRating(u, f.cross.target().reviews()[idx].item_id);
      EXPECT_GE(pred, 1.0f);
      EXPECT_LE(pred, 5.0f);
    }
  }
}

TEST(TrainerTest, UnknownUserFallsBackToGlobalMean) {
  Fixture f;
  OmniMatchTrainer trainer(TinyTrainConfig(), &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  float pred = trainer.PredictRating(/*user_id=*/987654, /*item_id=*/1);
  EXPECT_FLOAT_EQ(pred, f.cross.target().GlobalMeanRating());
}

TEST(TrainerTest, DeterministicAcrossRunsWithSameSeed) {
  Fixture f;
  OmniMatchConfig config = TinyTrainConfig();
  OmniMatchTrainer a(config, &f.cross, f.split);
  OmniMatchTrainer b(config, &f.cross, f.split);
  ASSERT_TRUE(a.Prepare().ok());
  ASSERT_TRUE(b.Prepare().ok());
  a.Train();
  b.Train();
  eval::Metrics ma = a.Evaluate(f.split.test_users);
  eval::Metrics mb = b.Evaluate(f.split.test_users);
  EXPECT_DOUBLE_EQ(ma.rmse, mb.rmse);
  EXPECT_DOUBLE_EQ(ma.mae, mb.mae);
}

TEST(TrainerTest, AblationSwitchesRun) {
  Fixture f;
  for (int variant = 0; variant < 3; ++variant) {
    OmniMatchConfig config = TinyTrainConfig();
    config.epochs = 1;
    if (variant == 0) config.use_scl = false;
    if (variant == 1) config.use_domain_adversarial = false;
    if (variant == 2) {
      config.use_aux_reviews = false;
      config.aux_augmentation_prob = 0.0f;
    }
    OmniMatchTrainer trainer(config, &f.cross, f.split);
    ASSERT_TRUE(trainer.Prepare().ok());
    TrainStats stats = trainer.Train();
    if (variant == 0) EXPECT_EQ(stats.scl_loss[0], 0.0);
    if (variant == 1) EXPECT_EQ(stats.domain_loss[0], 0.0);
    EXPECT_GT(trainer.Evaluate(f.split.test_users).count, 0);
  }
}

TEST(TrainerTest, FullTextVariantRuns) {
  Fixture f;
  OmniMatchConfig config = TinyTrainConfig();
  config.epochs = 1;
  config.text_field = TextField::kFullText;
  OmniMatchTrainer trainer(config, &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  trainer.Train();
  EXPECT_GT(trainer.Evaluate(f.split.test_users).count, 0);
}

TEST(TrainerTest, OracleDocsChangeEvaluation) {
  Fixture f;
  OmniMatchTrainer trainer(TinyTrainConfig(), &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  trainer.Train();
  eval::Metrics aux = trainer.Evaluate(f.split.test_users);
  trainer.UseOracleTargetDocs(f.split.test_users);
  eval::Metrics oracle = trainer.Evaluate(f.split.test_users);
  EXPECT_EQ(aux.count, oracle.count);
  EXPECT_NE(aux.rmse, oracle.rmse);  // different documents, different preds
}

TEST(TrainerTest, ZeroEpochTrainingStillEvaluates) {
  Fixture f;
  OmniMatchConfig config = TinyTrainConfig();
  config.epochs = 0;
  OmniMatchTrainer trainer(config, &f.cross, f.split);
  ASSERT_TRUE(trainer.Prepare().ok());
  TrainStats stats = trainer.Train();
  EXPECT_EQ(stats.steps, 0);
  EXPECT_GT(trainer.Evaluate(f.split.test_users).count, 0);
}

}  // namespace
}  // namespace core
}  // namespace omnimatch
