#include "data/csr.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "gtest/gtest.h"

namespace omnimatch {
namespace data {
namespace {

/// Reference model: the map-of-vectors structure CsrIndex replaces.
std::map<int, std::vector<int>> ReferenceIndex(const std::vector<int>& keys,
                                               const std::vector<int>& values,
                                               bool sort_unique) {
  std::map<int, std::vector<int>> ref;
  for (size_t i = 0; i < keys.size(); ++i) ref[keys[i]].push_back(values[i]);
  if (sort_unique) {
    for (auto& [k, v] : ref) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
  }
  return ref;
}

void ExpectMatchesReference(const CsrIndex<int>& index,
                            const std::map<int, std::vector<int>>& ref) {
  ASSERT_EQ(index.num_keys(), ref.size());
  size_t k = 0;
  for (const auto& [key, bucket] : ref) {
    EXPECT_EQ(index.keys()[k], key);
    EXPECT_EQ(index.ValuesAt(k), bucket) << "key " << key;
    EXPECT_EQ(index.Find(key), bucket) << "key " << key;
    ++k;
  }
  EXPECT_TRUE(index.Find(-12345).empty());
}

TEST(CsrIndexTest, EmptyIndex) {
  CsrIndex<int> index;
  EXPECT_EQ(index.num_keys(), 0u);
  EXPECT_TRUE(index.Find(0).empty());
  EXPECT_FALSE(index.Contains(0));

  CsrIndex<int> built = CsrIndex<int>::Build(
      0, [](size_t) { return 0; }, [](size_t) { return 0; }, false);
  EXPECT_EQ(built.num_keys(), 0u);
  EXPECT_TRUE(built.Find(0).empty());
}

TEST(CsrIndexTest, PreservesRecordOrderWithinBucket) {
  // key 7 sees values in record order 5, 3, 9 — not sorted.
  std::vector<int> keys = {7, 2, 7, 7};
  std::vector<int> values = {5, 1, 3, 9};
  CsrIndex<int> index = CsrIndex<int>::Build(
      keys.size(), [&](size_t i) { return keys[i]; },
      [&](size_t i) { return values[i]; }, /*sort_unique_values=*/false);
  EXPECT_EQ(index.Find(7), (std::vector<int>{5, 3, 9}));
  EXPECT_EQ(index.Find(2), (std::vector<int>{1}));
}

TEST(CsrIndexTest, SortUniqueDeduplicatesBuckets) {
  std::vector<int> keys = {4, 4, 4, 4, 1};
  std::vector<int> values = {9, 2, 9, 2, 2};
  CsrIndex<int> index = CsrIndex<int>::Build(
      keys.size(), [&](size_t i) { return keys[i]; },
      [&](size_t i) { return values[i]; }, /*sort_unique_values=*/true);
  EXPECT_EQ(index.Find(4), (std::vector<int>{2, 9}));
  EXPECT_EQ(index.Find(1), (std::vector<int>{2}));
}

TEST(CsrIndexTest, RandomizedAgainstReferenceModel) {
  Rng rng(991);
  for (int trial = 0; trial < 20; ++trial) {
    // Sizes straddle the 32768-records-per-shard boundary in some trials so
    // both the single-shard and multi-shard merge paths are exercised.
    size_t n = 1 + rng.UniformU32(trial % 4 == 0 ? 70000 : 500);
    int key_range = 1 + static_cast<int>(rng.UniformU32(64));
    std::vector<int> keys(n), values(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<int>(rng.UniformU32(
          static_cast<uint32_t>(key_range)));
      values[i] = static_cast<int>(rng.UniformU32(1000));
    }
    bool sort_unique = trial % 2 == 0;
    CsrIndex<int> index = CsrIndex<int>::Build(
        n, [&](size_t i) { return keys[i]; },
        [&](size_t i) { return values[i]; }, sort_unique);
    ExpectMatchesReference(index,
                          ReferenceIndex(keys, values, sort_unique));
  }
}

TEST(CsrIndexTest, BuildIsThreadCountInvariant) {
  Rng rng(17);
  size_t n = 50000;
  std::vector<long long> keys(n);
  std::vector<int> values(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<long long>(rng.UniformU32(300)) * 16 +
              rng.UniformU32(10);
    values[i] = static_cast<int>(rng.UniformU32(2000));
  }
  auto build = [&]() {
    return CsrIndex<long long>::Build(
        n, [&](size_t i) { return keys[i]; },
        [&](size_t i) { return values[i]; }, /*sort_unique_values=*/true);
  };
  SetNumThreads(1);
  CsrIndex<long long> serial = build();
  SetNumThreads(4);
  CsrIndex<long long> parallel = build();
  SetNumThreads(0);  // back to default
  EXPECT_EQ(serial.keys(), parallel.keys());
  EXPECT_EQ(serial.offsets(), parallel.offsets());
  EXPECT_EQ(serial.values(), parallel.values());
}

TEST(CsrIndexTest, FilterKeepsKeysAndDropsValues) {
  std::vector<int> keys = {1, 1, 1, 2, 3, 3};
  std::vector<int> values = {10, 11, 12, 11, 13, 10};
  CsrIndex<int> index = CsrIndex<int>::Build(
      keys.size(), [&](size_t i) { return keys[i]; },
      [&](size_t i) { return values[i]; }, /*sort_unique_values=*/true);
  CsrIndex<int> even =
      CsrIndex<int>::Filter(index, [](int v) { return v % 2 == 0; });
  // Key set preserved even when a bucket empties.
  ASSERT_EQ(even.keys(), index.keys());
  EXPECT_EQ(even.Find(1), (std::vector<int>{10, 12}));
  EXPECT_TRUE(even.Find(2).empty());
  EXPECT_EQ(even.Find(3), (std::vector<int>{10}));

  CsrIndex<int> none = CsrIndex<int>::Filter(index, [](int) { return false; });
  ASSERT_EQ(none.keys(), index.keys());
  EXPECT_TRUE(none.values().empty());
}

TEST(IdSpanTest, ComparesAndPrints) {
  std::vector<int> v = {1, 5, 9};
  IdSpan s(v.data(), v.size());
  EXPECT_EQ(s, v);
  EXPECT_EQ(v, s);
  EXPECT_NE(s, IdSpan());
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "[1, 5, 9]");
}

}  // namespace
}  // namespace data
}  // namespace omnimatch
