#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace omnimatch {
namespace data {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTripPreservesRecords) {
  SyntheticConfig config;
  config.num_users = 30;
  config.items_per_domain = 20;
  config.mean_reviews_per_user = 3;
  SyntheticWorld world(config);
  const DomainDataset& original = world.domain("Books");

  std::string path = TempPath("books_roundtrip.tsv");
  ASSERT_TRUE(SaveDomainTsv(original, path).ok());
  auto loaded = LoadDomainTsv(path, "Books");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const DomainDataset& copy = loaded.value();
  ASSERT_EQ(copy.num_reviews(), original.num_reviews());
  for (size_t i = 0; i < copy.num_reviews(); ++i) {
    EXPECT_EQ(copy.reviews()[i].user_id, original.reviews()[i].user_id);
    EXPECT_EQ(copy.reviews()[i].item_id, original.reviews()[i].item_id);
    EXPECT_EQ(copy.reviews()[i].rating, original.reviews()[i].rating);
    EXPECT_EQ(copy.reviews()[i].summary, original.reviews()[i].summary);
  }
  EXPECT_EQ(copy.name(), "Books");
  std::remove(path.c_str());
}

TEST(CsvTest, SanitizesTabsAndNewlines) {
  DomainDataset d("X");
  Review r;
  r.user_id = 1;
  r.item_id = 2;
  r.rating = 4;
  r.summary = "line\none\ttabbed";
  r.full_text = r.summary;
  d.AddReview(r);
  d.BuildIndices();
  std::string path = TempPath("sanitize.tsv");
  ASSERT_TRUE(SaveDomainTsv(d, path).ok());
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().reviews()[0].summary, "line one tabbed");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  auto loaded = LoadDomainTsv("/nonexistent/dir/file.tsv", "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, MissingHeaderRejected) {
  std::string path = TempPath("noheader.tsv");
  std::ofstream(path) << "1\t2\t5\ttext\ttext\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, MalformedRowRejectedWithLineNumber) {
  std::string path = TempPath("badrow.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "1\t2\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, OutOfRangeRatingRejected) {
  std::string path = TempPath("badrating.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "1\t2\t9\ttext\ttext\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CsvTest, FourFieldRowUsesSummaryAsFullText) {
  std::string path = TempPath("fourfields.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\n"
                      << "1\t2\t4\tshort review\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().reviews()[0].full_text, "short review");
  std::remove(path.c_str());
}

TEST(CsvTest, BlankLinesSkipped) {
  std::string path = TempPath("blanks.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "\n"
                      << "1\t2\t4\ta\tb\n"
                      << "   \n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_reviews(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace omnimatch
