#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace omnimatch {
namespace data {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTripPreservesRecords) {
  SyntheticConfig config;
  config.num_users = 30;
  config.items_per_domain = 20;
  config.mean_reviews_per_user = 3;
  SyntheticWorld world(config);
  const DomainDataset& original = world.domain("Books");

  std::string path = TempPath("books_roundtrip.tsv");
  ASSERT_TRUE(SaveDomainTsv(original, path).ok());
  auto loaded = LoadDomainTsv(path, "Books");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const DomainDataset& copy = loaded.value();
  ASSERT_EQ(copy.num_reviews(), original.num_reviews());
  for (size_t i = 0; i < copy.num_reviews(); ++i) {
    EXPECT_EQ(copy.reviews()[i].user_id, original.reviews()[i].user_id);
    EXPECT_EQ(copy.reviews()[i].item_id, original.reviews()[i].item_id);
    EXPECT_EQ(copy.reviews()[i].rating, original.reviews()[i].rating);
    EXPECT_EQ(copy.reviews()[i].summary, original.reviews()[i].summary);
  }
  EXPECT_EQ(copy.name(), "Books");
  std::remove(path.c_str());
}

TEST(CsvTest, TabsAndNewlinesRoundTripViaEscaping) {
  DomainDataset d("X");
  Review r;
  r.user_id = 1;
  r.item_id = 2;
  r.rating = 4;
  // Every structural character plus a literal backslash and a literal
  // two-character "\t" that must survive unchanged.
  r.summary = "line\none\ttabbed\rback\\slash and literal \\t end";
  r.full_text = r.summary;
  d.AddReview(r);
  d.BuildIndices();
  std::string path = TempPath("escape_roundtrip.tsv");
  ASSERT_TRUE(SaveDomainTsv(d, path).ok());
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().reviews()[0].summary, r.summary);
  EXPECT_EQ(loaded.value().reviews()[0].full_text, r.full_text);
  std::remove(path.c_str());
}

TEST(CsvTest, EscapedFileStaysOneLinePerRecord) {
  DomainDataset d("X");
  Review r;
  r.user_id = 1;
  r.item_id = 2;
  r.rating = 4;
  r.summary = "a\nb";
  r.full_text = "c\td";
  d.AddReview(r);
  d.BuildIndices();
  std::string path = TempPath("escape_lines.tsv");
  ASSERT_TRUE(SaveDomainTsv(d, path).ok());
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2);  // header + one record
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  auto loaded = LoadDomainTsv("/nonexistent/dir/file.tsv", "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, MissingHeaderRejected) {
  std::string path = TempPath("noheader.tsv");
  std::ofstream(path) << "1\t2\t5\ttext\ttext\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, MalformedRowRejectedWithLineNumber) {
  std::string path = TempPath("badrow.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "1\t2\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, TrailingGarbageInNumericFieldRejected) {
  // std::atoi would silently read "3x" as rating 3; the checked parser must
  // reject the row and point at it.
  std::string path = TempPath("trailgarbage.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "1\t2\t3x\ttext\ttext\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("rating"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, NonNumericUserIdRejected) {
  std::string path = TempPath("badid.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "u7\t2\t3\ttext\ttext\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("user_id"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, IntegerOverflowRejected) {
  // 99999999999 overflows int32; atoi's behaviour is undefined, the checked
  // parser reports out-of-range as a bad field.
  std::string path = TempPath("overflow.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "99999999999\t2\t3\ttext\ttext\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, WhitespacePaddedNumericFieldRejected) {
  std::string path = TempPath("wspad.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << " 1\t2\t3\ttext\ttext\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CsvTest, OutOfRangeRatingRejected) {
  std::string path = TempPath("badrating.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "1\t2\t9\ttext\ttext\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CsvTest, FourFieldRowUsesSummaryAsFullText) {
  std::string path = TempPath("fourfields.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\n"
                      << "1\t2\t4\tshort review\n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().reviews()[0].full_text, "short review");
  std::remove(path.c_str());
}

TEST(CsvTest, BlankLinesSkipped) {
  std::string path = TempPath("blanks.tsv");
  std::ofstream(path) << "user_id\titem_id\trating\tsummary\tfull_text\n"
                      << "\n"
                      << "1\t2\t4\ta\tb\n"
                      << "   \n";
  auto loaded = LoadDomainTsv(path, "X");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_reviews(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace omnimatch
