#include "data/dataset.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace data {
namespace {

Review MakeReview(int user, int item, float rating,
                  const std::string& text = "t") {
  Review r;
  r.user_id = user;
  r.item_id = item;
  r.rating = rating;
  r.summary = text;
  r.full_text = text;
  return r;
}

DomainDataset SmallDomain() {
  DomainDataset d("Books");
  d.AddReview(MakeReview(0, 10, 5));
  d.AddReview(MakeReview(0, 11, 3));
  d.AddReview(MakeReview(1, 10, 5));
  d.AddReview(MakeReview(2, 10, 4));
  d.AddReview(MakeReview(2, 11, 3));
  d.BuildIndices();
  return d;
}

TEST(DomainDatasetTest, UsersAndItemsSorted) {
  DomainDataset d = SmallDomain();
  EXPECT_EQ(d.users(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(d.items(), (std::vector<int>{10, 11}));
  EXPECT_EQ(d.num_reviews(), 5u);
}

TEST(DomainDatasetTest, RecordsOfUser) {
  DomainDataset d = SmallDomain();
  const auto& recs = d.RecordsOfUser(0);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(d.reviews()[recs[0]].item_id, 10);
  EXPECT_EQ(d.reviews()[recs[1]].item_id, 11);
  EXPECT_TRUE(d.RecordsOfUser(99).empty());
}

TEST(DomainDatasetTest, RecordsOfItem) {
  DomainDataset d = SmallDomain();
  EXPECT_EQ(d.RecordsOfItem(10).size(), 3u);
  EXPECT_EQ(d.RecordsOfItem(11).size(), 2u);
  EXPECT_TRUE(d.RecordsOfItem(999).empty());
}

TEST(DomainDatasetTest, UsersWhoRatedIsTheLikeMindedDictionary) {
  DomainDataset d = SmallDomain();
  // Users 0 and 1 both rated item 10 with 5.0 (Algorithm 1's dictionary 2).
  const auto& like_minded = d.UsersWhoRated(10, 5.0f);
  ASSERT_EQ(like_minded.size(), 2u);
  EXPECT_EQ(like_minded[0], 0);
  EXPECT_EQ(like_minded[1], 1);
  // User 2 rated it 4.0.
  ASSERT_EQ(d.UsersWhoRated(10, 4.0f).size(), 1u);
  EXPECT_TRUE(d.UsersWhoRated(10, 1.0f).empty());
  EXPECT_TRUE(d.UsersWhoRated(404, 5.0f).empty());
}

TEST(DomainDatasetTest, UsersWhoRatedDeduplicatesRepeatReviewers) {
  // Regression: a user who reviews the same item with the same rating
  // several times used to appear once per review, skewing Algorithm 1's
  // uniform like-minded draw towards repeat reviewers.
  DomainDataset d("Books");
  d.AddReview(MakeReview(7, 10, 5));
  d.AddReview(MakeReview(7, 10, 5));
  d.AddReview(MakeReview(7, 10, 5));
  d.AddReview(MakeReview(3, 10, 5));
  d.BuildIndices();
  EXPECT_EQ(d.UsersWhoRated(10, 5.0f), (std::vector<int>{3, 7}));
}

TEST(DomainDatasetTest, UsersWhoRatedIsSortedAscending) {
  DomainDataset d("Books");
  d.AddReview(MakeReview(9, 10, 2));
  d.AddReview(MakeReview(1, 10, 2));
  d.AddReview(MakeReview(5, 10, 2));
  d.BuildIndices();
  EXPECT_EQ(d.UsersWhoRated(10, 2.0f), (std::vector<int>{1, 5, 9}));
}

TEST(DomainDatasetTest, HalfStarRatingsKeySeparately) {
  // Regression: the (item, rating) key used to round to whole stars, so
  // 4.5 and 5.0 shared a bucket and Algorithm 1's "same rating" match
  // silently merged them.
  DomainDataset d("Books");
  d.AddReview(MakeReview(0, 10, 4.5f));
  d.AddReview(MakeReview(1, 10, 5.0f));
  d.AddReview(MakeReview(2, 10, 4.5f));
  d.AddReview(MakeReview(3, 10, 4.0f));
  d.BuildIndices();
  EXPECT_EQ(d.UsersWhoRated(10, 4.5f), (std::vector<int>{0, 2}));
  EXPECT_EQ(d.UsersWhoRated(10, 5.0f), (std::vector<int>{1}));
  EXPECT_EQ(d.UsersWhoRated(10, 4.0f), (std::vector<int>{3}));
  EXPECT_TRUE(d.UsersWhoRated(10, 3.5f).empty());
}

TEST(DomainDatasetTest, GlobalMeanRating) {
  DomainDataset d = SmallDomain();
  EXPECT_FLOAT_EQ(d.GlobalMeanRating(), (5 + 3 + 5 + 4 + 3) / 5.0f);
  DomainDataset empty("x");
  EXPECT_FLOAT_EQ(empty.GlobalMeanRating(), 3.0f);
}

TEST(DomainDatasetTest, MeanReviewsPerUser) {
  DomainDataset d = SmallDomain();
  EXPECT_DOUBLE_EQ(d.MeanReviewsPerUser(), 5.0 / 3.0);
}

TEST(DomainDatasetTest, RebuildAfterAdding) {
  DomainDataset d = SmallDomain();
  d.AddReview(MakeReview(3, 11, 2));
  d.BuildIndices();
  EXPECT_EQ(d.users().size(), 4u);
  EXPECT_EQ(d.RecordsOfItem(11).size(), 3u);
}

TEST(CrossDomainDatasetTest, OverlapIsIntersection) {
  DomainDataset source("Books");
  source.AddReview(MakeReview(0, 1, 5));
  source.AddReview(MakeReview(1, 1, 4));
  source.AddReview(MakeReview(2, 2, 3));
  DomainDataset target("Movies");
  target.AddReview(MakeReview(1, 100001, 5));
  target.AddReview(MakeReview(2, 100001, 2));
  target.AddReview(MakeReview(9, 100002, 3));
  CrossDomainDataset cross(std::move(source), std::move(target));
  EXPECT_EQ(cross.overlapping_users(), (std::vector<int>{1, 2}));
  EXPECT_EQ(cross.ScenarioName(), "Books -> Movies");
}

TEST(CrossDomainDatasetTest, RecomputeAfterMutation) {
  DomainDataset source("A"), target("B");
  source.AddReview(MakeReview(0, 1, 5));
  target.AddReview(MakeReview(1, 2, 5));
  CrossDomainDataset cross(std::move(source), std::move(target));
  EXPECT_TRUE(cross.overlapping_users().empty());
  cross.mutable_target().AddReview(MakeReview(0, 3, 4));
  cross.RecomputeOverlap();
  EXPECT_EQ(cross.overlapping_users(), (std::vector<int>{0}));
}

}  // namespace
}  // namespace data
}  // namespace omnimatch
